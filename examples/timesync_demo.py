#!/usr/bin/env python3
"""Time synchronization: why CQF needs gPTP, and how tight it gets.

Two experiments on the same drifting-clock ring:

1. **Convergence** -- a 6-node gPTP chain with +-20 ppm oscillators and
   millisecond-scale initial offsets converges below the paper's 50 ns
   precision budget.
2. **Ablation** -- the same CQF scenario run (a) with perfect clocks,
   (b) with drifting clocks disciplined by gPTP, and (c) with drifting
   clocks and *no* sync.  (a) and (b) are indistinguishable; (c) smears
   the deterministic latency by tens of microseconds.

Run:  python examples/timesync_demo.py
"""

import random

from repro import Testbed, ring_topology
from repro.core.presets import customized_config
from repro.core.units import ms, us
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.timesync.gptp import SyncDomain
from repro.traffic.iec60802 import production_cell_flows

SLOT_NS = us(62.5)


def convergence_demo() -> None:
    print("=== gPTP convergence over a 6-node chain ===")
    sim = Simulator()
    domain = SyncDomain(sim)
    domain.add_node("gm", LocalClock(sim))
    rng = random.Random(1)
    prev = "gm"
    for i in range(5):
        clock = LocalClock(
            sim,
            drift_ppm=rng.uniform(-20, 20),
            offset_ns=rng.randrange(-1_000_000, 1_000_000),
        )
        domain.add_node(f"sw{i}", clock, parent=prev, link_delay_ns=500)
        prev = f"sw{i}"
    domain.start()
    for second in (0.25, 0.5, 1.0, 2.0, 3.0):
        sim.run(until=int(second * 1e9))
        print(f"  t={second:4.2f}s  max |offset| = "
              f"{domain.max_abs_offset_ns():>8d} ns")
    final = domain.max_abs_offset_ns()
    print(f"  steady state: {final} ns "
          f"({'<' if final < 50 else '>='} the paper's 50 ns budget)")
    assert final < 50


def ablation_demo() -> None:
    print("\n=== CQF with and without synchronization ===")
    cases = {
        "perfect clocks": dict(),
        "drift + gPTP": dict(clock_drift_ppm=20,
                             clock_offset_spread_ns=100_000,
                             enable_gptp=True),
        "drift, no sync": dict(clock_drift_ppm=200,
                               clock_offset_spread_ns=40_000),
    }
    for label, kwargs in cases.items():
        topology = ring_topology(switch_count=3, talkers=["talker0"])
        flows = production_cell_flows(["talker0"], "listener", flow_count=64)
        testbed = Testbed(topology, customized_config(1), flows,
                          slot_ns=SLOT_NS, **kwargs)
        result = testbed.run(duration_ns=ms(40))
        summary = result.ts_summary
        sync_note = ""
        if testbed.sync_domain is not None:
            sync_note = (f"  (gPTP residual "
                         f"{testbed.sync_domain.max_abs_offset_ns()} ns)")
        print(f"  {label:16s} mean {summary.mean_ns / 1000:8.2f} us  "
              f"jitter {summary.jitter_ns / 1000:7.2f} us  "
              f"loss {result.ts_loss:.4f}{sync_note}")


if __name__ == "__main__":
    convergence_demo()
    ablation_demo()
    print("\ntimesync_demo OK")
