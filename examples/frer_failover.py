#!/usr/bin/env python3
"""Seamless redundancy: 802.1CB FRER surviving a cable pull.

The paper's intro counts *flow integrity* among the TSN standard families.
This example replicates each TS flow over two edge-disjoint 3-switch paths
(``dual_path_topology``), eliminates duplicates at the listener with the
802.1CB vector recovery algorithm, and pulls one path's first trunk cable
a third of the way into the run:

* without FRER, every packet after the cut is lost;
* with FRER, loss stays zero and the latency distribution does not move --
  there is no failover transient, because the second copy was always
  already in flight.

Run:  python examples/frer_failover.py
"""

from repro import Testbed, cqf_bounds
from repro.core.presets import customized_config
from repro.core.units import ms, us
from repro.network.topology import dual_path_topology
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import production_cell_flows

SLOT_NS = us(62.5)
CHAIN = 3
WINDOW_MS = 30


def run(frer: bool, cut: bool):
    topology = dual_path_topology(chain_len=CHAIN)
    flows = production_cell_flows(["talker0"], "listener", flow_count=64)
    config = customized_config(2, flow_count=4 * len(flows))
    testbed = Testbed(topology, config, flows, slot_ns=SLOT_NS, frer_ts=frer)
    testbed.build()
    if cut:
        trunk = next(l for l in testbed.links if l.name.startswith("head.p0"))
        testbed.sim.schedule(ms(WINDOW_MS // 3), trunk.fail)
    result = testbed.run(duration_ns=ms(WINDOW_MS))
    eliminated = sum(
        e.duplicates_eliminated for e in testbed.frer_eliminators.values()
    )
    return result, eliminated


def main() -> None:
    print(f"Dual {CHAIN}-hop paths, trunk head.p0 cut at "
          f"{WINDOW_MS // 3} ms of {WINDOW_MS} ms:\n")
    for label, frer, cut in (
        ("single path, healthy ", False, False),
        ("single path, cable cut", False, True),
        ("FRER,        cable cut", True, True),
    ):
        result, eliminated = run(frer, cut)
        summary = result.ts_summary
        print(f"  {label}: loss {result.ts_loss:6.2%}  "
              f"mean {summary.mean_ns / 1000:7.2f} us  "
              f"jitter {summary.jitter_ns / 1000:5.2f} us  "
              f"duplicates eliminated {eliminated}")
    protected, _ = run(True, True)
    bounds = cqf_bounds(CHAIN, SLOT_NS)
    latencies = protected.analyzer.class_latencies(TrafficClass.TS)
    assert protected.ts_loss == 0.0
    assert all(bounds.contains(x) for x in latencies)
    print("\nFRER run: zero loss, every packet still inside Eq.(1) — "
          "failover is seamless.")
    print("frer_failover OK")


if __name__ == "__main__":
    main()
