#!/usr/bin/env python3
"""Generate the parameterized Verilog bundle for a customized switch.

The FPGA prototype programs the five templates in Verilog; this backend
regenerates that artifact for any configuration.  The script emits three
bundles (one per evaluated topology) under ``build/rtl/`` and shows that
re-customization changes *only* parameter values -- the fixed template
logic is byte-identical, which is the "reuse without reprogramming" claim.

Run:  python examples/rtl_generation.py [--outdir build/rtl]
"""

import argparse
import difflib
import json
from pathlib import Path

from repro.core.builder import TSNBuilder
from repro.core.presets import linear_config, ring_config, star_config


def emit(config, outdir: Path):
    builder = TSNBuilder(platform="rtl")
    builder.customize(config)
    model = builder.synthesize()
    files = model.emit_verilog(outdir)
    return model, files


def main(outdir: Path) -> None:
    bundles = {}
    for config, name in [
        (star_config(), "star"),
        (linear_config(), "linear"),
        (ring_config(), "ring"),
    ]:
        model, files = emit(config, outdir / name)
        bundles[name] = outdir / name
        manifest = json.loads((outdir / name / "manifest.json").read_text())
        print(f"{name}: {len(files)} files -> {outdir / name}")
        print(f"  predicted BRAM: {manifest['predicted_bram_kb']:g}Kb")
        for row, kb in manifest["predicted_bram_rows"].items():
            print(f"    {row:12s} {kb:g}Kb")

    # The template-reuse claim: diff two bundles, expect only parameters.
    star_text = (bundles["star"] / "gate_ctrl.v").read_text()
    ring_text = (bundles["ring"] / "gate_ctrl.v").read_text()
    changed = [
        line
        for line in difflib.unified_diff(
            star_text.splitlines(), ring_text.splitlines(), lineterm="", n=0
        )
        if line.startswith(("+", "-")) and not line.startswith(("+++", "---"))
    ]
    print("\nDiff of gate_ctrl.v between star and ring bundles:")
    for line in changed:
        print(f"  {line}")
    meaningful = [l for l in changed if "configuration" not in l]
    assert all(
        "parameter" in line or "QUEUE_DEPTH" in line for line in meaningful
    ), "template logic must not change across customizations"
    print("\nOnly parameter lines differ -- the fixed logic is reused "
          "verbatim.\nrtl_generation OK")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", type=Path, default=Path("build/rtl"))
    args = parser.parse_args()
    main(args.outdir)
