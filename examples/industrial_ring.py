#!/usr/bin/env python3
"""The paper's evaluation demo: an industrial-control ring at full scale.

Reproduces the Section IV setup: ring of TSN switches (one enabled port
each), three TSNNic talkers injecting IEC 60802 production-cell traffic --
1024 periodic TS flows (10 ms period, deadlines from {1,2,4,8} ms) plus
RC/BE background -- a TSN analyzer at the far end, CQF gate control, and
ITP-planned injection.

Prints a Fig. 7-style report: latency/jitter/loss for each class, Eq. (1)
containment, per-switch counters, and the occupancy high-water marks that
justify the customized queue/buffer sizing.

Run:  python examples/industrial_ring.py [--flows N] [--ms WINDOW]
      (defaults: 1024 flows, 100 ms -- about a minute of simulation)
"""

import argparse

from repro import Testbed, cqf_bounds, ring_topology
from repro.core.presets import customized_config
from repro.core.units import mbps, ms, us
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import background_flows, production_cell_flows

SLOT_NS = us(62.5)
TALKERS = ["talker0", "talker1", "talker2"]


def main(flow_count: int, window_ms: int) -> None:
    hops = 6
    topology = ring_topology(switch_count=hops, talkers=TALKERS)
    flows = production_cell_flows(TALKERS, "listener", flow_count=flow_count)
    for flow in background_flows(
        TALKERS, "listener", rc_rate_bps=mbps(120), be_rate_bps=mbps(120)
    ):
        flows.add(flow)

    config = customized_config(1, name="ring-node", flow_count=flow_count)
    print(f"Per-node configuration: {config.total_bram_kb:g}Kb BRAM "
          f"(vs 10818Kb for the COTS baseline)")

    testbed = Testbed(topology, config, flows, slot_ns=SLOT_NS)
    result = testbed.run(duration_ns=ms(window_ms))

    plan = result.itp_plan
    print(f"\nITP: worst slot carries {plan.max_frames_per_slot} frames "
          f"(queue depth {config.queue_depth} configured), "
          f"balance ratio {plan.load_balance_ratio():.2f}")

    bounds = cqf_bounds(hops, SLOT_NS)
    print(f"\nTraffic over {hops} hops, slot {SLOT_NS / 1000:g} us "
          f"(Eq.1 window [{bounds.min_ns / 1000:g}, "
          f"{bounds.max_ns / 1000:g}] us):")
    for cls in (TrafficClass.TS, TrafficClass.RC, TrafficClass.BE):
        received = result.analyzer.received(cls)
        if not received:
            continue
        summary = result.summary(cls)
        print(f"  {cls.name}: {received:6d} pkts  "
              f"mean {summary.mean_ns / 1000:8.2f} us  "
              f"jitter {summary.jitter_ns / 1000:7.2f} us  "
              f"loss {result.loss_rate(cls):.4f}")

    ts_latencies = result.analyzer.class_latencies(TrafficClass.TS)
    in_bounds = all(bounds.contains(x) for x in ts_latencies)
    misses = result.analyzer.deadline_misses(TrafficClass.TS)
    print(f"\nTS packets within Eq.(1): {in_bounds}; "
          f"deadline misses: {misses}")

    print("\nPer-switch counters:")
    for name, counters in result.counters().items():
        print(f"  {name}: fwd={counters['forwarded']} "
              f"drops={counters['dropped_total']}")
    print("\n" + result.port_report())
    print(f"\nOccupancy high water: queue "
          f"{result.max_queue_high_water()}/{config.queue_depth}, "
          f"buffers {result.max_buffer_high_water()}/{config.buffer_num}")

    assert result.ts_loss == 0.0 and in_bounds and misses == 0
    print("\nindustrial_ring OK")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flows", type=int, default=1024)
    parser.add_argument("--ms", type=int, default=100)
    args = parser.parse_args()
    main(args.flows, args.ms)
