#!/usr/bin/env python3
"""A full observability pass over one scenario: metrics -> tables -> traces.

Runs an instrumented ring scenario with every telemetry hook attached --
metrics registry, tracer, wall-clock profiler -- then shows what each
surface collected:

* the per-switch frame/drop/meter counters and the queue-depth /
  buffer-occupancy high-water marks (the numbers the sizing guidelines
  care about),
* the per-queue residence-time histograms with bucketed p50/p99,
* the kernel's calendar accounting and hottest wall-clock categories,
* a Chrome trace-event file (open metrics_dashboard_trace.json in
  https://ui.perfetto.dev or chrome://tracing to see the gates breathe).

Run:  python examples/metrics_dashboard.py
"""

from pathlib import Path

from repro import (
    MetricsRegistry,
    Testbed,
    WallClockProfiler,
    ring_topology,
    write_chrome_trace,
)
from repro.analysis.report import render_metrics
from repro.core.presets import customized_config
from repro.core.units import ms, us
from repro.sim.trace import Tracer
from repro.traffic.iec60802 import production_cell_flows

SLOT_NS = us(62.5)
TRACE_PATH = Path(__file__).with_name("metrics_dashboard_trace.json")


def main() -> None:
    registry = MetricsRegistry()
    tracer = Tracer(enabled={"gate", "queue", "tx", "drop"})
    profiler = WallClockProfiler()

    topology = ring_topology(switch_count=3, talkers=["talker0"])
    flows = production_cell_flows(["talker0"], "listener", flow_count=64)
    testbed = Testbed(
        topology,
        customized_config(topology.max_enabled_ports),
        flows,
        slot_ns=SLOT_NS,
        metrics=registry,
        tracer=tracer,
        profiler=profiler,
    )
    result = testbed.run(duration_ns=ms(30))

    # ---- 1. the metric tables ---------------------------------------------
    print(render_metrics(registry.snapshot()))

    # ---- 2. headline numbers the sizing studies read ----------------------
    frames = registry.counter("frames_total")
    depth = registry.gauge("queue_depth")
    buffers = registry.gauge("buffer_in_use")
    print(f"\nframes transmitted: "
          f"{sum(s.value for key, s in frames.series() if ('event', 'transmitted') in key)}")
    print(f"queue-depth high water: {depth.max_high_water():g} descriptors")
    print(f"buffer high water:      {buffers.max_high_water():g} slots")
    print(f"drops:                  {registry.counter('drops_total').total()}")

    residence = registry.histogram("queue_residence_ns")
    worst_p99 = max(
        (series.quantile(0.99) or 0 for _, series in residence.series()),
        default=0,
    )
    print(f"worst per-queue residence p99: {worst_p99 / 1000:.1f} us "
          f"(slot is {SLOT_NS / 1000:g} us)")

    # ---- 3. kernel + wall-clock accounting --------------------------------
    stats = testbed.sim.stats
    print(f"\nkernel: {stats.fired} events fired of {stats.scheduled} "
          f"scheduled, calendar peak {stats.calendar_high_water}")
    print()
    print(profiler.render())

    # ---- 4. the zoomable timeline -----------------------------------------
    write_chrome_trace(tracer.records, TRACE_PATH,
                       end_ns=result.duration_ns)
    print(f"\nwrote {TRACE_PATH.name} ({len(tracer.records)} trace records)"
          " -- load it in https://ui.perfetto.dev")

    assert result.ts_loss == 0.0
    assert depth.max_high_water() > 0
    print("\nmetrics_dashboard OK")


if __name__ == "__main__":
    main()
