#!/usr/bin/env python3
"""Quickstart: customize a TSN switch, check its BRAM cost, watch it forward.

The TSN-Builder workflow in ~40 lines:

1. inject resource parameters through the seven customization APIs
   (paper Table II);
2. synthesize a switch model from the five function templates and read its
   predicted on-chip memory;
3. drop the same model into a simulated 3-switch ring carrying periodic
   Time-Sensitive flows and verify CQF's deterministic latency (Eq. 1).

Run:  python examples/quickstart.py
"""

from repro import CustomizationAPI, Testbed, cqf_bounds, ring_topology
from repro.core.builder import TSNBuilder
from repro.core.units import ms, us
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import production_cell_flows

SLOT_NS = us(62.5)


def customize_switch():
    """Step 1+2: parameters in, resource report out."""
    api = CustomizationAPI("quickstart-node")
    api.set_switch_tbl(unicast_size=1024, multicast_size=0)
    api.set_class_tbl(class_size=1024)
    api.set_meter_tbl(meter_size=1024)
    api.set_gate_tbl(gate_size=2, queue_num=8, port_num=1)   # CQF: 2 entries
    api.set_cbs_tbl(cbs_map_size=3, cbs_size=3, port_num=1)  # 3 RC queues
    api.set_queues(queue_depth=12, queue_num=8, port_num=1)
    api.set_buffers(buffer_num=96, port_num=1)

    builder = TSNBuilder(platform="sim")
    builder.customize(api)
    model = builder.synthesize()

    print("Synthesized templates and their injected parameters:")
    for name, params in model.template_parameters().items():
        print(f"  {name:15s} {params or '(no memory parameters)'}")
    report = model.resource_report("quickstart-node")
    print("\nPredicted on-chip memory:")
    for row in report.rows:
        print(f"  {row.resource:12s} {row.kb_label:>8s}  (params {row.parameters})")
    print(f"  {'Total':12s} {report.total_kb:7g}Kb")
    return model


def run_ring(model):
    """Step 3: the same configuration forwarding real (simulated) traffic."""
    hops = 3
    topology = ring_topology(switch_count=hops, talkers=["talker0"])
    flows = production_cell_flows(["talker0"], "listener", flow_count=64)
    testbed = Testbed(topology, model.config, flows, slot_ns=SLOT_NS)
    result = testbed.run(duration_ns=ms(50))

    summary = result.ts_summary
    bounds = cqf_bounds(hops, SLOT_NS)
    latencies = result.analyzer.class_latencies(TrafficClass.TS)
    print(f"\nRan {len(latencies)} TS packets over {hops} switches:")
    print(f"  mean latency {summary.mean_ns / 1000:8.2f} us "
          f"(Eq.1 centre: {bounds.mean_ns / 1000:.2f} us)")
    print(f"  jitter       {summary.jitter_ns / 1000:8.2f} us")
    print(f"  packet loss  {result.ts_loss:8.4f}")
    in_bounds = all(bounds.contains(x) for x in latencies)
    print(f"  all packets within Eq.(1) window "
          f"[{bounds.min_ns / 1000:g}, {bounds.max_ns / 1000:g}] us: "
          f"{in_bounds}")
    assert in_bounds and result.ts_loss == 0.0


if __name__ == "__main__":
    run_ring(customize_switch())
    print("\nquickstart OK")
