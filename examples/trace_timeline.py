#!/usr/bin/env python3
"""Watching CQF breathe: gate timelines from a traced run.

Runs a small traced scenario and renders the first switch's gate schedule
as an ASCII timeline: the two TS queues (6 and 7) swapping roles every
62.5 us slot, with each TS transmission landing inside the open window of
the draining queue.  The quickest sanity check that the Gate Ctrl template
does what the paper's Fig. 3/5 describe.

Run:  python examples/trace_timeline.py
"""

from repro import Testbed, ring_topology
from repro.analysis.timeline import gate_timeline, render_timeline
from repro.core.presets import customized_config
from repro.core.units import ms, us
from repro.sim.trace import Tracer
from repro.traffic.iec60802 import production_cell_flows

SLOT_NS = us(62.5)
WINDOW_NS = ms(1)  # render the first millisecond (16 slots)


def main() -> None:
    tracer = Tracer(enabled={"gate", "tx"})
    topology = ring_topology(switch_count=2, talkers=["talker0"])
    flows = production_cell_flows(["talker0"], "listener", flow_count=48)
    testbed = Testbed(topology, customized_config(1), flows,
                      slot_ns=SLOT_NS, tracer=tracer)
    result = testbed.run(duration_ns=ms(10))

    q6 = gate_timeline(tracer.records, "sw0.p0", 6, WINDOW_NS)
    q7 = gate_timeline(tracer.records, "sw0.p0", 7, WINDOW_NS)
    tx_times = [
        record.time
        for record in tracer.by_category("tx")
        if record.message == "sw0.p0 start" and record.time < WINDOW_NS
    ]
    print("sw0 port 0, first millisecond "
          f"({SLOT_NS / 1000:g} us slots; '#' = out-gate open):\n")
    print(render_timeline([q6, q7], until_ns=WINDOW_NS, columns=64,
                          tx_times={"sw0.p0 tx": tx_times}))

    # Every TS transmission must fall inside exactly one open TS window.
    ts_tx_in_windows = sum(
        1 for t in tx_times if q6.open_at(t) or q7.open_at(t)
    )
    print(f"\n{len(tx_times)} transmissions in the window, "
          f"{ts_tx_in_windows} inside an open TS gate")
    print(f"q6 open {q6.total_open_ns() / WINDOW_NS:.0%} of the time, "
          f"q7 open {q7.total_open_ns() / WINDOW_NS:.0%} "
          "(complementary halves of the CQF cycle)")
    assert result.ts_loss == 0.0
    assert abs(q6.total_open_ns() + q7.total_open_ns() - WINDOW_NS) <= SLOT_NS
    print("\ntrace_timeline OK")


if __name__ == "__main__":
    main()
