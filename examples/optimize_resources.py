#!/usr/bin/env python3
"""Beyond the guidelines: optimizing the resource parameters.

The paper's Section V frames parameter selection as an optimization problem
and leaves the algorithms to future work.  This example runs the
implemented optimizer on the evaluation workload and shows the three levers
it exploits:

1. **Slot size** -- the guidelines fix 62.5 us; any divisor of the 10 ms
   cycle that meets the deadline (Eq. 1) and keeps ITP feasible is fair
   game, and smaller slots need shallower queues and fewer buffers.
2. **Table aggregation** -- forwarding entries shared per destination
   (guideline 1's aggregation remark) shrink the switch table.
3. **The Pareto frontier** -- when large frames make small slots
   infeasible, latency bound and BRAM genuinely trade off; the frontier is
   printed so a deployer can pick.

The optimized configuration is then *validated in simulation*: same zero
loss, every packet inside Eq. (1) at the smaller slot.

Run:  python examples/optimize_resources.py
"""

from repro import Testbed, cqf_bounds, ring_topology
from repro.core.optimizer import optimize
from repro.core.presets import ring_config
from repro.core.units import ms
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass
from repro.traffic.iec60802 import production_cell_flows

TALKERS = ["talker0", "talker1", "talker2"]


def paper_workload():
    return production_cell_flows(TALKERS, "listener", flow_count=1024)


def heavy_workload():
    """256 x 1500 B flows: small slots become ITP-infeasible."""
    flows = FlowSet()
    for i in range(256):
        flows.add(FlowSpec(i, TrafficClass.TS, TALKERS[i % 3], "listener",
                           1500, period_ns=ms(10), deadline_ns=ms(4)))
    return flows


def main() -> None:
    topology = ring_topology(6, talkers=TALKERS)

    print("=== Paper workload (1024 x 64 B, deadlines from IEC 60802) ===")
    result = optimize(topology, paper_workload())
    guideline_kb = ring_config().total_bram_kb
    best = result.best
    print(f"guideline (slot 62.5us): {guideline_kb:g}Kb")
    print(f"optimized (slot {best.slot_ns / 1000:g}us): "
          f"{best.total_bram_kb:g}Kb "
          f"({100 * (guideline_kb - best.total_bram_kb) / guideline_kb:.1f}% "
          f"further saving), queue depth {best.config.queue_depth}, "
          f"L_max {best.worst_latency_ns / 1000:g}us")
    aggregated = optimize(topology, paper_workload(),
                          aggregate_switch_entries=True)
    print(f"+ table aggregation: {aggregated.best.total_bram_kb:g}Kb "
          f"(switch table {aggregated.best.config.unicast_size} entries)")

    print("\n=== Heavy workload (256 x 1500 B): the Pareto frontier ===")
    heavy = optimize(topology, heavy_workload())
    print(f"ITP-infeasible slots: "
          f"{[s // 1000 for s in heavy.rejected_slots]} (us)")
    print(f"{'slot(us)':>9} {'depth':>6} {'BRAM(Kb)':>9} {'Lmax(us)':>9}")
    for point in heavy.pareto:
        print(f"{point.slot_ns / 1000:9g} {point.config.queue_depth:6d} "
              f"{point.total_bram_kb:9g} {point.worst_latency_ns / 1000:9g}")

    print("\n=== Validate the optimized paper-workload config on the wire ===")
    slot = best.slot_ns
    hops = 3
    topo = ring_topology(hops, talkers=["talker0"])
    flows = production_cell_flows(["talker0"], "listener", flow_count=256)
    testbed = Testbed(topo, best.config, flows, slot_ns=slot)
    run = testbed.run(duration_ns=ms(40))
    bounds = cqf_bounds(hops, slot)
    latencies = run.analyzer.class_latencies(TrafficClass.TS)
    in_bounds = all(bounds.contains(x) for x in latencies)
    print(f"slot {slot / 1000:g}us: mean "
          f"{run.ts_summary.mean_ns / 1000:.2f}us, loss {run.ts_loss}, "
          f"Eq.(1) holds: {in_bounds}, queue high water "
          f"{run.max_queue_high_water()}/{best.config.queue_depth}")
    assert run.ts_loss == 0.0 and in_bounds
    assert run.max_queue_high_water() <= best.config.queue_depth

    print("\noptimize_resources OK")


if __name__ == "__main__":
    main()
