#!/usr/bin/env python3
"""Top-down customization: from application features to Table III.

The paper's central workflow -- start from what the *application* needs
(topology, flow features) and derive every resource parameter through the
Section III.C guidelines, instead of buying a COTS switch sized for the
worst case.  This script:

1. describes the three evaluated industrial topologies (star/linear/ring)
   and the IEC 60802 production-cell flow set;
2. derives each customized configuration with ``repro.core.sizing``;
3. renders the full Table III against the Broadcom BCM53154 baseline and
   checks the published totals (-46.59% / -63.56% / -80.53%);
4. shows what changes when the application changes (half the flows, a
   general 802.1Qbv schedule instead of CQF).

Run:  python examples/topdown_sizing.py
"""

from repro.analysis.report import render_table3
from repro.core.presets import bcm53154_config
from repro.core.sizing import derive_config
from repro.core.units import us
from repro.network.topology import linear_topology, ring_topology, star_topology
from repro.traffic.iec60802 import production_cell_flows

SLOT_NS = us(62.5)
TALKERS = ["talker0", "talker1", "talker2"]


def main() -> None:
    flows = production_cell_flows(TALKERS, "listener", flow_count=1024)
    print(f"Application features: {len(flows)} TS flows, period 10ms, "
          f"slot {SLOT_NS / 1000:g}us\n")

    scenarios = [
        ("Customized (Star, 3 ports)", star_topology(talkers=TALKERS)),
        ("Customized (Linear, 2 ports)", linear_topology(6, talkers=TALKERS)),
        ("Customized (Ring, 1 port)", ring_topology(6, talkers=TALKERS)),
    ]
    baseline = bcm53154_config().resource_report("Commercial (4 ports)")
    reports = []
    for title, topology in scenarios:
        result = derive_config(topology, flows, SLOT_NS, name=title)
        print(f"{title}:")
        print(f"  guideline 1: tables sized to {len(flows)} flows")
        print(f"  guideline 2: CQF -> gate_size = "
              f"{result.config.gate_size} "
              f"(vs {result.schedule.slot_count} for plain 802.1Qbv)")
        print(f"  guideline 4: ITP worst slot = "
              f"{result.required_queue_depth} frames -> depth "
              f"{result.config.queue_depth}, "
              f"{result.config.buffer_num} buffers/port")
        print(f"  guideline 5: {result.config.port_num} enabled port(s)\n")
        reports.append(result.config.resource_report(title))

    print(render_table3(baseline, reports))

    expected = {0: 0.4659, 1: 0.6356, 2: 0.8053}
    for index, report in enumerate(reports):
        reduction = report.reduction_vs(baseline)
        assert abs(reduction - expected[index]) < 5e-4, report.title

    print("\nWhat if the application changes?")
    smaller = production_cell_flows(TALKERS, "listener", flow_count=512)
    result = derive_config(ring_topology(6, talkers=TALKERS), smaller,
                           SLOT_NS, name="ring, 512 flows")
    print(f"  512 flows  -> {result.config.total_bram_kb:g}Kb "
          f"(tables shrink with the flow count)")
    qbv = derive_config(ring_topology(6, talkers=TALKERS), flows, SLOT_NS,
                        name="ring, plain Qbv", gate_mechanism="qbv")
    print(f"  plain Qbv  -> {qbv.config.total_bram_kb:g}Kb "
          f"(gate tables need {qbv.config.gate_size} entries/port)")

    print("\ntopdown_sizing OK")


if __name__ == "__main__":
    main()
