#!/usr/bin/env python3
"""Swapping a template's fixed logic: a fair-queuing Egress Sched.

TSN-Builder's templates encapsulate *fixed processing logic* behind the
resource-parameter interface, so a developer who needs different logic
replaces one template and reuses everything else.  This example builds a
custom Egress Sched whose arbitration is deficit round robin below the TS
queues (no best-effort starvation) instead of plain strict priority, then
shows:

1. the resource model is untouched -- the custom switch costs exactly the
   same 2106 Kb of BRAM;
2. TS determinism is untouched -- CQF latency/loss identical;
3. the behaviour difference is real -- under saturating RC load, BE traffic
   starves with strict priority but keeps its fair share under DRR.

Run:  python examples/custom_template.py
"""

from repro import Testbed, ring_topology
from repro.core.builder import TSNBuilder
from repro.core.presets import customized_config
from repro.core.templates import EgressSchedTemplate
from repro.core.units import mbps, ms, us
from repro.switch.scheduler import DeficitRoundRobinScheduler
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass
from repro.traffic.iec60802 import production_cell_flows

SLOT_NS = us(62.5)


class FairEgressSchedTemplate(EgressSchedTemplate):
    """Egress Sched with DRR below the TS queues, weights favouring RC."""

    def scheduler_factory(self):
        return DeficitRoundRobinScheduler(
            weights={5: 2, 4: 2, 3: 2, 0: 1}, priority_floor=6
        )


def build_model(template):
    builder = TSNBuilder(platform="sim")
    builder.replace_template(template)
    builder.customize(customized_config(1))
    return builder.synthesize()


def scenario_flows():
    """TS plus RC/BE aggregates that collide on the first trunk.

    RC and BE come from *different* talkers (so neither is throttled at its
    own NIC) and together oversubscribe the 1 Gbps trunk -- the switch's
    egress arbitration decides who wins.
    """
    flows = production_cell_flows(["talker0"], "listener", flow_count=64)
    flows.add(FlowSpec(90_000, TrafficClass.RC, "talker0", "listener",
                       1024, rate_bps=mbps(800)))
    flows.add(FlowSpec(90_001, TrafficClass.BE, "talker1", "listener",
                       1024, rate_bps=mbps(800)))
    return flows


def run(model):
    """Run the scenario with the model's Egress Sched template in charge."""
    template = next(
        t for t in model.templates if isinstance(t, EgressSchedTemplate)
    )
    topology = ring_topology(
        switch_count=3, talkers=["talker0", "talker1"]
    )
    testbed = Testbed(
        topology,
        model.config,
        flows=scenario_flows(),
        slot_ns=SLOT_NS,
        scheduler_factory=template.scheduler_factory,
    )
    return testbed.run(duration_ns=ms(40))


def main() -> None:
    standard = build_model(EgressSchedTemplate())
    fair = build_model(FairEgressSchedTemplate())

    print("Resource model is template-logic independent:")
    print(f"  strict priority: {standard.total_bram_kb:g}Kb")
    print(f"  DRR variant:     {fair.total_bram_kb:g}Kb\n")
    assert standard.total_bram_kb == fair.total_bram_kb == 2106

    results = {}
    for label, model in (("strict", standard), ("fair-DRR", fair)):
        result = run(model)
        ts = result.ts_summary
        rc = result.analyzer.received(TrafficClass.RC)
        be = result.analyzer.received(TrafficClass.BE)
        results[label] = (ts, rc, be, result.ts_loss)
        print(f"{label:10s} TS mean {ts.mean_ns / 1000:7.2f}us "
              f"loss {result.ts_loss:.4f} | RC {rc} pkts | BE {be} pkts")

    strict_ts, strict_rc, strict_be, strict_loss = results["strict"]
    fair_ts, fair_rc, fair_be, fair_loss = results["fair-DRR"]
    assert strict_loss == fair_loss == 0.0
    assert abs(strict_ts.mean_ns - fair_ts.mean_ns) < 2_000
    # strict priority lets RC crowd BE out; DRR enforces the 2:1 weights
    assert fair_be > strict_be * 1.3
    assert abs(fair_rc / fair_be - 2.0) < 0.3
    print("\nTS determinism preserved; BE gets its weighted share under DRR.")
    print("custom_template OK")


if __name__ == "__main__":
    main()
