"""Setup shim: enables legacy editable installs on environments without the
``wheel`` package (PEP 660 editable wheels need it; ``setup.py develop``
does not). Metadata lives in pyproject.toml."""
from setuptools import setup

setup()
