"""Extension: 802.1CB seamless redundancy under link failure.

The paper's intro lists *flow integrity* among the TSN standard families;
802.1CB (FRER) is its core mechanism.  This bench replays the evaluation's
zero-loss claim through an actual trunk failure: TS flows replicated over
two edge-disjoint paths keep zero loss and unchanged CQF latency when one
path's first trunk is cut mid-run, while the unprotected configuration
loses the remainder of the window.
"""

import pytest

from repro.analysis.report import render_table
from repro.core.presets import customized_config
from repro.core.units import ms
from repro.network.testbed import Testbed
from repro.network.topology import dual_path_topology
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import production_cell_flows

from conftest import SLOT_NS

CHAIN = 3


def _run(scale, frer, cut):
    topology = dual_path_topology(chain_len=CHAIN)
    flows = production_cell_flows(
        ["talker0"], "listener", flow_count=min(scale.ts_flows, 128)
    )
    config = customized_config(2, flow_count=4 * len(flows))
    testbed = Testbed(topology, config, flows, slot_ns=SLOT_NS,
                      frer_ts=frer)
    testbed.build()
    if cut:
        trunk = next(
            link for link in testbed.links
            if link.name.startswith("head.p0")
        )
        testbed.sim.schedule(scale.duration_ns // 3, trunk.fail)
    result = testbed.run(duration_ns=scale.duration_ns)
    eliminated = sum(
        e.duplicates_eliminated for e in testbed.frer_eliminators.values()
    )
    return result, eliminated


def test_extension_frer_failover(benchmark, scale):
    def run_all():
        return {
            "single path, healthy": _run(scale, frer=False, cut=False),
            "single path, trunk cut": _run(scale, frer=False, cut=True),
            "FRER, trunk cut": _run(scale, frer=True, cut=True),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, (result, eliminated) in results.items():
        summary = result.ts_summary
        rows.append(
            [
                label,
                f"{result.ts_loss:.4f}",
                f"{summary.mean_ns / 1000:.2f}",
                f"{summary.jitter_ns / 1000:.2f}",
                str(eliminated),
            ]
        )
    print("\n" + render_table(
        ["configuration", "TS loss", "mean(us)", "jitter(us)",
         "duplicates eliminated"],
        rows,
        title=f"802.1CB over dual {CHAIN}-hop paths, trunk cut at T/3",
    ))
    healthy = results["single path, healthy"][0]
    unprotected = results["single path, trunk cut"][0]
    protected = results["FRER, trunk cut"][0]
    assert healthy.ts_loss == 0.0
    assert unprotected.ts_loss > 0.3            # the cut kills the rest
    assert protected.ts_loss == 0.0             # seamless
    assert protected.analyzer.deadline_misses(TrafficClass.TS) == 0
    assert protected.ts_summary.mean_ns == pytest.approx(
        healthy.ts_summary.mean_ns, rel=0.01
    )
    benchmark.extra_info["unprotected_loss"] = round(unprotected.ts_loss, 4)
    benchmark.extra_info["frer_loss"] = protected.ts_loss
