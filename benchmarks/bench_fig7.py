"""Paper Fig. 7: end-to-end latency of TS flows in the ring.

Four panels:

(a) latency vs hop count {1,2,3,4} -- grows one slot per hop, jitter flat;
(b) latency vs packet size {64...1500 B} -- slight serialization rise;
(c) latency & jitter vs slot size -- both scale proportionally (Eq. 1);
(d) latency vs combined RC+BE background load -- flat, zero loss.

Panels (a), (c) and (d) inject with ``injection_phase="uniform"`` -- flows
spread across their planned slot the way unconstrained TSNNic applications
do -- so the measured jitter reflects the paper's observation that "the
jitter is related to the slot_size" (roughly 0.29 x slot for a uniform
spread) while staying flat across hops and background load.  Panel (b)
keeps the compact ITP stagger to isolate the serialization effect.

Every panel also asserts Eq. (1) containment packet-by-packet.
"""

import pytest

from repro.analysis.report import render_series
from repro.analysis.stats import SweepPoint, SweepSeries
from repro.core.units import mbps
from repro.cqf.bounds import cqf_bounds
from repro.network.topology import ring_topology
from repro.traffic.flows import TrafficClass

from conftest import SLOT_NS, run_scenario

RING_HOPS = 3  # panels (b)-(d) fix the path length


def _assert_bounds(result, hops, slot_ns):
    bounds = cqf_bounds(hops, slot_ns)
    latencies = result.analyzer.class_latencies(TrafficClass.TS)
    assert latencies, "no TS packets delivered"
    assert all(bounds.contains(x) for x in latencies)


def test_fig7a_hops(benchmark, scale):
    def sweep():
        series = SweepSeries("Fig 7(a): latency vs hops", "hops")
        for hops in (1, 2, 3, 4):
            topology = ring_topology(switch_count=hops, talkers=["talker0"])
            result = run_scenario(topology, scale, injection_phase="uniform")
            _assert_bounds(result, hops, SLOT_NS)
            assert result.ts_loss == 0.0
            series.add(SweepPoint(hops, str(hops), result.ts_summary))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + render_series(series))
    assert series.is_monotonic_increasing()
    # mean grows ~ one slot per hop (Eq. 1 centre = hop * slot)
    deltas = [b - a for a, b in zip(series.means_ns, series.means_ns[1:])]
    assert all(d == pytest.approx(SLOT_NS, rel=0.05) for d in deltas)
    # "the jitter is nearly unchanged in different hops": same slot -> same
    # spread, whatever the path length
    assert max(series.jitters_ns) - min(series.jitters_ns) < SLOT_NS / 20
    assert all(j < SLOT_NS / 2 for j in series.jitters_ns)
    benchmark.extra_info["means_us"] = [m / 1000 for m in series.means_ns]


def test_fig7b_packet_size(benchmark, scale):
    def sweep():
        series = SweepSeries("Fig 7(b): latency vs packet size", "bytes")
        for size in (64, 128, 256, 512, 1024, 1500):
            topology = ring_topology(
                switch_count=RING_HOPS, talkers=["talker0"]
            )
            # scale the flow count down for large frames: the paper's
            # 1024-flow set exceeds 1 Gbps at 1500 B (see EXPERIMENTS.md)
            count = min(scale.ts_flows, 128)
            result = run_scenario(topology, scale, size_bytes=size,
                                  ts_flows=count)
            _assert_bounds(result, RING_HOPS, SLOT_NS)
            assert result.ts_loss == 0.0
            series.add(SweepPoint(size, str(size), result.ts_summary))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + render_series(series))
    assert series.is_monotonic_increasing()
    # "increases slightly": the full sweep moves less than one slot
    assert series.means_ns[-1] - series.means_ns[0] < SLOT_NS
    benchmark.extra_info["means_us"] = [m / 1000 for m in series.means_ns]


def test_fig7c_slot_size(benchmark, scale):
    slots = (31_250, 62_500, 125_000, 250_000)

    def sweep():
        from repro.core.sizing import derive_config
        from repro.traffic.iec60802 import production_cell_flows

        series = SweepSeries("Fig 7(c): latency vs slot size", "slot(us)")
        for slot in slots:
            topology = ring_topology(
                switch_count=RING_HOPS, talkers=["talker0"]
            )
            # guideline 4: bigger slots gather more frames per slot, so the
            # queue depth must be re-derived per slot size (at full scale,
            # 1024 flows on 250us slots need 26-deep queues, not 12)
            sizing_flows = production_cell_flows(
                ["talker0"], "listener", flow_count=scale.ts_flows
            )
            config = derive_config(topology, sizing_flows, slot)
            result = run_scenario(topology, scale, slot_ns=slot,
                                  config=config.config,
                                  injection_phase="uniform")
            _assert_bounds(result, RING_HOPS, slot)
            assert result.ts_loss == 0.0
            series.add(
                SweepPoint(slot / 1000, f"{slot / 1000:g}", result.ts_summary)
            )
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + render_series(series))
    # "average latency and jitter are increased manyfold": mean tracks the
    # slot size linearly (ratio ~8 across a 8x slot sweep) and jitter grows
    # with it (uniform in-slot injection spread).
    assert series.scaling_factor() == pytest.approx(8.0, rel=0.15)
    assert series.is_monotonic_increasing()
    assert series.is_monotonic_increasing(key="jitter")
    assert series.jitters_ns[-1] > 4 * series.jitters_ns[0]
    benchmark.extra_info["means_us"] = [m / 1000 for m in series.means_ns]
    benchmark.extra_info["jitters_us"] = [j / 1000 for j in series.jitters_ns]


def test_fig7d_background(benchmark, scale):
    loads = (0, 100, 200, 400, 800)

    def sweep():
        series = SweepSeries(
            "Fig 7(d): latency vs background load", "load(Mbps)"
        )
        for load in loads:
            topology = ring_topology(
                switch_count=RING_HOPS, talkers=["talker0"]
            )
            # equal RC and BE shares, as in the paper
            result = run_scenario(
                topology, scale, rc_bps=mbps(load) // 2 if load else 0,
                be_bps=mbps(load) // 2 if load else 0,
                injection_phase="uniform",
            )
            _assert_bounds(result, RING_HOPS, SLOT_NS)
            assert result.ts_loss == 0.0
            series.add(SweepPoint(load, str(load), result.ts_summary))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + render_series(series))
    # "there is no affection on the latency and jitter of critical TS flows"
    # (residual head-of-line blocking behind one in-flight background MTU
    # moves the mean by <5% of itself -- well inside the Eq.1 window)
    assert series.is_flat(key="mean", tolerance=0.05)
    assert series.is_flat(key="jitter", tolerance=0.10)
    benchmark.extra_info["means_us"] = [m / 1000 for m in series.means_ns]
