#!/usr/bin/env python3
"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact -- these keep the event kernel, BRAM allocator and ITP
planner honest performance-wise, since every experiment above is built on
them.

The measurement core lives in :mod:`repro.bench.kernel` (so ``repro bench
check`` can gate it without shelling out); this script is the human-facing
CLI plus the pytest-benchmark tests.

Two harnesses share this file:

* pytest-benchmark tests (``make bench``) -- multi-round statistical timing
  of the kernel/BRAM/ITP micro-workloads.
* a standalone CLI (``make bench-kernel``) that measures the kernel-bound
  workload trio the hot-path overhaul targets and writes
  ``BENCH_kernel.json``:

  - ``chained``       -- 200k self-rescheduling events via ``schedule()``
    (the legacy handle-allocating path, directly comparable with the
    pre-overhaul kernel).
  - ``chained_post``  -- the same chain via ``post()``, the fire-and-forget
    fast path hot dataplane code uses.
  - ``cancel_heavy``  -- a cancellation storm (schedule 4, cancel 3 per
    event): lazy deletion + threshold compaction under stress.
  - ``star_scenario`` -- a full ``ScenarioSpec.run()`` on a 128-flow star
    network: end-to-end wall clock, gates elided in table mode.

Usage::

    python benchmarks/bench_kernel.py                      # full measurement
    python benchmarks/bench_kernel.py --smoke              # CI: small + fast
    python benchmarks/bench_kernel.py --output BENCH_kernel.json
    python benchmarks/bench_kernel.py --smoke --check BENCH_kernel.json

``--check`` compares the measured throughputs against the committed
baseline and exits 1 on a >25% regression (tunable with ``--tolerance``);
CI runs the same gate as ``repro bench check --suite kernel --smoke``.
The payload records which kernel backend (``py``/``c``, see
``REPRO_BACKEND``) measured it, and ``--check`` refuses cross-backend
comparisons instead of reporting the backend gap as a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.kernel import (                           # noqa: E402
    BEFORE,
    bench_cancel_heavy,
    bench_chained,
    bench_star_compiled,
    current_backend,
    measure,
)
from repro.core import bram                                # noqa: E402
from repro.core.units import ms                            # noqa: E402
from repro.cqf.schedule import CqfSchedule                 # noqa: E402
from repro.sched import SchedulingProblem, make_scheduler  # noqa: E402
from repro.traffic.iec60802 import production_cell_flows   # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small parameters for CI (seconds, not minutes)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="samples per workload (default: 3)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the before/after JSON here")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_kernel.json "
                             "and fail on throughput regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression for --check "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else 3
    backend = current_backend()
    print(f"# kernel benchmarks ({'smoke' if args.smoke else 'full'}, "
          f"{repeats} repeat(s), backend={backend})", file=sys.stderr)
    workloads = measure(args.smoke, repeats)

    print(f" chained (schedule): {workloads['chained']['events_per_s']:>12,.0f} events/s")
    print(f" chained (post):     {workloads['chained_post']['events_per_s']:>12,.0f} events/s")
    print(f" cancel-heavy:       {workloads['cancel_heavy']['scheduled_per_s']:>12,.0f} scheduled/s")
    star = workloads["star_scenario"]
    print(f" star scenario:      {star['wall_s'] * 1000:>12,.1f} ms wall "
          f"({star['frames_per_s']:,.0f} frames/s, "
          f"{star['events_per_s']:,.0f} events/s)")

    payload = {
        "benchmark": "bench_kernel",
        "backend": backend,
        "params": {"smoke": args.smoke, "repeats": repeats},
        "before": BEFORE,
        "after": workloads,
    }
    if not args.smoke:
        # Smoke-scale reference numbers for the CI regression gate: the
        # same sizes `--smoke --check` measures, captured on this machine.
        payload["smoke_reference"] = measure(smoke=True, repeats=repeats)
        payload["speedup"] = {
            "chained_events_per_s":
                workloads["chained"]["events_per_s"]
                / BEFORE["chained"]["events_per_s"],
            "chained_post_events_per_s":
                workloads["chained_post"]["events_per_s"]
                / BEFORE["chained"]["events_per_s"],
            "cancel_heavy_scheduled_per_s":
                workloads["cancel_heavy"]["scheduled_per_s"]
                / BEFORE["cancel_heavy"]["scheduled_per_s"],
            "star_wall_clock":
                BEFORE["star_scenario"]["wall_s"]
                / workloads["star_scenario"]["wall_s"],
            "star_frames_per_s":
                workloads["star_scenario"]["frames_per_s"]
                / BEFORE["star_scenario"]["frames_per_s"],
        }
        # Record the compiled-kernel reference next to a pure-Python
        # baseline (own section; the gate never compares across backends).
        if backend == "py":
            star_c = bench_star_compiled(128, 40, repeats)
            if star_c is not None:
                payload["compiled_reference"] = {
                    "backend": "c",
                    "star_scenario": star_c,
                }
                payload["speedup"]["star_frames_per_s_compiled"] = (
                    star_c["frames_per_s"]
                    / BEFORE["star_scenario"]["frames_per_s"]
                )
                print(f" star scenario (c):  {star_c['wall_s'] * 1000:>12,.1f}"
                      f" ms wall ({star_c['frames_per_s']:,.0f} frames/s)")
        for name, ratio in payload["speedup"].items():
            print(f" speedup {name}: {ratio:.2f}x")
    if args.output:
        args.output.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"# wrote {args.output}", file=sys.stderr)
    if args.check:
        from repro.bench.check import check_kernel

        return check_kernel(args.check, smoke=args.smoke,
                            tolerance=args.tolerance, repeats=repeats)
    return 0


# ------------------------------------------------------ pytest-benchmark


def test_kernel_event_throughput(benchmark):
    """Schedule-and-run 10k chained events."""

    def run():
        return bench_chained(10_000, use_post=False)["events"]

    assert benchmark(run) == 10_000


def test_kernel_post_throughput(benchmark):
    """Post-and-run 10k chained events (the no-handle fast path)."""

    def run():
        return bench_chained(10_000, use_post=True)["events"]

    assert benchmark(run) == 10_000


def test_kernel_cancellation_storm(benchmark):
    """Lazy deletion + compaction under a 3:4 cancel ratio."""

    def run():
        return bench_cancel_heavy(5_000)["scheduled"]

    assert benchmark(run) == 20_000


def test_bram_allocation_throughput(benchmark):
    """Full aspect-ratio search across a realistic shape population."""
    shapes = [(w, d) for w in (17, 32, 68, 72, 117) for d in
              (2, 12, 16, 512, 1024, 16384)]

    def run():
        return sum(bram.allocate(w, d).bits for w, d in shapes)

    assert benchmark(run) > 0


def test_itp_planner_throughput(benchmark):
    """Planning the paper's full 1024-flow set."""
    flows = list(
        production_cell_flows(["t0", "t1", "t2"], "l", flow_count=1024)
    )
    schedule = CqfSchedule(62_500, ms(10))
    scheduler = make_scheduler("greedy")

    def run():
        problem = SchedulingProblem.from_flows(flows, schedule, 10**9)
        return scheduler.solve(problem).max_frames_per_slot

    assert benchmark(run) == 7


if __name__ == "__main__":
    sys.exit(main())
