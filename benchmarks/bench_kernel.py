#!/usr/bin/env python3
"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact -- these keep the event kernel, BRAM allocator and ITP
planner honest performance-wise, since every experiment above is built on
them.

Two harnesses share this file:

* pytest-benchmark tests (``make bench``) -- multi-round statistical timing
  of the kernel/BRAM/ITP micro-workloads.
* a standalone CLI (``make bench-kernel``) that measures the kernel-bound
  workload trio the hot-path overhaul targets and writes
  ``BENCH_kernel.json``:

  - ``chained``       -- 200k self-rescheduling events via ``schedule()``
    (the legacy handle-allocating path, directly comparable with the
    pre-overhaul kernel).
  - ``chained_post``  -- the same chain via ``post()``, the fire-and-forget
    fast path hot dataplane code uses.
  - ``cancel_heavy``  -- a cancellation storm (schedule 4, cancel 3 per
    event): lazy deletion + threshold compaction under stress.
  - ``star_scenario`` -- a full ``ScenarioSpec.run()`` on a 128-flow star
    network: end-to-end wall clock, gates elided in table mode.

Usage::

    python benchmarks/bench_kernel.py                      # full measurement
    python benchmarks/bench_kernel.py --smoke              # CI: small + fast
    python benchmarks/bench_kernel.py --output BENCH_kernel.json
    python benchmarks/bench_kernel.py --smoke --check BENCH_kernel.json

``--check`` compares the measured throughputs against the committed
baseline's ``after`` numbers and exits 1 on a >25% regression (tunable with
``--tolerance``) -- the CI guard against quietly re-pessimizing the kernel.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import bram                                # noqa: E402
from repro.core.units import ms                            # noqa: E402
from repro.cqf.itp import ItpPlanner                       # noqa: E402
from repro.cqf.schedule import CqfSchedule                 # noqa: E402
from repro.network.scenario import ScenarioSpec            # noqa: E402
from repro.sim.kernel import Simulator                     # noqa: E402
from repro.traffic.iec60802 import production_cell_flows   # noqa: E402

#: Pre-overhaul numbers (dataclass-event kernel, per-flip gate engine),
#: captured at the seed commit on the same machine that produced the
#: committed BENCH_kernel.json -- the "before" half of the before/after
#: comparison.  Refresh together with the baseline (see docs/performance.md).
BEFORE = {
    "chained": {"events_per_s": 676_385.3},
    "cancel_heavy": {"scheduled_per_s": 552_809.9},
    "star_scenario": {"wall_s": 1.1771},
}

#: Workloads whose throughput the --check regression gate watches.
GATED = (
    ("chained", "events_per_s"),
    ("chained_post", "events_per_s"),
    ("cancel_heavy", "scheduled_per_s"),
)


# --------------------------------------------------------------- workloads


def bench_chained(n: int, use_post: bool) -> dict:
    """Self-rescheduling event chain: pure calendar push/pop throughput."""
    sim = Simulator()
    remaining = [n]
    if use_post:
        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.post(10, tick)
        sim.post(10, tick)
    else:
        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(10, tick)
        sim.schedule(10, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "events": sim.events_executed,
        "events_per_s": sim.events_executed / elapsed,
    }


def bench_cancel_heavy(n: int) -> dict:
    """Schedule 4, cancel 3 per event: the cancellation-storm profile."""
    sim = Simulator()
    remaining = [n]

    def tick():
        remaining[0] -= 1
        handles = [sim.schedule(10 + i, lambda: None) for i in range(3)]
        for handle in handles:
            handle.cancel()
        if remaining[0] > 0:
            sim.schedule(10, tick)

    sim.schedule(10, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "scheduled": sim.stats.scheduled,
        "scheduled_per_s": sim.stats.scheduled / elapsed,
        "compacted": sim.stats.compacted,
    }


def bench_star_scenario(ts_count: int, duration_ms: float) -> dict:
    """End-to-end ScenarioSpec.run() on a star network."""
    spec = ScenarioSpec.from_dict({
        "name": "star-bench",
        "topology": {
            "kind": "star",
            "talkers": ["talker0", "talker1"],
            "listener": "listener",
        },
        "flows": {
            "ts_count": ts_count,
            "period_us": 10_000,
            "size_bytes": 64,
            "rc_mbps": 100,
            "be_mbps": 100,
        },
        "duration_ms": duration_ms,
    })
    start = time.perf_counter()
    result = spec.run()
    elapsed = time.perf_counter() - start
    return {
        "wall_s": elapsed,
        "events_per_s": result.sim_stats["fired"] / elapsed,
        "sim_stats": result.sim_stats,
    }


def measure(smoke: bool, repeats: int) -> dict:
    samplers = _samplers(smoke)

    def best(name):
        fn, key = samplers[name]
        fn()  # warm-up: first run pays allocator/cache/branch warmup
        samples = [fn() for _ in range(repeats)]
        return max(samples, key=lambda s: s[key])

    workloads = {
        name: best(name)
        for name in ("chained", "chained_post", "cancel_heavy")
    }
    star_fn = samplers["star_scenario"][0]
    star = [star_fn() for _ in range(repeats)]
    workloads["star_scenario"] = min(star, key=lambda s: s["wall_s"])
    return workloads


def _samplers(smoke: bool) -> dict:
    """name -> (callable, throughput key) at the given scale."""
    chained_n = 30_000 if smoke else 200_000
    cancel_n = 8_000 if smoke else 50_000
    star_flows = 32 if smoke else 128
    star_ms = 5 if smoke else 40
    return {
        "chained": (
            lambda: bench_chained(chained_n, use_post=False), "events_per_s"
        ),
        "chained_post": (
            lambda: bench_chained(chained_n, use_post=True), "events_per_s"
        ),
        "cancel_heavy": (
            lambda: bench_cancel_heavy(cancel_n), "scheduled_per_s"
        ),
        "star_scenario": (
            lambda: bench_star_scenario(star_flows, star_ms), "events_per_s"
        ),
    }


def check(
    workloads: dict, baseline_path: Path, tolerance: float, smoke: bool
) -> int:
    """Exit status 1 when any gated throughput regressed past *tolerance*.

    Smoke runs compare against the baseline's ``smoke_reference`` section
    (same workload sizes); per-event cost is scale-dependent, so comparing
    a smoke run against full-scale numbers would always "regress".

    Shared-runner noise protection: a workload that looks regressed is
    re-measured a few more times and judged on the best sample seen -- a
    real regression cannot luck its way back above the bar, a descheduled
    burst usually can.
    """
    baseline = json.loads(baseline_path.read_text())
    if smoke:
        reference = baseline.get("smoke_reference", {})
    else:
        reference = baseline.get("after", {})
    samplers = _samplers(smoke)
    failures = []
    for name, key in GATED:
        ref = reference.get(name, {}).get(key)
        if ref is None:
            continue
        got = workloads[name][key]
        retries = 0
        while got / ref < 1.0 - tolerance and retries < 4:
            got = max(got, samplers[name][0]()[key])
            retries += 1
        ratio = got / ref
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(f"# check {name}.{key}: {got:,.0f} vs baseline {ref:,.0f} "
              f"({(ratio - 1) * 100:+.1f}%, {retries} remeasure(s)) {status}",
              file=sys.stderr)
        if ratio < 1.0 - tolerance:
            failures.append(name)
    if failures:
        print(f"# throughput regression >{tolerance:.0%} in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small parameters for CI (seconds, not minutes)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="samples per workload (default: 3)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the before/after JSON here")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_kernel.json "
                             "and fail on throughput regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression for --check "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else 3
    print(f"# kernel benchmarks ({'smoke' if args.smoke else 'full'}, "
          f"{repeats} repeat(s))", file=sys.stderr)
    workloads = measure(args.smoke, repeats)

    print(f" chained (schedule): {workloads['chained']['events_per_s']:>12,.0f} events/s")
    print(f" chained (post):     {workloads['chained_post']['events_per_s']:>12,.0f} events/s")
    print(f" cancel-heavy:       {workloads['cancel_heavy']['scheduled_per_s']:>12,.0f} scheduled/s")
    star = workloads["star_scenario"]
    print(f" star scenario:      {star['wall_s'] * 1000:>12,.1f} ms wall "
          f"({star['events_per_s']:,.0f} events/s)")

    payload = {
        "benchmark": "bench_kernel",
        "params": {"smoke": args.smoke, "repeats": repeats},
        "before": BEFORE,
        "after": workloads,
    }
    if not args.smoke:
        # Smoke-scale reference numbers for the CI regression gate: the
        # same sizes `--smoke --check` measures, captured on this machine.
        payload["smoke_reference"] = measure(smoke=True, repeats=repeats)
        payload["speedup"] = {
            "chained_events_per_s":
                workloads["chained"]["events_per_s"]
                / BEFORE["chained"]["events_per_s"],
            "chained_post_events_per_s":
                workloads["chained_post"]["events_per_s"]
                / BEFORE["chained"]["events_per_s"],
            "cancel_heavy_scheduled_per_s":
                workloads["cancel_heavy"]["scheduled_per_s"]
                / BEFORE["cancel_heavy"]["scheduled_per_s"],
            "star_wall_clock":
                BEFORE["star_scenario"]["wall_s"]
                / workloads["star_scenario"]["wall_s"],
        }
        for name, ratio in payload["speedup"].items():
            print(f" speedup {name}: {ratio:.2f}x")
    if args.output:
        args.output.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"# wrote {args.output}", file=sys.stderr)
    if args.check:
        return check(workloads, args.check, args.tolerance, args.smoke)
    return 0


# ------------------------------------------------------ pytest-benchmark


def test_kernel_event_throughput(benchmark):
    """Schedule-and-run 10k chained events."""

    def run():
        return bench_chained(10_000, use_post=False)["events"]

    assert benchmark(run) == 10_000


def test_kernel_post_throughput(benchmark):
    """Post-and-run 10k chained events (the no-handle fast path)."""

    def run():
        return bench_chained(10_000, use_post=True)["events"]

    assert benchmark(run) == 10_000


def test_kernel_cancellation_storm(benchmark):
    """Lazy deletion + compaction under a 3:4 cancel ratio."""

    def run():
        return bench_cancel_heavy(5_000)["scheduled"]

    assert benchmark(run) == 20_000


def test_bram_allocation_throughput(benchmark):
    """Full aspect-ratio search across a realistic shape population."""
    shapes = [(w, d) for w in (17, 32, 68, 72, 117) for d in
              (2, 12, 16, 512, 1024, 16384)]

    def run():
        return sum(bram.allocate(w, d).bits for w, d in shapes)

    assert benchmark(run) > 0


def test_itp_planner_throughput(benchmark):
    """Planning the paper's full 1024-flow set."""
    flows = list(
        production_cell_flows(["t0", "t1", "t2"], "l", flow_count=1024)
    )
    schedule = CqfSchedule(62_500, ms(10))

    def run():
        return ItpPlanner(schedule).plan(flows).max_frames_per_slot

    assert benchmark(run) == 7


if __name__ == "__main__":
    sys.exit(main())
