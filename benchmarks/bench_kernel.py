"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact -- these keep the event kernel, BRAM allocator and ITP
planner honest performance-wise, since every experiment above is built on
them.  These use normal multi-round pytest-benchmark timing.
"""

from repro.core import bram
from repro.core.units import ms
from repro.cqf.itp import ItpPlanner
from repro.cqf.schedule import CqfSchedule
from repro.sim.kernel import Simulator
from repro.traffic.iec60802 import production_cell_flows

from conftest import SLOT_NS


def test_kernel_event_throughput(benchmark):
    """Schedule-and-run 10k chained events."""

    def run():
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(10, tick)

        sim.schedule(10, tick)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 10_000


def test_bram_allocation_throughput(benchmark):
    """Full aspect-ratio search across a realistic shape population."""
    shapes = [(w, d) for w in (17, 32, 68, 72, 117) for d in
              (2, 12, 16, 512, 1024, 16384)]

    def run():
        return sum(bram.allocate(w, d).bits for w, d in shapes)

    assert benchmark(run) > 0


def test_itp_planner_throughput(benchmark):
    """Planning the paper's full 1024-flow set."""
    flows = list(
        production_cell_flows(["t0", "t1", "t2"], "l", flow_count=1024)
    )
    schedule = CqfSchedule(SLOT_NS, ms(10))

    def run():
        return ItpPlanner(schedule).plan(flows).max_frames_per_slot

    assert benchmark(run) == 7
