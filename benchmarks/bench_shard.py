#!/usr/bin/env python3
"""Scaling curve of the sharded single-run simulation mode.

Measures one deep ring fabric (every frame traverses every switch) at
1, 2 and 4 shards and writes ``BENCH_shard.json``.  Two rates per point:

* ``frames_per_s``          -- delivered frames over wall clock, process
  spawn and testbed build included.
* ``frames_per_s_critical`` -- delivered frames over the critical path
  (slowest shard's busy time plus un-overlapped coordination).  On a
  machine with fewer cores than shards the wall clock serializes shard
  compute, so only this rate shows the parallelism the link-cut
  partition exposes; the payload records ``cores`` so readers can tell
  which regime produced the numbers.

The measurement core lives in :mod:`repro.bench.shard` (so ``repro bench
check --suite shard`` can gate it without shelling out); this script is
the human-facing CLI.

Usage::

    python benchmarks/bench_shard.py                      # full measurement
    python benchmarks/bench_shard.py --smoke              # CI: small + fast
    python benchmarks/bench_shard.py --output BENCH_shard.json
    python benchmarks/bench_shard.py --smoke --check BENCH_shard.json

``--check`` compares the measured critical-path throughputs against the
committed baseline and exits 1 on a >25% regression (tunable with
``--tolerance``); full-scale checks additionally enforce the >=2x
4-shard critical-path speedup acceptance bar.  CI runs the same gate as
``repro bench check --suite shard --smoke``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.shard import (                            # noqa: E402
    SHARD_CURVE,
    curve_speedup,
    measure,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fabric for CI (seconds, not minutes)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="samples per curve point (default: 3)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the scaling-curve JSON here")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_shard.json "
                             "and fail on critical-path regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression for --check "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else 3
    cores = os.cpu_count() or 1
    print(f"# shard benchmarks ({'smoke' if args.smoke else 'full'}, "
          f"{repeats} repeat(s), {cores} core(s))", file=sys.stderr)
    curve = measure(args.smoke, repeats)

    for count in SHARD_CURVE:
        point = curve[f"shards_{count}"]
        print(f" {count} shard(s): {point['wall_s'] * 1000:>10,.1f} ms wall / "
              f"{point['critical_path_s'] * 1000:>10,.1f} ms critical "
              f"({point['frames_per_s']:,.0f} / "
              f"{point['frames_per_s_critical']:,.0f} frames/s, "
              f"{point['epochs']} epoch(s))")

    speedup = curve_speedup(curve)
    payload = {
        "benchmark": "bench_shard",
        "params": {
            "smoke": args.smoke,
            "repeats": repeats,
            "cores": cores,
            "switches": curve["shards_1"]["switches"],
        },
        "after": curve,
        "speedup": speedup,
    }
    if not args.smoke:
        # Smoke-scale reference numbers for the CI regression gate: the
        # same sizes `--smoke --check` measures, captured on this machine.
        payload["smoke_reference"] = measure(smoke=True, repeats=repeats)
    for name, ratio in speedup.items():
        print(f" speedup {name}: {ratio:.2f}x")
    if args.output:
        args.output.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"# wrote {args.output}", file=sys.stderr)
    if args.check:
        from repro.bench.check import check_shard

        return check_shard(args.check, smoke=args.smoke,
                           tolerance=args.tolerance, repeats=repeats)
    return 0


if __name__ == "__main__":
    sys.exit(main())
