"""The reusability claim, quantified.

Paper Section III.C: "When the application scenario changes, users only
need to regulate the related parameters and reuse these templates without
reprogramming in many cases.  Thus, the development effort is greatly
reduced."  This bench measures that for every pair of evaluated scenarios:
which parameters moved, how many generated RTL lines survived verbatim,
and whether any template *body* needed edits beyond its parameter section
(it never does).
"""

import pytest

from repro.analysis.report import render_table
from repro.core.builder import TSNBuilder
from repro.core.presets import (
    bcm53154_config,
    linear_config,
    ring_config,
    star_config,
)
from repro.core.reuse import reuse_report

SCENARIOS = {
    "commercial": bcm53154_config,
    "star": star_config,
    "linear": linear_config,
    "ring": ring_config,
}


def _model(config):
    builder = TSNBuilder()
    builder.customize(config)
    return builder.synthesize()


def test_reuse_across_scenarios(benchmark):
    def build_reports():
        models = {name: _model(factory()) for name, factory in
                  SCENARIOS.items()}
        pairs = [
            ("star", "linear"),
            ("star", "ring"),
            ("linear", "ring"),
            ("commercial", "ring"),
        ]
        return {
            (a, b): reuse_report(models[a], models[b]) for a, b in pairs
        }

    reports = benchmark.pedantic(build_reports, rounds=1, iterations=1)
    rows = []
    for (a, b), report in reports.items():
        rows.append(
            [
                f"{a} -> {b}",
                str(len(report.changed_parameters)),
                f"{report.reuse_ratio:.1%}",
                f"{report.template_reuse_ratio:.1%}",
                "yes" if report.reprogrammed_nothing else "NO",
            ]
        )
    print("\n" + render_table(
        ["scenario change", "params moved", "all-RTL reuse",
         "template reuse", "zero reprogramming"],
        rows,
        title="Customization effort across the paper's scenarios",
    ))
    for (a, b), report in reports.items():
        # topology-only changes move exactly one parameter (port_num)
        if {a, b} <= {"star", "linear", "ring"}:
            assert set(report.changed_parameters) == {"port_num"}, (a, b)
            assert report.template_reuse_ratio > 0.99
        assert report.reprogrammed_nothing, (a, b)
        assert report.reuse_ratio > 0.80
    benchmark.extra_info["reuse_ratios"] = {
        f"{a}->{b}": round(report.reuse_ratio, 3)
        for (a, b), report in reports.items()
    }
