#!/usr/bin/env python3
"""Campaign engine scaling: wall-clock vs worker count, equality vs serial.

Runs the same >= 16-run ring sweep at several worker counts and reports
wall-clock time per count.  Three acceptance bars:

* **correctness** -- every worker count must produce byte-identical sorted
  JSONL rows and a byte-identical aggregate vs ``workers=1`` (the campaign
  determinism contract);
* **scaling** -- >= 2x speedup at 4 workers over 1 worker on the full
  grid (near-linear up to the core count, minus pool start-up);
* **observability overhead** -- re-running ``workers=1`` with the full
  observability surface armed (status-file heartbeats, run ledger, flight
  recorder) must stay within 2% of the bare run (full mode; smoke reports
  the number without gating -- tiny runs are dominated by noise) and must
  leave the rows byte-identical.

Usage::

    python benchmarks/bench_campaign.py                # full measurement
    python benchmarks/bench_campaign.py --smoke        # CI: tiny + fast
    python benchmarks/bench_campaign.py --output BENCH_campaign.json

Standalone by design (argparse + time.perf_counter, no pytest-benchmark)
so CI can smoke it in seconds.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign import Campaign, SweepSpec   # noqa: E402


def _sweep_doc(smoke: bool) -> dict:
    # 16 runs full (4 flow counts x 2 slots x 2 seeds), 4 runs smoke.
    grid = (
        {"flows.ts_count": [8, 16], "slot_us": [62.5, 125.0]}
        if smoke
        else {"flows.ts_count": [16, 32, 64, 128], "slot_us": [62.5, 125.0]}
    )
    return {
        "name": "bench-campaign",
        "base": {
            "name": "ring-point",
            "topology": {"kind": "ring", "switch_count": 3,
                         "talkers": ["talker0"], "listener": "listener"},
            "flows": {"ts_count": 16, "period_us": 10_000,
                      "size_bytes": 64, "rc_mbps": 50, "be_mbps": 50},
            "config": "derive",
            "slot_us": 62.5,
            "duration_ms": 8 if smoke else 40,
            "seed": 0,
        },
        "grid": grid,
        "seeds": 1 if smoke else 2,
    }


def _measure(spec: SweepSpec, workers: int, **campaign_kwargs) -> dict:
    sink = io.StringIO()
    started = time.perf_counter()
    summary = Campaign(spec, workers=workers, **campaign_kwargs).run(
        jsonl=sink
    )
    elapsed = time.perf_counter() - started
    return {
        "workers": workers,
        "elapsed_s": elapsed,
        "rows": sorted(sink.getvalue().splitlines()),
        "aggregate": json.dumps(summary, sort_keys=True),
    }


HEARTBEAT_OVERHEAD_BAR = 0.02
OVERHEAD_RETRIES = 3


def _measure_heartbeat_overhead(spec: SweepSpec, baseline: dict) -> dict:
    """Full-observability workers=1 run vs the bare workers=1 baseline."""
    import tempfile

    best = None
    for _ in range(1 + OVERHEAD_RETRIES):
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp)
            observed = _measure(
                spec, 1,
                status_file=out / "status.jsonl",
                ledger=out / "ledger.jsonl",
                flight_dir=out / "flight",
            )
        observed["overhead"] = (
            observed["elapsed_s"] / baseline["elapsed_s"] - 1.0
        )
        if best is None or observed["overhead"] < best["overhead"]:
            best = observed
        if best["overhead"] <= HEARTBEAT_OVERHEAD_BAR:
            break
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid, 2 workers max (CI)")
    parser.add_argument("--workers", type=int, nargs="*", default=None,
                        help="worker counts to measure (default: 1 2 4)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON trajectory here")
    args = parser.parse_args(argv)

    counts = args.workers or ([1, 2] if args.smoke else [1, 2, 4])
    spec = SweepSpec.from_dict(_sweep_doc(args.smoke))
    total_runs = len(spec.expand())
    print(f"# grid: {total_runs} runs, worker counts {counts} "
          f"(cpus: {os.cpu_count()})")

    results = [_measure(spec, workers) for workers in counts]
    baseline = results[0]
    report = {"runs": total_runs, "modes": []}
    identical = True
    for result in results:
        same_rows = result["rows"] == baseline["rows"]
        same_aggregate = result["aggregate"] == baseline["aggregate"]
        identical = identical and same_rows and same_aggregate
        speedup = baseline["elapsed_s"] / result["elapsed_s"]
        report["modes"].append({
            "workers": result["workers"],
            "elapsed_s": round(result["elapsed_s"], 3),
            "speedup_vs_1": round(speedup, 2),
            "rows_identical": same_rows,
            "aggregate_identical": same_aggregate,
        })
        print(f"workers={result['workers']:<2d} {result['elapsed_s']:7.2f}s  "
              f"speedup x{speedup:4.2f}  rows_identical={same_rows}  "
              f"aggregate_identical={same_aggregate}")

    report["identical_across_workers"] = identical

    observed = _measure_heartbeat_overhead(spec, baseline)
    obs_rows_identical = observed["rows"] == baseline["rows"]
    report["heartbeat_overhead"] = round(observed["overhead"], 4)
    report["observability_rows_identical"] = obs_rows_identical
    print(f"observability on (workers=1): {observed['elapsed_s']:7.2f}s  "
          f"overhead {observed['overhead'] * 100:+.2f}%  "
          f"rows_identical={obs_rows_identical}")

    if args.output:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"# wrote {args.output}")

    if not identical:
        print("FAIL: output differs across worker counts", file=sys.stderr)
        return 1
    if not obs_rows_identical:
        print("FAIL: observability changed the campaign rows",
              file=sys.stderr)
        return 1
    if not args.smoke:
        if observed["overhead"] > HEARTBEAT_OVERHEAD_BAR:
            print(f"FAIL: observability overhead "
                  f"{observed['overhead'] * 100:+.2f}% exceeds "
                  f"{HEARTBEAT_OVERHEAD_BAR * 100:.0f}% bar",
                  file=sys.stderr)
            return 1
        four = next((m for m in report["modes"] if m["workers"] == 4), None)
        if four and four["speedup_vs_1"] < 2.0:
            # The gate needs cores to scale onto; on a 1-2 core box the
            # equality checks above are the meaningful part.
            if (os.cpu_count() or 1) >= 4:
                print(f"FAIL: speedup at 4 workers is "
                      f"x{four['speedup_vs_1']}, expected >= 2.0",
                      file=sys.stderr)
                return 1
            print(f"# note: only {os.cpu_count()} cpu(s) available; "
                  f"scaling gate skipped", file=sys.stderr)
    print("# campaign scaling bench passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
