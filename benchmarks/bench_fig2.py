"""Paper Fig. 2: TS latency under varying background bandwidth.

Panel (a) sweeps Best-Effort background load, panel (b) Rate-Constrained
load, each for both Table I resource configurations.  The published shape:
TS latency and jitter are flat across the whole sweep and identical between
the two configurations -- the motivation for resource customization.
"""

import pytest

from repro.analysis.report import render_series
from repro.analysis.stats import SweepPoint, SweepSeries
from repro.core.presets import customized_config
from repro.core.units import mbps
from repro.network.topology import linear_topology
from repro.traffic.flows import TrafficClass

from conftest import run_scenario

#: Background loads (total across talkers), the figure's x-axis.
LOADS_MBPS = (0, 100, 200, 400, 600)

CASES = {"case1": (16, 128), "case2": (12, 96)}


def _sweep(scale, background: str, case: str) -> SweepSeries:
    queue_depth, buffer_num = CASES[case]
    series = SweepSeries(
        f"Fig 2 ({background} background, {case})", "load(Mbps)"
    )
    for load in LOADS_MBPS:
        topology = linear_topology(switch_count=3, talkers=["talker0"])
        config = customized_config(
            2, name=case, queue_depth=queue_depth, buffer_num=buffer_num
        )
        result = run_scenario(
            topology,
            scale,
            config=config,
            rc_bps=mbps(load) if background == "RC" else 0,
            be_bps=mbps(load) if background == "BE" else 0,
        )
        assert result.ts_loss == 0.0
        series.add(
            SweepPoint(
                x=load,
                label=str(load),
                summary=result.ts_summary,
                loss=result.ts_loss,
            )
        )
    return series


@pytest.mark.parametrize("background", ["BE", "RC"])
@pytest.mark.parametrize("case", ["case1", "case2"])
def test_fig2(benchmark, scale, background, case):
    series = benchmark.pedantic(
        _sweep, args=(scale, background, case), rounds=1, iterations=1
    )
    print("\n" + render_series(series))
    # The claim: latency/jitter of TS flows unaffected by background load.
    assert series.is_flat(key="mean", tolerance=0.03)
    assert all(j < 10_000 for j in series.jitters_ns)
    assert all(loss == 0.0 for loss in series.losses)
    benchmark.extra_info["means_us"] = [m / 1000 for m in series.means_ns]
    benchmark.extra_info["jitters_us"] = [j / 1000 for j in series.jitters_ns]


def test_fig2_cases_equivalent(benchmark, scale):
    """Case 1 and Case 2 overlap -- the 540 Kb of extra BRAM buys nothing."""
    def sweep_both():
        return {case: _sweep(scale, "BE", case).means_ns for case in CASES}

    means = benchmark.pedantic(sweep_both, rounds=1, iterations=1)
    for a, b in zip(means["case1"], means["case2"]):
        assert a == pytest.approx(b, rel=0.01)
