"""Shared machinery for the experiment benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
pytest-benchmark fixture wraps the simulation run (one round -- these are
experiments, not microbenchmarks), the regenerated rows/series are printed
(run with ``-s`` to see them) and attached to ``benchmark.extra_info`` so
``--benchmark-json`` output carries the scientific payload too.

Scale: by default the workloads are scaled down (``quick``) so the whole
harness finishes in about a minute.  Set ``REPRO_BENCH_SCALE=full`` to run
the paper's full 1024-flow, 100 ms-window experiments (roughly 15-30x
slower); EXPERIMENTS.md records a full-scale run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.core.presets import customized_config
from repro.core.units import ms
from repro.network.testbed import Testbed
from repro.traffic.iec60802 import background_flows, production_cell_flows

SLOT_NS = 62_500  # paper: 65 us; snapped to divide the 10 ms period exactly


@dataclass(frozen=True)
class BenchScale:
    """Workload knobs for one harness run."""

    name: str
    ts_flows: int
    duration_ns: int

    @property
    def label(self) -> str:
        return (
            f"{self.name}: {self.ts_flows} TS flows, "
            f"{self.duration_ns // ms(1)} ms window"
        )


QUICK = BenchScale("quick", ts_flows=128, duration_ns=ms(40))
FULL = BenchScale("full", ts_flows=1024, duration_ns=ms(100))


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return FULL if os.environ.get("REPRO_BENCH_SCALE") == "full" else QUICK


def run_scenario(
    topology,
    scale: BenchScale,
    config=None,
    rc_bps: int = 0,
    be_bps: int = 0,
    size_bytes: int = 64,
    slot_ns: int = SLOT_NS,
    ts_flows: int | None = None,
    seed: int = 0,
    **testbed_kwargs,
):
    """Build and run one paper-style scenario; returns the ScenarioResult."""
    talkers = [u.host for u in topology.uplinks]
    flow_count = ts_flows if ts_flows is not None else scale.ts_flows
    flows = production_cell_flows(
        talkers, "listener", flow_count=flow_count, size_bytes=size_bytes
    )
    if rc_bps or be_bps:
        for flow in background_flows(talkers, "listener", rc_bps, be_bps):
            flows.add(flow)
    config = config or customized_config(topology.max_enabled_ports)
    testbed = Testbed(
        topology, config, flows, slot_ns=slot_ns, seed=seed, **testbed_kwargs
    )
    return testbed.run(duration_ns=scale.duration_ns)
