"""Ablation/extension: the Section V parameter-selection optimization.

The paper's guidelines (Section III.C) give one feasible configuration;
Section V points out that choosing the parameters is really an optimization
problem.  This bench quantifies how much the implemented optimizer recovers
on top of the guideline configuration for the evaluation workload, verifies
the optimized point on the wire (zero loss, Eq. 1 at the smaller slot), and
prints the Pareto frontier for a heavy-frame workload where slot size and
BRAM genuinely trade off.
"""

import pytest

from repro.analysis.report import render_table
from repro.core.optimizer import optimize
from repro.core.presets import customized_config, ring_config
from repro.core.units import ms
from repro.cqf.bounds import cqf_bounds
from repro.network.topology import ring_topology
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass
from repro.traffic.iec60802 import production_cell_flows

from conftest import run_scenario

TALKERS = ["t0", "t1", "t2"]


def test_optimizer_vs_guidelines(benchmark, scale):
    flows = production_cell_flows(TALKERS, "listener", flow_count=1024)
    topology = ring_topology(6, talkers=TALKERS)

    def run_search():
        return (
            optimize(topology, flows),
            optimize(topology, flows, aggregate_switch_entries=True),
        )

    plain, aggregated = benchmark.pedantic(run_search, rounds=1, iterations=1)
    guideline_kb = ring_config().total_bram_kb
    rows = [
        ["guideline (62.5us)", "12", f"{guideline_kb:g}", "437.5"],
        [
            f"optimized ({plain.best.slot_ns / 1000:g}us)",
            str(plain.best.config.queue_depth),
            f"{plain.best.total_bram_kb:g}",
            f"{plain.best.worst_latency_ns / 1000:g}",
        ],
        [
            "+ table aggregation",
            str(aggregated.best.config.queue_depth),
            f"{aggregated.best.total_bram_kb:g}",
            f"{aggregated.best.worst_latency_ns / 1000:g}",
        ],
    ]
    print("\n" + render_table(
        ["configuration", "depth", "BRAM(Kb)", "Lmax(us)"], rows,
        title="Guideline vs optimized (ring, 1024 flows)",
    ))
    assert plain.best.total_bram_kb < guideline_kb
    assert aggregated.best.total_bram_kb < plain.best.total_bram_kb
    # everything still deadline-feasible (tightest IEC deadline is 1 ms)
    assert plain.best.worst_latency_ns <= ms(1)
    benchmark.extra_info["guideline_kb"] = guideline_kb
    benchmark.extra_info["optimized_kb"] = plain.best.total_bram_kb
    benchmark.extra_info["aggregated_kb"] = aggregated.best.total_bram_kb


def test_optimized_config_validated_on_wire(benchmark, scale):
    """The cheaper configuration must deliver the same QoS."""
    flows = production_cell_flows(TALKERS, "listener", flow_count=1024)
    search = optimize(ring_topology(6, talkers=TALKERS), flows)
    best = search.best
    hops = 3
    topology = ring_topology(hops, talkers=["talker0"])

    result = benchmark.pedantic(
        run_scenario,
        args=(topology, scale),
        kwargs=dict(config=best.config, slot_ns=best.slot_ns),
        rounds=1,
        iterations=1,
    )
    bounds = cqf_bounds(hops, best.slot_ns)
    latencies = result.analyzer.class_latencies(TrafficClass.TS)
    print(
        f"\noptimized slot {best.slot_ns / 1000:g}us: mean "
        f"{result.ts_summary.mean_ns / 1000:.2f}us loss {result.ts_loss} "
        f"queue hw {result.max_queue_high_water()}/{best.config.queue_depth}"
    )
    assert result.ts_loss == 0.0
    assert latencies and all(bounds.contains(x) for x in latencies)
    assert result.max_queue_high_water() <= best.config.queue_depth
    benchmark.extra_info["mean_us"] = result.ts_summary.mean_ns / 1000


def test_optimizer_pareto_heavy_frames(benchmark):
    flows = FlowSet()
    for i in range(256):
        flows.add(FlowSpec(i, TrafficClass.TS, TALKERS[i % 3], "listener",
                           1500, period_ns=ms(10), deadline_ns=ms(4)))
    topology = ring_topology(6, talkers=TALKERS)

    result = benchmark.pedantic(
        optimize, args=(topology, flows), rounds=1, iterations=1
    )
    rows = [
        [
            f"{p.slot_ns / 1000:g}",
            str(p.config.queue_depth),
            f"{p.total_bram_kb:g}",
            f"{p.worst_latency_ns / 1000:g}",
        ]
        for p in result.pareto
    ]
    print("\n" + render_table(
        ["slot(us)", "depth", "BRAM(Kb)", "Lmax(us)"], rows,
        title=f"Pareto frontier, 256 x 1500B "
              f"(rejected slots: {[s // 1000 for s in result.rejected_slots]} us)",
    ))
    assert result.rejected_slots  # small slots are ITP-infeasible here
    assert all(7 * p.slot_ns <= ms(4) for p in result.pareto)
