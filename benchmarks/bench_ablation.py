"""Ablations of the design choices DESIGN.md calls out.

1. **ITP on/off** -- Section V says queue/buffer sizing hinges on the flow
   scheduling algorithm; unplanned injection collapses every same-period
   flow into slot 0 and overruns the customized queues.
2. **BRAM aspect-ratio search vs naive packing** -- the cost-model choice
   that makes the 117 b classification table cost 126 Kb instead of 144 Kb.
3. **Queue-depth undersizing** -- depth below the ITP per-slot bound drops
   TS packets (the "traffic-dependent threshold" of Section II.A).
4. **Time sync on/off** -- CQF without gPTP: gates drift apart and the
   deterministic latency smears.
"""

import pytest

from repro.core import bram
from repro.core.presets import customized_config
from repro.core.units import ms
from repro.cqf.schedule import CqfSchedule
from repro.network.topology import ring_topology
from repro.sched import SchedulingProblem, make_scheduler
from repro.traffic.iec60802 import production_cell_flows

from conftest import SLOT_NS, run_scenario


def test_ablation_itp_queue_requirement(benchmark, scale):
    """ITP vs unplanned: required queue depth collapses by >10x."""
    flows = production_cell_flows(
        ["t0", "t1", "t2"], "l", flow_count=scale.ts_flows
    )
    schedule = CqfSchedule.for_flows(flows.ts_periods(), SLOT_NS)

    def plan_both():
        problem = SchedulingProblem.from_flows(
            list(flows), schedule, 10**9
        )
        planned = make_scheduler("greedy").solve(problem)
        naive = make_scheduler("unplanned").solve(problem)
        return planned, naive

    planned, naive = benchmark.pedantic(plan_both, rounds=1, iterations=1)
    print(
        f"\nITP: depth {planned.required_queue_depth} "
        f"(balance {planned.load_balance_ratio():.2f}) vs unplanned: "
        f"depth {naive.required_queue_depth}"
    )
    assert naive.required_queue_depth == scale.ts_flows
    assert planned.required_queue_depth <= -(-scale.ts_flows // 160)
    assert naive.required_queue_depth >= 10 * planned.required_queue_depth
    benchmark.extra_info["itp_depth"] = planned.required_queue_depth
    benchmark.extra_info["unplanned_depth"] = naive.required_queue_depth


def test_ablation_itp_loss(benchmark, scale):
    """On the wire: unplanned injection drops TS packets, ITP does not."""
    topology = ring_topology(switch_count=3, talkers=["talker0"])

    def run_both():
        with_itp = run_scenario(topology, scale, use_itp=True)
        topology2 = ring_topology(switch_count=3, talkers=["talker0"])
        without = run_scenario(topology2, scale, use_itp=False)
        return with_itp, without

    with_itp, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nITP loss={with_itp.ts_loss:.4f} vs "
        f"unplanned loss={without.ts_loss:.4f}"
    )
    assert with_itp.ts_loss == 0.0
    assert without.ts_loss > 0.05
    benchmark.extra_info["unplanned_loss"] = round(without.ts_loss, 4)


def test_ablation_bram_packing(benchmark):
    """Optimal aspect-ratio search vs widest-primitive packing."""
    shapes = {
        "Switch Tbl 72x16K": (72, 16 * 1024),
        "Class. Tbl 117x1K": (117, 1024),
        "Meter Tbl 68x512": (68, 512),
        "Queue 32x12": (32, 12),
    }

    def compare():
        return {
            name: (
                bram.allocate(w, d).kb,
                bram.naive_allocate(w, d).kb,
            )
            for name, (w, d) in shapes.items()
        }

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    total_optimal = total_naive = 0.0
    for name, (optimal, naive) in results.items():
        total_optimal += optimal
        total_naive += naive
        print(f"{name}: optimal {optimal:g}Kb vs naive {naive:g}Kb")
    assert results["Class. Tbl 117x1K"] == (126, 144)
    assert total_optimal < total_naive
    benchmark.extra_info["optimal_kb"] = total_optimal
    benchmark.extra_info["naive_kb"] = total_naive


@pytest.mark.parametrize("depth,expect_loss", [(1, True), (12, False)])
def test_ablation_queue_depth_threshold(benchmark, scale, depth, expect_loss):
    """Depth below the per-slot arrival bound drops TS frames."""
    topology = ring_topology(switch_count=3, talkers=["talker0"])
    config = customized_config(
        1, name=f"depth{depth}", queue_depth=depth,
        buffer_num=max(96, depth * 8),
    )
    # at least 2 frames/slot after ITP so a depth-1 queue must overflow
    flow_count = max(320, scale.ts_flows)
    result = benchmark.pedantic(
        run_scenario,
        args=(topology, scale),
        kwargs=dict(config=config, ts_flows=flow_count),
        rounds=1,
        iterations=1,
    )
    print(f"\ndepth={depth}: loss={result.ts_loss:.4f}")
    if expect_loss:
        assert result.ts_loss > 0.0
        drops = sum(
            c["dropped_tail"] for c in result.counters().values()
        )
        assert drops > 0
    else:
        assert result.ts_loss == 0.0
    benchmark.extra_info["loss"] = round(result.ts_loss, 4)


def test_ablation_time_sync(benchmark, scale):
    """Unsynchronized drifting clocks smear CQF's deterministic latency."""
    def run_both():
        synced = run_scenario(
            ring_topology(switch_count=3, talkers=["talker0"]), scale,
            clock_drift_ppm=20, clock_offset_spread_ns=100_000,
            enable_gptp=True,
        )
        unsynced = run_scenario(
            ring_topology(switch_count=3, talkers=["talker0"]), scale,
            clock_drift_ppm=200, clock_offset_spread_ns=40_000,
            enable_gptp=False,
        )
        return synced, unsynced

    synced, unsynced = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\ngPTP jitter={synced.ts_summary.jitter_ns / 1000:.2f}us vs "
        f"unsynced jitter={unsynced.ts_summary.jitter_ns / 1000:.2f}us"
    )
    assert synced.ts_loss == 0.0
    assert synced.ts_summary.jitter_ns < 5_000
    assert unsynced.ts_summary.jitter_ns > 10_000
    benchmark.extra_info["synced_jitter_us"] = (
        synced.ts_summary.jitter_ns / 1000
    )
    benchmark.extra_info["unsynced_jitter_us"] = (
        unsynced.ts_summary.jitter_ns / 1000
    )


def test_ablation_buffer_sharing(benchmark):
    """Per-port pools (the paper) vs one shared pool (SMS, [16] in the
    paper's related work): same total buffer BRAM, different burst
    absorption when traffic is asymmetric across ports."""
    from repro.sim.kernel import Simulator
    from repro.switch.device import TsnSwitch
    from repro.switch.packet import EthernetFrame, make_mac
    from repro.switch.tables import GateEntry

    def burst(shared):
        sim = Simulator()
        config = customized_config(
            3, queue_depth=8, buffer_num=8
        ).with_updates(name="sms" if shared else "per-port")
        switch = TsnSwitch(sim, config, shared_buffers=shared)
        closed = [GateEntry(0x00, 10_000_000)]
        opened = [GateEntry(0xFF, 10_000_000)]
        switch.program_gcls(0, opened, closed)  # hold buffers on port 0
        for port in switch.ports:
            port.attach(lambda f: None)
        # two queues on port 0 absorb a 16-frame burst
        switch.program_flow(make_mac(1), make_mac(2), 5, 7, 0, 7)
        switch.program_flow(make_mac(1), make_mac(2), 6, 5, 0, 5)
        switch.start()
        for _ in range(8):
            switch.receive(EthernetFrame(make_mac(1), make_mac(2), 5, 7, 64))
            switch.receive(EthernetFrame(make_mac(1), make_mac(2), 6, 5, 64))
        sim.run(until=1_000_000)
        return switch.counters.dropped_no_buffer

    def run_both():
        return burst(shared=False), burst(shared=True)

    per_port_drops, shared_drops = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print(f"\nper-port pools: {per_port_drops} buffer drops; "
          f"shared pool: {shared_drops} (same 24-slot total)")
    assert per_port_drops > 0
    assert shared_drops == 0
    benchmark.extra_info["per_port_drops"] = per_port_drops
