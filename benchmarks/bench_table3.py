"""Paper Table III: resource usage, commercial vs customized switches.

Regenerates every row and column of the table from the BRAM cost model and
asserts the published totals and reduction percentages bit-exactly.  Also
re-derives the customized parameters from the application features through
the sizing guidelines, demonstrating the full Top-down pipeline.
"""

import pytest

from repro.analysis.report import render_table3
from repro.core.presets import (
    bcm53154_config,
    linear_config,
    ring_config,
    star_config,
)
from repro.core.sizing import derive_config
from repro.network.topology import linear_topology, ring_topology, star_topology
from repro.traffic.iec60802 import production_cell_flows

from conftest import SLOT_NS

EXPECTED = {
    "Commercial (4 ports)": 10818,
    "Customized (Star, 3 ports)": 5778,
    "Customized (Linear, 2 ports)": 3942,
    "Customized (Ring, 1 port)": 2106,
}
EXPECTED_REDUCTIONS = {"star": 0.4659, "linear": 0.6356, "ring": 0.8053}


def _build_reports():
    baseline = bcm53154_config().resource_report("Commercial (4 ports)")
    customized = [
        star_config().resource_report("Customized (Star, 3 ports)"),
        linear_config().resource_report("Customized (Linear, 2 ports)"),
        ring_config().resource_report("Customized (Ring, 1 port)"),
    ]
    return baseline, customized


def test_table3(benchmark):
    baseline, customized = benchmark.pedantic(
        _build_reports, rounds=1, iterations=1
    )
    text = render_table3(baseline, customized)
    print("\n" + text)

    assert baseline.total_kb == EXPECTED["Commercial (4 ports)"]
    for report in customized:
        assert report.total_kb == EXPECTED[report.title]
    for report, key in zip(customized, ("star", "linear", "ring")):
        assert report.reduction_vs(baseline) == pytest.approx(
            EXPECTED_REDUCTIONS[key], abs=5e-5
        )
    benchmark.extra_info["totals_kb"] = {
        report.title: report.total_kb for report in [baseline] + customized
    }
    benchmark.extra_info["reductions"] = {
        report.title: round(report.reduction_vs(baseline), 4)
        for report in customized
    }


def test_table3_from_sizing_guidelines(benchmark):
    """The same columns derived Top-down from topology + flow features."""
    flows = production_cell_flows(["t0", "t1", "t2"], "l", flow_count=1024)

    def derive_all():
        return {
            "star": derive_config(star_topology(), flows, SLOT_NS),
            "linear": derive_config(linear_topology(6), flows, SLOT_NS),
            "ring": derive_config(ring_topology(6), flows, SLOT_NS),
        }

    results = benchmark.pedantic(derive_all, rounds=1, iterations=1)
    assert results["star"].config.total_bram_kb == 5778
    assert results["linear"].config.total_bram_kb == 3942
    assert results["ring"].config.total_bram_kb == 2106
    for name, result in results.items():
        print(
            f"{name}: ITP requires depth {result.required_queue_depth}, "
            f"sized to {result.config.queue_depth} "
            f"({result.config.buffer_num} buffers/port) -> "
            f"{result.config.total_bram_kb:g}Kb"
        )
