#!/usr/bin/env python3
"""Benchmarks of the pluggable scheduling backends (``repro.sched``).

The measurement core lives in :mod:`repro.bench.sched` (so ``repro bench
check --suite sched`` can gate it without shelling out); this script is
the human-facing CLI plus the pytest-benchmark tests.

Workloads (see the module docstring for the instance designs):

* ``exact_capped`` -- branch-and-bound node throughput at a fixed node
  budget (every run explores exactly the same tree prefix).
* ``anneal``       -- simulated-annealing iteration throughput on a
  feasible 64-flow mixed-period instance.
* ``greedy``       -- first-fit placement throughput on 2k uniform flows.
* ``exact_proof``  -- an exhaustive infeasibility proof; its node count
  is deterministic, so drift flags a search-behaviour change.
* ``gap``          -- the shipped greedy-vs-exact queue-depth gap,
  recorded for exact-equality checking.

Usage::

    python benchmarks/bench_sched.py                      # full measurement
    python benchmarks/bench_sched.py --smoke              # CI: small + fast
    python benchmarks/bench_sched.py --output BENCH_sched.json
    python benchmarks/bench_sched.py --smoke --check BENCH_sched.json

``--check`` compares the measured throughputs against the committed
baseline and exits 1 on a >25% regression (tunable with ``--tolerance``)
or on any change in the deterministic gap section; CI runs the same gate
as ``repro bench check --suite sched --smoke``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.sched import (  # noqa: E402
    bench_anneal,
    bench_exact_capped,
    bench_exact_proof,
    bench_greedy,
    gap,
    measure,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small parameters for CI (seconds, not minutes)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="samples per workload (default: 3)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the baseline JSON here")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_sched.json "
                             "and fail on throughput regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression for --check "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else 3
    print(f"# sched benchmarks ({'smoke' if args.smoke else 'full'}, "
          f"{repeats} repeat(s))", file=sys.stderr)
    workloads = measure(args.smoke, repeats)
    gap_section = gap()

    capped = workloads["exact_capped"]
    proof = workloads["exact_proof"]
    anneal = workloads["anneal"]
    greedy = workloads["greedy"]
    print(f" exact (capped):  {capped['nodes_per_s']:>12,.0f} nodes/s "
          f"({capped['nodes']:,} nodes)")
    print(f" exact (proof):   {proof['nodes_per_s']:>12,.0f} nodes/s "
          f"({proof['nodes']:,} nodes, {proof['status']})")
    print(f" anneal:          {anneal['iters_per_s']:>12,.0f} iters/s "
          f"(peak {anneal['peak_frames_per_slot']} frames/slot)")
    print(f" greedy:          {greedy['flows_per_s']:>12,.0f} flows/s "
          f"({greedy['flows']:,} flows)")
    print(f" gap:             greedy depth {gap_section['greedy_depth']} vs "
          f"exact depth {gap_section['exact_depth']} "
          f"({gap_section['exact_status']})")

    payload = {
        "benchmark": "bench_sched",
        "params": {"smoke": args.smoke, "repeats": repeats},
        "workloads": workloads,
        "gap": gap_section,
    }
    if not args.smoke:
        # Smoke-scale reference numbers for the CI regression gate: the
        # same sizes `--smoke --check` measures, captured on this machine.
        payload["smoke_reference"] = measure(smoke=True, repeats=repeats)
    if args.output:
        args.output.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"# wrote {args.output}", file=sys.stderr)
    if args.check:
        from repro.bench.check import check_sched

        return check_sched(args.check, smoke=args.smoke,
                           tolerance=args.tolerance, repeats=repeats)
    return 0


# ------------------------------------------------------ pytest-benchmark


def test_exact_capped_node_throughput(benchmark):
    """Branch and bound at a 5k node budget."""

    def run():
        return bench_exact_capped(5_000)["nodes"]

    assert benchmark(run) == 5_000


def test_exact_infeasibility_proof(benchmark):
    """Exhaustive proof: the node count must be identical every run."""

    def run():
        result = bench_exact_proof()
        assert result["status"] == "infeasible"
        return result["nodes"]

    nodes = benchmark(run)
    assert nodes > 10_000


def test_anneal_iteration_throughput(benchmark):
    """400 seeded annealing iterations on the 64-flow instance."""

    def run():
        return bench_anneal(400)["peak_frames_per_slot"]

    assert benchmark(run) == 20


def test_greedy_placement_throughput(benchmark):
    """First-fit over 500 uniform flows."""

    def run():
        return bench_greedy(500, 1_000_000)["status"]

    assert benchmark(run) == "feasible"


def test_gap_is_deterministic(benchmark):
    """The shipped gap instance: greedy strictly deeper than optimal."""

    def run():
        return gap()

    result = benchmark(run)
    assert result["exact_status"] == "optimal"
    assert result["greedy_depth"] > result["exact_depth"]


if __name__ == "__main__":
    sys.exit(main())
