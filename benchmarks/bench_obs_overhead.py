#!/usr/bin/env python3
"""Observability overhead: the cost of watching the dataplane.

Runs the same ring scenario in three instrumentation modes and reports
wall-clock time per mode:

* ``off``     -- no registry, no spans: the uninstrumented baseline.
* ``metrics`` -- MetricsRegistry attached (PR 1's always-on production
  posture).  The acceptance bar: within 5% of ``off``.
* ``full``    -- registry + flow-span recording + a 1 ms time-series
  sampler: everything on.  Expected to cost real time; the point of the
  number is knowing *how much*.

Usage::

    python benchmarks/bench_obs_overhead.py               # full measurement
    python benchmarks/bench_obs_overhead.py --smoke       # CI: tiny + fast
    python benchmarks/bench_obs_overhead.py --output BENCH_obs.json

The JSON trajectory file records per-mode timings plus the metrics/full
overhead ratios so successive runs are comparable.  Standalone by design
(argparse + time.perf_counter, no pytest-benchmark) so CI can smoke it in
seconds.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.presets import customized_config          # noqa: E402
from repro.core.units import mbps, ms, us                 # noqa: E402
from repro.network.testbed import Testbed                 # noqa: E402
from repro.network.topology import ring_topology          # noqa: E402
from repro.obs.flowspans import FlowSpanRecorder          # noqa: E402
from repro.obs.metrics import MetricsRegistry             # noqa: E402
from repro.obs.timeseries import TimeSeriesSampler        # noqa: E402
from repro.traffic.iec60802 import (                      # noqa: E402
    background_flows,
    production_cell_flows,
)

MODES = ("off", "metrics", "full")


def _build_flows(ts_count: int):
    flows = production_cell_flows(["talker0"], "listener",
                                  flow_count=ts_count)
    for flow in background_flows(["talker0"], "listener",
                                 mbps(100), mbps(100)):
        flows.add(flow)
    return flows


def _run_once(mode: str, ts_count: int, duration_ns: int) -> float:
    topology = ring_topology(switch_count=3, talkers=["talker0"])
    flows = _build_flows(ts_count)
    config = customized_config(topology.max_enabled_ports)
    registry = MetricsRegistry() if mode in ("metrics", "full") else None
    spans = FlowSpanRecorder() if mode == "full" else None
    testbed = Testbed(topology, config, flows, slot_ns=62_500,
                      metrics=registry, spans=spans)
    if mode == "full":
        sampler = TimeSeriesSampler(registry, testbed.sim,
                                    interval_ns=us(1000))
        sampler.start()
    testbed.build()  # outside the timer: measure the event loop, not setup
    start = time.perf_counter()
    testbed.run(duration_ns=duration_ns)
    return time.perf_counter() - start


def measure(ts_count: int, duration_ns: int, repeats: int) -> dict:
    results = {}
    for mode in MODES:
        _run_once(mode, ts_count, duration_ns)  # warm-up (imports, caches)
        times = [
            _run_once(mode, ts_count, duration_ns) for _ in range(repeats)
        ]
        results[mode] = {
            "best_s": min(times),
            "mean_s": statistics.mean(times),
            "runs": times,
        }
    baseline = results["off"]["best_s"]
    for mode in MODES:
        results[mode]["vs_off"] = results[mode]["best_s"] / baseline
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny parameters for CI (seconds, not minutes)")
    parser.add_argument("--flows", type=int, default=None,
                        help="TS flow count (default: 128, smoke: 8)")
    parser.add_argument("--duration-ms", type=float, default=None,
                        help="simulated window (default: 40, smoke: 5)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed runs per mode (default: 3, smoke: 1)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON trajectory file here")
    args = parser.parse_args(argv)

    ts_count = args.flows if args.flows is not None else (
        8 if args.smoke else 128
    )
    duration = ms(args.duration_ms) if args.duration_ms is not None else (
        ms(5) if args.smoke else ms(40)
    )
    repeats = args.repeats if args.repeats is not None else (
        1 if args.smoke else 3
    )

    print(f"# obs overhead: {ts_count} TS flows + background, "
          f"{duration / 1e6:g} ms, {repeats} repeat(s) per mode",
          file=sys.stderr)
    results = measure(ts_count, duration, repeats)
    for mode in MODES:
        entry = results[mode]
        print(f"{mode:>8}: best {entry['best_s'] * 1000:8.1f} ms  "
              f"({(entry['vs_off'] - 1) * 100:+6.2f}% vs off)")

    payload = {
        "benchmark": "bench_obs_overhead",
        "params": {
            "ts_flows": ts_count,
            "duration_ns": duration,
            "repeats": repeats,
            "smoke": args.smoke,
        },
        "modes": results,
        "metrics_overhead": results["metrics"]["vs_off"] - 1.0,
        "full_overhead": results["full"]["vs_off"] - 1.0,
    }
    if args.output:
        args.output.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"# wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
