#!/usr/bin/env python3
"""Observability overhead: the cost of watching the dataplane.

Runs the same ring scenario in four instrumentation modes and reports
wall-clock time per mode:

* ``off``      -- no registry, no spans: the uninstrumented baseline.
* ``metrics``  -- MetricsRegistry attached (PR 1's always-on production
  posture).  The acceptance bar: within 5% of ``off``.
* ``headroom`` -- registry + occupancy probes (HeadroomRecorder): the
  resource-headroom accounting posture.  The acceptance bar: within 2%
  of ``metrics`` (the probes must be cheap enough to leave on).
* ``full``     -- registry + probes + flow-span recording + a 1 ms
  time-series sampler: everything on.  Expected to cost real time; the
  point of the number is knowing *how much*.

The measurement core lives in :mod:`repro.bench.obs` (so ``repro bench
check --suite obs`` can gate the recorded overhead without shelling out);
this script is the human-facing CLI.

Usage::

    python benchmarks/bench_obs_overhead.py               # full measurement
    python benchmarks/bench_obs_overhead.py --smoke       # CI: tiny + fast
    python benchmarks/bench_obs_overhead.py --output BENCH_obs.json

The JSON trajectory file records per-mode timings plus the metrics/full
overhead ratios so successive runs are comparable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.obs import MODES, measure                # noqa: E402
from repro.core.units import ms                           # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny parameters for CI (seconds, not minutes)")
    parser.add_argument("--flows", type=int, default=None,
                        help="TS flow count (default: 128, smoke: 8)")
    parser.add_argument("--duration-ms", type=float, default=None,
                        help="simulated window (default: 40, smoke: 5)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed runs per mode (default: 3, smoke: 1)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON trajectory file here")
    args = parser.parse_args(argv)

    ts_count = args.flows if args.flows is not None else (
        8 if args.smoke else 128
    )
    duration = ms(args.duration_ms) if args.duration_ms is not None else (
        ms(5) if args.smoke else ms(40)
    )
    repeats = args.repeats if args.repeats is not None else (
        1 if args.smoke else 3
    )

    print(f"# obs overhead: {ts_count} TS flows + background, "
          f"{duration / 1e6:g} ms, {repeats} repeat(s) per mode",
          file=sys.stderr)
    results = measure(ts_count, duration, repeats)
    for mode in MODES:
        entry = results[mode]
        print(f"{mode:>8}: best {entry['best_s'] * 1000:8.1f} ms  "
              f"({(entry['vs_off'] - 1) * 100:+6.2f}% vs off)")
    print(f"# headroom probes: "
          f"{(results['headroom']['vs_metrics'] - 1) * 100:+.2f}% "
          f"vs metrics", file=sys.stderr)

    payload = {
        "benchmark": "bench_obs_overhead",
        "params": {
            "ts_flows": ts_count,
            "duration_ns": duration,
            "repeats": repeats,
            "smoke": args.smoke,
        },
        "modes": results,
        "metrics_overhead": results["metrics"]["vs_off"] - 1.0,
        "headroom_overhead": results["headroom"]["vs_metrics"] - 1.0,
        "full_overhead": results["full"]["vs_off"] - 1.0,
    }
    if args.output:
        args.output.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"# wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
