"""Paper Table I: the motivation's two queue/buffer configurations.

Regenerates the configuration table (2304 Kb vs 1764 Kb, a 540 Kb saving)
and validates the motivating claim behind it: both configurations deliver
identical TS QoS on the 3-switch network, because Case 1's extra resources
sit above the traffic-dependent threshold.
"""

import pytest

from repro.analysis.report import render_table1
from repro.core.presets import customized_config, table1_case1, table1_case2
from repro.core.units import mbps
from repro.network.topology import linear_topology
from repro.traffic.flows import TrafficClass

from conftest import run_scenario


def test_table1_resources(benchmark):
    def build():
        return (
            table1_case1().resource_report("Case 1"),
            table1_case2().resource_report("Case 2"),
        )

    case1, case2 = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + render_table1(case1, case2))

    def queue_buffer_kb(report):
        return report.row("Queues").kb + report.row("Buffers").kb

    assert queue_buffer_kb(case1) == 2304
    assert queue_buffer_kb(case2) == 1764
    assert queue_buffer_kb(case1) - queue_buffer_kb(case2) == 540
    benchmark.extra_info["case1_kb"] = queue_buffer_kb(case1)
    benchmark.extra_info["case2_kb"] = queue_buffer_kb(case2)


@pytest.mark.parametrize(
    "label,queue_depth,buffer_num",
    [("case1", 16, 128), ("case2", 12, 96)],
)
def test_table1_equal_qos(benchmark, scale, label, queue_depth, buffer_num):
    """Both cases: stable TS latency, zero loss, despite background load."""
    topology = linear_topology(switch_count=3, talkers=["talker0"])
    config = customized_config(
        2, name=label, queue_depth=queue_depth, buffer_num=buffer_num
    )
    result = benchmark.pedantic(
        run_scenario,
        args=(topology, scale),
        kwargs=dict(config=config, rc_bps=mbps(100), be_bps=mbps(100)),
        rounds=1,
        iterations=1,
    )
    summary = result.ts_summary
    print(
        f"\n{label}: mean={summary.mean_ns / 1000:.2f}us "
        f"jitter={summary.jitter_ns / 1000:.2f}us loss={result.ts_loss}"
    )
    assert result.ts_loss == 0.0
    assert result.analyzer.deadline_misses(TrafficClass.TS) == 0
    # occupancy stays under even the smaller Case 2 sizing
    assert result.max_queue_high_water() <= 12
    assert result.max_buffer_high_water() <= 96
    benchmark.extra_info["mean_us"] = summary.mean_ns / 1000
    benchmark.extra_info["jitter_us"] = summary.jitter_ns / 1000
    benchmark.extra_info["queue_high_water"] = result.max_queue_high_water()
