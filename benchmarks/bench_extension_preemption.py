"""Extension: frame preemption (802.1Qbu) vs the residual HOL jitter.

The paper's Fig. 2 / Fig. 7(d) TS curves are flat but not perfectly so: the
only interference a top-priority TS frame can see is one in-flight
background MTU (~12 us at 1 Gbps) per hop, which surfaces as the few
microseconds of jitter the background sweeps show.  802.1Qbu removes
exactly that term: express TS frames cut preemptable frames at 64 B
fragment boundaries.

Expected shape: with preemption the TS jitter under heavy background
collapses towards the fragment-boundary bound (64 B + cut tail ~ 0.7 us)
while background throughput is untouched, at the price of per-fragment
wire overhead.
"""

import pytest

from repro.analysis.report import render_table
from repro.core.presets import customized_config
from repro.core.units import mbps
from repro.network.topology import ring_topology

from conftest import run_scenario

HOPS = 3
LOAD_MBPS = 400


def test_extension_preemption(benchmark, scale):
    def run_both():
        results = {}
        for label, preempt in (("store-and-forward", False),
                               ("802.1Qbu preemption", True)):
            topology = ring_topology(switch_count=HOPS, talkers=["talker0"])
            results[label] = run_scenario(
                topology,
                scale,
                rc_bps=mbps(LOAD_MBPS) // 2,
                be_bps=mbps(LOAD_MBPS) // 2,
                preemption_enabled=preempt,
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for label, result in results.items():
        summary = result.ts_summary
        cuts = sum(
            port.preemptions
            for switch in result.switches.values()
            for port in switch.ports
        )
        rows.append(
            [
                label,
                f"{summary.mean_ns / 1000:.2f}",
                f"{summary.jitter_ns / 1000:.3f}",
                f"{summary.max_ns / 1000:.2f}",
                f"{result.ts_loss:.4f}",
                str(cuts),
            ]
        )
    print("\n" + render_table(
        ["mode", "mean(us)", "jitter(us)", "max(us)", "loss", "cuts"],
        rows,
        title=f"TS under {LOAD_MBPS} Mbps background, {HOPS} hops",
    ))
    plain = results["store-and-forward"]
    preempted = results["802.1Qbu preemption"]
    assert plain.ts_loss == preempted.ts_loss == 0.0
    assert preempted.ts_summary.jitter_ns < plain.ts_summary.jitter_ns / 4
    # per-hop HOL term gone: worst case tightens by several microseconds
    assert preempted.ts_summary.max_ns < plain.ts_summary.max_ns
    # background keeps flowing (all fragments reassembled and delivered)
    assert preempted.analyzer.received() == plain.analyzer.received()
    benchmark.extra_info["plain_jitter_us"] = (
        plain.ts_summary.jitter_ns / 1000
    )
    benchmark.extra_info["preempted_jitter_us"] = (
        preempted.ts_summary.jitter_ns / 1000
    )
