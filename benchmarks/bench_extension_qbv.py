"""Extension: CQF vs synthesized 802.1Qbv TAS schedules.

Not a paper figure -- it makes guideline 2's trade-off concrete.  The paper
configures CQF because it needs only *two* gate-table entries; the general
alternative is a synthesized Qbv schedule whose gate tables grow with the
scheduling cycle (one window per active slot) but whose frames flow through
each hop inside a dedicated transmission window instead of waiting out a
slot.  Expected shape: Qbv latency is per-hop pipeline time (tens of us
lower than CQF's hop x slot) with near-zero jitter, at 100-200x the gate
entries.
"""

import pytest

from repro.analysis.report import render_table
from repro.core.presets import customized_config
from repro.core.units import mbps
from repro.cqf.bounds import cqf_bounds
from repro.network.topology import ring_topology
from repro.qbv.synthesis import estimate_gate_size

from conftest import SLOT_NS, run_scenario

HOPS = 3


def _run(scale, mechanism, gate_size):
    topology = ring_topology(switch_count=HOPS, talkers=["talker0"])
    config = customized_config(1).with_updates(gate_size=gate_size)
    return run_scenario(
        topology,
        scale,
        config=config,
        rc_bps=mbps(50),
        be_bps=mbps(50),
        gate_mechanism=mechanism,
    )


def test_extension_cqf_vs_qbv(benchmark, scale):
    def run_both():
        cqf = _run(scale, "cqf", gate_size=2)
        # pre-size the Qbv gate tables from the plan the CQF run produced
        qbv_gate_size = estimate_gate_size(cqf.itp_plan)
        qbv = _run(scale, "qbv", gate_size=qbv_gate_size)
        return cqf, qbv, qbv_gate_size

    cqf, qbv, qbv_gate_size = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    rows = []
    for label, result, gates in (("CQF", cqf, 2), ("Qbv TAS", qbv,
                                                   qbv_gate_size)):
        summary = result.ts_summary
        rows.append(
            [
                label,
                str(gates),
                f"{summary.mean_ns / 1000:.2f}",
                f"{summary.jitter_ns / 1000:.2f}",
                f"{result.ts_loss:.4f}",
            ]
        )
    print("\n" + render_table(
        ["mechanism", "gate entries/port", "mean(us)", "jitter(us)", "loss"],
        rows,
        title=f"CQF vs Qbv, {HOPS} hops, slot {SLOT_NS / 1000:g}us",
    ))

    assert cqf.ts_loss == qbv.ts_loss == 0.0
    # CQF follows Eq.(1); Qbv undercuts even its lower bound
    bounds = cqf_bounds(HOPS, SLOT_NS)
    assert bounds.contains(int(cqf.ts_summary.mean_ns))
    assert qbv.ts_summary.max_ns < bounds.min_ns
    assert qbv.ts_summary.mean_ns < cqf.ts_summary.mean_ns / 5
    # ... paid for in gate-table entries
    assert qbv_gate_size > 50 * 2
    benchmark.extra_info["cqf_mean_us"] = cqf.ts_summary.mean_ns / 1000
    benchmark.extra_info["qbv_mean_us"] = qbv.ts_summary.mean_ns / 1000
    benchmark.extra_info["qbv_gate_size"] = qbv_gate_size
