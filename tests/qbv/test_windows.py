"""Gate windows and GCL compilation."""

import pytest

from repro.core.errors import SchedulingError
from repro.qbv.windows import GateWindow, WindowSet, compile_gcl, guard_band_ns


class TestGateWindow:
    def test_duration(self):
        assert GateWindow(7, 100, 300).duration_ns == 200

    def test_invalid_interval(self):
        with pytest.raises(SchedulingError):
            GateWindow(7, 300, 100)
        with pytest.raises(SchedulingError):
            GateWindow(7, -1, 100)

    def test_invalid_queue(self):
        with pytest.raises(SchedulingError):
            GateWindow(8, 0, 100)

    def test_overlap(self):
        a = GateWindow(7, 100, 300)
        assert a.overlaps(GateWindow(6, 200, 400))
        assert not a.overlaps(GateWindow(6, 300, 400))  # half-open


class TestWindowSet:
    def test_sorted_iteration(self):
        ws = WindowSet(1000, [GateWindow(7, 500, 600), GateWindow(6, 100, 200)])
        assert [w.start_ns for w in ws] == [100, 500]

    def test_rejects_cycle_overrun(self):
        ws = WindowSet(1000)
        with pytest.raises(SchedulingError):
            ws.add(GateWindow(7, 900, 1100))

    def test_rejects_overlap(self):
        ws = WindowSet(1000, [GateWindow(7, 100, 300)])
        with pytest.raises(SchedulingError, match="overlaps"):
            ws.add(GateWindow(6, 200, 400))

    def test_utilization(self):
        ws = WindowSet(1000, [GateWindow(7, 0, 250)])
        assert ws.utilization() == 0.25

    def test_scheduled_queues(self):
        ws = WindowSet(1000, [GateWindow(7, 100, 200), GateWindow(5, 400, 500)])
        assert ws.scheduled_queues == (5, 7)


class TestGuardBand:
    def test_mtu_at_gigabit(self):
        # 1518 B + 20 B framing = 1538 B -> 12304 ns
        assert guard_band_ns() == 12_304


class TestCompileGcl:
    def _entries(self, windows, cycle=100_000, guard=1_000, queue_num=8):
        ws = WindowSet(cycle, windows)
        return compile_gcl(ws, queue_num=queue_num, guard_ns=guard)

    def test_covers_cycle_exactly(self):
        entries = self._entries([GateWindow(7, 10_000, 20_000)])
        assert sum(e.interval_ns for e in entries) == 100_000

    def test_window_exclusive(self):
        entries = self._entries([GateWindow(7, 10_000, 20_000)])
        # segments: background / guard / window / background
        masks = [e.gate_states for e in entries]
        assert masks == [0x7F, 0x00, 0x80, 0x7F]

    def test_guard_band_closes_everything(self):
        entries = self._entries([GateWindow(7, 10_000, 20_000)], guard=1_000)
        guard_entry = entries[1]
        assert guard_entry.gate_states == 0 and guard_entry.interval_ns == 1_000

    def test_background_mask_excludes_all_scheduled_queues(self):
        entries = self._entries(
            [GateWindow(7, 10_000, 20_000), GateWindow(6, 50_000, 60_000)]
        )
        assert entries[0].gate_states == 0x3F  # neither 6 nor 7

    def test_window_needs_guard_headroom(self):
        with pytest.raises(SchedulingError, match="guard"):
            self._entries([GateWindow(7, 500, 2_000)], guard=1_000)

    def test_windows_too_close_rejected(self):
        with pytest.raises(SchedulingError, match="guard band"):
            self._entries(
                [GateWindow(7, 10_000, 20_000), GateWindow(6, 20_500, 25_000)],
                guard=1_000,
            )

    def test_back_to_back_windows_with_zero_guard(self):
        ws = WindowSet(100_000, [GateWindow(7, 10_000, 20_000),
                                 GateWindow(6, 20_000, 30_000)])
        entries = compile_gcl(ws, guard_ns=0)
        assert sum(e.interval_ns for e in entries) == 100_000

    def test_scheduled_queue_outside_queue_num_rejected(self):
        with pytest.raises(SchedulingError):
            self._entries([GateWindow(7, 10_000, 20_000)], queue_num=4)

    def test_entry_count_guideline(self):
        """3 entries per isolated window + 1 trailing background segment."""
        windows = [
            GateWindow(7, base + 10_000, base + 15_000)
            for base in range(0, 100_000, 25_000)
        ]
        entries = self._entries(windows)
        assert len(entries) == 3 * len(windows) + 1


class TestCompileProperties:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=40, deadline=None)
    @given(
        starts=st.lists(
            st.integers(min_value=0, max_value=18), min_size=1, max_size=5,
            unique=True,
        ),
        queue=st.integers(min_value=0, max_value=7),
        guard=st.sampled_from([0, 500, 1000]),
    )
    def test_compiled_gcl_matches_window_semantics(self, starts, queue,
                                                   guard):
        """For random non-overlapping windows the compiled GCL opens the
        scheduled queue exactly inside its windows and closes everything
        during guards."""
        from repro.switch.tables import GateControlList

        cycle = 100_000
        # windows on a 5us grid, 2us long: never overlap, guards fit
        windows = [
            GateWindow(queue, s * 5_000 + 2_000, s * 5_000 + 4_000)
            for s in sorted(starts)
        ]
        ws = WindowSet(cycle, windows)
        entries = compile_gcl(ws, guard_ns=guard)
        assert sum(e.interval_ns for e in entries) == cycle
        gcl = GateControlList(len(entries))
        gcl.program(entries)
        for window in windows:
            mid = (window.start_ns + window.end_ns) // 2
            state = gcl.state_at(mid)
            assert state.is_open(queue)
            assert state.gate_states == 1 << queue  # exclusive
            if guard:
                guard_state = gcl.state_at(window.start_ns - guard // 2)
                assert guard_state.gate_states == 0
        # far from any window, the background mask applies
        probe = windows[0].start_ns - guard - 1_000
        if probe >= 0:
            assert not gcl.state_at(probe).is_open(queue)
