"""TAS schedule synthesis and its testbed integration."""

import pytest

from repro.core.errors import ConfigurationError, SchedulingError
from repro.core.presets import customized_config
from repro.core.units import mbps, ms
from repro.cqf.bounds import cqf_bounds
from repro.cqf.itp import ItpPlanner
from repro.cqf.schedule import CqfSchedule
from repro.network.testbed import Testbed
from repro.network.topology import ring_topology
from repro.qbv.synthesis import (
    PortTraffic,
    TasSynthesizer,
    estimate_gate_size,
)
from repro.traffic.flows import FlowSpec, TrafficClass
from repro.traffic.iec60802 import production_cell_flows

SLOT = 62_500
SCHEDULE = CqfSchedule(SLOT, ms(10))


def _flows(count, size=64):
    return [
        FlowSpec(i, TrafficClass.TS, "t", "l", size, period_ns=ms(10))
        for i in range(count)
    ]


def _traffic(flows_by_slot, hops=(0,)):
    return PortTraffic(slot_flows=flows_by_slot, hop_indices=tuple(hops))


class TestSynthesizePort:
    def test_single_slot_schedule(self):
        flows = _flows(4)
        schedule = TasSynthesizer(SCHEDULE).synthesize_port(
            _traffic({0: flows})
        )
        assert len(schedule.window_set) == 1
        window = schedule.window_set.windows[0]
        assert window.queue_id == 7
        # shifted past the guard band
        assert window.start_ns >= 12_304
        assert sum(e.interval_ns for e in schedule.entries) == ms(10)

    def test_deeper_hop_opens_later_and_longer(self):
        flows = _flows(4)
        synth = TasSynthesizer(SCHEDULE)
        w0 = synth.synthesize_port(_traffic({0: flows}, hops=(0,)))
        w3 = synth.synthesize_port(_traffic({0: flows}, hops=(3,)))
        first0 = w0.window_set.windows[0]
        first3 = w3.window_set.windows[0]
        assert first3.start_ns == first0.start_ns + 3 * synth.hop_lead_ns
        assert first3.end_ns > first0.end_ns

    def test_multiple_slots(self):
        flows = _flows(8)
        per_slot = {s: flows for s in (0, 40, 80, 120)}
        schedule = TasSynthesizer(SCHEDULE).synthesize_port(
            _traffic(per_slot)
        )
        assert len(schedule.window_set) == 4
        # <= because zero-length segments (e.g. a window starting exactly at
        # the guard boundary) are elided by compilation
        assert 3 * 4 <= schedule.gate_size <= 3 * 4 + 1

    def test_overfull_slot_rejected(self):
        # 1500B x 40 frames = ~492 us of wire time >> one 62.5 us slot
        flows = _flows(40, size=1500)
        with pytest.raises(SchedulingError, match="does not fit"):
            TasSynthesizer(SCHEDULE).synthesize_port(_traffic({0: flows}))

    def test_slot_index_validated(self):
        with pytest.raises(SchedulingError, match="slot index"):
            TasSynthesizer(SCHEDULE).synthesize_port(
                _traffic({200: _flows(1)})
            )

    def test_empty_hops_rejected(self):
        with pytest.raises(SchedulingError):
            PortTraffic(slot_flows={}, hop_indices=())

    def test_estimate_gate_size(self):
        plan = ItpPlanner(SCHEDULE).plan(_flows(16))
        assert estimate_gate_size(plan) == 3 * 16 + 1


class TestTestbedIntegration:
    def _run(self, mechanism, gate_size=256, count=48):
        topology = ring_topology(switch_count=3, talkers=["talker0"])
        flows = production_cell_flows(["talker0"], "listener",
                                      flow_count=count)
        config = customized_config(1).with_updates(gate_size=gate_size)
        testbed = Testbed(topology, config, flows, slot_ns=SLOT,
                          gate_mechanism=mechanism)
        return testbed.run(duration_ns=ms(30))

    def test_qbv_lossless_and_fast(self):
        result = self._run("qbv")
        assert result.ts_loss == 0.0
        # frames flow through without per-hop slot waits: far below even
        # the CQF lower bound for 3 hops
        assert result.ts_summary.max_ns < cqf_bounds(3, SLOT).min_ns

    def test_qbv_beats_cqf_latency(self):
        qbv = self._run("qbv")
        cqf = self._run("cqf")
        assert qbv.ts_summary.mean_ns < cqf.ts_summary.mean_ns / 5
        assert cqf.ts_loss == qbv.ts_loss == 0.0

    def test_qbv_needs_sized_gate_tables(self):
        with pytest.raises(ConfigurationError, match="gate entries"):
            self._run("qbv", gate_size=2)

    def test_unknown_mechanism_rejected(self):
        topology = ring_topology(switch_count=2, talkers=["talker0"])
        flows = production_cell_flows(["talker0"], "listener", flow_count=4)
        with pytest.raises(ConfigurationError):
            Testbed(topology, customized_config(1), flows, slot_ns=SLOT,
                    gate_mechanism="tas")

    def test_qbv_without_ts_flows_rejected(self):
        from repro.traffic.flows import FlowSet
        from repro.traffic.iec60802 import background_flows

        topology = ring_topology(switch_count=2, talkers=["talker0"])
        flows = background_flows(["talker0"], "listener", mbps(10), mbps(10))
        testbed = Testbed(topology, customized_config(1), flows,
                          slot_ns=SLOT, gate_mechanism="qbv")
        with pytest.raises(ConfigurationError, match="TS flows"):
            testbed.build()
