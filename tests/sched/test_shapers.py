"""CSQF and Multi-CQF shaper modes: GCL shape, gate engine, end to end."""

import pytest

from repro.core.errors import ConfigurationError, SchedulingError
from repro.cqf.gcl_gen import (
    csqf_gcl_entries,
    csqf_port_program,
    multi_cqf_gate_entry_count,
    multi_cqf_gcl_entries,
    multi_cqf_port_program,
)
from repro.network.scenario import ScenarioSpec
from repro.switch.gates import CqfGroup

SLOT_NS = 50_000


def _scenario(shaper, backend="greedy", **extra):
    doc = {
        "name": f"shaper-{shaper}",
        "topology": {"kind": "star",
                     "talkers": ["talker0", "talker1", "talker2"],
                     "listener": "listener"},
        "flows": {"groups": [
            {"ts_count": 3, "period_us": 100, "size_bytes": 64},
            {"ts_count": 2, "period_us": 200, "size_bytes": 512},
        ]},
        "config": "derive",
        "slot_us": 50,
        "duration_ms": 2,
        "seed": 0,
        "sched": {"backend": backend, "shaper": shaper},
    }
    doc.update(extra)
    return ScenarioSpec.from_dict(doc)


class TestCsqfGcl:
    def test_three_entries_rotate(self):
        in_entries, out_entries = csqf_gcl_entries(SLOT_NS)
        assert len(in_entries) == len(out_entries) == 3
        triple = (5, 6, 7)
        non_ts = sum(1 << q for q in range(8) if q not in triple)
        for i in range(3):
            assert in_entries[i].gate_states == non_ts | (1 << triple[i])
            assert out_entries[i].gate_states == (
                non_ts | (1 << triple[(i + 1) % 3])
            )

    def test_gather_drains_two_slots_later(self):
        in_entries, out_entries = csqf_gcl_entries(SLOT_NS)
        for i in range(3):
            gathered = in_entries[i].gate_states & 0b1110_0000
            assert out_entries[(i + 2) % 3].gate_states & gathered

    def test_port_program_groups(self):
        _, _, groups = csqf_port_program(SLOT_NS)
        assert groups == [CqfGroup(5, 6, 7)]

    def test_rejects_non_triple(self):
        with pytest.raises(SchedulingError):
            csqf_gcl_entries(SLOT_NS, triple=(6, 7))


class TestMultiCqfGcl:
    def test_entry_count_is_hyper_cycle(self):
        assert multi_cqf_gate_entry_count(SLOT_NS, 2 * SLOT_NS) == 4
        assert multi_cqf_gate_entry_count(SLOT_NS, 4 * SLOT_NS) == 8

    def test_slot2_must_divide(self):
        with pytest.raises(SchedulingError, match="multiple"):
            multi_cqf_gate_entry_count(SLOT_NS, SLOT_NS + 1)

    def test_each_segment_opens_one_member_per_group(self):
        in_entries, out_entries = multi_cqf_gcl_entries(SLOT_NS, 2 * SLOT_NS)
        assert len(in_entries) == 4
        for entry_in, entry_out in zip(in_entries, out_entries):
            for group in ((6, 7), (4, 5)):
                mask = sum(1 << q for q in group)
                gathering = entry_in.gate_states & mask
                draining = entry_out.gate_states & mask
                # exactly one member open per side, and opposite members
                assert bin(gathering).count("1") == 1
                assert bin(draining).count("1") == 1
                assert gathering != draining

    def test_base_system_alternates_twice_as_fast(self):
        in_entries, _ = multi_cqf_gcl_entries(SLOT_NS, 2 * SLOT_NS)
        base_members = [e.gate_states & 0b1100_0000 for e in in_entries]
        long_members = [e.gate_states & 0b0011_0000 for e in in_entries]
        assert base_members == [1 << 6, 1 << 7, 1 << 6, 1 << 7]
        assert long_members == [1 << 4, 1 << 4, 1 << 5, 1 << 5]

    def test_port_program_orders_base_then_long(self):
        _, _, groups = multi_cqf_port_program(SLOT_NS, 2 * SLOT_NS)
        assert groups == [CqfGroup(6, 7), CqfGroup(4, 5)]


class TestCqfGroup:
    def test_needs_two_members(self):
        with pytest.raises(ConfigurationError):
            CqfGroup(5)

    def test_members_distinct(self):
        with pytest.raises(ConfigurationError):
            CqfGroup(5, 5, 6)


class TestShaperEndToEnd:
    @pytest.mark.parametrize("shaper", ["cqf", "csqf", "multi_cqf"])
    @pytest.mark.parametrize("backend", ["greedy", "exact"])
    def test_drop_free_at_derived_depth(self, shaper, backend):
        result = _scenario(shaper, backend=backend).run()
        assert result.ts_loss == 0.0
        assert result.sched_plan is not None
        assert (
            result.max_queue_high_water()
            <= result.sched_plan.required_queue_depth
        )

    def test_gate_size_per_shaper(self):
        spec_csqf = _scenario("csqf")
        config = spec_csqf.build_config(
            spec_csqf.build_topology(), spec_csqf.build_flows()
        )
        assert config.gate_size == 3
        spec_multi = _scenario("multi_cqf")
        config = spec_multi.build_config(
            spec_multi.build_topology(), spec_multi.build_flows()
        )
        assert config.gate_size == 4

    def test_qbv_refuses_non_cqf_shaper(self):
        spec = _scenario("csqf", gate_mechanism="qbv")
        with pytest.raises(SchedulingError, match="gate_mechanism"):
            spec.build_config(spec.build_topology(), spec.build_flows())
