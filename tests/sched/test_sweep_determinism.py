"""The gap sweep is byte-identical at any worker count.

Runs the shipped ``examples/sched_gap_sweep.json`` (greedy vs exact on the
star gap instance) inline and across a 2-process pool and requires
identical rows and aggregates -- the campaign engine's acceptance bar,
now covering the scheduling measurements too.
"""

import json
from pathlib import Path

from repro.campaign import Campaign, SweepSpec

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" / (
    "sched_gap_sweep.json"
)


def _run(tmp_path, workers):
    spec = SweepSpec.from_file(EXAMPLE)
    jsonl = tmp_path / f"runs-{workers}.jsonl"
    summary = Campaign(spec, workers=workers, ledger=None).run(jsonl=jsonl)
    rows = [
        json.loads(line) for line in jsonl.read_text().splitlines() if line
    ]
    return summary, sorted(rows, key=lambda r: r["index"])


def test_rows_identical_across_worker_counts(tmp_path):
    summary_1, rows_1 = _run(tmp_path, workers=1)
    summary_2, rows_2 = _run(tmp_path, workers=2)
    assert rows_1 == rows_2
    assert summary_1 == summary_2


def test_gap_visible_in_rows_and_pareto(tmp_path):
    summary, rows = _run(tmp_path, workers=1)
    by_backend = {
        row["params"]["sched.backend"]: row for row in rows
    }
    greedy, exact = by_backend["greedy"], by_backend["exact"]
    assert greedy["status"] == exact["status"] == "ok"
    assert exact["sched"]["status"] == "optimal"
    assert (
        greedy["sched"]["required_queue_depth"]
        > exact["sched"]["required_queue_depth"]
    )
    assert greedy["bram_kb"] > exact["bram_kb"]
    # The sched digest surfaces the same gap without row digging.
    digest = summary["sched"]
    assert digest["greedy"]["bram_kb_min"] > digest["exact"]["bram_kb_max"]
    # And the exact point dominates on the BRAM axis of the frontier.
    assert summary["pareto"][0]["sched"]["backend"] == "exact"
