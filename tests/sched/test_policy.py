"""The ``"sched"`` stanza: parsing, strict validation, scenario wiring."""

import pytest

from repro.core.errors import SchedulingError, SpecValidationError
from repro.network.scenario import ScenarioSpec, validate_scenario_dict
from repro.sched import SchedPolicy, validate_sched_dict


def _scenario_doc(**sched):
    return {
        "name": "stanza",
        "topology": {"kind": "star", "talkers": ["talker0"],
                     "listener": "listener"},
        "flows": {"ts_count": 4, "period_us": 100, "size_bytes": 64},
        "config": "derive",
        "slot_us": 50,
        "duration_ms": 1,
        "sched": sched,
    }


class TestValidateSchedDict:
    def test_empty_stanza_valid(self):
        assert validate_sched_dict({}) == []

    def test_full_stanza_valid(self):
        assert validate_sched_dict({
            "backend": "anneal",
            "shaper": "multi_cqf",
            "objective": "max_admission",
            "utilization_limit": 0.4,
            "slot2_us": 100.0,
            "options": {"seed": 3, "iterations": 500},
        }) == []

    def test_problems_are_sched_prefixed(self):
        problems = validate_sched_dict({"backend": "cplex"})
        assert problems and all(p.startswith("sched.") for p in problems)

    def test_unknown_backend_suggests(self):
        (problem,) = validate_sched_dict({"backend": "exacty"})
        assert "exact" in problem

    def test_unknown_key_suggests(self):
        (problem,) = validate_sched_dict({"shapers": "cqf"})
        assert "shaper" in problem

    def test_option_types_checked(self):
        problems = validate_sched_dict(
            {"backend": "exact", "options": {"node_limit": "many"}}
        )
        assert any("node_limit" in p for p in problems)

    def test_utilization_limit_bounds(self):
        assert validate_sched_dict({"utilization_limit": 0.0})
        assert validate_sched_dict({"utilization_limit": 1.5})


class TestSchedPolicy:
    def test_defaults_match_historic_greedy(self):
        policy = SchedPolicy()
        assert policy.backend == "greedy"
        assert policy.shaper == "cqf"
        assert policy.utilization_limit == 0.5

    def test_roundtrip(self):
        policy = SchedPolicy.from_dict({
            "backend": "exact", "shaper": "csqf",
            "options": {"node_limit": 1000},
        })
        assert SchedPolicy.from_dict(policy.to_dict()) == policy

    def test_bad_shaper_raises(self):
        with pytest.raises(SchedulingError, match="shaper"):
            SchedPolicy(shaper="qbv")

    def test_from_dict_raises_spec_validation_error(self):
        with pytest.raises(SpecValidationError, match="sched.backend"):
            SchedPolicy.from_dict({"backend": "cplex"})

    def test_slot2_defaults_to_double_slot(self):
        assert SchedPolicy(shaper="multi_cqf").slot2_ns(50_000) == 100_000
        assert SchedPolicy(
            shaper="multi_cqf", slot2_us=200.0
        ).slot2_ns(50_000) == 200_000


class TestScenarioStanza:
    def test_valid_stanza_accepted(self):
        doc = _scenario_doc(backend="exact")
        assert validate_scenario_dict(doc) == []
        spec = ScenarioSpec.from_dict(doc)
        assert spec.build_sched_policy().backend == "exact"

    def test_bad_stanza_rejected_strictly(self):
        doc = _scenario_doc(backend="cplex")
        problems = validate_scenario_dict(doc)
        assert any(p.startswith("sched.backend") for p in problems)
        with pytest.raises(SpecValidationError, match="sched.backend"):
            ScenarioSpec.from_dict(doc)

    def test_absent_stanza_keeps_historic_default(self):
        doc = _scenario_doc()
        del doc["sched"]
        spec = ScenarioSpec.from_dict(doc)
        assert spec.build_sched_policy() is None

    def test_stanza_survives_to_dict(self):
        doc = _scenario_doc(backend="anneal")
        assert ScenarioSpec.from_dict(doc).to_dict()["sched"] == {
            "backend": "anneal"
        }

    def test_groups_conflict_with_uniform_keys(self):
        doc = _scenario_doc()
        del doc["sched"]
        doc["flows"] = {
            "ts_count": 4,
            "groups": [{"ts_count": 2, "period_us": 100}],
        }
        problems = validate_scenario_dict(doc)
        assert any("flows.groups" in p for p in problems)

    def test_group_keys_validated(self):
        doc = _scenario_doc()
        del doc["sched"]
        doc["flows"] = {"groups": [{"ts_countt": 2}]}
        (problem,) = validate_scenario_dict(doc)
        assert "flows.groups[0].ts_countt" in problem

    def test_groups_build_heterogeneous_flow_set(self):
        doc = _scenario_doc()
        del doc["sched"]
        doc["flows"] = {"groups": [
            {"ts_count": 3, "period_us": 100, "size_bytes": 64},
            {"ts_count": 2, "period_us": 200, "size_bytes": 512},
        ]}
        flows = ScenarioSpec.from_dict(doc).build_flows()
        periods = sorted(f.period_ns for f in flows)
        assert periods == [100_000] * 3 + [200_000] * 2
        assert len({f.flow_id for f in flows}) == 5
