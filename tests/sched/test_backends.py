"""Backend equivalence and gap properties of the scheduling layer."""

import pytest

from repro.core.errors import SchedulingError
from repro.cqf.schedule import CqfSchedule
from repro.sched import (
    SchedulingProblem,
    available_backends,
    make_scheduler,
)
from repro.traffic.flows import FlowSpec, TrafficClass

SLOT_NS = 50_000


def _ts(flow_id, period_ns, size_bytes):
    return FlowSpec(
        flow_id, TrafficClass.TS, f"talker{flow_id % 3}", "listener",
        size_bytes, period_ns=period_ns,
    )


def gap_flows():
    """Greedy needs peak 3 here; the optimum is 2 (ISSUE acceptance case)."""
    return (
        [_ts(i, 100_000, 64) for i in range(3)]
        + [_ts(10 + i, 200_000, 512) for i in range(2)]
    )


def gap_problem(objective="min_peak"):
    flows = gap_flows()
    schedule = CqfSchedule.for_flows([f.period_ns for f in flows], SLOT_NS)
    return SchedulingProblem.from_flows(
        flows, schedule, 10**9, objective=objective
    )


def overload_problem():
    """More TS bytes than the slots can carry: admission must reject."""
    flows = [_ts(i, 100_000, 1500) for i in range(8)]
    schedule = CqfSchedule.for_flows([f.period_ns for f in flows], SLOT_NS)
    return SchedulingProblem.from_flows(
        flows, schedule, 10**9, objective="max_admission"
    )


class TestRegistry:
    def test_all_backends_registered(self):
        assert {"greedy", "exact", "anneal", "unplanned"} <= set(
            available_backends()
        )

    def test_unknown_backend_suggests(self):
        with pytest.raises(SchedulingError, match="greedy"):
            make_scheduler("greedyy")

    def test_every_backend_solves_the_gap_instance(self):
        for backend in available_backends():
            plan = make_scheduler(backend).solve(gap_problem())
            assert plan.backend == backend
            assert plan.status in ("optimal", "feasible")
            assert plan.admitted_count == 5


class TestPeakGap:
    def test_greedy_needs_three(self):
        plan = make_scheduler("greedy").solve(gap_problem())
        assert plan.required_queue_depth == 3

    def test_exact_proves_two_optimal(self):
        plan = make_scheduler("exact").solve(gap_problem())
        assert plan.status == "optimal"
        assert plan.required_queue_depth == 2
        assert plan.required_queue_depth == gap_problem().peak_lower_bound()

    def test_exact_never_worse_than_greedy(self):
        greedy = make_scheduler("greedy").solve(gap_problem())
        exact = make_scheduler("exact").solve(gap_problem())
        assert exact.required_queue_depth <= greedy.required_queue_depth

    def test_anneal_never_worse_than_greedy(self):
        # Seeded from the greedy incumbent, so it can only improve.
        greedy = make_scheduler("greedy").solve(gap_problem())
        anneal = make_scheduler("anneal").solve(gap_problem())
        assert anneal.required_queue_depth <= greedy.required_queue_depth


class TestAdmission:
    def test_exact_admits_at_least_greedy(self):
        problem = overload_problem()
        greedy = make_scheduler("greedy").solve(problem)
        exact = make_scheduler("exact").solve(problem)
        assert greedy.rejected, "instance must actually overload the slots"
        assert exact.admitted_count >= greedy.admitted_count

    def test_min_peak_raises_where_max_admission_rejects(self):
        flows = [_ts(i, 100_000, 1500) for i in range(8)]
        schedule = CqfSchedule.for_flows(
            [f.period_ns for f in flows], SLOT_NS
        )
        strict = SchedulingProblem.from_flows(flows, schedule, 10**9)
        plan = make_scheduler("greedy").solve(strict)
        assert plan.status == "infeasible"
        with pytest.raises(SchedulingError, match="injection slot"):
            plan.raise_if_infeasible()


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["greedy", "exact", "anneal",
                                         "unplanned"])
    def test_repeated_solves_identical(self, backend):
        scheduler = make_scheduler(backend)
        first = scheduler.solve(gap_problem())
        second = scheduler.solve(gap_problem())
        assert first.offsets == second.offsets
        assert first.status == second.status
        assert dict(first.summary()) == dict(second.summary())

    def test_anneal_seed_changes_are_explicit(self):
        base = make_scheduler("anneal").solve(gap_problem())
        reseeded = make_scheduler("anneal", seed=7).solve(gap_problem())
        # Different seeds may find different plans, but never worse status.
        assert reseeded.status in ("optimal", "feasible")
        assert base.required_queue_depth <= 3


class TestUnplanned:
    def test_everyone_in_slot_zero(self):
        flows = [_ts(i, 100_000, 64) for i in range(6)]
        schedule = CqfSchedule.for_flows(
            [f.period_ns for f in flows], SLOT_NS
        )
        problem = SchedulingProblem.from_flows(flows, schedule, 10**9)
        plan = make_scheduler("unplanned").solve(problem)
        assert plan.required_queue_depth == 6
        assert all(offset == 0 for offset in plan.offsets.values())
