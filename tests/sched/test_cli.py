"""The ``repro sched`` subcommand."""

import json

import pytest

from repro.cli import main

GAP_SCENARIO = {
    "name": "gap-point",
    "topology": {"kind": "star",
                 "talkers": ["talker0", "talker1", "talker2"],
                 "listener": "listener"},
    "flows": {"groups": [
        {"ts_count": 3, "period_us": 100, "size_bytes": 64},
        {"ts_count": 2, "period_us": 200, "size_bytes": 512},
    ]},
    "config": "derive",
    "slot_us": 50,
    "duration_ms": 2,
    "seed": 0,
}


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "gap.json"
    path.write_text(json.dumps(GAP_SCENARIO))
    return path


class TestSchedCommand:
    def test_exact_reports_optimality_proof(self, scenario_file, capsys):
        assert main(["sched", str(scenario_file),
                     "--backend", "exact", "--json"]) == 0
        out, err = capsys.readouterr()
        payload = json.loads(out)
        (plan,) = payload["plans"]
        assert plan["backend"] == "exact"
        assert plan["status"] == "optimal"
        assert plan["required_queue_depth"] == 2
        assert "proved peak 2" in err

    def test_compare_shows_greedy_gap(self, scenario_file, capsys):
        assert main(["sched", str(scenario_file),
                     "--compare", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_backend = {p["backend"]: p for p in payload["plans"]}
        greedy, exact = by_backend["greedy"], by_backend["exact"]
        # The shipped gap instance: greedy needs a strictly deeper queue
        # and therefore strictly more BRAM than the proven optimum.
        assert greedy["required_queue_depth"] > exact["required_queue_depth"]
        assert greedy["configured_queue_depth"] > (
            exact["configured_queue_depth"]
        )
        assert greedy["bram_kb"] > exact["bram_kb"]

    def test_table_output(self, scenario_file, capsys):
        assert main(["sched", str(scenario_file), "--compare"]) == 0
        out = capsys.readouterr().out
        assert "backend" in out and "BRAM Kb" in out
        assert "greedy" in out and "exact" in out

    def test_unknown_backend_exits_2(self, scenario_file, capsys):
        assert main(["sched", str(scenario_file),
                     "--backend", "cplex"]) == 2
        assert "cplex" in capsys.readouterr().err

    def test_backend_stanza_in_scenario_is_default(self, tmp_path, capsys):
        doc = dict(GAP_SCENARIO)
        doc["sched"] = {"backend": "exact"}
        path = tmp_path / "stanza.json"
        path.write_text(json.dumps(doc))
        assert main(["sched", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plans"][0]["backend"] == "exact"
