"""The legacy ITP surface: deprecation shims stay byte-compatible."""

import warnings

import pytest

from repro.core.units import ms
from repro.cqf.itp import ItpPlan, ItpPlanner, unplanned_plan
from repro.cqf.schedule import CqfSchedule
from repro.sched import SchedulingProblem, make_scheduler
from repro.traffic.flows import FlowSpec, TrafficClass

SCHEDULE = CqfSchedule(62_500, ms(10))


def _ts_flows(count):
    return [
        FlowSpec(i, TrafficClass.TS, "t", "l", 64, period_ns=ms(10))
        for i in range(count)
    ]


class TestShims:
    def test_itp_planner_warns(self):
        with pytest.warns(DeprecationWarning, match="make_scheduler"):
            ItpPlanner(SCHEDULE)

    def test_unplanned_plan_warns(self):
        with pytest.warns(DeprecationWarning, match="make_scheduler"):
            unplanned_plan(SCHEDULE, _ts_flows(4))

    def test_shim_matches_greedy_backend_byte_for_byte(self):
        flows = _ts_flows(300)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = ItpPlanner(SCHEDULE).plan(flows)
        problem = SchedulingProblem.from_flows(flows, SCHEDULE, 10**9)
        modern = make_scheduler("greedy").solve(problem).to_itp_plan()
        assert legacy.slot_frames == modern.slot_frames
        assert legacy.slot_bytes == modern.slot_bytes
        assert legacy.assignments == modern.assignments

    def test_unplanned_shim_matches_backend(self):
        flows = _ts_flows(16)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = unplanned_plan(SCHEDULE, flows)
        problem = SchedulingProblem.from_flows(flows, SCHEDULE, 10**9)
        modern = make_scheduler("unplanned").solve(problem).to_itp_plan()
        assert legacy.assignments == modern.assignments

    def test_plan_classes_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            plan = ItpPlan(SCHEDULE, slot_frames=[], slot_bytes=[])
            assert plan.required_queue_depth == 0


class TestLoadBalanceRatio:
    def test_empty_plan_is_level(self):
        plan = ItpPlan(SCHEDULE, slot_frames=[], slot_bytes=[])
        assert plan.load_balance_ratio() == 1.0

    def test_zero_ts_load_is_level(self):
        plan = ItpPlan(SCHEDULE, slot_frames=[0, 0, 0], slot_bytes=[0, 0, 0])
        assert plan.load_balance_ratio() == 1.0

    def test_sched_plan_matches_itp_semantics(self):
        flows = _ts_flows(160)
        problem = SchedulingProblem.from_flows(flows, SCHEDULE, 10**9)
        plan = make_scheduler("greedy").solve(problem)
        assert plan.load_balance_ratio() == 1.0
        assert plan.to_itp_plan().load_balance_ratio() == 1.0
