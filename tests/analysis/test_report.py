"""Paper-style table rendering."""

from repro.analysis.report import (
    render_series,
    render_table,
    render_table1,
    render_table3,
)
from repro.analysis.stats import SweepPoint, SweepSeries
from repro.core.presets import (
    bcm53154_config,
    linear_config,
    ring_config,
    star_config,
    table1_case1,
    table1_case2,
)
from repro.network.analyzer import LatencySummary


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len({len(l) for l in lines[1:]}) <= 2  # consistent width


class TestTable3:
    def test_contains_paper_numbers(self):
        text = render_table3(
            bcm53154_config().resource_report("Commercial (4 ports)"),
            [
                star_config().resource_report("Star"),
                linear_config().resource_report("Linear"),
                ring_config().resource_report("Ring"),
            ],
        )
        for token in ("10818Kb", "5778Kb", "3942Kb", "2106Kb",
                      "-46.59%", "-63.56%", "-80.53%", "1152Kb", "8640Kb"):
            assert token in text

    def test_one_row_per_resource_plus_total(self):
        text = render_table3(
            bcm53154_config().resource_report("C"),
            [ring_config().resource_report("R")],
        )
        lines = text.splitlines()
        # title + header + rule + 7 resources + total
        assert len(lines) == 11


class TestTable1:
    def test_contains_motivation_numbers(self):
        text = render_table1(
            table1_case1().resource_report("Case 1"),
            table1_case2().resource_report("Case 2"),
        )
        assert "2304Kb" in text and "1764Kb" in text


class TestSeries:
    def test_renders_points(self):
        series = SweepSeries("Fig 7(a)", "hops")
        summary = LatencySummary(10, 100_000, 150_000, 125_000.0, 1_000.0,
                                 150_000)
        series.add(SweepPoint(1, "1", summary, loss=0.0))
        text = render_series(series)
        assert "Fig 7(a)" in text
        assert "125.00" in text  # mean in us
        assert "0.0000" in text  # loss
