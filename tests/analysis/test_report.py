"""Paper-style table rendering."""

from repro.analysis.report import (
    render_series,
    render_table,
    render_table1,
    render_table3,
)
from repro.analysis.stats import SweepPoint, SweepSeries
from repro.core.presets import (
    bcm53154_config,
    linear_config,
    ring_config,
    star_config,
    table1_case1,
    table1_case2,
)
from repro.network.analyzer import LatencySummary


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len({len(l) for l in lines[1:]}) <= 2  # consistent width

    def test_cell_wider_than_header_widens_column(self):
        text = render_table(
            ["c", "v"],
            [["a_very_long_label_cell", "1"], ["x", "22"]],
        )
        header, rule, first, second = text.splitlines()
        # Data determines the column width: the second column of every
        # line starts at the same offset, past the long label.
        assert rule.startswith("-" * len("a_very_long_label_cell"))
        assert first.index("1") == second.index("22")
        assert header.index("v") == first.index("1")

    def test_extra_cells_beyond_headers_kept(self):
        text = render_table(["only"], [["a", "extra1", "extra2"]])
        assert "extra1" in text and "extra2" in text

    def test_no_trailing_whitespace(self):
        text = render_table(["wide header", "x"], [["a", "b"]], title="T")
        for line in text.splitlines():
            assert line == line.rstrip()


class TestTable3:
    def test_contains_paper_numbers(self):
        text = render_table3(
            bcm53154_config().resource_report("Commercial (4 ports)"),
            [
                star_config().resource_report("Star"),
                linear_config().resource_report("Linear"),
                ring_config().resource_report("Ring"),
            ],
        )
        for token in ("10818Kb", "5778Kb", "3942Kb", "2106Kb",
                      "-46.59%", "-63.56%", "-80.53%", "1152Kb", "8640Kb"):
            assert token in text

    def test_one_row_per_resource_plus_total(self):
        text = render_table3(
            bcm53154_config().resource_report("C"),
            [ring_config().resource_report("R")],
        )
        lines = text.splitlines()
        # title + header + rule + 7 resources + total
        assert len(lines) == 11


class TestTable1:
    def test_contains_motivation_numbers(self):
        text = render_table1(
            table1_case1().resource_report("Case 1"),
            table1_case2().resource_report("Case 2"),
        )
        assert "2304Kb" in text and "1764Kb" in text


class TestSeries:
    def test_renders_points(self):
        series = SweepSeries("Fig 7(a)", "hops")
        summary = LatencySummary(10, 100_000, 150_000, 125_000.0, 1_000.0,
                                 150_000)
        series.add(SweepPoint(1, "1", summary, loss=0.0))
        text = render_series(series)
        assert "Fig 7(a)" in text
        assert "125.00" in text  # mean in us
        assert "0.0000" in text  # loss


class TestRenderMetrics:
    def test_empty_histogram_renders_dashes(self):
        """A registered histogram with zero observations must render '-'
        for every percentile column instead of crashing on None."""
        from repro.analysis.report import render_metrics
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.histogram("latency_ns", buckets=(10, 100)).labels()
        registry.counter("frames_total").inc()
        text = render_metrics(registry.snapshot())
        histogram_line = next(
            line for line in text.splitlines()
            if line.startswith("latency_ns")
        )
        # count 0, then mean 0.00, then p50/p95/p99/max all '-'
        assert histogram_line.split()[-4:] == ["-", "-", "-", "-"]
        assert "frames_total" in text

    def test_no_metrics_placeholder(self):
        from repro.analysis.report import render_metrics

        assert render_metrics({}) == "(no metrics recorded)"

    def test_long_flow_labels_keep_columns_aligned(self):
        """Satellite fix: a flow name longer than the 'labels' header must
        widen that column for every row instead of breaking alignment."""
        from repro.analysis.report import render_metrics
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        long_flow = "sensor_array_back_left_redundant_path_b"
        registry.counter("frames_total").inc(3, flow=long_flow)
        registry.counter("frames_total").inc(7, flow="f0")
        text = render_metrics(registry.snapshot())
        lines = text.splitlines()
        long_line = next(l for l in lines if long_flow in l)
        short_line = next(l for l in lines if "flow=f0" in l)
        # The value column starts at the same offset on both rows, i.e.
        # the long label widened the column rather than shifting its row.
        assert long_line.index(" 3") == short_line.index(" 7")
        header = next(l for l in lines if l.startswith("counter"))
        rule = lines[lines.index(header) + 1]
        assert len(rule) >= len(long_line.rstrip())
        for line in lines:
            assert line == line.rstrip()


class TestRenderFaults:
    def _report(self, **overrides):
        from repro.faults.injector import FaultReport

        report = FaultReport(
            timeline=[{"time_ns": 10_000_000, "kind": "link_down",
                       "target": "sw0.p0", "detail": "sw0.p0->sw1 down"}],
            links={"sw0.p0->sw1": {"carried": 8, "blackholed": 16,
                                   "fault_lost": 0, "fault_corrupted": 0,
                                   "down_count": 1}},
            frer={"listener": {"eliminated": 8, "rogue": 0}},
        )
        for key, value in overrides.items():
            setattr(report, key, value)
        return report

    def test_sections_and_totals(self):
        from repro.analysis.report import render_faults

        text = render_faults(self._report())
        assert "Fault timeline" in text
        assert "sw0.p0->sw1 down" in text
        assert "Faulted links" in text
        assert "FRER recovery" in text
        assert "Frames lost in failover: 16" in text
        assert "eliminated 8 duplicates" in text

    def test_gptp_line(self):
        from repro.analysis.report import render_faults

        text = render_faults(self._report(gptp={
            "elections": 1, "failover_latencies_ns": [95_000_000],
            "grandmaster": "sw1", "max_abs_offset_ns": 40,
        }))
        assert "95.00ms failover" in text
        assert "grandmaster now sw1" in text

    def test_empty_timeline_placeholder(self):
        from repro.analysis.report import render_faults
        from repro.faults.injector import FaultReport

        text = render_faults(FaultReport())
        assert "(no events fired)" in text
        assert "Frames lost in failover: 0" in text
