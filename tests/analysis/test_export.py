"""CSV/JSON exporters."""

import csv
import json

from repro.analysis.export import (
    latencies_to_csv,
    latency_cdf,
    result_summary,
    series_to_csv,
    write_summary_json,
)
from repro.analysis.stats import SweepPoint, SweepSeries
from repro.core.presets import customized_config
from repro.core.units import ms
from repro.network.analyzer import LatencySummary
from repro.network.testbed import Testbed
from repro.network.topology import ring_topology
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import production_cell_flows


def _result():
    topology = ring_topology(switch_count=2, talkers=["talker0"])
    flows = production_cell_flows(["talker0"], "listener", flow_count=8)
    testbed = Testbed(topology, customized_config(1), flows, slot_ns=62_500)
    return testbed.run(duration_ns=ms(15))


class TestSeriesCsv:
    def test_rows_match_points(self, tmp_path):
        series = SweepSeries("s", "hops")
        summary = LatencySummary(5, 10, 30, 20.0, 2.0, 30)
        series.add(SweepPoint(1, "1", summary))
        series.add(SweepPoint(2, "2", summary))
        path = series_to_csv(series, tmp_path / "series.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "hops"
        assert len(rows) == 3
        assert rows[1][1] == "20.0"


class TestLatencyExports:
    def test_latencies_csv(self, tmp_path):
        result = _result()
        path = latencies_to_csv(result, TrafficClass.TS, tmp_path / "l.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["flow_id", "latency_ns"]
        assert len(rows) - 1 == result.analyzer.received(TrafficClass.TS)

    def test_cdf_monotone(self):
        cdf = latency_cdf([5, 1, 3, 2, 4], points=10)
        values = [p["latency_ns"] for p in cdf]
        assert values == sorted(values)
        assert cdf[0]["latency_ns"] == 1 and cdf[-1]["latency_ns"] == 5

    def test_cdf_empty(self):
        assert latency_cdf([]) == []


class TestSummary:
    def test_summary_structure(self):
        summary = result_summary(_result())
        assert summary["classes"]["TS"]["loss"] == 0.0
        assert summary["classes"]["TS"]["received"] > 0
        assert "mean_ns" in summary["classes"]["TS"]
        assert summary["classes"]["RC"] == {"received": 0, "loss": 0.0}
        assert summary["itp"]["max_frames_per_slot"] >= 1
        assert "sw0" in summary["switch_counters"]

    def test_summary_json_roundtrip(self, tmp_path):
        path = write_summary_json(_result(), tmp_path / "summary.json")
        data = json.loads(path.read_text())
        assert data["classes"]["TS"]["loss"] == 0.0
