"""ASCII gate timelines."""

import pytest

from repro.analysis.timeline import GateTimeline, gate_timeline, render_timeline
from repro.core.errors import SimulationError
from repro.core.presets import customized_config
from repro.core.units import ms
from repro.network.testbed import Testbed
from repro.network.topology import ring_topology
from repro.sim.trace import TraceRecord, Tracer
from repro.traffic.iec60802 import production_cell_flows


def _gate_record(time, name, direction, mask):
    return TraceRecord(
        time, "gate", f"{name} {direction}-gates", (("mask", f"{mask:08b}"),)
    )


class TestGateTimeline:
    def test_reconstructs_intervals(self):
        records = [
            _gate_record(0, "sw0.p0", "out", 0b1000_0000),
            _gate_record(100, "sw0.p0", "out", 0b0100_0000),
            _gate_record(200, "sw0.p0", "out", 0b1000_0000),
            _gate_record(300, "sw0.p0", "out", 0b0100_0000),
        ]
        timeline = gate_timeline(records, "sw0.p0", queue_id=7, until_ns=400)
        assert timeline.intervals == ((0, 100), (200, 300))
        assert timeline.open_at(50) and not timeline.open_at(150)
        assert timeline.total_open_ns() == 200

    def test_still_open_at_end(self):
        records = [_gate_record(0, "p", "out", 0x80)]
        timeline = gate_timeline(records, "p", 7, until_ns=500)
        assert timeline.intervals == ((0, 500),)

    def test_direction_filter(self):
        records = [
            _gate_record(0, "p", "in", 0x80),
            _gate_record(0, "p", "out", 0x00),
            _gate_record(100, "p", "in", 0x00),
        ]
        timeline = gate_timeline(records, "p", 7, until_ns=200, direction="in")
        assert timeline.intervals == ((0, 100),)

    def test_no_records_rejected(self):
        with pytest.raises(SimulationError, match="gate records"):
            gate_timeline([], "p", 7, until_ns=100)

    def test_bad_direction_rejected(self):
        with pytest.raises(SimulationError):
            gate_timeline([], "p", 7, 100, direction="sideways")


class TestRender:
    def test_cells_reflect_state(self):
        timeline = GateTimeline("p", 7, ((0, 500),))
        text = render_timeline([timeline], until_ns=1000, columns=10)
        row = text.splitlines()[1]
        cells = row.split()[-1]
        assert cells == "#####-----"

    def test_tx_marks(self):
        timeline = GateTimeline("p", 7, ((0, 1000),))
        text = render_timeline(
            [timeline], until_ns=1000, columns=10,
            tx_times={"tx": [50, 950]},
        )
        tx_row = text.splitlines()[-1]
        cells = tx_row.split()[-1]
        assert cells[0] == "T" and cells[-1] == "T" and cells[4] == "."

    def test_invalid_args(self):
        with pytest.raises(SimulationError):
            render_timeline([], until_ns=0)


class TestEndToEnd:
    def test_cqf_alternation_visible(self):
        """The traced testbed shows queues 6/7 alternating each slot."""
        tracer = Tracer(enabled={"gate"})
        topology = ring_topology(switch_count=2, talkers=["talker0"])
        flows = production_cell_flows(["talker0"], "listener", flow_count=8)
        testbed = Testbed(topology, customized_config(1), flows,
                          slot_ns=62_500, tracer=tracer)
        testbed.run(duration_ns=ms(2))
        q7 = gate_timeline(tracer.records, "sw0.p0", 7, ms(2))
        q6 = gate_timeline(tracer.records, "sw0.p0", 6, ms(2))
        # complementary halves of the cycle
        for time in range(0, ms(2) - 62_500, 10_000):
            assert q7.open_at(time) != q6.open_at(time)
        # each queue is open half the time
        assert q7.total_open_ns() == pytest.approx(ms(2) / 2, rel=0.1)
        text = render_timeline([q6, q7], until_ns=ms(2), columns=32)
        assert "#" in text and "-" in text
