"""Sweep series and shape checks."""

import pytest

from repro.core.errors import SimulationError
from repro.analysis.stats import SweepPoint, SweepSeries, relative_spread
from repro.network.analyzer import LatencySummary


def _point(x, mean, jitter=0.0, loss=0.0):
    count = 10
    summary = LatencySummary(
        count=count, min_ns=int(mean - jitter), max_ns=int(mean + jitter),
        mean_ns=mean, jitter_ns=jitter, p99_ns=int(mean + jitter),
    )
    return SweepPoint(x=x, label=str(x), summary=summary, loss=loss)


class TestSweepSeries:
    def _series(self, means, jitters=None):
        series = SweepSeries("s", "x")
        jitters = jitters or [0.0] * len(means)
        for i, (m, j) in enumerate(zip(means, jitters)):
            series.add(_point(i, m, j))
        return series

    def test_accessors(self):
        series = self._series([100.0, 200.0])
        assert series.xs == [0, 1]
        assert series.means_ns == [100.0, 200.0]
        assert series.losses == [0.0, 0.0]

    def test_monotonic_increasing(self):
        assert self._series([1.0, 2.0, 2.0, 5.0]).is_monotonic_increasing()
        assert not self._series([1.0, 3.0, 2.0]).is_monotonic_increasing()

    def test_monotonic_on_jitter(self):
        series = self._series([1.0, 1.0], jitters=[5.0, 2.0])
        assert not series.is_monotonic_increasing(key="jitter")

    def test_flatness(self):
        assert self._series([100.0, 101.0, 99.5]).is_flat(tolerance=0.05)
        assert not self._series([100.0, 150.0]).is_flat(tolerance=0.05)

    def test_scaling_factor(self):
        assert self._series([100.0, 400.0]).scaling_factor() == 4.0

    def test_scaling_factor_needs_two_points(self):
        with pytest.raises(SimulationError):
            self._series([100.0]).scaling_factor()

    def test_point_unit_helpers(self):
        point = _point(1, 62_500.0, jitter=500.0)
        assert point.mean_us == 62.5
        assert point.jitter_us == 0.5


class TestRelativeSpread:
    def test_constant_series(self):
        assert relative_spread([5.0, 5.0, 5.0]) == 0.0

    def test_spread(self):
        assert relative_spread([90.0, 110.0]) == pytest.approx(0.2)

    def test_zero_mean(self):
        assert relative_spread([0.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            relative_spread([])
