"""PI clock servo."""

from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.timesync.servo import PiServo


def _advance(sim, delta):
    sim.schedule(delta, lambda: None)
    sim.run()


class TestStepStage:
    def test_first_sample_steps(self):
        sim = Simulator()
        clock = LocalClock(sim, offset_ns=500_000)
        servo = PiServo(clock)
        servo.observe(clock.offset_from_perfect())
        assert clock.offset_from_perfect() == 0

    def test_large_error_resteps(self):
        sim = Simulator()
        clock = LocalClock(sim)
        servo = PiServo(clock, step_threshold_ns=10_000)
        servo.observe(0)
        clock.step(50_000)  # gross upset
        servo.observe(clock.offset_from_perfect())
        assert clock.offset_from_perfect() == 0


class TestSlewStage:
    def test_converges_on_constant_drift(self):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=25, offset_ns=123_456)
        servo = PiServo(clock)
        interval = 31_250_000
        for _ in range(60):
            ratio_base = clock.rate
            servo.observe(clock.offset_from_perfect(),
                          rate_ratio=1.0 / float(ratio_base))
            _advance(sim, interval)
        assert abs(clock.offset_from_perfect()) < 100

    def test_converges_without_rate_ratio(self):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=5)
        servo = PiServo(clock)
        interval = 31_250_000
        for _ in range(80):
            servo.observe(clock.offset_from_perfect())
            _advance(sim, interval)
        # PI alone tolerates small drift
        assert abs(clock.offset_from_perfect()) < 1_000

    def test_locked_indicator(self):
        sim = Simulator()
        clock = LocalClock(sim)
        servo = PiServo(clock)
        assert not servo.locked
        for _ in range(3):
            servo.observe(0)
        assert servo.locked

    def test_lock_lost_on_gross_error(self):
        sim = Simulator()
        servo = PiServo(LocalClock(sim))
        for _ in range(3):
            servo.observe(0)
        servo.observe(99_999)
        assert not servo.locked


class TestAntiWindup:
    def test_integral_clamped_under_sustained_offset(self):
        """Repeated sub-threshold offsets must not wind the integral past
        the clamp (regression: holdover used to accumulate a standing
        rate bias)."""
        sim = Simulator()
        clock = LocalClock(sim)
        servo = PiServo(clock, integral_limit_us=50.0)
        servo.observe(0)  # step stage consumed
        for _ in range(500):
            servo.observe(9_000)   # just below the 10 us step threshold
        assert abs(servo._integral_us) <= 50.0

    def test_step_resets_integral(self):
        sim = Simulator()
        clock = LocalClock(sim)
        servo = PiServo(clock)
        servo.observe(0)
        for _ in range(20):
            servo.observe(5_000)
        assert servo._integral_us != 0.0
        servo.observe(1_000_000)   # gross error: step path
        assert servo._integral_us == 0.0

    def test_holdover_then_reacquire_converges(self):
        """A grandmaster outage feeds the servo a stale constant offset;
        on reacquisition the loop must re-converge inside the paper's
        50 ns budget instead of slewing off on the wound-up integral."""
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=10)
        servo = PiServo(clock)
        interval = 31_250_000

        def advance():
            sim.schedule(interval, lambda: None)
            sim.run()

        for _ in range(60):   # normal discipline: locked
            servo.observe(clock.offset_from_perfect(),
                          rate_ratio=1.0 / float(clock.rate))
            advance()
        assert abs(clock.offset_from_perfect()) < 50
        for _ in range(30):   # outage: stale measurement, no rate ratio
            servo.observe(8_000)
            advance()
        for _ in range(60):   # reacquired
            servo.observe(clock.offset_from_perfect(),
                          rate_ratio=1.0 / float(clock.rate))
            advance()
        assert abs(clock.offset_from_perfect()) < 50
