"""PI clock servo."""

from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.timesync.servo import PiServo


def _advance(sim, delta):
    sim.schedule(delta, lambda: None)
    sim.run()


class TestStepStage:
    def test_first_sample_steps(self):
        sim = Simulator()
        clock = LocalClock(sim, offset_ns=500_000)
        servo = PiServo(clock)
        servo.observe(clock.offset_from_perfect())
        assert clock.offset_from_perfect() == 0

    def test_large_error_resteps(self):
        sim = Simulator()
        clock = LocalClock(sim)
        servo = PiServo(clock, step_threshold_ns=10_000)
        servo.observe(0)
        clock.step(50_000)  # gross upset
        servo.observe(clock.offset_from_perfect())
        assert clock.offset_from_perfect() == 0


class TestSlewStage:
    def test_converges_on_constant_drift(self):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=25, offset_ns=123_456)
        servo = PiServo(clock)
        interval = 31_250_000
        for _ in range(60):
            ratio_base = clock.rate
            servo.observe(clock.offset_from_perfect(),
                          rate_ratio=1.0 / float(ratio_base))
            _advance(sim, interval)
        assert abs(clock.offset_from_perfect()) < 100

    def test_converges_without_rate_ratio(self):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=5)
        servo = PiServo(clock)
        interval = 31_250_000
        for _ in range(80):
            servo.observe(clock.offset_from_perfect())
            _advance(sim, interval)
        # PI alone tolerates small drift
        assert abs(clock.offset_from_perfect()) < 1_000

    def test_locked_indicator(self):
        sim = Simulator()
        clock = LocalClock(sim)
        servo = PiServo(clock)
        assert not servo.locked
        for _ in range(3):
            servo.observe(0)
        assert servo.locked

    def test_lock_lost_on_gross_error(self):
        sim = Simulator()
        servo = PiServo(LocalClock(sim))
        for _ in range(3):
            servo.observe(0)
        servo.observe(99_999)
        assert not servo.locked
