"""gPTP synchronization domains."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.timesync.gptp import GptpConfig, SyncDomain


def _chain(sim, hops, drift_range=20.0, offset_range=1_000_000, seed=0,
           config=None):
    rng = random.Random(seed)
    domain = SyncDomain(sim, config or GptpConfig())
    domain.add_node("gm", LocalClock(sim))
    prev = "gm"
    for i in range(hops):
        clock = LocalClock(
            sim,
            drift_ppm=rng.uniform(-drift_range, drift_range),
            offset_ns=rng.randrange(-offset_range, offset_range),
        )
        name = f"sw{i}"
        domain.add_node(name, clock, parent=prev, link_delay_ns=500)
        prev = name
    return domain


class TestConvergence:
    def test_paper_precision_budget(self):
        """The paper's prototype: 'synchronization precision ... less than
        50ns'.  A 5-hop chain with +-20ppm drift must land under that."""
        sim = Simulator()
        domain = _chain(sim, hops=5)
        domain.start()
        sim.run(until=3_000_000_000)
        assert domain.max_abs_offset_ns() < 50
        assert domain.all_locked()

    def test_initial_offsets_stepped_out_quickly(self):
        sim = Simulator()
        domain = _chain(sim, hops=2, offset_range=10_000_000)
        domain.start()
        sim.run(until=500_000_000)
        assert domain.max_abs_offset_ns() < 1_000

    def test_path_delay_measured(self):
        sim = Simulator()
        domain = _chain(sim, hops=1, drift_range=0, offset_range=1)
        domain.start()
        sim.run(until=300_000_000)
        node = domain.nodes["sw0"]
        # true one-way delay is 500 ns; estimate within timestamp granularity
        assert node.path_delay_est_ns == pytest.approx(500, abs=16)

    def test_sync_counts_accumulate(self):
        sim = Simulator()
        config = GptpConfig(sync_interval_ns=10_000_000)
        domain = _chain(sim, hops=1, config=config)
        domain.start()
        sim.run(until=100_000_000)
        assert domain.nodes["sw0"].sync_count >= 9


class TestDomainConstruction:
    def test_duplicate_node_rejected(self):
        sim = Simulator()
        domain = SyncDomain(sim)
        domain.add_node("a", LocalClock(sim))
        with pytest.raises(ConfigurationError):
            domain.add_node("a", LocalClock(sim), parent="a")

    def test_two_grandmasters_rejected(self):
        sim = Simulator()
        domain = SyncDomain(sim)
        domain.add_node("a", LocalClock(sim))
        with pytest.raises(ConfigurationError):
            domain.add_node("b", LocalClock(sim))

    def test_unknown_parent_rejected(self):
        sim = Simulator()
        domain = SyncDomain(sim)
        domain.add_node("a", LocalClock(sim))
        with pytest.raises(ConfigurationError):
            domain.add_node("b", LocalClock(sim), parent="ghost")

    def test_start_without_grandmaster_rejected(self):
        with pytest.raises(ConfigurationError):
            SyncDomain(Simulator()).start()

    def test_double_start_rejected(self):
        sim = Simulator()
        domain = _chain(sim, hops=1)
        domain.start()
        with pytest.raises(ConfigurationError):
            domain.start()

    def test_offsets_relative_to_grandmaster(self):
        sim = Simulator()
        domain = _chain(sim, hops=2)
        offsets = domain.offsets_ns()
        assert offsets["gm"] == 0
        assert set(offsets) == {"gm", "sw0", "sw1"}


class TestBmcaFailover:
    def _ring_domain(self, sim):
        """A 4-node chain with extra adjacency so re-rooting has paths."""
        rng = random.Random(3)
        domain = SyncDomain(sim, GptpConfig(sync_interval_ns=10_000_000))
        domain.add_node("gm", LocalClock(sim), priority=0)
        prev = "gm"
        for i in range(3):
            clock = LocalClock(sim, drift_ppm=rng.uniform(-20, 20),
                               offset_ns=rng.randrange(-100_000, 100_000))
            domain.add_node(f"sw{i}", clock, parent=prev,
                            link_delay_ns=500, priority=i + 1)
            prev = f"sw{i}"
        return domain

    def test_failover_elects_best_priority(self):
        sim = Simulator()
        domain = self._ring_domain(sim)
        domain.start()
        sim.run(until=1_500_000_000)
        assert domain.grandmaster.name == "gm"
        domain.fail_node("gm")
        sim.run(until=2_000_000_000)
        assert domain.elections == 1
        assert domain.grandmaster.name == "sw0"  # next-best priority

    def test_survivors_relock_to_new_master(self):
        sim = Simulator()
        domain = self._ring_domain(sim)
        domain.start()
        sim.run(until=2_000_000_000)
        domain.fail_node("gm")
        sim.run(until=6_000_000_000)
        # offsets are now measured against the new grandmaster
        offsets = domain.offsets_ns()
        survivors = [n for n in offsets if n not in ("gm",)]
        assert all(abs(offsets[n]) < 100 for n in survivors)

    def test_failed_node_excluded_from_tree(self):
        sim = Simulator()
        domain = self._ring_domain(sim)
        domain.start()
        sim.run(until=1_000_000_000)
        domain.fail_node("gm")
        sim.run(until=2_000_000_000)
        new_gm = domain.grandmaster
        assert domain.nodes["gm"] not in new_gm.children
        assert new_gm.parent is None

    def test_no_election_while_master_alive(self):
        sim = Simulator()
        domain = self._ring_domain(sim)
        domain.start()
        sim.run(until=2_000_000_000)
        assert domain.elections == 0

    def test_all_failed_rejected(self):
        sim = Simulator()
        domain = self._ring_domain(sim)
        domain.start()
        for name in list(domain.nodes):
            domain.fail_node(name)
        with pytest.raises(ConfigurationError):
            sim.run(until=1_000_000_000)

    def test_fail_unknown_node_rejected(self):
        sim = Simulator()
        domain = self._ring_domain(sim)
        with pytest.raises(ConfigurationError):
            domain.fail_node("ghost")

    def test_restored_best_clock_retakes_mastership(self):
        """BMCA is preemptive: when the best-ranked clock returns, the next
        election hands the domain back to it."""
        sim = Simulator()
        domain = self._ring_domain(sim)
        domain.start()
        sim.run(until=1_500_000_000)
        domain.fail_node("gm")
        sim.run(until=2_500_000_000)
        assert domain.grandmaster.name == "sw0"
        domain.restore_node("gm")
        domain.fail_node("sw0")  # triggers another election
        sim.run(until=4_000_000_000)
        assert domain.grandmaster.name == "gm"
        # the survivors hang off gm again, skipping the failed sw0 only if
        # an alternate path exists -- here the chain breaks at sw0, so only
        # gm itself is reachable
        assert domain.nodes["gm"].parent is None

    def test_restored_node_rejoins_via_alternate_link(self):
        """With ring adjacency, re-rooting routes around the failed node."""
        sim = Simulator()
        domain = self._ring_domain(sim)
        domain.add_link("gm", "sw2", link_delay_ns=500)  # close the ring
        domain.start()
        sim.run(until=1_500_000_000)
        domain.fail_node("sw0")  # mid-chain failure, gm still master
        # force a re-root through an election: fail + restore gm quickly is
        # not needed -- the tree only re-roots on GM loss, so fail gm too
        domain.fail_node("gm")
        sim.run(until=2_500_000_000)
        assert domain.grandmaster.name == "sw1"
        # sw2 reaches sw1 directly; the ring link is available if needed
        assert domain.nodes["sw2"].parent is domain.nodes["sw1"]


class TestFailoverObservability:
    def _domain(self, sim):
        rng = random.Random(3)
        domain = SyncDomain(sim, GptpConfig(sync_interval_ns=10_000_000))
        domain.add_node("gm", LocalClock(sim), priority=0)
        prev = "gm"
        for i in range(3):
            clock = LocalClock(sim, drift_ppm=rng.uniform(-20, 20),
                               offset_ns=rng.randrange(-100_000, 100_000))
            domain.add_node(f"sw{i}", clock, parent=prev,
                            link_delay_ns=500, priority=i + 1)
            prev = f"sw{i}"
        return domain

    def test_failure_and_election_timestamps_recorded(self):
        sim = Simulator()
        domain = self._domain(sim)
        domain.start()
        sim.run(until=1_000_000_000)
        domain.fail_node("gm")
        failed_at = sim.now
        sim.run(until=2_000_000_000)
        assert domain.gm_failure_times_ns == [failed_at]
        assert len(domain.election_times_ns) == 1
        assert domain.election_times_ns[0] >= failed_at

    def test_failover_latency_pairs_failure_with_election(self):
        sim = Simulator()
        domain = self._domain(sim)
        domain.start()
        sim.run(until=1_000_000_000)
        domain.fail_node("gm")
        sim.run(until=2_000_000_000)
        latencies = domain.failover_latencies_ns()
        assert len(latencies) == 1
        # detection takes announce_timeout_intervals sync intervals
        assert latencies[0] >= 3 * 10_000_000

    def test_non_gm_failure_records_nothing(self):
        sim = Simulator()
        domain = self._domain(sim)
        domain.start()
        sim.run(until=1_000_000_000)
        domain.fail_node("sw2")  # a leaf, not the acting grandmaster
        sim.run(until=2_000_000_000)
        assert domain.gm_failure_times_ns == []
        assert domain.failover_latencies_ns() == []

    def test_restored_node_grafts_as_slave(self):
        """A restored non-best node must rejoin under a live alternate
        neighbor and re-discipline, not stay wired to its dead parent."""
        sim = Simulator()
        domain = self._domain(sim)
        domain.add_link("gm", "sw2", link_delay_ns=500)  # close the ring
        domain.start()
        sim.run(until=1_000_000_000)
        domain.fail_node("sw1")   # mid-chain: sw2's parent dies with it
        domain.fail_node("sw2")
        sim.run(until=1_500_000_000)
        domain.restore_node("sw2")
        node = domain.nodes["sw2"]
        assert node.parent is domain.nodes["gm"]  # the live ring neighbor
        assert node in node.parent.children
        assert node not in domain.nodes["sw1"].children
        sim.run(until=4_000_000_000)
        offsets = domain.offsets_ns()
        assert abs(offsets["sw2"]) < 100  # re-locked to the domain

    def test_restore_with_no_live_neighbor_keeps_free_running(self):
        sim = Simulator()
        domain = self._domain(sim)
        domain.start()
        sim.run(until=1_000_000_000)
        domain.fail_node("sw1")
        domain.fail_node("sw2")
        sim.run(until=1_500_000_000)
        domain.restore_node("sw2")  # only neighbor (sw1) is still dead
        # no live adjacency: the node waits for the topology to heal, and
        # the sync cascade must not resurrect it through its dead parent
        sync_count = domain.nodes["sw2"].sync_count
        sim.run(until=2_500_000_000)
        assert domain.nodes["sw2"].sync_count == sync_count

    def test_restore_is_idempotent_for_live_node(self):
        sim = Simulator()
        domain = self._domain(sim)
        domain.start()
        sim.run(until=500_000_000)
        parent_before = domain.nodes["sw1"].parent
        domain.restore_node("sw1")  # never failed: must be a no-op
        assert domain.nodes["sw1"].parent is parent_before
