"""CSR map generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigurationError
from repro.core.presets import bcm53154_config, ring_config
from repro.rtl.csr import (
    CsrMap,
    CsrWindow,
    build_csr_map,
    emit_c_header,
    emit_markdown,
)


class TestBuild:
    def test_windows_for_every_customized_table(self):
        csr = build_csr_map(ring_config())
        names = {w.name for w in csr.windows}
        assert {"id", "control", "status", "unicast_tbl", "class_tbl",
                "meter_tbl"} <= names
        assert "p0_in_gate_tbl" in names and "p0_cbs_tbl" in names
        assert "multicast_tbl" not in names  # size 0 in the preset

    def test_per_port_replication(self):
        csr = build_csr_map(bcm53154_config())  # 4 ports
        gate_windows = [w for w in csr.windows if "out_gate" in w.name]
        assert len(gate_windows) == 4
        assert {w.per_port_instance for w in gate_windows} == {0, 1, 2, 3}

    def test_entries_match_config(self):
        config = ring_config()
        csr = build_csr_map(config)
        assert csr.window("unicast_tbl").entries == config.unicast_size
        assert csr.window("p0_in_gate_tbl").entries == config.gate_size
        assert csr.window("class_tbl").entry_width_bits == 117

    def test_multiword_entries_widen_window(self):
        csr = build_csr_map(ring_config())
        unicast = csr.window("unicast_tbl")
        # 72b entries need 3 words each: 1024 entries -> >= 12 KiB window
        assert unicast.size_bytes >= 1024 * 3 * 4

    def test_no_overlaps_and_alignment(self):
        for config in (ring_config(), bcm53154_config()):
            csr = build_csr_map(config)
            csr.validate()  # raises on overlap/misalignment
            for window in csr.windows:
                assert window.offset % window.size_bytes == 0  # natural

    def test_multicast_window_when_sized(self):
        config = ring_config().with_updates(multicast_size=64)
        assert build_csr_map(config).window("multicast_tbl").entries == 64

    @settings(max_examples=20, deadline=None)
    @given(
        ports=st.integers(min_value=1, max_value=8),
        unicast=st.integers(min_value=1, max_value=4096),
        gate=st.integers(min_value=1, max_value=512),
    )
    def test_arbitrary_configs_valid(self, ports, unicast, gate):
        config = SwitchConfig(
            name="hyp", port_num=ports, unicast_size=unicast, gate_size=gate
        )
        csr = build_csr_map(config)
        csr.validate()
        assert csr.size_bytes > 0


class TestValidation:
    def test_overlap_detected(self):
        csr = CsrMap("bad", [
            CsrWindow("a", 0, 64, 1, 32, ""),
            CsrWindow("b", 32, 64, 1, 32, ""),
        ])
        with pytest.raises(ConfigurationError, match="overlap"):
            csr.validate()

    def test_misalignment_detected(self):
        csr = CsrMap("bad", [CsrWindow("a", 2, 64, 1, 32, "")])
        with pytest.raises(ConfigurationError, match="aligned"):
            csr.validate()

    def test_window_lookup(self):
        csr = build_csr_map(ring_config())
        with pytest.raises(KeyError):
            csr.window("ghost")


class TestEmission:
    def test_c_header_macros(self):
        csr = build_csr_map(ring_config())
        header = emit_c_header(csr)
        assert "#ifndef TSN_CSR_H" in header
        assert "TSN_CSR_UNICAST_TBL_OFFSET" in header
        assert "TSN_CSR_P0_OUT_GATE_TBL_ENTRIES 2u" in header
        assert header.count("#define") >= 3 * len(csr.windows)

    def test_markdown_rows(self):
        csr = build_csr_map(ring_config())
        text = emit_markdown(csr)
        assert "| `unicast_tbl` |" in text
        assert text.count("| `") == len(csr.windows)

    def test_customization_changes_only_numbers(self):
        small = emit_c_header(build_csr_map(ring_config()))
        big = emit_c_header(build_csr_map(bcm53154_config()))
        assert small != big
        assert "TSN_CSR_P3_CBS_TBL_OFFSET" in big  # 4th port exists
        assert "TSN_CSR_P3_CBS_TBL_OFFSET" not in small
