"""Structural RTL lint."""

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import TSNBuilder
from repro.core.config import SwitchConfig
from repro.core.errors import SynthesisError
from repro.core.presets import bcm53154_config, linear_config, ring_config
from repro.rtl.lint import lint_bundle, lint_text, parse_modules


def _emit(tmp_path, config):
    builder = TSNBuilder(platform="rtl")
    builder.customize(config)
    return builder.synthesize().emit_verilog(tmp_path)


class TestLintText:
    def test_clean_module(self):
        text = "module m (input wire a);\nassign b = a;\nendmodule\n"
        assert lint_text("m.v", text) == []

    def test_missing_endmodule(self):
        assert any(
            "endmodule" in v
            for v in lint_text("m.v", "module m (input wire a);\n")
        )

    def test_unbalanced_begin_end(self):
        text = ("module m (input wire c);\nalways @(posedge c) begin\n"
                "endmodule\n")
        assert any("begin" in v for v in lint_text("m.v", text))

    def test_unbalanced_parens(self):
        text = "module m (input wire a;\nendmodule\n"
        assert any("parentheses" in v for v in lint_text("m.v", text))

    def test_comments_ignored(self):
        text = ("module m (input wire a);\n"
                "// begin begin begin (((\n"
                "/* module nothing ) */\n"
                "endmodule\n")
        assert lint_text("m.v", text) == []


class TestParseModules:
    def test_ports_with_clog2_ranges(self):
        text = """
module m #(
    parameter N = 8
) (
    input  wire                   clk,
    input  wire [$clog2(N)-1:0]   sel,
    output reg  [N-1:0]           out
);
endmodule
"""
        info = parse_modules(text)[0]
        assert info.ports == {"clk", "sel", "out"}
        assert "N" in info.parameters

    def test_instances_and_connections(self):
        text = """
module child (input wire a, output wire b);
endmodule
module top (input wire x);
    wire y;
    child u_child (.a(x), .b(y));
endmodule
"""
        modules = {m.name: m for m in parse_modules(text)}
        assert modules["top"].instances == {"child": {"a", "b"}}


class TestLintBundle:
    @pytest.mark.parametrize(
        "config_factory", [ring_config, linear_config, bcm53154_config]
    )
    def test_generated_bundles_are_clean(self, tmp_path, config_factory):
        files = _emit(tmp_path, config_factory())
        assert lint_bundle([Path(f) for f in files]) == []

    @settings(max_examples=10, deadline=None)
    @given(
        port_num=st.integers(min_value=1, max_value=6),
        depth=st.integers(min_value=1, max_value=32),
    )
    def test_arbitrary_configs_lint_clean(self, port_num, depth):
        import tempfile

        config = SwitchConfig(
            name="hyp", port_num=port_num, queue_depth=depth,
            buffer_num=max(96, depth),
        )
        with tempfile.TemporaryDirectory() as out:
            files = _emit(Path(out), config)
            assert lint_bundle([Path(f) for f in files]) == []

    def test_bad_port_connection_detected(self, tmp_path):
        (tmp_path / "a.v").write_text(
            "module child (input wire a);\nendmodule\n"
        )
        (tmp_path / "b.v").write_text(
            "module top (input wire x);\n"
            "child u_child (.a(x), .ghost(x));\nendmodule\n"
        )
        violations = lint_bundle([tmp_path / "a.v", tmp_path / "b.v"])
        assert any("ghost" in v for v in violations)

    def test_unknown_module_detected(self, tmp_path):
        (tmp_path / "t.v").write_text(
            "module top (input wire x);\nmystery u_m (.p(x));\nendmodule\n"
        )
        violations = lint_bundle([tmp_path / "t.v"])
        assert any("unknown module" in v for v in violations)

    def test_missing_include_detected(self, tmp_path):
        (tmp_path / "t.v").write_text(
            '`include "nope.vh"\nmodule t (input wire x);\nendmodule\n'
        )
        violations = lint_bundle([tmp_path / "t.v"])
        assert any("nope.vh" in v for v in violations)

    def test_emit_raises_on_violation(self, tmp_path, monkeypatch):
        """If a template generator regresses, emission must fail loudly."""
        from repro.rtl import emit, modules

        monkeypatch.setattr(
            modules,
            "time_sync_v",
            lambda config: "module time_sync (input wire clk;\n",  # broken
        )
        monkeypatch.setattr(
            emit, "FILE_ORDER",
            tuple(
                (name, modules.time_sync_v if name == "time_sync.v" else gen)
                for name, gen in emit.FILE_ORDER
            ),
        )
        builder = TSNBuilder(platform="rtl")
        builder.customize(ring_config())
        with pytest.raises(SynthesisError, match="lint"):
            builder.synthesize().emit_verilog(tmp_path)
