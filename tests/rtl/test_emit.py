"""Generated Verilog bundle sanity."""

import json
import re

import pytest

from repro.core.builder import TSNBuilder
from repro.core.presets import bcm53154_config, ring_config
from repro.rtl import modules
from repro.rtl.emit import FILE_ORDER, emit_switch


def _model(config=None):
    builder = TSNBuilder(platform="rtl")
    builder.customize(config or ring_config())
    return builder.synthesize()


class TestEmission:
    def test_all_files_written(self, tmp_path):
        files = emit_switch(_model(), tmp_path)
        names = {f.name for f in files}
        expected = {name for name, _ in FILE_ORDER}
        assert expected <= names
        assert "filelist.f" in names and "manifest.json" in names

    def test_filelist_covers_sources(self, tmp_path):
        emit_switch(_model(), tmp_path)
        listed = (tmp_path / "filelist.f").read_text().split()
        assert "tsn_switch_top.v" in listed
        assert all(name.endswith(".v") for name in listed)

    def test_manifest_predicts_bram(self, tmp_path):
        emit_switch(_model(), tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["predicted_bram_kb"] == 2106
        assert manifest["config"]["queue_depth"] == 12

    def test_reemission_with_new_parameters_changes_only_numbers(self, tmp_path):
        emit_switch(_model(ring_config()), tmp_path / "a")
        emit_switch(_model(bcm53154_config()), tmp_path / "b")
        a = (tmp_path / "a" / "gate_ctrl.v").read_text()
        b = (tmp_path / "b" / "gate_ctrl.v").read_text()
        # fixed logic identical once parameter values are normalized away
        def strip_numbers(text):
            return re.sub(r"\b\d+\b", "N",
                          re.sub(r"configuration '.*'", "", text))
        assert strip_numbers(a) == strip_numbers(b)
        assert a != b


class TestVerilogShape:
    @pytest.mark.parametrize(
        "generator,module_name",
        [
            (modules.packet_switch_v, "packet_switch"),
            (modules.ingress_filter_v, "ingress_filter"),
            (modules.gate_ctrl_v, "gate_ctrl"),
            (modules.egress_sched_v, "egress_sched"),
            (modules.time_sync_v, "time_sync"),
            (modules.top_v, "tsn_switch_top"),
        ],
    )
    def test_module_blocks_balanced(self, generator, module_name):
        text = generator(ring_config())
        assert f"module {module_name}" in text
        # "endmodule" contains "module"; each module needs both tokens once
        # per instantiation of the declaring file.
        assert text.count("endmodule") >= 1
        declared = len(re.findall(r"^module\s", text, flags=re.MULTILINE))
        assert declared == text.count("endmodule")

    def test_no_unexpanded_format_braces(self):
        for name, generator in FILE_ORDER:
            text = generator(ring_config())
            # Verilog replication braces like {8{1'b1}} are fine; python
            # format leftovers like {config.queue_num} are not.
            assert "{config." not in text, name
            assert "{self." not in text, name

    def test_parameters_reflect_config(self):
        text = modules.gate_ctrl_v(ring_config())
        assert "parameter QUEUE_DEPTH = 12" in text
        assert "parameter GATE_SIZE   = 2" in text

    def test_params_header_macros(self):
        text = modules.params_header(bcm53154_config())
        assert "`define TSN_UNICAST_SIZE    16384" in text
        assert "`define TSN_BUFFER_NUM      128" in text
        # 11 resource parameters + 6 entry widths + the include guard
        assert text.count("`define TSN_") == 18

    def test_top_instantiates_per_port(self):
        text = modules.top_v(bcm53154_config())  # 4 ports
        assert text.count("gate_ctrl u_gate_ctrl_p") == 4
        assert text.count("egress_sched u_egress_sched_p") == 4
        assert "u_time_sync" in text and "u_packet_switch" in text


class TestConfigConsistency:
    """Generated RTL parameters must track arbitrary valid configs."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        port_num=st.integers(min_value=1, max_value=8),
        unicast=st.integers(min_value=1, max_value=4096),
        depth=st.integers(min_value=1, max_value=64),
        gate=st.integers(min_value=1, max_value=256),
    )
    def test_parameters_track_config(self, port_num, unicast, depth, gate):
        from repro.core.config import SwitchConfig

        config = SwitchConfig(
            name="hyp", port_num=port_num, unicast_size=unicast,
            gate_size=gate, queue_depth=depth,
            buffer_num=max(96, depth),
        )
        header = modules.params_header(config)
        assert f"`define TSN_PORT_NUM        {port_num}" in header
        assert f"`define TSN_UNICAST_SIZE    {unicast}" in header
        top = modules.top_v(config)
        assert top.count("gate_ctrl u_gate_ctrl_p") == port_num
        gc = modules.gate_ctrl_v(config)
        assert f"parameter QUEUE_DEPTH = {depth}" in gc
        assert f"parameter GATE_SIZE   = {gate}" in gc
