"""The in-tree PEP 517 build backend."""

import sys
import zipfile
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
import _build_backend as backend  # noqa: E402


class TestWheel:
    def test_build_wheel_contains_package(self, tmp_path):
        name = backend.build_wheel(str(tmp_path))
        assert name == "repro-0.1.0-py3-none-any.whl"
        with zipfile.ZipFile(tmp_path / name) as archive:
            names = archive.namelist()
            assert "repro/__init__.py" in names
            assert "repro/core/bram.py" in names
            # The optional kernel backend's C source rides along so the
            # installed package can compile it on demand.
            assert "repro/sim/_fastpath.c" in names
            assert "repro-0.1.0.dist-info/METADATA" in names
            assert "repro-0.1.0.dist-info/RECORD" in names

    def test_record_covers_every_file(self, tmp_path):
        name = backend.build_wheel(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as archive:
            record = archive.read("repro-0.1.0.dist-info/RECORD").decode()
            recorded = {line.split(",")[0] for line in record.splitlines()}
            assert recorded == set(archive.namelist())

    def test_record_hashes_verify(self, tmp_path):
        import base64
        import hashlib

        name = backend.build_wheel(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as archive:
            record = archive.read("repro-0.1.0.dist-info/RECORD").decode()
            for line in record.splitlines():
                path, digest, _ = line.split(",")
                if not digest:
                    continue
                data = archive.read(path)
                expected = base64.urlsafe_b64encode(
                    hashlib.sha256(data).digest()
                ).rstrip(b"=").decode()
                assert digest == f"sha256={expected}", path


class TestEditable:
    def test_editable_wheel_is_a_pth_pointer(self, tmp_path):
        name = backend.build_editable(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as archive:
            pth = archive.read("__editable__.repro.pth").decode().strip()
            assert pth.endswith("src")
            assert (Path(pth) / "repro" / "__init__.py").exists()
            assert "repro/__init__.py" not in archive.namelist()


class TestSdist:
    def test_sdist_contains_sources(self, tmp_path):
        import tarfile

        name = backend.build_sdist(str(tmp_path))
        with tarfile.open(tmp_path / name) as archive:
            names = archive.getnames()
            assert "repro-0.1.0/pyproject.toml" in names
            assert "repro-0.1.0/src/repro/__init__.py" in names
            assert "repro-0.1.0/src/repro/sim/_fastpath.c" in names
            assert not any("__pycache__" in n for n in names)
            # Compiled artifacts never belong in a source distribution.
            assert not any(n.endswith(".so") for n in names)


class TestHooks:
    def test_no_build_requirements(self):
        assert backend.get_requires_for_build_wheel() == []
        assert backend.get_requires_for_build_editable() == []
        assert backend.get_requires_for_build_sdist() == []

    def test_prepare_metadata(self, tmp_path):
        info = backend.prepare_metadata_for_build_wheel(str(tmp_path))
        assert info == "repro-0.1.0.dist-info"
        metadata = (tmp_path / info / "METADATA").read_text()
        assert "Name: repro" in metadata
