"""Gate-window elision equivalence: flip vs. table engines, frame for frame.

The table-mode :class:`repro.switch.gates.GateEngine` answers gate queries
from a precomputed window table and wakes the scheduler on demand, instead
of firing two events per GCL entry per cycle.  These tests lock the contract
that this is *only* an event-count optimization: on identical scenarios the
two disciplines must produce identical frame-level traces -- every latency
sample of every flow, every drop, duplicate and reorder -- across CQF and
Qbv gating, multi-switch topologies, and frame preemption.
"""

import pytest

from repro.network.scenario import ScenarioSpec

SCENARIOS = {
    "star_cqf": {
        "name": "star-eq",
        "topology": {
            "kind": "star",
            "talkers": ["talker0", "talker1"],
            "listener": "listener",
        },
        "flows": {
            "ts_count": 8,
            "period_us": 2000,
            "size_bytes": 64,
            "rc_mbps": 100,
            "be_mbps": 100,
        },
        "duration_ms": 8,
    },
    "ring_cqf": {
        "name": "ring-eq",
        "topology": {
            "kind": "ring",
            "switch_count": 3,
            "talkers": ["talker0"],
            "listener": "listener",
        },
        "flows": {
            "ts_count": 8,
            "period_us": 2000,
            "size_bytes": 64,
            "rc_mbps": 100,
            "be_mbps": 50,
        },
        "duration_ms": 8,
    },
    "linear_qbv": {
        "name": "linear-eq",
        "topology": {
            "kind": "linear",
            "switch_count": 2,
            "talkers": ["talker0"],
            "listener": "listener",
        },
        "flows": {"ts_count": 8, "period_us": 2000, "size_bytes": 128},
        "duration_ms": 8,
        "gate_mechanism": "qbv",
    },
    "star_preemption": {
        "name": "preempt-eq",
        "topology": {
            "kind": "star",
            "talkers": ["talker0", "talker1"],
            "listener": "listener",
        },
        "flows": {
            "ts_count": 8,
            "period_us": 2000,
            "size_bytes": 64,
            "rc_mbps": 200,
            "be_mbps": 300,
        },
        "duration_ms": 8,
        "preemption_enabled": True,
    },
}


def _frame_trace(doc, gate_events):
    spec = ScenarioSpec.from_dict({**doc, "gate_events": gate_events})
    result = spec.run()
    trace = {
        flow_id: (
            tuple(rec.latencies_ns),
            rec.deadline_misses,
            rec.duplicates,
            rec.reorders,
        )
        for flow_id, rec in sorted(result.analyzer.records.items())
    }
    return trace, result


@pytest.mark.parametrize("label", sorted(SCENARIOS))
def test_flip_and_table_traces_identical(label):
    doc = SCENARIOS[label]
    flip_trace, flip_result = _frame_trace(doc, "flip")
    table_trace, table_result = _frame_trace(doc, "table")
    assert flip_trace == table_trace
    # The equivalence is not vacuous: traffic actually flowed...
    assert any(latencies for latencies, *_ in flip_trace.values())
    # ...and the table engine really did elide events.
    assert (
        table_result.sim_stats["fired"] < flip_result.sim_stats["fired"]
    )


def test_auto_defaults_to_table_for_plain_scenarios():
    doc = SCENARIOS["star_cqf"]
    auto = _frame_trace(doc, "auto")[1]
    table = _frame_trace(doc, "table")[1]
    assert auto.sim_stats["fired"] == table.sim_stats["fired"]
