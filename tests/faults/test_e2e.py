"""Fault injection end-to-end: resilience claims under scripted faults.

The headline pair: a FRER ring survives a single trunk cut with zero
stream loss, while a star under the same cut loses frames and fails its
SLO -- with the losses attributed to the new drop reasons throughout the
observability stack.
"""

import json

import pytest

from repro.analysis.export import result_summary
from repro.network.scenario import ScenarioSpec
from repro.traffic.flows import TrafficClass


def _ring_doc(**faults_events):
    events = faults_events.get("events") or [
        {"kind": "link_down", "link": "sw0.p0", "at_us": 10_000},
    ]
    return {
        "name": "faults-frer-ring",
        "topology": {"kind": "frer_ring", "switch_count": 6,
                     "talkers": ["talker0"], "listener": "listener"},
        "flows": {"ts_count": 8, "period_us": 10000, "size_bytes": 64},
        "config": "derive",
        "slot_us": 62.5,
        "duration_ms": 30,
        "seed": 7,
        "frer_ts": True,
        "slo": {"class": {"TS": {"max_loss": 0.0}}},
        "faults": {"events": events},
    }


def _star_doc():
    return {
        "name": "faults-star",
        "topology": {"kind": "star", "talkers": ["talker0"],
                     "listener": "listener"},
        "flows": {"ts_count": 8, "period_us": 10000, "size_bytes": 64},
        "config": "derive",
        "slot_us": 62.5,
        "duration_ms": 30,
        "seed": 7,
        "slo": {"class": {"TS": {"max_loss": 0.0}}},
        "faults": {"events": [
            {"kind": "link_down", "link": "leaf0.p0", "at_us": 10_000},
        ]},
    }


class TestFrerRingSurvivesCut:
    @pytest.fixture(scope="class")
    def result(self):
        return ScenarioSpec.from_dict(_ring_doc()).run()

    def test_zero_stream_loss(self, result):
        assert result.ts_loss == 0.0
        assert result.slo is not None and result.slo.passed

    def test_fault_actually_destroyed_frames(self, result):
        report = result.faults
        assert report is not None
        stats = report.links["sw0.p0->sw1"]
        assert stats["blackholed"] > 0
        assert report.frames_lost_in_failover == stats["blackholed"]

    def test_frer_eliminated_surviving_duplicates(self, result):
        report = result.faults
        # before the cut both copies arrive; the second is eliminated
        assert report.frer["listener"]["eliminated"] > 0
        assert report.frer["listener"]["rogue"] == 0

    def test_drop_report_separates_elimination_from_loss(self, result):
        text = result.drop_report()
        assert "Link losses" in text
        assert "FRER elimination (not loss)" in text

    def test_summary_embeds_fault_digest(self, result):
        summary = result_summary(result)
        assert summary["faults"]["frames_lost_in_failover"] > 0
        assert summary["classes"]["TS"]["loss"] == 0.0


class TestStarLosesUnderSameCut:
    @pytest.fixture(scope="class")
    def result(self):
        return ScenarioSpec.from_dict(_star_doc()).run()

    def test_stream_loss_and_slo_failure(self, result):
        assert result.ts_loss > 0.0
        assert result.slo is not None and not result.slo.passed

    def test_loss_attributed_to_blackhole(self, result):
        stats = result.faults.links["leaf0.p0->listener"]
        assert stats["blackholed"] > 0
        # switch counters show no drops: the link ate the frames
        assert all(c["dropped_total"] == 0
                   for c in result.counters().values())


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def digest():
            result = ScenarioSpec.from_dict(_ring_doc()).run()
            latencies = {
                flow.flow_id: list(
                    result.analyzer.records[flow.flow_id].latencies_ns
                )
                for flow in result.flows.ts_flows
            }
            return json.dumps(
                {"latencies": latencies,
                 "faults": result.faults.as_dict(),
                 "counters": result.counters()},
                sort_keys=True,
            )

        assert digest() == digest()

    def test_partial_loss_burst_deterministic(self):
        doc = _ring_doc(events=[
            {"kind": "loss_burst", "link": "sw0.p0", "at_us": 2_000,
             "duration_us": 20_000, "rate": 0.5},
        ])

        def lost():
            result = ScenarioSpec.from_dict(doc).run()
            return result.faults.links["sw0.p0->sw1"]["fault_lost"]

        first, second = lost(), lost()
        assert first == second > 0


class TestCorruptionDrops:
    def test_corrupt_frames_counted_at_ingress(self):
        doc = _star_doc()
        doc["faults"] = {"events": [
            {"kind": "corrupt_burst", "link": "core.p0", "at_us": 5_000,
             "duration_us": 20_000},
        ]}
        result = ScenarioSpec.from_dict(doc).run()
        corrupted = result.faults.links["core.p0->leaf0"]["fault_corrupted"]
        assert corrupted > 0
        assert result.counters()["leaf0"]["dropped_corrupt"] == corrupted
        assert "corrupt" in result.drop_report()
        assert result.ts_loss > 0.0


class TestGrandmasterFailover:
    def test_gm_death_triggers_election(self):
        doc = _ring_doc(events=[
            {"kind": "gm_down", "node": "sw0", "at_us": 1_000},
        ])
        doc["enable_gptp"] = True
        doc["duration_ms"] = 300  # > announce timeout (3 x 31.25 ms)
        result = ScenarioSpec.from_dict(doc).run()
        gptp = result.faults.gptp
        assert gptp["elections"] >= 1
        assert gptp["grandmaster"] != "sw0"
        latencies = gptp["failover_latencies_ns"]
        assert len(latencies) == 1
        # detection needs 3 missed announce intervals of 31.25 ms
        assert 90_000_000 <= latencies[0] <= 200_000_000
        # the dataplane rode through the control-plane outage
        assert result.ts_loss == 0.0


class TestFaultsCli:
    def _write(self, tmp_path, doc):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(doc))
        return path

    def test_surviving_ring_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["faults", str(self._write(tmp_path, _ring_doc()))])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fault timeline" in out and "SLO: PASS" in out

    def test_failing_star_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["faults", str(self._write(tmp_path, _star_doc()))])
        out = capsys.readouterr().out
        assert code == 1
        assert "SLO: FAIL" in out

    def test_json_output(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["faults", "--json",
                     str(self._write(tmp_path, _ring_doc()))])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["faults"]["frames_lost_in_failover"] > 0
        assert payload["slo"]["passed"] is True

    def test_scenario_without_faults_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        doc = _ring_doc()
        del doc["faults"]
        code = main(["faults", str(self._write(tmp_path, doc))])
        assert code == 2
        assert "declares no 'faults'" in capsys.readouterr().err

    def test_bad_fault_target_reports_valid_names(self, tmp_path, capsys):
        from repro.cli import main

        doc = _ring_doc(events=[
            {"kind": "link_down", "link": "nope", "at_us": 1},
        ])
        code = main(["faults", str(self._write(tmp_path, doc))])
        assert code == 2
        assert "no link matches" in capsys.readouterr().err
