"""Fault-plan schema validation and normalization."""

import pytest

from repro.core.errors import ConfigurationError, SpecValidationError
from repro.faults.plan import FaultPlan, validate_faults_dict


def _plan(*events):
    return FaultPlan.from_dict({"events": list(events)})


class TestValidation:
    def test_non_mapping_stanza(self):
        assert validate_faults_dict([1, 2]) == [
            "faults: expected an object, got list"
        ]

    def test_unknown_stanza_key_suggested(self):
        problems = validate_faults_dict({"event": []})
        assert any("faults.event: unknown key" in p for p in problems)
        assert any("did you mean 'events'" in p for p in problems)

    def test_events_required(self):
        assert validate_faults_dict({}) == [
            "faults.events: required key is missing"
        ]

    def test_events_must_be_list(self):
        problems = validate_faults_dict({"events": {}})
        assert problems == ["faults.events: expected a list, got dict"]

    def test_unknown_kind_suggested(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "link_dwn", "link": "x", "at_us": 1}]}
        )
        assert len(problems) == 1
        assert "did you mean 'link_down'" in problems[0]

    def test_unknown_parameter_for_kind(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "link_down", "link": "x", "at_us": 1,
                         "rate": 0.5}]}
        )
        assert any("events[0].rate: unknown parameter" in p
                   for p in problems)

    def test_at_is_required(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "link_up", "link": "x"}]}
        )
        assert any("at: required" in p for p in problems)

    def test_at_us_and_at_ns_exclusive(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "link_up", "link": "x",
                         "at_us": 1, "at_ns": 1000}]}
        )
        assert any("either 'at_us' or 'at_ns', not both" in p
                   for p in problems)

    def test_negative_time_rejected(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "link_up", "link": "x", "at_us": -1}]}
        )
        assert any("must be >= 0" in p for p in problems)

    def test_boolean_time_rejected(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "link_up", "link": "x", "at_us": True}]}
        )
        assert any("expected a number" in p for p in problems)

    def test_duration_required_for_bursts(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "loss_burst", "link": "x", "at_us": 1}]}
        )
        assert any("duration: required" in p for p in problems)

    def test_zero_duration_rejected(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "loss_burst", "link": "x", "at_us": 1,
                         "duration_us": 0}]}
        )
        assert any("duration must be positive" in p for p in problems)

    @pytest.mark.parametrize("rate", [0, 0.0, 1.5, -0.1, True, "half"])
    def test_bad_rates_rejected(self, rate):
        problems = validate_faults_dict(
            {"events": [{"kind": "loss_burst", "link": "x", "at_us": 1,
                         "duration_us": 5, "rate": rate}]}
        )
        assert any(".rate:" in p for p in problems)

    def test_target_required(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "gm_down", "at_us": 1}]}
        )
        assert any("events[0].node: required" in p for p in problems)

    def test_clock_step_needs_integer_offset(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "clock_step", "node": "sw0", "at_us": 1,
                         "offset_ns": 1.5}]}
        )
        assert any("offset_ns: required, expected an integer" in p
                   for p in problems)

    def test_buffer_shrink_needs_positive_slots(self):
        problems = validate_faults_dict(
            {"events": [{"kind": "buffer_shrink", "switch": "sw0",
                         "at_us": 1, "slots": 0}]}
        )
        assert any("slots: must be >= 1" in p for p in problems)

    def test_all_problems_reported_at_once(self):
        with pytest.raises(SpecValidationError) as err:
            _plan(
                {"kind": "loss_burst", "link": "a", "at_us": 1},
                {"kind": "nope", "at_us": 1},
            )
        message = str(err.value)
        assert "events[0]" in message and "events[1]" in message


class TestFaultPlan:
    def test_empty_events_rejected(self):
        with pytest.raises(ConfigurationError, match="no events"):
            FaultPlan.from_dict({"events": []})

    def test_events_sorted_by_time(self):
        plan = _plan(
            {"kind": "link_up", "link": "b", "at_us": 20},
            {"kind": "link_down", "link": "a", "at_us": 10},
        )
        assert [e.kind for e in plan] == ["link_down", "link_up"]

    def test_us_and_ns_forms_equivalent(self):
        a = _plan({"kind": "link_down", "link": "x", "at_us": 5,
                   "duration_us": 2})
        b = _plan({"kind": "link_down", "link": "x", "at_ns": 5000,
                   "duration_ns": 2000})
        assert a.events == b.events

    def test_horizon_spans_longest_window(self):
        plan = _plan(
            {"kind": "link_down", "link": "a", "at_us": 1,
             "duration_us": 100},
            {"kind": "link_up", "link": "b", "at_us": 50},
        )
        assert plan.horizon_ns == 101_000

    def test_end_ns_only_with_duration(self):
        plan = _plan(
            {"kind": "link_down", "link": "a", "at_us": 1},
            {"kind": "buffer_shrink", "switch": "s", "at_us": 2,
             "duration_us": 3, "slots": 4},
        )
        persistent, windowed = plan.events
        assert persistent.end_ns is None
        assert windowed.end_ns == 5_000

    def test_to_dict_roundtrip(self):
        plan = _plan(
            {"kind": "corrupt_burst", "link": "a", "at_us": 3,
             "duration_us": 2, "rate": 0.25},
            {"kind": "freq_step", "node": "sw1", "at_us": 1,
             "drift_ppm": 40},
            {"kind": "clock_step", "node": "sw2", "at_us": 2,
             "offset_ns": -500},
        )
        assert FaultPlan.from_dict(plan.to_dict()).events == plan.events

    def test_describe_mentions_parameters(self):
        plan = _plan(
            {"kind": "loss_burst", "link": "a", "at_us": 1,
             "duration_us": 2, "rate": 0.5},
            {"kind": "buffer_shrink", "switch": "s", "at_us": 3,
             "slots": 8},
        )
        described = " | ".join(e.describe() for e in plan)
        assert "rate=0.5" in described and "slots=8" in described
