"""FaultInjector: scheduling, application windows, and reporting."""

import pytest

from repro.core.errors import ConfigurationError
from repro.faults.injector import FAULT_EVENT_PRIORITY, FaultInjector
from repro.faults.plan import FaultPlan
from repro.network.link import Link
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.switch.gates import GATE_EVENT_PRIORITY
from repro.sim.rng import RngFactory
from repro.switch.packet import EthernetFrame, make_mac
from repro.switch.queueing import BufferPool


class _Port:
    """Stand-in egress port: hands frames straight to the link."""

    def attach(self, carry):
        self.send = carry


class _Switch:
    """Stand-in switch: just the attributes the injector touches."""

    def __init__(self, sim, pools):
        self.clock = LocalClock(sim)
        self.ports = [
            type("P", (), {"pool": pool})() for pool in pools
        ]


def _frame(seq=0):
    return EthernetFrame(make_mac(1), make_mac(2), 1, 7, 64,
                         flow_id=1, seq=seq)


def _link(sim, name="sw0.p0->sw1", sink=None):
    port = _Port()
    receive = sink.append if isinstance(sink, list) else (lambda f: None)
    link = Link(sim, port, receive, name=name)
    return link, port


def _injector(sim, plan_events, links=(), switches=None, sync_domain=None,
              seed=0):
    plan = FaultPlan.from_dict({"events": list(plan_events)})
    return FaultInjector(
        plan, sim, links=links, switches=switches or {},
        rng=RngFactory(seed), sync_domain=sync_domain,
    )


class TestResolution:
    def test_unknown_link_lists_names(self):
        sim = Simulator()
        link, _ = _link(sim)
        with pytest.raises(ConfigurationError,
                           match=r"no link matches 'ghost'.*sw0\.p0->sw1"):
            _injector(sim, [{"kind": "link_down", "link": "ghost",
                             "at_us": 1}], links=[link])

    def test_unique_prefix_resolves(self):
        sim = Simulator()
        link, _ = _link(sim)
        injector = _injector(sim, [{"kind": "link_down", "link": "sw0.p0",
                                    "at_us": 1}], links=[link])
        assert injector._resolved[0] is link

    def test_ambiguous_prefix_rejected(self):
        sim = Simulator()
        a, _ = _link(sim, "sw0.p0->sw1")
        b, _ = _link(sim, "sw0.p1->sw2")
        with pytest.raises(ConfigurationError, match="ambiguous"):
            _injector(sim, [{"kind": "link_down", "link": "sw0",
                             "at_us": 1}], links=[a, b])

    def test_unknown_switch_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError, match="unknown switch"):
            _injector(sim, [{"kind": "buffer_shrink", "switch": "sw9",
                             "at_us": 1, "slots": 2}],
                      switches={"sw0": _Switch(sim, [BufferPool(4)])})

    def test_gm_fault_without_gptp_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError, match="needs gPTP"):
            _injector(sim, [{"kind": "gm_down", "node": "sw0",
                             "at_us": 1}])

    def test_arming_twice_rejected(self):
        sim = Simulator()
        link, _ = _link(sim)
        injector = _injector(sim, [{"kind": "link_down", "link": "sw0",
                                    "at_us": 1}], links=[link])
        injector.arm(0)
        with pytest.raises(ConfigurationError, match="already armed"):
            injector.arm(0)


class TestLinkWindows:
    def test_down_window_blackholes_then_restores(self):
        sim = Simulator()
        delivered = []
        link, port = _link(sim, sink=delivered)
        injector = _injector(
            sim,
            [{"kind": "link_down", "link": "sw0", "at_us": 10,
              "duration_us": 10}],
            links=[link],
        )
        injector.arm(0)
        for at_us in (5, 15, 25):
            sim.schedule(at_us * 1000, lambda: port.send(_frame()))
        sim.run()
        assert len(delivered) == 2
        assert link.fault_counters()["blackholed"] == 1
        assert link.fault_counters()["down_count"] == 1
        assert link.up

    def test_fault_start_is_relative_to_arm_time(self):
        sim = Simulator()
        link, port = _link(sim)
        injector = _injector(
            sim, [{"kind": "link_down", "link": "sw0", "at_us": 10}],
            links=[link],
        )
        injector.arm(1_000_000)  # traffic starts at t=1ms
        sim.schedule(1_005_000, lambda: port.send(_frame()))  # at+5us: up
        sim.run()
        assert link.frames_blackholed == 0
        assert not link.up

    def test_full_loss_burst_consumes_no_rng(self):
        sim = Simulator()
        link, port = _link(sim)
        injector = _injector(
            sim,
            [{"kind": "loss_burst", "link": "sw0", "at_us": 0,
              "duration_us": 10}],  # defaults to rate 1.0
            links=[link],
        )
        injector.arm(0)
        sim.schedule(5_000, lambda: port.send(_frame()))
        sim.run()
        assert link.frames_fault_lost == 1
        assert link._fault_loss_rate == 0.0  # window closed

    def test_partial_loss_burst_is_seeded_and_deterministic(self):
        def run(seed):
            sim = Simulator()
            link, port = _link(sim)
            injector = _injector(
                sim,
                [{"kind": "loss_burst", "link": "sw0", "at_us": 0,
                  "duration_us": 1000, "rate": 0.5}],
                links=[link], seed=seed,
            )
            injector.arm(0)
            for i in range(100):
                sim.schedule(1 + i, lambda: port.send(_frame()))
            sim.run()
            return link.frames_fault_lost

        first, second = run(7), run(7)
        assert first == second
        assert 0 < first < 100

    def test_corrupt_burst_delivers_bad_fcs(self):
        sim = Simulator()
        delivered = []
        link, port = _link(sim, sink=delivered)
        injector = _injector(
            sim,
            [{"kind": "corrupt_burst", "link": "sw0", "at_us": 0,
              "duration_us": 10}],
            links=[link],
        )
        injector.arm(0)
        sim.schedule(5_000, lambda: port.send(_frame()))
        sim.schedule(20_000, lambda: port.send(_frame()))
        sim.run()
        assert [f.fcs_ok for f in delivered] == [False, True]
        assert link.frames_fault_corrupted == 1


class TestClockAndBufferFaults:
    def test_clock_step_moves_phase(self):
        sim = Simulator()
        switch = _Switch(sim, [BufferPool(4)])
        injector = _injector(
            sim,
            [{"kind": "clock_step", "node": "sw0", "at_us": 1,
              "offset_ns": 750}],
            switches={"sw0": switch},
        )
        injector.arm(0)
        sim.run()
        assert switch.clock.offset_from_perfect() == 750

    def test_freq_step_changes_drift(self):
        sim = Simulator()
        switch = _Switch(sim, [BufferPool(4)])
        injector = _injector(
            sim,
            [{"kind": "freq_step", "node": "sw0", "at_us": 1,
              "drift_ppm": 40.0}],
            switches={"sw0": switch},
        )
        injector.arm(0)
        sim.run()
        assert switch.clock.drift_ppm == 40.0

    def test_buffer_shrink_window(self):
        sim = Simulator()
        pool = BufferPool(8)
        switch = _Switch(sim, [pool, pool])  # shared pool listed twice
        injector = _injector(
            sim,
            [{"kind": "buffer_shrink", "switch": "sw0", "at_us": 10,
              "duration_us": 10, "slots": 5}],
            switches={"sw0": switch},
        )
        injector.arm(0)
        observed = {}
        sim.schedule(15_000, lambda: observed.update(mid=pool.free_count))
        sim.schedule(25_000, lambda: observed.update(after=pool.free_count))
        sim.run()
        # the shared pool is deduplicated: 5 seized, not 10
        assert observed == {"mid": 3, "after": 8}

    def test_persistent_shrink_never_restores(self):
        sim = Simulator()
        pool = BufferPool(4)
        switch = _Switch(sim, [pool])
        injector = _injector(
            sim,
            [{"kind": "buffer_shrink", "switch": "sw0", "at_us": 1,
              "slots": 3}],
            switches={"sw0": switch},
        )
        injector.arm(0)
        sim.run()
        assert pool.free_count == 1


class TestReporting:
    def test_timeline_and_counters(self):
        sim = Simulator()
        link, port = _link(sim)
        injector = _injector(
            sim,
            [{"kind": "link_down", "link": "sw0", "at_us": 10,
              "duration_us": 5}],
            links=[link],
        )
        injector.arm(0)
        sim.schedule(12_000, lambda: port.send(_frame()))
        sim.run()
        report = injector.report()
        kinds = [(e["kind"], e["detail"]) for e in report.timeline]
        assert kinds == [
            ("link_down", "sw0.p0->sw1 down"),
            ("link_down", "sw0.p0->sw1 up (auto)"),
        ]
        assert report.links["sw0.p0->sw1"]["blackholed"] == 1
        assert report.frames_lost_in_failover == 1
        assert report.as_dict()["frames_lost_in_failover"] == 1

    def test_priority_beats_gate_events(self):
        assert FAULT_EVENT_PRIORITY < GATE_EVENT_PRIORITY
