"""BRAM allocator: the cost model behind every table in Tables I and III."""

import pytest
from hypothesis import given, strategies as st

from repro.core import bram
from repro.core.errors import ConfigurationError


class TestPaperFigures:
    """Every table/queue shape the paper reports, bit-exact."""

    @pytest.mark.parametrize(
        "width,depth,expected_kb",
        [
            (72, 16 * 1024, 1152),  # commercial switch table
            (72, 1024, 72),         # customized switch table
            (117, 1024, 126),       # classification table
            (68, 512, 36),          # commercial meter table
            (68, 1024, 72),         # customized meter table
            (17, 2, 18),            # CQF gate table (minimum one primitive)
            (32, 16, 18),           # queue, commercial depth
            (32, 12, 18),           # queue, customized depth
        ],
    )
    def test_shape_cost(self, width, depth, expected_kb):
        assert bram.bram_kb(width, depth) == expected_kb

    def test_buffer_slot_cost(self):
        # 128 slots -> 2160 Kb/port and 96 slots -> 1620 Kb/port.
        assert bram.buffer_pool_bits(128, 1) == 2160 * 1024
        assert bram.buffer_pool_bits(96, 1) == 1620 * 1024
        assert bram.buffer_pool_bits(128, 4) == 8640 * 1024
        assert bram.buffer_pool_bits(96, 3) == 4860 * 1024

    def test_buffer_slot_constant_decomposition(self):
        assert bram.BUFFER_SLOT_COST_BITS == (2048 + 112) * 8


class TestAllocator:
    def test_picks_cheapest_aspect(self):
        # 117b x 1024: 7 RAMB18 (1Kx18) at 126Kb beats 4 RAMB36 at 144Kb.
        alloc = bram.allocate(117, 1024)
        assert alloc.aspect.primitive_kb == 18
        assert alloc.aspect.depth == 1024
        assert alloc.blocks == 7

    def test_minimum_one_primitive(self):
        assert bram.allocate(1, 1).bits == 18 * 1024

    def test_wide_shallow_uses_512x72(self):
        alloc = bram.allocate(72, 512)
        assert alloc.blocks == 1
        assert alloc.kb == 36

    def test_utilization(self):
        alloc = bram.allocate(72, 16 * 1024)
        assert alloc.utilization == 1.0  # perfect packing
        sparse = bram.allocate(17, 2)
        assert sparse.utilization == pytest.approx(34 / (18 * 1024))

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            bram.allocate(0, 8)
        with pytest.raises(ConfigurationError):
            bram.allocate(8, -1)

    def test_str_is_informative(self):
        text = str(bram.allocate(117, 1024))
        assert "117b x 1024" in text and "126Kb" in text

    def test_pareto_sorted(self):
        candidates = bram.pareto_aspects(117, 1024)
        costs = [c.bits for c in candidates]
        assert costs == sorted(costs)
        assert candidates[0].kb == 126


class TestNaiveAllocator:
    def test_never_cheaper_than_optimal(self):
        for width, depth in [(117, 1024), (17, 2), (68, 512), (32, 12)]:
            assert (
                bram.naive_allocate(width, depth).bits
                >= bram.allocate(width, depth).bits
            )

    def test_classification_penalty(self):
        # The ablation's headline case: 144Kb naive vs 126Kb optimal.
        assert bram.naive_allocate(117, 1024).kb == 144


class TestAllocatorProperties:
    shapes = st.tuples(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=64 * 1024),
    )

    @given(shapes)
    def test_covers_logical_bits(self, shape):
        width, depth = shape
        alloc = bram.allocate(width, depth)
        # The chosen grid must physically hold the logical memory.
        cols = -(-width // alloc.aspect.width)
        rows = -(-depth // alloc.aspect.depth)
        assert cols * alloc.aspect.width >= width
        assert rows * alloc.aspect.depth >= depth
        assert alloc.blocks == cols * rows

    @given(shapes)
    def test_cost_at_least_logical(self, shape):
        width, depth = shape
        alloc = bram.allocate(width, depth)
        assert alloc.bits >= width * depth

    @given(shapes)
    def test_monotone_in_depth(self, shape):
        width, depth = shape
        assert bram.bram_bits(width, depth + 1) >= bram.bram_bits(width, depth)

    @given(shapes)
    def test_monotone_in_width(self, shape):
        width, depth = shape
        assert bram.bram_bits(width + 1, depth) >= bram.bram_bits(width, depth)

    @given(shapes)
    def test_optimal_beats_naive(self, shape):
        width, depth = shape
        assert (
            bram.allocate(width, depth).bits
            <= bram.naive_allocate(width, depth).bits
        )
