"""Resource-parameter optimization (the paper's Section V future work)."""

import pytest

from repro.core.errors import SchedulingError
from repro.core.optimizer import MIN_SLOT_NS, optimize
from repro.core.presets import ring_config
from repro.core.sizing import derive_config
from repro.core.units import ms
from repro.network.topology import ring_topology
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass
from repro.traffic.iec60802 import production_cell_flows


def _flows(count=512, size=64, deadline_ns=None):
    flows = FlowSet()
    for i in range(count):
        flows.add(
            FlowSpec(i, TrafficClass.TS, f"t{i % 3}", "listener", size,
                     period_ns=ms(10), deadline_ns=deadline_ns)
        )
    return flows


def _topo():
    return ring_topology(6, talkers=["t0", "t1", "t2"])


@pytest.fixture(scope="module")
def plain_result():
    """Shared search on the default workload (the searches are the slow
    part of this module; results are immutable)."""
    return optimize(_topo(), _flows())


@pytest.fixture(scope="module")
def deadline_result():
    return optimize(_topo(), _flows(deadline_ns=ms(1)))


class TestOptimize:
    def test_beats_the_guideline_configuration(self, deadline_result):
        """Smaller slots shrink queue depth and buffers below the paper's
        62.5us operating point while meeting every deadline."""
        result = deadline_result
        guideline = ring_config().total_bram_kb
        assert result.best.total_bram_kb < guideline
        assert result.best.config.queue_depth < ring_config().queue_depth

    def test_deadline_constrains_slot(self, deadline_result):
        result = deadline_result
        # Eq.(1): (6+1) * slot <= 1 ms
        assert 7 * result.best.slot_ns <= ms(1)
        for point in result.pareto:
            assert 7 * point.slot_ns <= ms(1)

    def test_no_deadline_allows_any_slot(self, plain_result):
        result = plain_result
        assert result.best.slot_ns >= MIN_SLOT_NS

    def test_min_slot_floor(self, plain_result):
        result = plain_result
        assert result.best.slot_ns >= MIN_SLOT_NS

    def test_large_frames_reject_small_slots(self):
        """1500B frames don't fit the smallest slots' ITP budget -- the
        rejected list and the Pareto frontier show the trade-off."""
        result = optimize(_topo(), _flows(count=256, size=1500))
        assert result.rejected_slots  # some slots were ITP-infeasible
        assert result.best.slot_ns > MIN_SLOT_NS

    def test_aggregation_shrinks_switch_table(self):
        # 1024 flows: the per-flow table needs 72Kb while the aggregated
        # one fits a single primitive (smaller counts are swallowed by
        # BRAM quantization -- 512 and 1 entries both round to one block)
        plain = optimize(_topo(), _flows(count=1024))
        aggregated = optimize(_topo(), _flows(count=1024),
                              aggregate_switch_entries=True)
        assert aggregated.best.config.unicast_size == 1  # one destination
        assert aggregated.best.total_bram_kb < plain.best.total_bram_kb
        # classification stays per-flow (the VID key cannot aggregate)
        assert aggregated.best.config.class_size == 1024

    def test_pareto_is_nondominated_and_sorted(self):
        result = optimize(_topo(), _flows(count=256, size=1500))
        points = result.pareto
        for a in points:
            for b in points:
                if a is not b:
                    assert not a.dominates(b) or not b.dominates(a)
        latencies = [p.worst_latency_ns for p in points]
        assert latencies == sorted(latencies)

    def test_best_is_feasible_sizing(self, plain_result):
        result = plain_result
        config = result.best.config
        config.validate()
        # re-deriving at the chosen slot reproduces the same depth bound
        rederived = derive_config(_topo(), _flows(), result.best.slot_ns)
        assert rederived.required_queue_depth == result.best.required_queue_depth

    def test_impossible_deadline_rejected(self):
        with pytest.raises(SchedulingError, match="deadline"):
            optimize(_topo(), _flows(deadline_ns=50_000))  # < 7 x min slot

    def test_needs_ts_flows(self):
        with pytest.raises(SchedulingError):
            optimize(_topo(), FlowSet())

    def test_explicit_max_hops(self, deadline_result):
        relaxed = optimize(_topo(), _flows(deadline_ns=ms(1)), max_hops=2)
        # fewer hops -> larger slots admissible than at the full 6 hops
        assert max(p.slot_ns for p in relaxed.pareto) >= max(
            p.slot_ns for p in deadline_result.pareto
        )
