"""SwitchConfig validation, resource view, and serialization."""

import pytest

from repro.core.config import EntryWidths, SwitchConfig
from repro.core.errors import ConfigurationError
from repro.core.presets import bcm53154_config, ring_config


class TestValidation:
    def test_default_is_valid(self):
        SwitchConfig().validate()

    @pytest.mark.parametrize(
        "field",
        [
            "port_num",
            "unicast_size",
            "class_size",
            "meter_size",
            "gate_size",
            "queue_num",
            "cbs_map_size",
            "cbs_size",
            "queue_depth",
            "buffer_num",
        ],
    )
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ConfigurationError):
            SwitchConfig(**{field: 0}).validate()

    def test_multicast_zero_allowed(self):
        SwitchConfig(multicast_size=0).validate()

    def test_multicast_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchConfig(multicast_size=-1).validate()

    def test_cbs_map_exceeding_queues_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchConfig(cbs_map_size=9, queue_num=8).validate()

    def test_buffers_below_one_queue_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchConfig(queue_depth=100, buffer_num=50).validate()

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchConfig(widths=EntryWidths(gate_tbl=0)).validate()


class TestResourceView:
    def test_multicast_table_omitted_when_zero(self):
        names = [t.name for t in SwitchConfig(multicast_size=0).table_resources()]
        assert "Multicast Tbl" not in names

    def test_multicast_table_present_when_sized(self):
        config = SwitchConfig(multicast_size=256)
        table = next(
            t for t in config.table_resources() if t.name == "Multicast Tbl"
        )
        assert table.size == 256

    def test_gate_table_instances(self):
        config = SwitchConfig(port_num=3)
        gate = next(t for t in config.table_resources() if t.name == "Gate Tbl")
        assert gate.instances == 6  # in + out per port

    def test_report_rows_cover_all_resources(self):
        report = ring_config().resource_report()
        names = {row.resource for row in report.rows}
        assert names == {
            "Switch Tbl",
            "Class. Tbl",
            "Meter Tbl",
            "Gate Tbl",
            "CBS Tbl",
            "Queues",
            "Buffers",
        }

    def test_report_parameters_mirror_api_inputs(self):
        report = bcm53154_config().resource_report()
        assert report.row("Gate Tbl").parameters == (2, 8, 4)
        assert report.row("Queues").parameters == (16, 8, 4)
        assert report.row("Buffers").parameters == (128, 4)

    def test_total_bram_kb_property(self):
        assert ring_config().total_bram_kb == 2106


class TestSerialization:
    def test_roundtrip_dict(self):
        config = ring_config()
        assert SwitchConfig.from_dict(config.to_dict()) == config

    def test_roundtrip_json(self):
        config = bcm53154_config()
        assert SwitchConfig.from_json(config.to_json()) == config

    def test_unknown_field_rejected(self):
        data = ring_config().to_dict()
        data["bogus"] = 1
        with pytest.raises(ConfigurationError):
            SwitchConfig.from_dict(data)

    def test_custom_widths_survive(self):
        config = SwitchConfig(widths=EntryWidths(class_tbl=140))
        restored = SwitchConfig.from_dict(config.to_dict())
        assert restored.widths.class_tbl == 140

    def test_with_updates(self):
        config = ring_config().with_updates(port_num=2)
        assert config.port_num == 2
        assert config.queue_depth == ring_config().queue_depth
