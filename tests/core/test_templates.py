"""The five function templates and their coverage rules."""

import pytest

from repro.core.errors import SynthesisError
from repro.core.presets import ring_config
from repro.core.resources import Component
from repro.core.templates import (
    DEFAULT_TEMPLATES,
    EgressSchedTemplate,
    GateCtrlTemplate,
    IngressFilterTemplate,
    PacketSwitchTemplate,
    TimeSyncTemplate,
    check_complete,
    default_template_set,
)


class TestTemplateSet:
    def test_five_templates(self):
        assert len(DEFAULT_TEMPLATES) == 5

    def test_covers_every_component(self):
        components = {t().component for t in DEFAULT_TEMPLATES}
        assert components == set(Component)

    def test_check_complete_accepts_default(self):
        check_complete(default_template_set())

    def test_check_complete_rejects_missing(self):
        templates = [t for t in default_template_set()
                     if t.component is not Component.GATE_CTRL]
        with pytest.raises(SynthesisError, match="Gate Ctrl"):
            check_complete(templates)

    def test_check_complete_rejects_duplicates(self):
        templates = default_template_set() + [GateCtrlTemplate()]
        with pytest.raises(SynthesisError, match="both"):
            check_complete(templates)


class TestTemplateParameters:
    def test_packet_switch(self):
        params = PacketSwitchTemplate().parameters(ring_config())
        assert params == {"unicast_size": 1024, "multicast_size": 0}

    def test_ingress_filter(self):
        params = IngressFilterTemplate().parameters(ring_config())
        assert params == {"class_size": 1024, "meter_size": 1024}

    def test_gate_ctrl(self):
        params = GateCtrlTemplate().parameters(ring_config())
        assert params["gate_size"] == 2
        assert params["queue_depth"] == 12
        assert params["buffer_num"] == 96

    def test_egress_sched(self):
        params = EgressSchedTemplate().parameters(ring_config())
        assert params == {"cbs_map_size": 3, "cbs_size": 3, "port_num": 1}

    def test_time_sync_has_no_resource_parameters(self):
        assert TimeSyncTemplate().parameters(ring_config()) == {}

    def test_api_call_attribution(self):
        calls = set()
        for template in default_template_set():
            calls.update(template.api_calls)
        assert calls == {
            "set_switch_tbl",
            "set_class_tbl",
            "set_meter_tbl",
            "set_gate_tbl",
            "set_queues",
            "set_buffers",
            "set_cbs_tbl",
        }


class TestResourceSlices:
    def test_slices_partition_tables(self):
        config = ring_config()
        sliced = []
        for template in default_template_set():
            sliced.extend(t.name for t in template.table_resources(config))
        all_tables = [t.name for t in config.table_resources()]
        assert sorted(sliced) == sorted(all_tables)

    def test_time_sync_owns_no_tables(self):
        assert TimeSyncTemplate().table_resources(ring_config()) == []

    def test_gate_ctrl_owns_queue_and_buffer(self):
        template = GateCtrlTemplate()
        config = ring_config()
        assert template.queue_resource(config).kb == 144
        assert template.buffer_resource(config).kb == 1620

    def test_submodules_match_paper_fig5(self):
        names = {t.name: t.submodules for t in default_template_set()}
        assert "parser" in names["Packet Switch"]
        assert "classifier" in names["Ingress Filter"]
        assert "gcl_update" in names["Gate Ctrl"]
        assert "cbs" in names["Egress Sched"]
        assert "clock_correction" in names["Time Sync"]
