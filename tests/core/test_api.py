"""The seven customization APIs of paper Table II."""

import pytest

from repro.core.api import CustomizationAPI
from repro.core.config import EntryWidths
from repro.core.errors import ConfigurationError
from repro.core.presets import ring_config


def _complete_api(name="switch"):
    api = CustomizationAPI(name)
    api.set_switch_tbl(unicast_size=1024, multicast_size=0)
    api.set_class_tbl(class_size=1024)
    api.set_meter_tbl(meter_size=1024)
    api.set_gate_tbl(gate_size=2, queue_num=8, port_num=1)
    api.set_cbs_tbl(cbs_map_size=3, cbs_size=3, port_num=1)
    api.set_queues(queue_depth=12, queue_num=8, port_num=1)
    api.set_buffers(buffer_num=96, port_num=1)
    return api


class TestBuild:
    def test_complete_build_matches_ring_preset(self):
        config = _complete_api().build()
        ring = ring_config()
        assert config.total_bram_kb == ring.total_bram_kb == 2106

    def test_missing_calls_reported(self):
        api = CustomizationAPI()
        api.set_class_tbl(1024)
        assert "set_buffers" in api.missing_calls
        assert "set_class_tbl" not in api.missing_calls

    def test_incomplete_build_rejected(self):
        api = CustomizationAPI()
        api.set_switch_tbl(1024, 0)
        with pytest.raises(ConfigurationError, match="missing"):
            api.build()

    def test_invalid_parameters_surface_at_build(self):
        api = _complete_api()
        # re-inject a conflicting value for an unshared key is fine; a bad
        # value must be caught by config validation at build time
        api2 = CustomizationAPI("bad")
        api2.set_switch_tbl(-5, 0)
        api2.set_class_tbl(1024)
        api2.set_meter_tbl(1024)
        api2.set_gate_tbl(2, 8, 1)
        api2.set_cbs_tbl(3, 3, 1)
        api2.set_queues(12, 8, 1)
        api2.set_buffers(96, 1)
        with pytest.raises(ConfigurationError):
            api2.build()

    def test_custom_widths_flow_through(self):
        api = CustomizationAPI("w", widths=EntryWidths(meter_tbl=80))
        api.set_switch_tbl(64, 0)
        api.set_class_tbl(64)
        api.set_meter_tbl(64)
        api.set_gate_tbl(2, 8, 1)
        api.set_cbs_tbl(3, 3, 1)
        api.set_queues(8, 8, 1)
        api.set_buffers(64, 1)
        assert api.build().widths.meter_tbl == 80


class TestCrossCallConsistency:
    def test_conflicting_port_num_rejected_eagerly(self):
        api = CustomizationAPI()
        api.set_gate_tbl(gate_size=2, queue_num=8, port_num=2)
        with pytest.raises(ConfigurationError, match="port_num"):
            api.set_buffers(buffer_num=96, port_num=3)

    def test_conflicting_queue_num_rejected(self):
        api = CustomizationAPI()
        api.set_gate_tbl(gate_size=2, queue_num=8, port_num=1)
        with pytest.raises(ConfigurationError, match="queue_num"):
            api.set_queues(queue_depth=12, queue_num=4, port_num=1)

    def test_repeating_same_value_allowed(self):
        api = CustomizationAPI()
        api.set_gate_tbl(2, 8, 1)
        api.set_queues(12, 8, 1)  # same queue_num/port_num: fine
        api.set_cbs_tbl(3, 3, 1)


class TestFromConfig:
    def test_roundtrip(self):
        api = CustomizationAPI.from_config(ring_config())
        assert api.build().total_bram_kb == 2106

    def test_tweak_after_replay(self):
        api = CustomizationAPI.from_config(ring_config())
        with pytest.raises(ConfigurationError):
            api.set_queues(queue_depth=16, queue_num=8, port_num=2)
