"""The seven customization APIs of paper Table II."""

import pytest

from repro.core.api import CustomizationAPI
from repro.core.config import EntryWidths
from repro.core.errors import ConfigurationError
from repro.core.presets import ring_config


def _complete_api(name="switch"):
    api = CustomizationAPI(name)
    api.set_switch_tbl(unicast_size=1024, multicast_size=0)
    api.set_class_tbl(class_size=1024)
    api.set_meter_tbl(meter_size=1024)
    api.set_gate_tbl(gate_size=2, queue_num=8, port_num=1)
    api.set_cbs_tbl(cbs_map_size=3, cbs_size=3, port_num=1)
    api.set_queues(queue_depth=12, queue_num=8, port_num=1)
    api.set_buffers(buffer_num=96, port_num=1)
    return api


class TestBuild:
    def test_complete_build_matches_ring_preset(self):
        config = _complete_api().build()
        ring = ring_config()
        assert config.total_bram_kb == ring.total_bram_kb == 2106

    def test_missing_calls_reported(self):
        api = CustomizationAPI()
        api.set_class_tbl(1024)
        assert "set_buffers" in api.missing_calls
        assert "set_class_tbl" not in api.missing_calls

    def test_incomplete_build_rejected(self):
        api = CustomizationAPI()
        api.set_switch_tbl(1024, 0)
        with pytest.raises(ConfigurationError, match="missing"):
            api.build()

    def test_invalid_parameters_surface_at_build(self):
        api = _complete_api()
        # re-inject a conflicting value for an unshared key is fine; a bad
        # value must be caught by config validation at build time
        api2 = CustomizationAPI("bad")
        api2.set_switch_tbl(-5, 0)
        api2.set_class_tbl(1024)
        api2.set_meter_tbl(1024)
        api2.set_gate_tbl(2, 8, 1)
        api2.set_cbs_tbl(3, 3, 1)
        api2.set_queues(12, 8, 1)
        api2.set_buffers(96, 1)
        with pytest.raises(ConfigurationError):
            api2.build()

    def test_custom_widths_flow_through(self):
        api = CustomizationAPI("w", widths=EntryWidths(meter_tbl=80))
        api.set_switch_tbl(64, 0)
        api.set_class_tbl(64)
        api.set_meter_tbl(64)
        api.set_gate_tbl(2, 8, 1)
        api.set_cbs_tbl(3, 3, 1)
        api.set_queues(8, 8, 1)
        api.set_buffers(64, 1)
        assert api.build().widths.meter_tbl == 80


class TestCrossCallConsistency:
    def test_conflicting_port_num_rejected_eagerly(self):
        api = CustomizationAPI()
        api.set_gate_tbl(gate_size=2, queue_num=8, port_num=2)
        with pytest.raises(ConfigurationError, match="port_num"):
            api.set_buffers(buffer_num=96, port_num=3)

    def test_conflicting_queue_num_rejected(self):
        api = CustomizationAPI()
        api.set_gate_tbl(gate_size=2, queue_num=8, port_num=1)
        with pytest.raises(ConfigurationError, match="queue_num"):
            api.set_queues(queue_depth=12, queue_num=4, port_num=1)

    def test_repeating_same_value_allowed(self):
        api = CustomizationAPI()
        api.set_gate_tbl(2, 8, 1)
        api.set_queues(12, 8, 1)  # same queue_num/port_num: fine
        api.set_cbs_tbl(3, 3, 1)


class TestFromConfig:
    def test_roundtrip(self):
        api = CustomizationAPI.from_config(ring_config())
        assert api.build().total_bram_kb == 2106

    def test_tweak_after_replay(self):
        api = CustomizationAPI.from_config(ring_config())
        with pytest.raises(ConfigurationError):
            api.set_queues(queue_depth=16, queue_num=8, port_num=2)


class TestSwitchBuilder:
    def test_chained_build_matches_imperative(self):
        from repro.core.api import SwitchBuilder

        config = (
            SwitchBuilder("ring-node")
            .set_switch_tbl(unicast_size=1024, multicast_size=0)
            .set_class_tbl(class_size=1024)
            .set_meter_tbl(meter_size=1024)
            .set_gate_tbl(gate_size=2, queue_num=8, port_num=1)
            .set_cbs_tbl(cbs_map_size=3, cbs_size=3, port_num=1)
            .set_queues(queue_depth=12, queue_num=8, port_num=1)
            .set_buffers(buffer_num=96, port_num=1)
            .build()
        )
        assert config == _complete_api("ring-node").build()

    def test_every_setter_returns_the_builder(self):
        from repro.core.api import SwitchBuilder

        builder = SwitchBuilder()
        assert builder.set_class_tbl(16) is builder
        assert builder.set_meter_tbl(16) is builder

    def test_incomplete_build_names_all_missing_calls(self):
        from repro.core.api import SwitchBuilder
        from repro.core.errors import IncompleteCustomizationError

        builder = SwitchBuilder("partial").set_class_tbl(16)
        with pytest.raises(IncompleteCustomizationError) as excinfo:
            builder.build()
        missing = excinfo.value.missing_calls
        assert missing == {
            "set_switch_tbl", "set_meter_tbl", "set_gate_tbl",
            "set_cbs_tbl", "set_queues", "set_buffers",
        }
        # every omission appears in the one message
        for call in missing:
            assert call in str(excinfo.value)
        assert excinfo.value.switch_name == "partial"

    def test_structured_error_is_a_configuration_error(self):
        from repro.core.errors import (
            ConfigurationError,
            IncompleteCustomizationError,
        )

        assert issubclass(IncompleteCustomizationError, ConfigurationError)

    def test_consistency_still_enforced_through_facade(self):
        from repro.core.api import SwitchBuilder

        builder = SwitchBuilder().set_gate_tbl(2, 8, 1)
        with pytest.raises(ConfigurationError, match="port_num"):
            builder.set_buffers(96, 2)

    def test_escape_hatch_exposes_wrapped_api(self):
        from repro.core.api import SwitchBuilder

        builder = SwitchBuilder("x")
        assert isinstance(builder.api, CustomizationAPI)
        assert builder.missing_calls == builder.api.missing_calls


class TestApplyProfile:
    def test_bcm53154_profile_matches_published_baseline(self):
        from repro.core.presets import bcm53154_config

        api = CustomizationAPI("ref").apply_profile("bcm53154")
        config = api.build()
        assert config.total_bram_kb == bcm53154_config().total_bram_kb

    def test_profile_returns_self_for_chaining(self):
        api = CustomizationAPI("ref")
        assert api.apply_profile("ring") is api

    def test_every_published_profile_builds(self):
        from repro.core.api import PROFILES

        for name in PROFILES:
            assert CustomizationAPI(name).apply_profile(name).build()

    def test_unknown_profile_lists_choices(self):
        with pytest.raises(ConfigurationError, match="bcm53154"):
            CustomizationAPI().apply_profile("bcm99999")

    def test_profile_conflicts_with_prior_calls_surface(self):
        api = CustomizationAPI()
        api.set_queues(queue_depth=99, queue_num=8, port_num=1)
        with pytest.raises(ConfigurationError, match="queue_depth"):
            api.apply_profile("ring")

    def test_builder_profile_shortcut(self):
        from repro.core.api import SwitchBuilder
        from repro.core.presets import ring_config

        config = SwitchBuilder("x").profile("ring").build()
        assert config.total_bram_kb == ring_config().total_bram_kb
