"""Resource descriptors and reports (the Fig. 4 abstraction)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.resources import (
    BufferResource,
    Component,
    QueueResource,
    ReportRow,
    ResourceReport,
    Sharing,
    TableResource,
)


def _switch_tbl(size=1024, instances=1):
    return TableResource(
        name="Switch Tbl",
        component=Component.PACKET_SWITCH,
        entry_width=72,
        size=size,
        sharing=Sharing.SHARED,
        instances=instances,
    )


class TestTableResource:
    def test_single_instance_cost(self):
        assert _switch_tbl().kb == 72

    def test_instances_multiply(self):
        assert _switch_tbl(instances=4).kb == 4 * 72
        assert _switch_tbl(instances=4).total_entries == 4096

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            _switch_tbl(size=0)

    def test_rejects_zero_instances(self):
        with pytest.raises(ConfigurationError):
            _switch_tbl(instances=0)

    def test_gate_pair_matches_paper(self):
        gate = TableResource(
            name="Gate Tbl",
            component=Component.GATE_CTRL,
            entry_width=17,
            size=2,
            sharing=Sharing.PER_PORT,
            instances=2 * 4,  # in+out per port, 4 ports
        )
        assert gate.kb == 144


class TestQueueResource:
    def test_commercial_queues(self):
        q = QueueResource(depth=16, queue_num=8, port_num=4)
        assert q.kb == 576
        assert q.instances == 32

    def test_customized_queues(self):
        assert QueueResource(depth=12, queue_num=8, port_num=3).kb == 432

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"depth": 0, "queue_num": 8, "port_num": 1},
            {"depth": 8, "queue_num": 0, "port_num": 1},
            {"depth": 8, "queue_num": 8, "port_num": 0},
            {"depth": 8, "queue_num": 8, "port_num": 1, "metadata_width": 0},
        ],
    )
    def test_rejects_nonpositive(self, kwargs):
        with pytest.raises(ConfigurationError):
            QueueResource(**kwargs)


class TestBufferResource:
    def test_commercial_buffers(self):
        assert BufferResource(buffer_num=128, port_num=4).kb == 8640

    def test_customized_buffers(self):
        assert BufferResource(buffer_num=96, port_num=1).kb == 1620

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            BufferResource(buffer_num=0, port_num=1)
        with pytest.raises(ConfigurationError):
            BufferResource(buffer_num=96, port_num=0)


class TestResourceReport:
    def _report(self, title, kbs):
        report = ResourceReport(title)
        for i, kb in enumerate(kbs):
            report.add(
                ReportRow(
                    resource=f"r{i}",
                    width_label="8b",
                    parameters=(kb,),
                    bits=kb * 1024,
                )
            )
        return report

    def test_total(self):
        assert self._report("a", [10, 20, 30]).total_kb == 60

    def test_row_lookup(self):
        report = self._report("a", [10, 20])
        assert report.row("r1").kb == 20
        with pytest.raises(KeyError):
            report.row("missing")

    def test_reduction(self):
        base = self._report("base", [100])
        small = self._report("small", [20])
        assert small.reduction_vs(base) == pytest.approx(0.8)

    def test_reduction_zero_baseline_rejected(self):
        base = ResourceReport("empty")
        with pytest.raises(ConfigurationError):
            self._report("x", [1]).reduction_vs(base)

    def test_as_dict_has_total(self):
        data = self._report("a", [10, 20]).as_dict()
        assert data["Total"] == 30
        assert data["r0"] == 10

    def test_kb_label(self):
        row = ReportRow("r", "8b", (1,), bits=1536)
        assert row.kb_label == "1.5Kb"
