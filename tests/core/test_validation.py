"""Pre-flight deployment checks."""

import pytest

from repro.core.presets import customized_config, ring_config
from repro.core.units import ms
from repro.core.validation import Severity, check_deployment
from repro.network.topology import ring_topology
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass
from repro.traffic.iec60802 import background_flows, production_cell_flows

SLOT = 62_500


def _flows(count=64, deadline_ns=None, rc=0, be=0):
    flows = production_cell_flows(["t0"], "listener", flow_count=count)
    if deadline_ns is not None:
        rebuilt = FlowSet()
        for flow in flows:
            rebuilt.add(flow.with_updates(deadline_ns=deadline_ns))
        flows = rebuilt
    if rc or be:
        for flow in background_flows(["t0"], "listener", rc, be):
            flows.add(flow)
    return flows


def _topo(hops=3):
    return ring_topology(hops, talkers=["t0"])


def _errors(violations):
    return [v for v in violations if v.severity is Severity.ERROR]


class TestCleanDeployments:
    def test_paper_configuration_is_clean(self):
        violations = check_deployment(
            customized_config(1, flow_count=64), _topo(), _flows(), SLOT
        )
        assert _errors(violations) == []

    def test_derived_configuration_is_clean(self):
        from repro.core.sizing import derive_config

        flows = _flows(count=256)
        result = derive_config(_topo(), flows, SLOT)
        assert _errors(
            check_deployment(result.config, _topo(), flows, SLOT)
        ) == []


class TestTableChecks:
    def test_undersized_classification_flagged(self):
        config = customized_config(1, flow_count=32)
        violations = check_deployment(config, _topo(), _flows(64), SLOT)
        assert any(v.subject == "class_tbl" for v in _errors(violations))

    def test_aggregation_relaxes_unicast_requirement(self):
        config = customized_config(1, flow_count=64).with_updates(
            unicast_size=1
        )
        plain = check_deployment(config, _topo(), _flows(), SLOT)
        aggregated = check_deployment(
            config, _topo(), _flows(), SLOT, aggregate_routes=True
        )
        assert any(v.subject == "unicast_tbl" for v in _errors(plain))
        assert not any(
            v.subject == "unicast_tbl" for v in _errors(aggregated)
        )

    def test_small_meter_table_warns_only(self):
        config = customized_config(1, flow_count=64).with_updates(
            meter_size=8
        )
        violations = check_deployment(config, _topo(), _flows(), SLOT)
        meter = [v for v in violations if v.subject == "meter_tbl"]
        assert meter and meter[0].severity is Severity.WARNING


class TestCapacityChecks:
    def test_port_shortfall_flagged(self):
        config = customized_config(1, flow_count=64)
        from repro.network.topology import star_topology

        topo = star_topology(talkers=("t0",))
        violations = check_deployment(config, topo, _flows(), SLOT)
        assert any(v.subject == "ports" for v in _errors(violations))

    def test_queue_depth_below_itp_bound_flagged(self):
        config = customized_config(1, flow_count=640).with_updates(
            queue_depth=2, buffer_num=96
        )
        violations = check_deployment(config, _topo(), _flows(640), SLOT)
        assert any(v.subject == "queue_depth" for v in _errors(violations))

    def test_exact_depth_warns(self):
        # 640 flows / 160 slots = 4 per slot
        config = customized_config(1, flow_count=640).with_updates(
            queue_depth=4, buffer_num=96
        )
        violations = check_deployment(config, _topo(), _flows(640), SLOT)
        depth = [v for v in violations if v.subject == "queue_depth"]
        assert depth and depth[0].severity is Severity.WARNING

    def test_overprovisioned_buffers_warn(self):
        config = customized_config(1, flow_count=64).with_updates(
            buffer_num=500
        )
        violations = check_deployment(config, _topo(), _flows(), SLOT)
        assert any(
            v.subject == "buffers" and v.severity is Severity.WARNING
            for v in violations
        )

    def test_rc_queue_overflow_flagged(self):
        config = customized_config(1, flow_count=64).with_updates(
            cbs_map_size=1, cbs_size=1
        )
        flows = _flows(rc=10**8, be=0)
        # spread RC over 2 queues via explicit PCPs
        flows.add(FlowSpec(999_000, TrafficClass.RC, "t0", "listener",
                           1024, rate_bps=10**7, pcp=4))
        violations = check_deployment(config, _topo(), flows, SLOT)
        assert any(v.subject == "cbs" for v in _errors(violations))


class TestScheduleChecks:
    def test_deadline_violation_flagged(self):
        violations = check_deployment(
            customized_config(1, flow_count=64),
            _topo(hops=6),
            _flows(deadline_ns=200_000),  # (6+1)*62.5us = 437.5us > 200us
            SLOT,
        )
        assert any(v.subject == "deadline" for v in _errors(violations))

    def test_unaligned_slot_flagged(self):
        violations = check_deployment(
            customized_config(1, flow_count=16), _topo(), _flows(16),
            slot_ns=65_000,
        )
        assert any(v.subject == "slotting" for v in _errors(violations))

    def test_itp_infeasible_flagged(self):
        flows = FlowSet(
            [FlowSpec(i, TrafficClass.TS, "t0", "listener", 1500,
                      period_ns=ms(10)) for i in range(4000)]
        )
        violations = check_deployment(
            customized_config(1, flow_count=4096), _topo(), flows, SLOT
        )
        assert any(v.subject == "itp" for v in _errors(violations))

    def test_no_ts_flows_short_circuits(self):
        flows = background_flows(["t0"], "listener", 10**7, 10**7)
        violations = check_deployment(
            customized_config(1), _topo(), FlowSet(list(flows)), SLOT
        )
        assert not any(v.subject == "queue_depth" for v in violations)

    def test_violation_str(self):
        violations = check_deployment(
            customized_config(1, flow_count=32), _topo(), _flows(64), SLOT
        )
        text = str(_errors(violations)[0])
        assert text.startswith("[error]")


class TestRcAdmissionCheck:
    def test_oversubscribed_rc_flagged(self):
        from repro.core.units import mbps

        flows = _flows(count=16, rc=mbps(800), be=0)
        violations = check_deployment(
            customized_config(1, flow_count=16), _topo(), flows, SLOT
        )
        assert any(
            v.subject == "rc_admission" for v in _errors(violations)
        )

    def test_modest_rc_clean(self):
        from repro.core.units import mbps

        flows = _flows(count=16, rc=mbps(100), be=0)
        violations = check_deployment(
            customized_config(1, flow_count=16), _topo(), flows, SLOT
        )
        assert not any(v.subject == "rc_admission" for v in violations)
