"""TSNBuilder synthesis workflow."""

import pytest

from repro.core.api import CustomizationAPI
from repro.core.builder import PLATFORMS, SwitchModel, TSNBuilder
from repro.core.errors import SynthesisError
from repro.core.presets import ring_config, star_config
from repro.core.resources import Component
from repro.core.templates import GateCtrlTemplate
from repro.sim.kernel import Simulator


class TestTSNBuilder:
    def test_platforms(self):
        assert set(PLATFORMS) == {"sim", "rtl"}

    def test_unknown_platform_rejected(self):
        with pytest.raises(SynthesisError):
            TSNBuilder(platform="asic")

    def test_synthesize_without_customize_rejected(self):
        with pytest.raises(SynthesisError, match="customize"):
            TSNBuilder().synthesize()

    def test_synthesize_from_config(self):
        builder = TSNBuilder()
        builder.customize(ring_config())
        model = builder.synthesize()
        assert isinstance(model, SwitchModel)
        assert model.total_bram_kb == 2106

    def test_synthesize_from_api(self):
        builder = TSNBuilder()
        builder.customize(CustomizationAPI.from_config(star_config()))
        assert builder.synthesize().total_bram_kb == 5778

    def test_replace_template(self):
        class MyGateCtrl(GateCtrlTemplate):
            pass

        builder = TSNBuilder()
        builder.replace_template(MyGateCtrl())
        builder.customize(ring_config())
        model = builder.synthesize()
        kinds = {type(t).__name__ for t in model.templates}
        assert "MyGateCtrl" in kinds and "GateCtrlTemplate" not in kinds

    def test_replace_unknown_component_rejected(self):
        builder = TSNBuilder()
        builder.use_templates(
            [t for t in builder.templates
             if t.component is not Component.GATE_CTRL]
        )
        with pytest.raises(SynthesisError):
            builder.replace_template(GateCtrlTemplate())
            # already removed: replace has nothing to swap
        # and synthesis on the incomplete set fails too
        builder.customize(ring_config())
        with pytest.raises(SynthesisError):
            builder.synthesize()


class TestSwitchModel:
    def _model(self):
        builder = TSNBuilder()
        builder.customize(ring_config())
        return builder.synthesize()

    def test_resource_report(self):
        assert self._model().resource_report().total_kb == 2106

    def test_template_parameters(self):
        params = self._model().template_parameters()
        assert params["Gate Ctrl"]["queue_depth"] == 12
        assert params["Time Sync"] == {}

    def test_instantiate_builds_switch(self):
        sim = Simulator()
        switch = self._model().instantiate(sim)
        assert len(switch.ports) == 1
        assert switch.config.queue_depth == 12

    def test_instantiate_passes_kwargs(self):
        sim = Simulator()
        switch = self._model().instantiate(sim, rate_bps=100_000_000)
        assert switch.rate_bps == 100_000_000

    def test_emit_verilog(self, tmp_path):
        files = self._model().emit_verilog(tmp_path)
        names = {f.name for f in files}
        assert "tsn_switch_top.v" in names
        assert "manifest.json" in names
