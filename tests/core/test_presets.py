"""The published parameter sets must reproduce the paper's numbers exactly."""

import pytest

from repro.core.presets import (
    TOPOLOGY_PORTS,
    bcm53154_config,
    customized_config,
    linear_config,
    ring_config,
    star_config,
    table1_case1,
    table1_case2,
)


class TestTable3:
    """Paper Table III, all four columns."""

    def test_commercial_total(self):
        assert bcm53154_config().total_bram_kb == 10818

    def test_commercial_rows(self):
        report = bcm53154_config().resource_report()
        assert report.row("Switch Tbl").kb == 1152
        assert report.row("Class. Tbl").kb == 126
        assert report.row("Meter Tbl").kb == 36
        assert report.row("Gate Tbl").kb == 144
        assert report.row("CBS Tbl").kb == 144
        assert report.row("Queues").kb == 576
        assert report.row("Buffers").kb == 8640

    @pytest.mark.parametrize(
        "factory,total,reduction",
        [
            (star_config, 5778, 0.4659),
            (linear_config, 3942, 0.6356),
            (ring_config, 2106, 0.8053),
        ],
    )
    def test_customized_totals_and_reductions(self, factory, total, reduction):
        base = bcm53154_config().resource_report()
        report = factory().resource_report()
        assert report.total_kb == total
        assert report.reduction_vs(base) == pytest.approx(reduction, abs=5e-5)

    def test_customized_shared_tables(self):
        report = ring_config().resource_report()
        assert report.row("Switch Tbl").kb == 72
        assert report.row("Class. Tbl").kb == 126
        assert report.row("Meter Tbl").kb == 72

    def test_per_port_rows_scale_with_ports(self):
        star = star_config().resource_report()
        linear = linear_config().resource_report()
        ring = ring_config().resource_report()
        for row, per_port in [("Gate Tbl", 36), ("CBS Tbl", 36), ("Queues", 144)]:
            assert star.row(row).kb == 3 * per_port
            assert linear.row(row).kb == 2 * per_port
            assert ring.row(row).kb == 1 * per_port

    def test_topology_ports(self):
        assert TOPOLOGY_PORTS == {"star": 3, "linear": 2, "ring": 1}


class TestTable1:
    """Paper Table I: the motivation's two queue/buffer cases."""

    def _queue_buffer_kb(self, config):
        return config.queue_resource().kb + config.buffer_resource().kb

    def test_case1(self):
        assert self._queue_buffer_kb(table1_case1()) == 2304

    def test_case2(self):
        assert self._queue_buffer_kb(table1_case2()) == 1764

    def test_saving_is_540kb(self):
        assert (
            self._queue_buffer_kb(table1_case1())
            - self._queue_buffer_kb(table1_case2())
        ) == 540


class TestCustomizedFactory:
    def test_port_count_flows_through(self):
        assert customized_config(2).port_num == 2

    def test_flow_count_sizes_tables(self):
        config = customized_config(1, flow_count=256)
        assert config.unicast_size == 256
        assert config.class_size == 256
        assert config.meter_size == 256
