"""Units and conversions."""

import pytest
from fractions import Fraction

from hypothesis import given, strategies as st

from repro.core import units


class TestTimeConversions:
    def test_ns_identity(self):
        assert units.ns(7) == 7

    def test_us(self):
        assert units.us(65) == 65_000

    def test_ms(self):
        assert units.ms(10) == 10_000_000

    def test_seconds(self):
        assert units.seconds(2) == 2_000_000_000

    def test_float_exact(self):
        assert units.us(62.5) == 62_500

    def test_float_inexact_rejected(self):
        with pytest.raises(ValueError):
            units.ns(0.3)

    def test_fraction_exact(self):
        assert units.us(Fraction(125, 2)) == 62_500

    def test_fraction_inexact_rejected(self):
        with pytest.raises(ValueError):
            units.ns(Fraction(1, 3))

    @given(st.integers(min_value=0, max_value=10**6))
    def test_ms_scales_us(self, value):
        assert units.ms(value) == units.us(value * 1000)


class TestFormatTime:
    def test_ns(self):
        assert units.fmt_time(999) == "999ns"

    def test_us_integral(self):
        assert units.fmt_time(65_000) == "65us"

    def test_us_fractional(self):
        assert units.fmt_time(1_500) == "1.5us"

    def test_ms(self):
        assert units.fmt_time(10_000_000) == "10ms"

    def test_seconds(self):
        assert units.fmt_time(2_000_000_000) == "2s"


class TestMemoryUnits:
    def test_bits_from_bytes(self):
        assert units.bits_from_bytes(2048) == 16384

    def test_kib_exact(self):
        assert units.kib(72 * 16384) == 1152

    def test_fmt_kib_integral(self):
        assert units.fmt_kib(72 * 16384) == "1152Kb"

    def test_fmt_kib_fractional(self):
        assert units.fmt_kib(512) == "0.5Kb"


class TestRates:
    def test_mbps(self):
        assert units.mbps(100) == 100_000_000

    def test_gbps(self):
        assert units.gbps(1) == 1_000_000_000

    def test_fractional_rate_rejected(self):
        with pytest.raises(ValueError):
            units.mbps(0.0000001)

    def test_serialization_64B_at_1G(self):
        # 64 bytes = 512 bits -> 512 ns at 1 Gbps.
        assert units.serialization_ns(64, units.GIGABIT) == 512

    def test_serialization_1500B_at_1G(self):
        assert units.serialization_ns(1500, units.GIGABIT) == 12_000

    def test_serialization_rounds_up(self):
        # 1 byte at 3 bps: 8e9/3 ns, not integral, must round up.
        assert units.serialization_ns(1, 3) == -(-8 * units.SEC // 3)

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1_000, max_value=10**10),
    )
    def test_serialization_never_undershoots(self, nbytes, rate):
        t = units.serialization_ns(nbytes, rate)
        # transmitting for t ns at `rate` must cover all the bits
        assert t * rate >= nbytes * 8 * units.SEC

    def test_wire_bytes_overhead(self):
        # preamble+SFD (8) + IFG (12) = 20 bytes of extra wire occupancy
        assert units.wire_bytes(64) == 84
        assert units.wire_bytes(1500) == 1520
