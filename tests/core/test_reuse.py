"""Template reuse quantification."""

import pytest

from repro.core.builder import TSNBuilder
from repro.core.presets import (
    bcm53154_config,
    linear_config,
    ring_config,
    star_config,
)
from repro.core.reuse import reuse_report


def _model(config):
    builder = TSNBuilder()
    builder.customize(config)
    return builder.synthesize()


class TestReuseReport:
    def test_identical_configs_fully_reused(self):
        report = reuse_report(_model(ring_config()), _model(ring_config()))
        assert report.changed_parameters == {}
        assert report.changed_lines == 0
        assert report.reuse_ratio == 1.0
        assert report.reprogrammed_nothing

    def test_cross_topology_changes_only_parameters(self):
        """The paper's scenario change: star -> ring.  Zero reprogramming."""
        report = reuse_report(_model(star_config()), _model(ring_config()))
        assert report.changed_parameters == {"port_num": (3, 1)}
        assert report.reprogrammed_nothing
        # the top level re-instantiates per port, so some lines move there,
        # but the template bodies change at most in their parameter section
        assert report.template_reuse_ratio > 0.99

    def test_reuse_ratio_high_across_commercial_and_custom(self):
        report = reuse_report(_model(bcm53154_config()), _model(ring_config()))
        # seven parameters move, yet >80% of all generated lines and >97%
        # of the template bodies survive verbatim
        assert report.reuse_ratio > 0.80
        assert report.template_reuse_ratio > 0.97
        assert report.reprogrammed_nothing
        assert "unicast_size" in report.changed_parameters
        assert "queue_depth" in report.changed_parameters

    def test_per_file_accounting_sums(self):
        report = reuse_report(_model(linear_config()), _model(ring_config()))
        assert report.total_lines == sum(
            d.total_lines for d in report.file_diffs
        )
        assert report.changed_lines == sum(
            d.changed_lines for d in report.file_diffs
        )
        for diff in report.file_diffs:
            assert 0 <= diff.reuse_ratio <= 1.0

    def test_width_change_is_reprogramming(self):
        """Changing an entry layout is not a parameter tweak: the generated
        memories change shape beyond the parameter section."""
        from repro.core.config import EntryWidths

        altered = ring_config().with_updates(
            widths=EntryWidths(class_tbl=140)
        )
        report = reuse_report(_model(ring_config()), _model(altered))
        assert "class_size" not in report.changed_parameters  # size equal
        assert report.changed_lines > 0
