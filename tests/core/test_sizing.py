"""The Section III.C sizing guidelines."""

import pytest

from repro.core.errors import SchedulingError
from repro.core.presets import bcm53154_config, ring_config
from repro.core.sizing import derive_config
from repro.network.topology import linear_topology, ring_topology, star_topology
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass
from repro.traffic.iec60802 import production_cell_flows

SLOT = 62_500


def _paper_flows(count=1024):
    return production_cell_flows(
        ["t0", "t1", "t2"], "listener", flow_count=count
    )


class TestPaperDerivation:
    """From the paper's workload, the guidelines must land on the paper's
    customized parameters (Table III / Table I Case 2)."""

    def test_ring_column(self):
        result = derive_config(ring_topology(6), _paper_flows(), SLOT)
        config = result.config
        assert config.unicast_size == 1024
        assert config.class_size == 1024
        assert config.meter_size == 1024
        assert config.gate_size == 2
        assert config.queue_depth == 12
        assert config.buffer_num == 96
        assert config.port_num == 1
        assert config.total_bram_kb == ring_config().total_bram_kb == 2106

    def test_linear_column(self):
        result = derive_config(linear_topology(6), _paper_flows(), SLOT)
        assert result.config.port_num == 2
        assert result.config.total_bram_kb == 3942

    def test_star_column(self):
        result = derive_config(star_topology(), _paper_flows(), SLOT)
        assert result.config.port_num == 3
        assert result.config.total_bram_kb == 5778

    def test_itp_requirement_behind_depth(self):
        result = derive_config(ring_topology(6), _paper_flows(), SLOT)
        # 1024 flows over 160 slots -> ceil(1024/160) = 7 frames/slot.
        assert result.required_queue_depth == 7
        assert result.depth_margin_frames == 5

    def test_reduction_vs_commercial(self):
        result = derive_config(ring_topology(6), _paper_flows(), SLOT)
        reduction = result.config.resource_report().reduction_vs(
            bcm53154_config().resource_report()
        )
        assert reduction == pytest.approx(0.8053, abs=5e-5)


class TestGuidelineMechanics:
    def test_tables_track_flow_count(self):
        result = derive_config(ring_topology(2), _paper_flows(100), SLOT)
        assert result.config.unicast_size == 100

    def test_qbv_gate_size_is_slots_per_cycle(self):
        result = derive_config(
            ring_topology(2), _paper_flows(64), SLOT, gate_mechanism="qbv"
        )
        # cycle = 10ms, slot = 62.5us -> 160 entries
        assert result.config.gate_size == 160

    def test_unknown_gate_mechanism_rejected(self):
        with pytest.raises(SchedulingError):
            derive_config(ring_topology(2), _paper_flows(8), SLOT,
                          gate_mechanism="tas")

    def test_buffer_is_depth_times_queues(self):
        result = derive_config(ring_topology(2), _paper_flows(), SLOT)
        config = result.config
        assert config.buffer_num == config.queue_depth * config.queue_num

    def test_margin_knob(self):
        tight = derive_config(
            ring_topology(2), _paper_flows(), SLOT,
            queue_depth_margin=1.0, depth_round_to=1,
        )
        assert tight.config.queue_depth == tight.required_queue_depth == 7

    def test_explicit_port_override(self):
        result = derive_config(
            None, _paper_flows(16), SLOT, max_enabled_ports=4
        )
        assert result.config.port_num == 4

    def test_zero_flows_rejected(self):
        with pytest.raises(SchedulingError):
            derive_config(ring_topology(2), FlowSet(), SLOT)

    def test_needs_ts_flows(self):
        flows = FlowSet(
            [
                FlowSpec(
                    flow_id=0,
                    traffic_class=TrafficClass.BE,
                    src="t0",
                    dst="l",
                    size_bytes=1024,
                    rate_bps=10**6,
                )
            ]
        )
        with pytest.raises(SchedulingError):
            derive_config(ring_topology(2), flows, SLOT)

    def test_mixed_periods_use_lcm(self):
        flows = FlowSet(
            [
                FlowSpec(0, TrafficClass.TS, "t0", "l", 64,
                         period_ns=10_000_000),
                FlowSpec(1, TrafficClass.TS, "t0", "l", 64,
                         period_ns=4_000_000),
            ]
        )
        result = derive_config(ring_topology(2), flows, slot_ns=500_000)
        # lcm(10ms, 4ms) = 20ms -> 40 slots of 0.5ms
        assert result.schedule.cycle_ns == 20_000_000
        assert result.schedule.slot_count == 40


class TestSufficientConfig:
    """Re-costing at observed demand under the sizing margin policy."""

    def test_depth_margin_and_rounding_match_table1_case2(self):
        from repro.core.presets import table1_case2
        from repro.core.sizing import ObservedDemand, sufficient_config

        base = table1_case2()
        config = sufficient_config(base, ObservedDemand(queue_depth=7))
        # ceil(7 * 1.5) = 11, rounded up to a multiple of 4 -> 12; and
        # buffer_num follows as depth x queue_num = 96 (the paper's Case 2
        # buffer/queue decomposition).
        assert config.queue_depth == 12
        assert config.buffer_num == 96

    def test_tables_shrink_to_observed_but_never_zero(self):
        from repro.core.presets import table1_case2
        from repro.core.sizing import ObservedDemand, sufficient_config

        base = table1_case2()
        config = sufficient_config(
            base, ObservedDemand(queue_depth=1, unicast=10, meters=0)
        )
        assert config.unicast_size == 10
        assert config.meter_size == 1  # a zero-size table cannot validate

    def test_buffer_floor_is_observed_slots(self):
        from repro.core.presets import table1_case2
        from repro.core.sizing import ObservedDemand, sufficient_config

        base = table1_case2()
        config = sufficient_config(
            base, ObservedDemand(queue_depth=1, buffer_slots=80)
        )
        # depth 4 x 8 queues = 32 < observed 80: the pool keeps the
        # observed demand as its floor.
        assert config.buffer_num == 80

    def test_result_validates(self):
        from repro.core.presets import table1_case2
        from repro.core.sizing import ObservedDemand, sufficient_config

        config = sufficient_config(table1_case2(), ObservedDemand())
        config.validate()

    def test_depth_margin_frames_property(self):
        result = derive_config(ring_topology(3), _paper_flows(64), SLOT)
        assert result.depth_margin_frames == (
            result.config.queue_depth - result.required_queue_depth
        )
        assert result.depth_margin_frames >= 0
