"""Pareto frontier and aggregate determinism."""

import json
import random

from repro.campaign.pareto import aggregate_rows, pareto_frontier


def _row(index, bram, p99, qos_ok=True, status="ok", loss=0.0):
    return {
        "run_id": f"c:{index:04d}",
        "index": index,
        "replicate": 0,
        "seed": index,
        "params": {"i": index},
        "status": status,
        "attempts": 1,
        "bram_kb": bram,
        "qos_ok": qos_ok,
        "classes": {"TS": {"received": 10, "loss": loss,
                           "p99_ns": p99, "max_ns": p99}},
        "max_queue_high_water": 1,
        "max_buffer_high_water": 1,
    }


class TestFrontier:
    def test_dominated_points_removed(self):
        rows = [
            _row(0, bram=100, p99=500),
            _row(1, bram=200, p99=400),
            _row(2, bram=300, p99=450),  # dominated by row 1
            _row(3, bram=150, p99=600),  # dominated by row 0
        ]
        frontier = pareto_frontier(rows)
        assert [p["run_id"] for p in frontier] == ["c:0000", "c:0001"]

    def test_frontier_sorted_by_bram_latency_decreasing(self):
        rows = [_row(i, bram=100 * (i + 1), p99=1000 - 100 * i)
                for i in range(4)]
        frontier = pareto_frontier(rows)
        brams = [p["bram_kb"] for p in frontier]
        latencies = [p["ts_p99_ns"] for p in frontier]
        assert brams == sorted(brams)
        assert latencies == sorted(latencies, reverse=True)

    def test_infeasible_rows_excluded(self):
        rows = [
            _row(0, bram=100, p99=500, qos_ok=False, loss=0.5),
            _row(1, bram=200, p99=400),
            _row(2, bram=50, p99=100, status="timeout"),
        ]
        assert [p["run_id"] for p in pareto_frontier(rows)] == ["c:0001"]

    def test_empty_input(self):
        assert pareto_frontier([]) == []

    def test_points_carry_observed_cost_when_present(self):
        rows = [_row(0, bram=100, p99=500)]
        rows[0]["observed_bram_kb"] = 60.0
        rows[0]["wasted_bram_kb"] = 40.0
        point = pareto_frontier(rows)[0]
        assert point["observed_bram_kb"] == 60.0
        assert point["wasted_bram_kb"] == 40.0
        # Rows without headroom fields still form frontier points.
        bare = pareto_frontier([_row(1, bram=100, p99=500)])[0]
        assert "observed_bram_kb" not in bare

    def test_observed_axis_reranks_frontier(self):
        # Provisioned: row 0 cheapest.  Observed: row 1 actually needs
        # less BRAM, so the observed frontier prefers it.
        cheap = _row(0, bram=100, p99=500)
        cheap["observed_bram_kb"] = 90.0
        lean = _row(1, bram=200, p99=400)
        lean["observed_bram_kb"] = 50.0
        provisioned = pareto_frontier([cheap, lean])
        observed = pareto_frontier([cheap, lean],
                                   bram_key="observed_bram_kb")
        assert [p["run_id"] for p in provisioned] == ["c:0000", "c:0001"]
        assert [p["run_id"] for p in observed] == ["c:0001"]

    def test_observed_axis_skips_rows_without_the_field(self):
        rows = [_row(0, bram=100, p99=500)]
        assert pareto_frontier(rows, bram_key="observed_bram_kb") == []


class TestAggregate:
    def test_counts_and_best(self):
        rows = [
            _row(0, bram=100, p99=500),
            _row(1, bram=200, p99=400),
            _row(2, bram=50, p99=100, status="error"),
        ]
        summary = aggregate_rows("c", rows)
        assert summary["runs"] == 3
        assert summary["status"] == {"ok": 2, "error": 1}
        assert summary["qos_ok"] == 2
        assert summary["best"]["run_id"] == "c:0000"
        assert summary["bram_kb"] == {"min": 100, "max": 200}
        assert summary["failures"] == [
            {"run_id": "c:0002", "status": "error", "error": None}
        ]

    def test_aggregate_independent_of_row_order(self):
        rows = [_row(i, bram=100 + i, p99=1000 - i) for i in range(10)]
        reference = json.dumps(aggregate_rows("c", rows), sort_keys=True)
        rng = random.Random(1)
        for _ in range(5):
            shuffled = list(rows)
            rng.shuffle(shuffled)
            assert (
                json.dumps(aggregate_rows("c", shuffled), sort_keys=True)
                == reference
            )

    def test_no_ok_rows(self):
        summary = aggregate_rows("c", [_row(0, 1, 1, status="timeout")])
        assert summary["best"] is None
        assert "bram_kb" not in summary

    def test_observed_sections_absent_without_headroom_rows(self):
        summary = aggregate_rows("c", [_row(0, bram=100, p99=500)])
        assert "observed_pareto" not in summary
        assert "observed_bram_kb" not in summary

    def test_observed_sections_present_with_headroom_rows(self):
        row = _row(0, bram=100, p99=500)
        row["observed_bram_kb"] = 60.0
        summary = aggregate_rows("c", [row])
        assert summary["observed_pareto"][0]["run_id"] == "c:0000"
        assert summary["observed_bram_kb"] == {"min": 60.0, "max": 60.0}
