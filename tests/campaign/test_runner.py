"""Campaign execution: determinism, timeouts, retries, streaming."""

import io
import json

import pytest

from repro.campaign import Campaign, SweepSpec


def _sweep_doc(**overrides):
    data = {
        "name": "runner-sweep",
        "base": {
            "name": "point",
            "topology": {"kind": "ring", "switch_count": 2,
                         "talkers": ["talker0"], "listener": "listener"},
            "flows": {"ts_count": 4},
            "config": "derive",
            "slot_us": 62.5,
            "duration_ms": 5,
            "seed": 0,
        },
        "grid": {"flows.ts_count": [4, 8], "slot_us": [62.5, 125.0]},
    }
    data.update(overrides)
    return data


def _run(workers, **campaign_kwargs):
    spec = SweepSpec.from_dict(_sweep_doc())
    sink = io.StringIO()
    campaign = Campaign(spec, workers=workers, **campaign_kwargs)
    summary = campaign.run(jsonl=sink)
    return summary, sorted(sink.getvalue().splitlines()), campaign


class TestDeterminism:
    def test_rows_and_aggregate_identical_across_worker_counts(self):
        serial_summary, serial_rows, _ = _run(workers=1)
        pooled_summary, pooled_rows, _ = _run(workers=2)
        assert serial_rows == pooled_rows
        assert (
            json.dumps(serial_summary, sort_keys=True)
            == json.dumps(pooled_summary, sort_keys=True)
        )

    def test_rows_are_seed_stable_across_invocations(self):
        _, first, _ = _run(workers=1)
        _, second, _ = _run(workers=1)
        assert first == second

    def test_ok_rows_have_single_attempt_and_measurements(self):
        summary, rows, campaign = _run(workers=1)
        assert summary["status"] == {"ok": 4}
        for line in rows:
            row = json.loads(line)
            assert row["status"] == "ok"
            assert row["attempts"] == 1
            assert row["bram_kb"] > 0
            assert "TS" in row["classes"]

    def test_ok_rows_carry_headroom_accounting(self):
        summary, rows, _ = _run(workers=1)
        for line in rows:
            row = json.loads(line)
            assert row["observed_bram_kb"] > 0
            # Wasted = provisioned single config minus cheapest sufficient.
            assert row["wasted_bram_kb"] == pytest.approx(
                round(row["bram_kb"] - row["observed_bram_kb"], 3)
            )
            digest = row["utilization"]
            assert "queues" in digest and "buffers" in digest
            assert all(v >= 0 for v in digest.values())
            assert row["depth_margin_frames"] >= 0
        # The aggregate grows an observed frontier alongside the
        # provisioned one.
        assert summary["observed_pareto"]
        assert summary["observed_bram_kb"]["min"] > 0

    def test_rows_contain_no_wall_clock(self):
        _, rows, _ = _run(workers=1)
        for line in rows:
            assert "elapsed" not in line and "time" not in json.loads(line)


class TestStreaming:
    def test_jsonl_written_to_path(self, tmp_path):
        spec = SweepSpec.from_dict(_sweep_doc())
        target = tmp_path / "deep" / "runs.jsonl"
        summary = Campaign(spec, workers=1).run(jsonl=target)
        lines = target.read_text().splitlines()
        assert len(lines) == summary["runs"] == 4

    def test_progress_called_per_run(self):
        spec = SweepSpec.from_dict(_sweep_doc())
        seen = []
        Campaign(spec, workers=1).run(
            progress=lambda row, done, total: seen.append((done, total))
        )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


class TestFailurePaths:
    def test_timeout_row(self):
        spec = SweepSpec.from_dict(_sweep_doc(
            grid={}, base={**_sweep_doc()["base"], "duration_ms": 2000},
        ))
        campaign = Campaign(spec, workers=1, timeout_s=0.05)
        summary = campaign.run()
        assert summary["status"] == {"timeout": 1}
        row = campaign.rows[0]
        assert row["status"] == "timeout"
        assert row["attempts"] == 1
        assert summary["failures"][0]["run_id"] == row["run_id"]

    def test_timeout_retries_are_bounded(self):
        spec = SweepSpec.from_dict(_sweep_doc(
            grid={}, base={**_sweep_doc()["base"], "duration_ms": 2000},
        ))
        campaign = Campaign(spec, workers=1, timeout_s=0.05, retries=2)
        summary = campaign.run()
        assert campaign.rows[0]["attempts"] == 3
        assert summary["status"] == {"timeout": 1}

    def test_error_row_from_bad_scenario(self):
        doc = _sweep_doc(grid={"config": [42]})
        spec = SweepSpec.from_dict(doc)
        campaign = Campaign(spec, workers=1)
        summary = campaign.run(strict=False)
        row = campaign.rows[0]
        assert row["status"] == "error"
        assert row["error_type"] == "ConfigurationError"
        assert summary["status"] == {"error": 1}
        assert summary["pareto"] == []

    def test_pool_mode_survives_failures(self):
        doc = _sweep_doc(grid={"config": [42, "derive"]})
        spec = SweepSpec.from_dict(doc)
        campaign = Campaign(spec, workers=2)
        summary = campaign.run(strict=False)
        assert summary["status"] == {"error": 1, "ok": 1}

    def test_invalid_worker_and_retry_counts(self):
        spec = SweepSpec.from_dict(_sweep_doc())
        with pytest.raises(ValueError):
            Campaign(spec, workers=0)
        with pytest.raises(ValueError):
            Campaign(spec, retries=-1)
