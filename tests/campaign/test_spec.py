"""Sweep specification expansion."""

import pytest

from repro.campaign.spec import PlannedRun, SweepSpec, derive_seed, set_path
from repro.core.errors import ConfigurationError, SpecValidationError


def _base(**overrides):
    data = {
        "name": "point",
        "topology": {"kind": "ring", "switch_count": 2,
                     "talkers": ["talker0"], "listener": "listener"},
        "flows": {"ts_count": 8},
        "config": "derive",
        "slot_us": 62.5,
        "duration_ms": 10,
        "seed": 0,
    }
    data.update(overrides)
    return data


def _sweep(**overrides):
    data = {"name": "unit-sweep", "base": _base()}
    data.update(overrides)
    return data


class TestParsing:
    def test_minimal_document(self):
        spec = SweepSpec.from_dict(_sweep())
        assert spec.name == "unit-sweep"
        assert spec.grid == {} and spec.points == [] and spec.seeds == 1

    def test_unknown_sweep_key_rejected(self):
        with pytest.raises(SpecValidationError, match="gird"):
            SweepSpec.from_dict(_sweep(gird={"slot_us": [1]}))

    def test_unknown_sweep_key_tolerated_when_lax(self):
        spec = SweepSpec.from_dict(_sweep(gird={}), strict=False)
        assert spec.grid == {}

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(SpecValidationError, match="grid.slot_us"):
            SweepSpec.from_dict(_sweep(grid={"slot_us": []}))

    def test_bad_seeds_rejected(self):
        with pytest.raises(SpecValidationError, match="seeds"):
            SweepSpec.from_dict(_sweep(seeds=0))

    def test_roundtrip(self):
        spec = SweepSpec.from_dict(
            _sweep(grid={"slot_us": [62.5, 125.0]}, seeds=2)
        )
        assert SweepSpec.from_dict(spec.to_dict()).grid == spec.grid


class TestExpansion:
    def test_grid_cross_product(self):
        spec = SweepSpec.from_dict(_sweep(grid={
            "flows.ts_count": [4, 8, 16],
            "slot_us": [62.5, 125.0],
        }))
        runs = spec.expand()
        assert len(runs) == 6
        assert [r.run_id for r in runs] == [
            f"unit-sweep:{i:04d}" for i in range(6)
        ]
        assert runs[0].scenario["flows"]["ts_count"] == 4
        assert runs[1].scenario["slot_us"] == 125.0

    def test_bare_base_is_one_run(self):
        assert len(SweepSpec.from_dict(_sweep()).expand()) == 1

    def test_list_points_appended(self):
        spec = SweepSpec.from_dict(_sweep(
            grid={"slot_us": [62.5]},
            list=[{"topology.switch_count": 3}],
        ))
        runs = spec.expand()
        assert len(runs) == 2
        assert runs[1].scenario["topology"]["switch_count"] == 3

    def test_seeds_replicate_with_distinct_derived_seeds(self):
        spec = SweepSpec.from_dict(_sweep(seeds=3))
        runs = spec.expand()
        seeds = [r.seed for r in runs]
        assert len(set(seeds)) == 3
        assert [r.replicate for r in runs] == [0, 1, 2]

    def test_expansion_is_deterministic(self):
        doc = _sweep(grid={"flows.ts_count": [4, 8]}, seeds=2)
        first = SweepSpec.from_dict(doc).expand()
        second = SweepSpec.from_dict(doc).expand()
        assert [r.seed for r in first] == [r.seed for r in second]
        assert [r.scenario for r in first] == [r.scenario for r in second]

    def test_explicit_seed_in_grid_wins_over_derivation(self):
        spec = SweepSpec.from_dict(_sweep(grid={"seed": [7, 8]}))
        assert [r.seed for r in spec.expand()] == [7, 8]
        assert [r.scenario["seed"] for r in spec.expand()] == [7, 8]

    def test_run_names_are_unique(self):
        spec = SweepSpec.from_dict(_sweep(grid={"flows.ts_count": [4, 8]}))
        names = [r.scenario["name"] for r in spec.expand()]
        assert len(set(names)) == len(names)

    def test_invalid_expanded_scenario_lists_run_and_path(self):
        spec = SweepSpec.from_dict(
            _sweep(grid={"flows.ts_cout": [4, 8]}), strict=True
        )
        with pytest.raises(SpecValidationError) as excinfo:
            spec.expand()
        message = str(excinfo.value)
        assert "unit-sweep:0000" in message
        assert "ts_cout" in message and "ts_count" in message  # suggestion

    def test_lax_expansion_skips_validation(self):
        spec = SweepSpec.from_dict(_sweep(grid={"flows.ts_cout": [4]}))
        runs = spec.expand(strict=False)
        assert runs[0].scenario["flows"]["ts_cout"] == 4


class TestSetPath:
    def test_nested_create(self):
        tree = {}
        set_path(tree, "a.b.c", 1)
        assert tree == {"a": {"b": {"c": 1}}}

    def test_derived_config_hint(self):
        with pytest.raises(ConfigurationError, match="explicit object"):
            set_path({"config": "derive"}, "config.queue_depth", 12)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed("c", 0, "sig") == derive_seed("c", 0, "sig")

    def test_sensitive_to_every_input(self):
        reference = derive_seed("c", 0, "sig")
        assert derive_seed("d", 0, "sig") != reference
        assert derive_seed("c", 1, "sig") != reference
        assert derive_seed("c", 0, "gis") != reference

    def test_payload_roundtrip(self):
        run = PlannedRun(index=0, run_id="x:0000", overrides={"slot_us": 1.0},
                        replicate=0, seed=3, scenario=_base())
        payload = run.as_payload()
        assert payload["run_id"] == "x:0000" and payload["seed"] == 3
