"""Multi-process sharp edges: watchdog timer semantics, post-fork backend
state, explicit pool context.

These are the regression tests for the campaign layer's process-management
fixes: a zero/negative wall-clock budget must *fire* (``setitimer(0)``
silently disables the alarm), teardown must restore a previously armed
itimer (not just the handler), forked pool workers must re-resolve the
kernel backend instead of trusting inherited ``fastpath`` module state,
and the runner must reject a worker that reports running on a different
backend than the campaign resolves to.
"""

import signal
import threading

import pytest

from repro.campaign import Campaign, SweepSpec
from repro.campaign.runner import pool_context, worker_init
from repro.campaign.worker import execute_run
from repro.core.errors import SimulationError
from repro.sim import fastpath

_SCENARIO = {
    "name": "watchdog-point",
    "topology": {"kind": "ring", "switch_count": 2,
                 "talkers": ["talker0"], "listener": "listener"},
    "flows": {"ts_count": 2},
    "config": "derive",
    "slot_us": 62.5,
    "duration_ms": 2,
    "seed": 0,
}


def _payload(**extra):
    payload = {
        "run_id": "wd:0000",
        "index": 0,
        "replicate": 0,
        "seed": 0,
        "overrides": {},
        "scenario": dict(_SCENARIO),
    }
    payload.update(extra)
    return payload


def _alarm_testable():
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


class TestWatchdogEdges:
    def test_zero_timeout_fires_instead_of_disabling(self):
        row = execute_run(_payload(timeout_s=0))
        assert row["status"] == "timeout"
        assert "0" in row["error"]
        # Nothing was simulated: the run never got a chance to start.
        assert "classes" not in row

    def test_negative_timeout_fires_instead_of_raising(self):
        row = execute_run(_payload(timeout_s=-3.5))
        assert row["status"] == "timeout"
        assert row["error"] == "run exceeded -3.5s"

    def test_none_timeout_still_means_unbounded(self):
        row = execute_run(_payload(timeout_s=None))
        assert row["status"] == "ok"

    def test_prior_itimer_and_handler_restored(self):
        if not _alarm_testable():
            pytest.skip("SIGALRM unavailable in this environment")
        fired = []
        prev_handler = signal.signal(
            signal.SIGALRM, lambda *args: fired.append(args)
        )
        signal.setitimer(signal.ITIMER_REAL, 60.0)
        try:
            row = execute_run(_payload(timeout_s=30.0))
            assert row["status"] == "ok"
            # Our handler is back in place...
            restored = signal.getsignal(signal.SIGALRM)
            remaining, interval = signal.setitimer(signal.ITIMER_REAL, 0.0)
            # ...and the outer 60 s timer was re-armed with (roughly) the
            # time it had left, not silently discarded.
            assert 0.0 < remaining <= 60.0
            assert interval == 0.0
            assert callable(restored) and restored is not signal.SIG_DFL
            assert not fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, prev_handler)

    def test_no_outer_timer_leaves_alarm_disarmed(self):
        if not _alarm_testable():
            pytest.skip("SIGALRM unavailable in this environment")
        row = execute_run(_payload(timeout_s=30.0))
        assert row["status"] == "ok"
        remaining, _ = signal.setitimer(signal.ITIMER_REAL, 0.0)
        assert remaining == 0.0


class TestPostForkBackendState:
    def test_worker_init_resets_fastpath_cache(self, monkeypatch):
        monkeypatch.setattr(fastpath, "_cached", True)
        monkeypatch.setattr(fastpath, "_module", object())
        worker_init()
        assert fastpath._cached is False
        assert fastpath._module is None

    def test_pool_context_is_explicit(self):
        method = pool_context().get_start_method()
        assert method in ("fork", "spawn")

    def test_worker_reports_its_backend_on_telemetry(self):
        row = execute_run(_payload())
        assert row["_telemetry"]["backend"] in ("py", "c")

    def test_runner_rejects_backend_mismatch(self, monkeypatch):
        def fake_execute(payload):
            return {
                "run_id": payload["run_id"],
                "index": payload["index"],
                "replicate": payload["replicate"],
                "seed": payload["seed"],
                "params": payload["overrides"],
                "status": "ok",
                "_telemetry": {"backend": "bogus"},
            }

        import repro.campaign.runner as runner_mod

        monkeypatch.setattr(runner_mod, "execute_run", fake_execute)
        spec = SweepSpec.from_dict(
            {"name": "mismatch", "base": dict(_SCENARIO)}
        )
        with pytest.raises(SimulationError, match="bogus"):
            Campaign(spec, workers=1).run()
