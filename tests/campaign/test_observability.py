"""Sweep-level observability end to end: the ISSUE 6 acceptance scenario.

A 2-worker sweep with an injected per-run timeout (the deterministic event
budget) must produce: a complete run ledger with retry lineage, a
flight-recorder dump for the timed-out run holding its last kernel events,
live status-file heartbeats, and at least one straggler flag -- with
ledger and flight content byte-identical across worker counts.
"""

import json

import pytest

from repro.campaign import Campaign, SweepSpec
from repro.obs.campaign import (
    ledger_run_records,
    read_ledger,
    read_status,
    render_status,
)


def _sweep_doc():
    return {
        "name": "obs-sweep",
        "base": {
            "name": "point",
            "topology": {"kind": "ring", "switch_count": 2,
                         "talkers": ["talker0"], "listener": "listener"},
            "flows": {"ts_count": 4},
            "config": "derive",
            "slot_us": 62.5,
            "duration_ms": 2,
            "seed": 0,
        },
        "grid": {"flows.ts_count": [4, 8]},
    }


def _run_observed(tmp_path, workers, event_budget=60, retries=1):
    out = tmp_path / f"w{workers}"
    spec = SweepSpec.from_dict(_sweep_doc())
    campaign = Campaign(
        spec,
        workers=workers,
        retries=retries,
        event_budget=event_budget,
        status_file=out / "status.jsonl",
        ledger=out / "ledger.jsonl",
        flight_dir=out / "flight",
    )
    summary = campaign.run(jsonl=out / "runs.jsonl")
    return campaign, summary, out


class TestAcceptanceScenario:
    def test_budget_timeout_produces_all_artifacts(self, tmp_path):
        campaign, summary, out = _run_observed(tmp_path, workers=2)
        assert summary["status"] == {"timeout": 2}

        # Complete ledger: head + one record per run + end, with lineage.
        records = read_ledger(out / "ledger.jsonl")
        runs = ledger_run_records(records)
        assert records[0]["record"] == "sweep"
        assert records[0]["runs"] == 2
        assert len(runs) == 2
        for run in runs:
            assert run["status"] == "timeout"
            assert run["attempts"] == 2
            lineage = run["attempt_history"]
            assert [a["attempt"] for a in lineage] == [1]
            assert lineage[0]["status"] == "timeout"
            assert "flight_dump" in lineage[0]
        assert records[-1]["record"] == "sweep_end"
        assert records[-1]["runs_recorded"] == 2

        # Flight dump holds the timed-out run's last kernel events.
        dump_name = runs[0]["flight_dump"]
        dump = json.loads((out / "flight" / dump_name).read_text())
        assert dump["status"] == "timeout"
        assert len(dump["events"]) > 0
        assert dump["sim_stats"]["fired"] > 0

        # Heartbeats parseable and renderable.
        status_records = read_status(out / "status.jsonl")
        kinds = {r["hb"] for r in status_records}
        assert {"sweep", "run_start", "run_end", "sweep_end"} <= kinds
        text = render_status(status_records)
        assert "obs-sweep" in text and "[complete]" in text

        # At least one straggler flag (timeouts are definitional).
        assert campaign.stragglers
        assert any("timeout" in f["reasons"] for f in campaign.stragglers)

    def test_ledger_and_flight_byte_identical_across_workers(self, tmp_path):
        _run_observed(tmp_path, workers=1)
        _run_observed(tmp_path, workers=2)
        w1, w2 = tmp_path / "w1", tmp_path / "w2"
        assert sorted((w1 / "ledger.jsonl").read_text().splitlines()) == \
            sorted((w2 / "ledger.jsonl").read_text().splitlines())
        assert sorted((w1 / "runs.jsonl").read_text().splitlines()) == \
            sorted((w2 / "runs.jsonl").read_text().splitlines())
        dumps1 = {p.name: p.read_text()
                  for p in (w1 / "flight").glob("*.json")}
        dumps2 = {p.name: p.read_text()
                  for p in (w2 / "flight").glob("*.json")}
        assert dumps1 and dumps1 == dumps2

    def test_observability_leaves_rows_unchanged(self, tmp_path):
        spec = SweepSpec.from_dict(_sweep_doc())
        bare = tmp_path / "bare_runs.jsonl"
        Campaign(spec, workers=1).run(jsonl=bare)
        observed = tmp_path / "obs"
        campaign = Campaign(
            spec,
            workers=1,
            status_file=observed / "status.jsonl",
            ledger=observed / "ledger.jsonl",
            flight_dir=observed / "flight",
        )
        campaign.run(jsonl=observed / "runs.jsonl")
        assert bare.read_text() == (observed / "runs.jsonl").read_text()

    def test_rows_never_leak_telemetry(self, tmp_path):
        campaign, _, out = _run_observed(tmp_path, workers=1)
        for line in (out / "runs.jsonl").read_text().splitlines():
            row = json.loads(line)
            assert "_telemetry" not in row
            assert "wall_s" not in row
        assert len(campaign.telemetry) == 4  # 2 runs x 2 attempts


class TestRetryLineage:
    def test_retried_timeout_keeps_first_attempt_record(
        self, tmp_path, monkeypatch
    ):
        """Satellite fix: a retry must not silently overwrite attempt 1."""
        calls = {}

        def fake_execute(payload):
            run_id = payload["run_id"]
            attempt = payload.get("attempt", 1)
            calls[run_id] = attempt
            row = {
                "run_id": run_id,
                "index": payload["index"],
                "replicate": payload["replicate"],
                "seed": payload["seed"],
                "params": payload["overrides"],
            }
            if attempt == 1:
                row["status"] = "timeout"
                row["error"] = "run exceeded 0.01s"
            else:
                row["status"] = "ok"
                row["bram_kb"] = 123.0
            row["_telemetry"] = {
                "run_id": run_id, "index": payload["index"],
                "attempt": attempt, "status": row["status"],
                "wall_s": 0.5 if attempt == 1 else 0.1,
            }
            return row

        monkeypatch.setattr(
            "repro.campaign.runner.execute_run", fake_execute
        )
        spec = SweepSpec.from_dict(_sweep_doc())
        campaign = Campaign(spec, workers=1, retries=2,
                            ledger=tmp_path / "ledger.jsonl")
        summary = campaign.run(jsonl=tmp_path / "runs.jsonl")
        assert summary["status"] == {"ok": 2}

        rows = [json.loads(line) for line in
                (tmp_path / "runs.jsonl").read_text().splitlines()]
        for row in rows:
            assert row["attempts"] == 2
            assert row["status"] == "ok"
            assert row["bram_kb"] == 123.0  # attempt 2's measurements
            lineage = row["attempt_history"]
            assert lineage == [{"attempt": 1, "status": "timeout",
                                "error": "run exceeded 0.01s"}]

        ledger_runs = ledger_run_records(
            read_ledger(tmp_path / "ledger.jsonl")
        )
        for run in ledger_runs:
            assert run["attempts"] == 2
            assert run["attempt_history"][0]["status"] == "timeout"

        # Both attempts' telemetry retained for straggler analysis.
        assert len(campaign.telemetry) == 4

    def test_exhausted_retries_keep_full_lineage(self, tmp_path, monkeypatch):
        def always_timeout(payload):
            return {
                "run_id": payload["run_id"],
                "index": payload["index"],
                "replicate": payload["replicate"],
                "seed": payload["seed"],
                "params": payload["overrides"],
                "status": "timeout",
                "error": "budget",
            }

        monkeypatch.setattr(
            "repro.campaign.runner.execute_run", always_timeout
        )
        spec = SweepSpec.from_dict(_sweep_doc())
        campaign = Campaign(spec, workers=1, retries=2)
        campaign.run()
        for row in campaign.rows:
            assert row["attempts"] == 3
            assert [a["attempt"] for a in row["attempt_history"]] == [1, 2]


class TestValidation:
    def test_event_budget_validated(self):
        spec = SweepSpec.from_dict(_sweep_doc())
        with pytest.raises(ValueError, match="event_budget"):
            Campaign(spec, event_budget=0)
