"""Injection Time Planning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import SchedulingError
from repro.core.units import ms
from repro.cqf.itp import ItpPlanner, unplanned_plan
from repro.cqf.schedule import CqfSchedule
from repro.traffic.flows import FlowSpec, TrafficClass

SLOT = 62_500
SCHEDULE = CqfSchedule(SLOT, ms(10))


def _ts_flows(count, period_ns=ms(10), size=64):
    return [
        FlowSpec(i, TrafficClass.TS, "t", "l", size, period_ns=period_ns)
        for i in range(count)
    ]


class TestGreedyBalance:
    def test_spreads_same_period_flows(self):
        plan = ItpPlanner(SCHEDULE).plan(_ts_flows(160))
        # 160 flows over 160 slots: perfectly level
        assert plan.max_frames_per_slot == 1
        assert plan.load_balance_ratio() == 1.0

    def test_paper_scale(self):
        plan = ItpPlanner(SCHEDULE).plan(_ts_flows(1024))
        assert plan.max_frames_per_slot == 7  # ceil(1024/160)
        assert plan.required_queue_depth == 7

    def test_beats_unplanned(self):
        flows = _ts_flows(300)
        planned = ItpPlanner(SCHEDULE).plan(flows)
        naive = unplanned_plan(SCHEDULE, flows)
        assert naive.max_frames_per_slot == 300
        assert planned.max_frames_per_slot == 2

    def test_mixed_periods(self):
        schedule = CqfSchedule(500_000, ms(20))
        flows = [
            FlowSpec(0, TrafficClass.TS, "t", "l", 64, period_ns=ms(10)),
            FlowSpec(1, TrafficClass.TS, "t", "l", 64, period_ns=ms(4)),
        ]
        plan = ItpPlanner(schedule).plan(flows)
        # 10 ms flow: 2 packets/cycle; 4 ms flow: 5 packets/cycle -> total 7
        assert sum(plan.slot_frames) == 7
        assert plan.max_frames_per_slot == 1

    def test_non_ts_flows_ignored(self):
        flows = _ts_flows(4) + [
            FlowSpec(100, TrafficClass.BE, "t", "l", 1024, rate_bps=10**6)
        ]
        plan = ItpPlanner(SCHEDULE).plan(flows)
        assert 100 not in plan.assignments

    def test_unaligned_period_rejected(self):
        flow = FlowSpec(0, TrafficClass.TS, "t", "l", 64, period_ns=ms(10) + 1)
        with pytest.raises(SchedulingError):
            ItpPlanner(SCHEDULE).plan([flow])

    def test_infeasible_load_rejected(self):
        # 4000 x 1500B in a 10ms cycle = 4.8 Gbps >> budget
        with pytest.raises(SchedulingError, match="injection slot"):
            ItpPlanner(SCHEDULE).plan(_ts_flows(4000, size=1500))


class TestPhases:
    def test_same_slot_flows_staggered(self):
        plan = ItpPlanner(SCHEDULE).plan(_ts_flows(161))
        # one slot holds two flows; their phases must differ
        by_slot = {}
        for a in plan.assignments.values():
            by_slot.setdefault(a.offset_slot % SCHEDULE.slot_count, []).append(
                a.phase_ns
            )
        doubled = [v for v in by_slot.values() if len(v) > 1]
        assert doubled and all(len(set(v)) == len(v) for v in doubled)

    def test_phase_stays_inside_slot(self):
        plan = ItpPlanner(SCHEDULE).plan(_ts_flows(1024))
        for a in plan.assignments.values():
            assert 0 <= a.phase_ns < SLOT


class TestInjectionTimes:
    def test_periodic_and_slot_aligned(self):
        flows = _ts_flows(8)
        plan = ItpPlanner(SCHEDULE).plan(flows)
        flow = flows[3]
        t0 = plan.injection_ns(flow, 0)
        t1 = plan.injection_ns(flow, 1)
        assert t1 - t0 == flow.period_ns
        assignment = plan.assignments[flow.flow_id]
        assert t0 == assignment.offset_slot * SLOT + assignment.phase_ns


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=200))
    def test_total_injections_conserved(self, count):
        plan = ItpPlanner(SCHEDULE).plan(_ts_flows(count))
        assert sum(plan.slot_frames) == count  # one packet per flow per cycle

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=200))
    def test_never_worse_than_unplanned(self, count):
        flows = _ts_flows(count)
        planned = ItpPlanner(SCHEDULE).plan(flows)
        naive = unplanned_plan(SCHEDULE, flows)
        assert planned.max_frames_per_slot <= naive.max_frames_per_slot

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=320))
    def test_optimal_for_uniform_flows(self, count):
        plan = ItpPlanner(SCHEDULE).plan(_ts_flows(count))
        optimal = -(-count // SCHEDULE.slot_count)
        assert plan.max_frames_per_slot == optimal
