"""CQF GCL generation."""

import pytest

from repro.core.errors import SchedulingError
from repro.cqf.gcl_gen import cqf_gcl_entries, cqf_port_program


class TestEntries:
    def test_two_entries_each(self):
        in_e, out_e = cqf_gcl_entries(slot_ns=65_000)
        assert len(in_e) == 2 and len(out_e) == 2

    def test_intervals_are_slot(self):
        in_e, out_e = cqf_gcl_entries(slot_ns=65_000)
        assert all(e.interval_ns == 65_000 for e in in_e + out_e)

    def test_pair_alternates_and_opposes(self):
        in_e, out_e = cqf_gcl_entries(slot_ns=100, pair=(6, 7))
        # slot 0: gather on 6, drain 7; slot 1: swap
        assert in_e[0].is_open(6) and not in_e[0].is_open(7)
        assert in_e[1].is_open(7) and not in_e[1].is_open(6)
        assert out_e[0].is_open(7) and not out_e[0].is_open(6)
        assert out_e[1].is_open(6) and not out_e[1].is_open(7)

    def test_non_ts_queues_always_open(self):
        in_e, out_e = cqf_gcl_entries(slot_ns=100, pair=(6, 7))
        for entry in in_e + out_e:
            for queue in range(6):
                assert entry.is_open(queue)

    def test_exactly_one_pair_member_open_per_entry(self):
        in_e, out_e = cqf_gcl_entries(slot_ns=100, pair=(2, 5))
        for entry in in_e + out_e:
            assert entry.is_open(2) != entry.is_open(5)

    def test_custom_queue_num(self):
        in_e, _ = cqf_gcl_entries(slot_ns=100, pair=(2, 3), queue_num=4)
        assert not in_e[0].is_open(4)  # queues beyond queue_num stay closed

    def test_invalid_slot_rejected(self):
        with pytest.raises(SchedulingError):
            cqf_gcl_entries(slot_ns=0)

    def test_same_queue_pair_rejected(self):
        with pytest.raises(SchedulingError):
            cqf_gcl_entries(slot_ns=100, pair=(7, 7))

    def test_pair_outside_queue_num_rejected(self):
        with pytest.raises(SchedulingError):
            cqf_gcl_entries(slot_ns=100, pair=(6, 7), queue_num=4)


class TestPortProgram:
    def test_returns_pair_objects(self):
        in_e, out_e, pairs = cqf_port_program(slot_ns=100)
        assert len(pairs) == 1
        assert 6 in pairs[0] and 7 in pairs[0]
