"""Scheduling cycle and slotting."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SchedulingError
from repro.cqf.schedule import CqfSchedule, scheduling_cycle_ns, slots_in_cycle


class TestCycle:
    def test_lcm_of_periods(self):
        assert scheduling_cycle_ns([10_000_000, 4_000_000]) == 20_000_000

    def test_single_period(self):
        assert scheduling_cycle_ns([10_000_000]) == 10_000_000

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            scheduling_cycle_ns([])

    def test_nonpositive_rejected(self):
        with pytest.raises(SchedulingError):
            scheduling_cycle_ns([10, 0])

    def test_coprime_explosion_guarded(self):
        with pytest.raises(SchedulingError, match="co-prime"):
            scheduling_cycle_ns([999_999_937, 999_999_893])  # two primes

    @given(st.lists(st.sampled_from([1, 2, 4, 5, 8, 10]), min_size=1,
                    max_size=6))
    def test_cycle_divisible_by_every_period(self, periods_ms):
        periods = [p * 10**6 for p in periods_ms]
        cycle = scheduling_cycle_ns(periods)
        assert all(cycle % p == 0 for p in periods)


class TestSlots:
    def test_exact_division(self):
        assert slots_in_cycle(10_000_000, 62_500) == 160

    def test_nondivisible_rejected(self):
        with pytest.raises(SchedulingError):
            slots_in_cycle(10_000_000, 65_000)

    def test_schedule_for_flows(self):
        schedule = CqfSchedule.for_flows([10_000_000], 62_500)
        assert schedule.slot_count == 160
        assert schedule.cycle_ns == 10_000_000

    def test_slot_of(self):
        schedule = CqfSchedule(100, 1000)
        assert schedule.slot_of(0) == 0
        assert schedule.slot_of(99) == 0
        assert schedule.slot_of(100) == 1
        assert schedule.slot_of(1050) == 0  # wraps into next cycle

    def test_slot_start(self):
        schedule = CqfSchedule(100, 1000)
        assert schedule.slot_start(3) == 300
        assert schedule.slot_start(3, cycle_index=2) == 2300
        assert schedule.slot_start(12) == 200  # index wraps modulo count

    def test_capacity_bytes(self):
        schedule = CqfSchedule(62_500, 10_000_000)
        # 62.5 us at 1 Gbps = 62500 ns * 1e9 bps / 8e9 = 7812 B
        assert schedule.capacity_bytes(10**9) == 7812

    @given(st.integers(min_value=0, max_value=10**8))
    def test_slot_of_start_roundtrip(self, t):
        schedule = CqfSchedule(62_500, 10_000_000)
        slot = schedule.slot_of(t)
        start = schedule.slot_start(slot, cycle_index=t // schedule.cycle_ns)
        assert start <= t < start + schedule.slot_ns
