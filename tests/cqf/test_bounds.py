"""Eq. (1) latency bounds."""

import pytest

from repro.core.errors import SchedulingError
from repro.cqf.bounds import CqfBounds, cqf_bounds


class TestBounds:
    def test_paper_formula(self):
        bounds = cqf_bounds(hops=4, slot_ns=65_000)
        assert bounds.min_ns == 3 * 65_000
        assert bounds.max_ns == 5 * 65_000
        assert bounds.mean_ns == 4 * 65_000

    def test_single_hop(self):
        bounds = cqf_bounds(1, 65_000)
        assert bounds.min_ns == 0
        assert bounds.max_ns == 130_000

    def test_contains(self):
        bounds = cqf_bounds(2, 100)
        assert bounds.contains(100)
        assert bounds.contains(300)
        assert not bounds.contains(99)
        assert not bounds.contains(301)

    def test_window_width_is_two_slots(self):
        for hops in range(1, 6):
            bounds = cqf_bounds(hops, 62_500)
            assert bounds.max_ns - bounds.min_ns == 2 * 62_500

    def test_invalid_hops(self):
        with pytest.raises(SchedulingError):
            cqf_bounds(0, 100)

    def test_invalid_slot(self):
        with pytest.raises(SchedulingError):
            cqf_bounds(1, 0)
