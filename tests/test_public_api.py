"""The package's public surface."""

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "0.1.0"

    def test_exception_hierarchy_rooted(self):
        for name in (
            "ConfigurationError",
            "CapacityError",
            "SchedulingError",
            "SimulationError",
            "SynthesisError",
            "TopologyError",
        ):
            assert issubclass(getattr(repro, name), repro.TsnBuilderError)

    def test_docstring_quickstart_is_runnable(self):
        """The __init__ docstring's example must not rot."""
        from repro import CustomizationAPI, Testbed, ring_topology
        from repro.traffic.iec60802 import production_cell_flows

        api = CustomizationAPI("ring-node")
        api.set_switch_tbl(1024, 0)
        api.set_class_tbl(1024)
        api.set_meter_tbl(1024)
        api.set_gate_tbl(2, 8, 1)
        api.set_cbs_tbl(3, 3, 1)
        api.set_queues(12, 8, 1)
        api.set_buffers(96, 1)
        config = api.build()
        assert round(config.total_bram_kb) == 2106

        topo = ring_topology(switch_count=2, talkers=["talker0"])
        flows = production_cell_flows(["talker0"], "listener", flow_count=8)
        result = Testbed(topo, config, flows).run(duration_ns=15_000_000)
        assert result.ts_loss == 0.0

    def test_scheduling_surface_exported(self):
        """The pluggable scheduling layer is part of the public API."""
        for name in (
            "Scheduler",
            "SchedPolicy",
            "SchedulePlan",
            "SchedulingProblem",
            "available_backends",
            "make_scheduler",
            "plan_flows",
        ):
            assert name in repro.__all__, name
            assert hasattr(repro, name), name
        assert {"greedy", "exact", "anneal", "unplanned"} <= set(
            repro.available_backends()
        )

    def test_api_doctest_value(self):
        """The CustomizationAPI docstring promises 2106."""
        import doctest

        import repro.core.api as api_module

        failures, _ = doctest.testmod(api_module, verbose=False)
        assert failures == 0
