"""Sharded single-run simulation: determinism, partitioning, restrictions.

The acceptance contract of :mod:`repro.sim.shard` is byte-determinism:
a 1-shard and an N-shard run of the same scenario must produce identical
observables -- counters, class digests, drop/port reports, latency
records, fault digests, canonically sorted traces, sweep rows.  These
tests pin that contract on the topology shapes the partitioner handles
differently (chain-like ring, star, redundant dual path) and under the
cross-shard stress cases (faults on a cut link, FRER elimination across
the cut).

Every sharded run here spawns real worker processes; scenarios are kept
small so the whole module stays in CI-smoke territory.
"""

from __future__ import annotations

import copy

import pytest

from repro.core.errors import ConfigurationError
from repro.network.scenario import ScenarioSpec, validate_scenario_dict
from repro.network.topology import ring_topology, star_topology
from repro.sim.shard import plan_partition, run_sharded

# 50us propagation keeps the lookahead window coarse: a few dozen epochs
# per run instead of thousands, without changing any observable besides
# the (identical-everywhere) link latency.
RING = {
    "name": "shard-ring",
    "topology": {
        "kind": "ring",
        "switch_count": 4,
        "talkers": ["talker0", "talker1"],
        "listener": "listener",
    },
    "flows": {
        "ts_count": 4,
        "period_us": 1_000,
        "size_bytes": 64,
        "rc_mbps": 50,
        "be_mbps": 50,
    },
    "duration_ms": 4,
    "propagation_ns": 50_000,
    "seed": 3,
}

STAR = {
    "name": "shard-star",
    "topology": {
        "kind": "star",
        "child_count": 3,
        "talkers": ["talker0", "talker1"],
        "listener": "listener",
    },
    "flows": {"ts_count": 4, "period_us": 1_000, "size_bytes": 64},
    "duration_ms": 4,
    "propagation_ns": 50_000,
    "seed": 5,
}

# FRER member streams split at sw0 and merge at the eliminator: with 2+
# shards the member paths land in different shards and elimination state
# must still come out identical.
DUAL_PATH = {
    "name": "shard-dual-path",
    "topology": {"kind": "dual_path", "chain_len": 3},
    "flows": {"ts_count": 2, "period_us": 1_000, "size_bytes": 64},
    "duration_ms": 4,
    "propagation_ns": 50_000,
    "frer_ts": True,
    "seed": 7,
}

# Default 2-shard split of the 4-ring is {sw0,sw1 | sw2,sw3}, so
# sw1.p0->sw2 is a cut link: the link_down window and the loss burst are
# exercised on the exact link the coordinator tunnels frames over.
FAULTED_RING = dict(
    RING,
    name="shard-faulted-ring",
    faults={
        "events": [
            {"kind": "link_down", "link": "sw1.p0->sw2", "at_us": 1_000,
             "duration_us": 1_000},
            {"kind": "loss_burst", "link": "sw0.p0->sw1", "at_us": 2_500,
             "duration_us": 500, "rate": 1.0},
        ]
    },
)

LINK_FIELDS = (
    "frames_carried", "frames_corrupted", "frames_blackholed",
    "frames_fault_lost", "frames_fault_corrupted", "down_count",
)


def _digest(result) -> dict:
    """Every deterministic observable a run exposes, comparison-ready."""
    return {
        "counters": result.counters(),
        "classes": result.analyzer.class_digest(result.expected_by_flow),
        "expected": dict(result.expected_by_flow),
        "drops": result.drop_report(),
        "ports": result.port_report(),
        "links": {
            link.name: tuple(getattr(link, field) for field in LINK_FIELDS)
            for link in result.links
        },
        "high_water": (
            result.max_queue_high_water(),
            result.max_buffer_high_water(),
        ),
        "faults": result.faults.as_dict() if result.faults else None,
    }


def _sharded_digests(scenario, counts, trace=False):
    out = []
    for count in counts:
        result = run_sharded(scenario, shards=count, trace=trace)
        digest = _digest(result)
        if trace:
            digest["trace"] = list(result.tracer.records)
        out.append((count, digest))
    return out


def _assert_all_identical(digests):
    (base_count, base), *rest = digests
    for count, digest in rest:
        for key in base:
            assert digest[key] == base[key], (
                f"{key} differs between {base_count} and {count} shards"
            )


class TestDeterminism:
    def test_ring_identical_across_shard_counts(self):
        _assert_all_identical(
            _sharded_digests(RING, (1, 2, 4), trace=True)
        )

    def test_star_identical_across_shard_counts(self):
        _assert_all_identical(_sharded_digests(STAR, (1, 2, 4)))

    def test_frer_dual_path_identical_across_shard_counts(self):
        digests = _sharded_digests(DUAL_PATH, (1, 2, 3))
        _assert_all_identical(digests)
        # The run must actually exercise elimination for the comparison
        # to mean anything.
        counters = digests[0][1]["counters"]
        assert any(
            c.get("frer_eliminated") for c in counters.values()
        ) or digests[0][1]["classes"]["TS"]["received"] > 0

    def test_faulted_ring_identical_including_fault_digest(self):
        digests = _sharded_digests(FAULTED_RING, (1, 2, 4))
        _assert_all_identical(digests)
        faults = digests[0][1]["faults"]
        assert faults is not None and faults["timeline"], (
            "fault plan did not fire; the cut-link stress is vacuous"
        )

    def test_single_shard_matches_plain_run(self):
        plain = ScenarioSpec.from_dict(copy.deepcopy(RING)).run()
        sharded = run_sharded(RING, shards=1)
        assert _digest(sharded) == _digest(plain)

    def test_sweep_rows_identical_with_shard_stanza(self):
        from repro.campaign.worker import execute_run

        def row(scenario):
            payload = {
                "run_id": "r0", "index": 0, "replicate": 0, "seed": 3,
                "overrides": {}, "scenario": scenario, "attempt": 1,
            }
            out = execute_run(payload)
            out.pop("_telemetry")
            return out

        sharded_scenario = dict(copy.deepcopy(RING))
        sharded_scenario["shard"] = {"count": 2}
        plain_row = row(copy.deepcopy(RING))
        shard_row = row(sharded_scenario)
        assert plain_row["status"] == "ok", plain_row
        assert shard_row == plain_row


class TestPartition:
    def test_ring_default_split_is_contiguous(self):
        topology = ring_topology(switch_count=4)
        assert plan_partition(topology, 2) == {
            "sw0": 0, "sw1": 0, "sw2": 1, "sw3": 1,
        }

    def test_star_split_isolates_branches(self):
        topology = star_topology(child_count=3)
        assignment = plan_partition(topology, 2)
        assert set(assignment.values()) == {0, 1}
        assert len(assignment) == len(topology.switch_ports)

    def test_explicit_assignment_respected(self):
        topology = ring_topology(switch_count=4)
        assign = {"sw0": 0, "sw1": 1, "sw2": 1, "sw3": 0}
        assert plan_partition(topology, 2, assign) == assign

    def test_count_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="shard count"):
            plan_partition(ring_topology(switch_count=4), 0)

    def test_count_above_switch_count_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            plan_partition(ring_topology(switch_count=4), 5)

    def test_partial_assignment_rejected(self):
        with pytest.raises(ConfigurationError, match="cover every switch"):
            plan_partition(
                ring_topology(switch_count=4), 2, {"sw0": 0, "sw1": 1}
            )

    def test_assignment_with_empty_shard_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_partition(
                ring_topology(switch_count=4), 2,
                {"sw0": 0, "sw1": 0, "sw2": 0, "sw3": 0},
            )

    def test_assignment_index_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_partition(
                ring_topology(switch_count=4), 2,
                {"sw0": 0, "sw1": 0, "sw2": 1, "sw3": 2},
            )


class TestRestrictions:
    def test_slo_rejected(self):
        scenario = dict(copy.deepcopy(RING))
        scenario["slo"] = {"class": {"TS": {"latency_us": 2000}}}
        with pytest.raises(ConfigurationError, match="slo"):
            run_sharded(scenario, shards=2)

    def test_gptp_rejected(self):
        scenario = dict(copy.deepcopy(RING))
        scenario["enable_gptp"] = True
        with pytest.raises(ConfigurationError, match="gptp"):
            run_sharded(scenario, shards=2)

    def test_gm_fault_rejected(self):
        scenario = dict(copy.deepcopy(RING))
        scenario["faults"] = {
            "events": [{"kind": "gm_down", "node": "sw0", "at_us": 1_000}]
        }
        with pytest.raises(ConfigurationError, match="gm_"):
            run_sharded(scenario, shards=2)

    def test_zero_propagation_with_cut_links_rejected(self):
        scenario = dict(copy.deepcopy(RING))
        scenario["propagation_ns"] = 0
        with pytest.raises(ConfigurationError, match="propagation"):
            run_sharded(scenario, shards=2)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ConfigurationError, match="shard count"):
            run_sharded(copy.deepcopy(RING), shards=0)


class TestStanzaValidation:
    BASE = {
        "name": "x",
        "topology": {"kind": "ring"},
        "flows": {"ts_count": 1},
        "duration_ms": 1,
    }

    def _problems(self, stanza):
        doc = dict(self.BASE)
        doc["shard"] = stanza
        return validate_scenario_dict(doc)

    def test_valid_stanza_accepted(self):
        assert self._problems({"count": 2, "assign": {"sw0": 0}}) == []

    def test_unknown_key_rejected(self):
        problems = self._problems({"shards": 2})
        assert any("unknown shard key" in p for p in problems)

    def test_bad_count_rejected(self):
        assert any(
            "shard.count" in p for p in self._problems({"count": 0})
        )
        assert any(
            "shard.count" in p for p in self._problems({"count": "two"})
        )

    def test_bad_assign_rejected(self):
        assert any(
            "shard.assign" in p
            for p in self._problems({"assign": {"sw0": "left"}})
        )

    def test_stanza_round_trips_through_spec(self):
        doc = dict(copy.deepcopy(RING))
        doc["shard"] = {"count": 2}
        spec = ScenarioSpec.from_dict(doc)
        assert spec.shard == {"count": 2}
        assert spec.to_dict()["shard"] == {"count": 2}
