"""Tracer category filtering and formatting."""

from repro.sim.trace import NULL_TRACER, Tracer, TraceRecord


class TestTracer:
    def test_default_records_everything(self):
        tracer = Tracer()
        tracer.emit(5, "gate", "open", queue=3)
        tracer.emit(6, "queue", "enqueue")
        assert len(tracer.records) == 2

    def test_category_filter(self):
        tracer = Tracer(enabled={"gate"})
        tracer.emit(1, "gate", "open")
        tracer.emit(2, "queue", "enqueue")
        assert [r.category for r in tracer.records] == ["gate"]

    def test_enable_adds_category(self):
        tracer = Tracer(enabled=set())
        tracer.emit(1, "tx", "start")
        tracer.enable("tx")
        tracer.emit(2, "tx", "start")
        assert len(tracer.records) == 1

    def test_by_category(self):
        tracer = Tracer()
        tracer.emit(1, "a", "x")
        tracer.emit(2, "b", "y")
        tracer.emit(3, "a", "z")
        assert [r.time for r in tracer.by_category("a")] == [1, 3]

    def test_sink_called(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        tracer.emit(1, "a", "x")
        assert len(seen) == 1 and isinstance(seen[0], TraceRecord)

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1, "a", "x")
        tracer.clear()
        assert tracer.records == []

    def test_record_str(self):
        record = TraceRecord(65_000, "gate", "open", (("queue", 7),))
        text = str(record)
        assert "65us" in text and "gate: open" in text and "queue=7" in text

    def test_disable_suppresses_category(self):
        tracer = Tracer()
        tracer.emit(1, "gate", "open")
        tracer.disable("gate")
        tracer.emit(2, "gate", "open")
        tracer.emit(3, "queue", "enqueue")
        assert [r.category for r in tracer.records] == ["gate", "queue"]

    def test_enable_undoes_disable(self):
        tracer = Tracer()
        tracer.disable("gate")
        assert not tracer.enabled_for("gate")
        tracer.enable("gate")
        assert tracer.enabled_for("gate")
        tracer.emit(1, "gate", "open")
        assert len(tracer.records) == 1

    def test_disable_wins_over_allowlist(self):
        tracer = Tracer(enabled={"gate", "queue"})
        tracer.disable("gate")
        tracer.emit(1, "gate", "open")
        tracer.emit(2, "queue", "enqueue")
        assert [r.category for r in tracer.records] == ["queue"]

    def test_sink_not_called_for_disabled_category(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        tracer.disable("gate")
        tracer.emit(1, "gate", "open")
        tracer.emit(2, "queue", "enqueue")
        assert [r.category for r in seen] == ["queue"]


class TestNullTracer:
    def test_drops_everything(self):
        NULL_TRACER.emit(1, "anything", "x")
        assert NULL_TRACER.records == []

    def test_enabled_for_nothing(self):
        assert not NULL_TRACER.enabled_for("gate")

    def test_enable_is_a_noop(self):
        # The singleton is shared by every component built without a
        # tracer; enabling a category on it must not start collection.
        NULL_TRACER.enable("gate")
        try:
            assert not NULL_TRACER.enabled_for("gate")
            NULL_TRACER.emit(1, "gate", "open")
            assert NULL_TRACER.records == []
        finally:
            NULL_TRACER.disable("gate")

    def test_disable_is_a_noop(self):
        NULL_TRACER.disable("gate")
        assert not NULL_TRACER.enabled_for("gate")
        assert NULL_TRACER.records == []
