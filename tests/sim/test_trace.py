"""Tracer category filtering and formatting."""

from repro.sim.trace import NULL_TRACER, Tracer, TraceRecord


class TestTracer:
    def test_default_records_everything(self):
        tracer = Tracer()
        tracer.emit(5, "gate", "open", queue=3)
        tracer.emit(6, "queue", "enqueue")
        assert len(tracer.records) == 2

    def test_category_filter(self):
        tracer = Tracer(enabled={"gate"})
        tracer.emit(1, "gate", "open")
        tracer.emit(2, "queue", "enqueue")
        assert [r.category for r in tracer.records] == ["gate"]

    def test_enable_adds_category(self):
        tracer = Tracer(enabled=set())
        tracer.emit(1, "tx", "start")
        tracer.enable("tx")
        tracer.emit(2, "tx", "start")
        assert len(tracer.records) == 1

    def test_by_category(self):
        tracer = Tracer()
        tracer.emit(1, "a", "x")
        tracer.emit(2, "b", "y")
        tracer.emit(3, "a", "z")
        assert [r.time for r in tracer.by_category("a")] == [1, 3]

    def test_sink_called(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        tracer.emit(1, "a", "x")
        assert len(seen) == 1 and isinstance(seen[0], TraceRecord)

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1, "a", "x")
        tracer.clear()
        assert tracer.records == []

    def test_record_str(self):
        record = TraceRecord(65_000, "gate", "open", (("queue", 7),))
        text = str(record)
        assert "65us" in text and "gate: open" in text and "queue=7" in text


class TestNullTracer:
    def test_drops_everything(self):
        NULL_TRACER.emit(1, "anything", "x")
        assert NULL_TRACER.records == []

    def test_enabled_for_nothing(self):
        assert not NULL_TRACER.enabled_for("gate")
