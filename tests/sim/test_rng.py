"""Seeded RNG substreams."""

from repro.sim.rng import RngFactory


class TestStreams:
    def test_same_seed_same_stream(self):
        a = RngFactory(7).stream("x")
        b = RngFactory(7).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        factory = RngFactory(7)
        xs = [factory.stream("x").random() for _ in range(3)]
        ys = [factory.stream("y").random() for _ in range(3)]
        assert xs != ys

    def test_different_seeds_differ(self):
        a = RngFactory(1).stream("x").random()
        b = RngFactory(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        factory = RngFactory(0)
        assert factory.stream("x") is factory.stream("x")

    def test_new_stream_does_not_perturb_existing(self):
        f1 = RngFactory(3)
        s = f1.stream("a")
        first = s.random()
        f2 = RngFactory(3)
        f2.stream("zzz")  # extra consumer created first
        assert f2.stream("a").random() == first


class TestFork:
    def test_fork_deterministic(self):
        a = RngFactory(5).fork("child").stream("x").random()
        b = RngFactory(5).fork("child").stream("x").random()
        assert a == b

    def test_fork_independent_of_parent(self):
        parent = RngFactory(5)
        child = parent.fork("child")
        assert child.stream("x").random() != parent.stream("x").random()
