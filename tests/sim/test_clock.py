"""Drifting local clocks."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SimulationError
from repro.sim.clock import LocalClock, PerfectClock
from repro.sim.kernel import Simulator


def _advance(sim, delta):
    sim.schedule(delta, lambda: None)
    sim.run()


class TestPerfectClock:
    def test_tracks_sim_time(self):
        sim = Simulator()
        clock = PerfectClock(sim)
        _advance(sim, 12345)
        assert clock.now() == 12345
        assert clock.offset_from_perfect() == 0


class TestDrift:
    def test_positive_drift_runs_fast(self):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=100)
        _advance(sim, 1_000_000_000)  # 1 s
        assert clock.offset_from_perfect() == 100_000  # 100 us fast

    def test_negative_drift_runs_slow(self):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=-50)
        _advance(sim, 1_000_000_000)
        assert clock.offset_from_perfect() == -50_000

    def test_initial_offset(self):
        sim = Simulator()
        clock = LocalClock(sim, offset_ns=777)
        assert clock.now() == 777

    @given(st.floats(min_value=-100, max_value=100),
           st.integers(min_value=1, max_value=10**9))
    def test_drift_proportional(self, ppm, elapsed):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=ppm)
        _advance(sim, elapsed)
        expected = elapsed * ppm / 1e6
        assert clock.offset_from_perfect() == pytest.approx(expected, abs=1.0)


class TestAdjustment:
    def test_step(self):
        sim = Simulator()
        clock = LocalClock(sim)
        clock.step(-300)
        assert clock.now() == -300

    def test_step_does_not_rewrite_history_rate(self):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=10)
        _advance(sim, 1_000_000_000)
        drifted = clock.now()
        clock.step(5)
        assert clock.now() == drifted + 5

    def test_adjust_rate_cancels_drift(self):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=40)
        clock.adjust_rate(-40)
        _advance(sim, 1_000_000_000)
        assert clock.offset_from_perfect() == 0

    def test_adjust_rate_replaces_previous(self):
        sim = Simulator()
        clock = LocalClock(sim)
        clock.adjust_rate(100)
        clock.adjust_rate(10)
        _advance(sim, 1_000_000)
        assert clock.offset_from_perfect() == pytest.approx(10, abs=1)

    def test_rate_correction_ppm_property(self):
        sim = Simulator()
        clock = LocalClock(sim)
        clock.adjust_rate(12.5)
        assert clock.rate_correction_ppm == pytest.approx(12.5)

    def test_monotone_across_adjustments(self):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=-30)
        readings = [clock.now()]
        for _ in range(5):
            _advance(sim, 1000)
            clock.adjust_rate(-15)
            readings.append(clock.now())
        assert readings == sorted(readings)


class TestLocalDelay:
    def test_perfect_clock_identity(self):
        sim = Simulator()
        clock = LocalClock(sim)
        assert clock.sim_delay_for_local(125_000) == 125_000

    def test_fast_clock_needs_less_sim_time(self):
        sim = Simulator()
        clock = LocalClock(sim, drift_ppm=1000)  # exaggerated
        assert clock.sim_delay_for_local(1_000_000) < 1_000_000

    def test_minimum_one_ns(self):
        sim = Simulator()
        clock = LocalClock(sim)
        assert clock.sim_delay_for_local(1) == 1

    def test_nonpositive_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            LocalClock(sim).sim_delay_for_local(0)
