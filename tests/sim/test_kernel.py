"""Event kernel ordering, cancellation, and error behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SimulationError
from repro.sim.kernel import _COMPACT_MIN_DEAD, Simulator


class TestScheduling:
    def test_fires_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(5, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule(5, lambda: order.append("late"), priority=0)
        sim.schedule(5, lambda: order.append("early"), priority=-10)
        sim.run()
        assert order == ["early", "late"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42] and sim.now == 42

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        def outer():
            sim.schedule(5, lambda: seen.append(sim.now))
        sim.schedule(10, outer)
        sim.run()
        assert seen == [15]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)


class TestRun:
    def test_until_stops_and_pins_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(100, lambda: fired.append(100))
        sim.run(until=50)
        assert fired == [10] and sim.now == 50
        sim.run()
        assert fired == [10, 100]

    def test_until_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(50, lambda: fired.append(50))
        sim.run(until=50)
        assert fired == [50]

    def test_until_in_past_rejected(self):
        sim = Simulator()
        sim.run(until=100)
        with pytest.raises(SimulationError):
            sim.run(until=50)

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        def evil():
            sim.run()
        sim.schedule(1, evil)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == [] and not handle.active

    def test_double_cancel_safe(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_skips_cancelled(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None).cancel()
        assert sim.pending == 1


class TestStepPeek:
    def test_step_executes_one(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: fired.append(1))
        sim.schedule(2, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_step_empty_returns_false(self):
        assert Simulator().step() is False

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        sim.schedule(5, lambda: None).cancel()
        sim.schedule(9, lambda: None)
        assert sim.peek() == 9

    def test_peek_empty(self):
        assert Simulator().peek() is None


class TestDeterminism:
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
    def test_trace_is_sorted_and_stable(self, delays):
        sim = Simulator()
        trace = []
        for i, delay in enumerate(delays):
            sim.schedule(delay, lambda d=delay, i=i: trace.append((d, i)))
        sim.run()
        # time-sorted, and insertion order preserved within equal times
        assert trace == sorted(trace, key=lambda pair: (pair[0], pair[1]))


class TestSimStats:
    def test_scheduled_and_fired(self):
        sim = Simulator()
        for delay in (1, 2, 3):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.stats.scheduled == 3
        assert sim.stats.fired == 3
        assert sim.stats.cancelled == 0

    def test_cancelled_counted_once(self):
        sim = Simulator()
        handle = sim.schedule(5, lambda: None)
        handle.cancel()
        handle.cancel()  # second cancel is a no-op
        sim.schedule(6, lambda: None)
        sim.run()
        assert sim.stats.cancelled == 1
        assert sim.stats.fired == 1

    def test_calendar_high_water(self):
        sim = Simulator()
        for delay in (1, 2, 3, 4):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.stats.calendar_high_water == 4

    def test_high_water_tracks_nested_scheduling(self):
        sim = Simulator()

        def fan_out():
            for delay in (1, 2, 3):
                sim.schedule(delay, lambda: None)

        sim.schedule(1, fan_out)
        sim.run()
        # One drained before three were added: peak is 3, total 4 scheduled.
        assert sim.stats.scheduled == 4
        assert sim.stats.calendar_high_water == 3

    def test_as_dict(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.run()
        assert sim.stats.as_dict() == {
            "scheduled": 1, "fired": 1, "cancelled": 0, "compacted": 0,
            "calendar_high_water": 1,
        }

    def test_cancel_after_fire_not_counted(self):
        # The fire path marks the slot differently from cancellation, so a
        # late cancel() must not inflate the cancelled counter.
        sim = Simulator()
        handle = sim.schedule(5, lambda: None)
        sim.run()
        handle.cancel()
        assert sim.stats.fired == 1
        assert sim.stats.cancelled == 0
        assert not handle.active


class TestPost:
    def test_post_fires_like_schedule(self):
        sim = Simulator()
        order = []
        sim.post(20, lambda: order.append("b"))
        sim.post(10, lambda: order.append("a"))
        sim.post_at(30, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.stats.scheduled == 3 and sim.stats.fired == 3

    def test_post_and_schedule_share_seq_order(self):
        # Same-time events fire in submission order regardless of which
        # primitive scheduled them.
        sim = Simulator()
        order = []
        sim.post(5, lambda: order.append("p1"))
        sim.schedule(5, lambda: order.append("s1"))
        sim.post(5, lambda: order.append("p2"))
        sim.run()
        assert order == ["p1", "s1", "p2"]

    def test_post_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.post(5, lambda: order.append("late"))
        sim.post(5, lambda: order.append("early"), priority=-10)
        sim.run()
        assert order == ["early", "late"]

    def test_post_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.post(-1, lambda: None)

    def test_post_at_past_rejected(self):
        sim = Simulator()
        sim.post(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post_at(5, lambda: None)

    def test_pending_counts_posts(self):
        sim = Simulator()
        sim.post(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0


class TestCompaction:
    def test_cancellation_storm_compacts(self):
        sim = Simulator()
        keep = 4
        storm = _COMPACT_MIN_DEAD * 3
        for _ in range(keep):
            sim.schedule(10**6, lambda: None)
        handles = [sim.schedule(100, lambda: None) for _ in range(storm)]
        for handle in handles:
            handle.cancel()
        assert sim.stats.cancelled == storm
        assert sim.stats.compacted >= _COMPACT_MIN_DEAD
        assert sim.pending == keep
        # The heap itself must have shed the dead entries.
        assert len(sim._heap) < storm

    def test_compaction_mid_run_preserves_order(self):
        # Force a compaction from inside an event action: the run loop's
        # heap binding must stay valid and ordering intact.
        sim = Simulator()
        order = []
        handles = []

        def storm_and_cancel():
            for _ in range(_COMPACT_MIN_DEAD * 3):
                handles.append(sim.schedule(500, lambda: order.append("x")))
            for handle in handles:
                handle.cancel()

        sim.schedule(1, storm_and_cancel)
        sim.schedule(2, lambda: order.append("a"))
        sim.schedule(3, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]
        assert sim.stats.compacted > 0

    def test_peek_does_not_skew_high_water(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(5, lambda: None).cancel()
        sim.schedule(9, lambda: None)
        high_water = sim.stats.calendar_high_water
        assert sim.peek() == 9
        assert sim.stats.calendar_high_water == high_water
        assert sim.pending == 1
