"""Fast-path equivalence: batch vs. object path, compiled vs. Python kernel.

The struct-of-arrays :class:`~repro.switch.batch.FrameBatch` and the
optional compiled kernel backend (``REPRO_BACKEND=c``) are pure
performance work: on identical scenarios every observable -- JSONL trace,
frame-level latency trace, drop report, headroom accounting, SimStats,
campaign sweep rows -- must be byte-identical to the plain object path on
the pure-Python kernel.  These tests lock that contract across CQF and
Qbv gating, multi-hop topologies, fault injection (corruption must
materialize per-link copies, not poison the shared columns) and FRER
replication/elimination.

Compiled-backend legs skip cleanly when no C toolchain is available; the
pure-Python kernel is the reference everywhere.
"""

import json

import pytest

from repro.core.errors import ConfigurationError, SimulationError
from repro.network.scenario import ScenarioSpec, known_extra_keys
from repro.obs.headroom import HeadroomRecorder
from repro.sim import fastpath
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer
from repro.switch.batch import FrameBatch
from repro.switch.packet import EthernetFrame

HAVE_C = fastpath.available()

needs_c = pytest.mark.skipif(
    not HAVE_C, reason="compiled backend unavailable (no C toolchain)"
)

SCENARIOS = {
    "star_cqf": {
        "name": "star-fp",
        "topology": {
            "kind": "star",
            "talkers": ["talker0", "talker1"],
            "listener": "listener",
        },
        "flows": {
            "ts_count": 8,
            "period_us": 2000,
            "size_bytes": 64,
            "rc_mbps": 100,
            "be_mbps": 100,
        },
        "duration_ms": 8,
    },
    "ring_cqf": {
        "name": "ring-fp",
        "topology": {
            "kind": "ring",
            "switch_count": 3,
            "talkers": ["talker0"],
            "listener": "listener",
        },
        "flows": {
            "ts_count": 8,
            "period_us": 2000,
            "size_bytes": 64,
            "rc_mbps": 100,
            "be_mbps": 50,
        },
        "duration_ms": 8,
    },
    "linear_qbv": {
        "name": "linear-fp",
        "topology": {
            "kind": "linear",
            "switch_count": 2,
            "talkers": ["talker0"],
            "listener": "listener",
        },
        "flows": {"ts_count": 8, "period_us": 2000, "size_bytes": 128},
        "duration_ms": 8,
        "gate_mechanism": "qbv",
    },
    "faulted_star": {
        "name": "faulted-fp",
        "topology": {
            "kind": "star",
            "talkers": ["talker0"],
            "listener": "listener",
        },
        "flows": {"ts_count": 8, "period_us": 1000, "size_bytes": 64},
        "config": "derive",
        "slot_us": 62.5,
        "duration_ms": 12,
        "seed": 7,
        "faults": {"events": [
            {"kind": "corrupt_burst", "link": "leaf0.p0", "at_us": 2_000,
             "duration_us": 2_000, "rate": 0.5},
            {"kind": "link_down", "link": "leaf0.p0", "at_us": 8_000},
        ]},
    },
    "frer_ring": {
        "name": "frer-fp",
        "topology": {
            "kind": "frer_ring",
            "switch_count": 4,
            "talkers": ["talker0"],
            "listener": "listener",
        },
        "flows": {"ts_count": 8, "period_us": 2000, "size_bytes": 64},
        "config": "derive",
        "slot_us": 62.5,
        "duration_ms": 12,
        "seed": 7,
        "frer_ts": True,
    },
}


def _trace_jsonl(tracer):
    """The trace as JSONL -- compared byte-for-byte across paths."""
    return "\n".join(
        json.dumps([r.time, r.category, r.message, list(r.fields)])
        for r in tracer.records
    )


def _observe(doc, fastpath_mode, backend, monkeypatch):
    """Every cross-path observable from one run of *doc*."""
    if backend is None:
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
    else:
        monkeypatch.setenv("REPRO_BACKEND", backend)
    spec = ScenarioSpec.from_dict({**doc, "fastpath": fastpath_mode})
    tracer = Tracer()
    headroom = HeadroomRecorder()
    result = spec.run(tracer=tracer, headroom=headroom)
    frame_trace = {
        flow_id: (
            tuple(rec.latencies_ns),
            rec.deadline_misses,
            rec.duplicates,
            rec.reorders,
        )
        for flow_id, rec in sorted(result.analyzer.records.items())
    }
    return {
        "trace_jsonl": _trace_jsonl(tracer),
        "frame_trace": frame_trace,
        "drop_report": result.drop_report(),
        "sim_stats": result.sim_stats,
        "headroom": result.headroom_report().as_dict(),
        "received": result.analyzer.received(),
    }


class TestEquivalence:
    """Object path == batch path == compiled backend, observable for
    observable."""

    @pytest.mark.parametrize("label", sorted(SCENARIOS))
    def test_batch_path_identical(self, label, monkeypatch):
        doc = SCENARIOS[label]
        objects = _observe(doc, "off", None, monkeypatch)
        batched = _observe(doc, "on", None, monkeypatch)
        assert batched["trace_jsonl"] == objects["trace_jsonl"]
        assert batched["frame_trace"] == objects["frame_trace"]
        assert batched["drop_report"] == objects["drop_report"]
        assert batched["sim_stats"] == objects["sim_stats"]
        assert batched["headroom"] == objects["headroom"]
        # Not vacuous: traffic flowed and the trace recorded it.
        assert objects["received"] > 0
        assert objects["trace_jsonl"]

    @pytest.mark.parametrize("label", sorted(SCENARIOS))
    @needs_c
    def test_compiled_backend_identical(self, label, monkeypatch):
        doc = SCENARIOS[label]
        reference = _observe(doc, "on", "py", monkeypatch)
        compiled = _observe(doc, "on", "c", monkeypatch)
        assert compiled == reference

    def test_faulted_scenario_actually_drops(self, monkeypatch):
        # The corruption/cut equivalence above must cover real drops.
        observed = _observe(SCENARIOS["faulted_star"], "on", None,
                            monkeypatch)
        assert "0 dropped" not in observed["drop_report"].splitlines()[0]

    def test_frer_scenario_actually_replicates(self, monkeypatch):
        observed = _observe(SCENARIOS["frer_ring"], "on", None, monkeypatch)
        assert observed["received"] > 0


class TestSweepRows:
    """Campaign rows are identical across paths, backends and workers."""

    def _doc(self, fastpath_mode):
        base = {
            **SCENARIOS["star_cqf"],
            "duration_ms": 5,
            "fastpath": fastpath_mode,
        }
        return {
            "name": "fastpath-sweep",
            "base": base,
            "grid": {"flows.ts_count": [4, 8]},
        }

    def _rows(self, tmp_path, fastpath_mode, workers, tag):
        from repro.campaign import Campaign, SweepSpec

        spec = SweepSpec.from_dict(self._doc(fastpath_mode))
        jsonl = tmp_path / f"rows-{tag}.jsonl"
        Campaign(spec, workers=workers, ledger=None).run(jsonl=jsonl)
        rows = [
            json.loads(line)
            for line in jsonl.read_text().splitlines() if line
        ]
        return sorted(rows, key=lambda r: r["index"])

    def test_rows_identical_across_paths_and_workers(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        reference = self._rows(tmp_path, "off", 1, "off-1w")
        assert self._rows(tmp_path, "on", 1, "on-1w") == reference
        assert self._rows(tmp_path, "on", 2, "on-2w") == reference

    @needs_c
    def test_rows_identical_on_compiled_backend(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        reference = self._rows(tmp_path, "on", 1, "py")
        monkeypatch.setenv("REPRO_BACKEND", "c")
        assert self._rows(tmp_path, "on", 1, "c-1w") == reference
        assert self._rows(tmp_path, "on", 2, "c-2w") == reference


class TestBackendResolution:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert Simulator().backend == "py"

    def test_invalid_argument_raises(self):
        with pytest.raises(SimulationError):
            Simulator(backend="fortran")

    def test_invalid_environment_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        with pytest.raises(SimulationError):
            Simulator()

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "c")
        assert Simulator(backend="py").backend == "py"

    def test_unavailable_extension_degrades_to_python(self, monkeypatch):
        monkeypatch.setattr(fastpath, "load", lambda: None)
        sim = Simulator(backend="c")
        assert sim.backend == "py"
        # And the degraded kernel still runs.
        fired = []
        sim.post(5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5]

    @needs_c
    def test_compiled_backend_resolves(self):
        assert Simulator(backend="c").backend == "c"

    @needs_c
    def test_environment_selects_compiled(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "c")
        assert Simulator().backend == "c"

    @needs_c
    def test_compiled_dispatch_matches_python(self):
        def drive(sim):
            order = []
            sim.post(20, lambda: order.append("late"))
            sim.post(10, lambda: order.append("early"))
            handle = sim.schedule(15, lambda: order.append("cancelled"))
            sim.schedule(15, lambda: order.append("kept"))
            handle.cancel()
            sim.run()
            return order, sim.stats.as_dict()

        assert drive(Simulator(backend="py")) == drive(
            Simulator(backend="c")
        )


class TestTestbedFastpath:
    def _testbed(self, fastpath_mode, spans=None):
        doc = {**SCENARIOS["star_cqf"], "fastpath": fastpath_mode}
        return ScenarioSpec.from_dict(doc).build_testbed(spans=spans)

    def test_invalid_mode_raises(self):
        with pytest.raises(ConfigurationError):
            self._testbed("maybe")

    def test_on_enables_batch(self):
        assert isinstance(self._testbed("on").batch, FrameBatch)

    def test_off_disables_batch(self):
        assert self._testbed("off").batch is None

    def test_auto_enables_batch_without_spans(self):
        assert isinstance(self._testbed("auto").batch, FrameBatch)

    def test_auto_disables_batch_with_spans(self):
        from repro.obs.flowspans import FlowSpanRecorder

        testbed = self._testbed("auto", spans=FlowSpanRecorder())
        assert testbed.batch is None

    def test_scenario_accepts_fastpath_key(self):
        assert "fastpath" in known_extra_keys()


class TestFrameBatch:
    def test_alloc_materialize_roundtrip(self):
        batch = FrameBatch(capacity=2)
        handle = batch.alloc(
            src_mac=0x1, dst_mac=0x2, vlan_id=100, pcp=6,
            size_bytes=64, flow_id=7, seq=3, created_ns=1_000,
        )
        frame = batch.materialize(handle)
        assert isinstance(frame, EthernetFrame)
        assert (frame.src_mac, frame.dst_mac, frame.vlan_id) == (1, 2, 100)
        assert (frame.pcp, frame.size_bytes) == (6, 64)
        assert (frame.flow_id, frame.seq, frame.created_ns) == (7, 3, 1_000)
        assert frame.fcs_ok

    def test_handles_are_dense_and_grow(self):
        batch = FrameBatch(capacity=2)
        handles = [
            batch.alloc(1, 2, 100, 6, 64, flow_id=i, seq=i, created_ns=i)
            for i in range(5)
        ]
        assert handles == [0, 1, 2, 3, 4]
        assert len(batch) == 5
        assert [batch.flow_id[h] for h in handles] == [0, 1, 2, 3, 4]

    def test_shares_frame_id_counter_with_objects(self):
        batch = FrameBatch()
        handle = batch.alloc(1, 2, 100, 6, 64, 0, 0, 0)
        frame = EthernetFrame(
            src_mac=1, dst_mac=2, vlan_id=100, pcp=6, size_bytes=64,
            flow_id=0, seq=1, created_ns=0,
        )
        assert frame.frame_id == batch.frame_id[handle] + 1
        assert batch.materialize(handle).frame_id == batch.frame_id[handle]

    def test_materialize_fcs_override_is_per_copy(self):
        batch = FrameBatch()
        handle = batch.alloc(1, 2, 100, 6, 64, 0, 0, 0)
        corrupted = batch.materialize(handle, fcs_ok=False)
        assert not corrupted.fcs_ok
        # The shared column is untouched: other links' copies stay clean.
        assert batch.fcs_ok[handle] == 1
        assert batch.materialize(handle).fcs_ok

    def test_multicast_bit(self):
        batch = FrameBatch()
        unicast = batch.alloc(1, 0x001122334455, 100, 6, 64, 0, 0, 0)
        multicast = batch.alloc(1, 0x011122334455, 100, 6, 64, 0, 1, 0)
        assert not batch.is_multicast(unicast)
        assert batch.is_multicast(multicast)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FrameBatch(capacity=0)


def _build_into(directory):
    """Child-process worker: compile the extension into *directory*."""
    from pathlib import Path

    from repro.sim import fastpath as fp

    fp.reset()
    fp._candidate_dirs = lambda: [Path(directory)]
    path = fp.build()
    return str(path) if path is not None else None


class TestConcurrentBuild:
    """``build()`` must publish atomically under concurrent builders."""

    @staticmethod
    def _have_cc():
        import os
        import shutil

        return shutil.which(os.environ.get("CC", "cc")) is not None

    def test_parallel_builds_share_one_complete_artifact(self, tmp_path):
        if not self._have_cc():
            pytest.skip("no C toolchain")
        import importlib.util
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            results = pool.map(_build_into, [str(tmp_path)] * 4)
        assert all(r is not None for r in results)
        assert len(set(results)) == 1, results
        # No half-written scratch files survive, and the published
        # artifact is a complete, importable extension.
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        spec = importlib.util.spec_from_file_location(
            "repro.sim._fastpath", results[0]
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert hasattr(module, "run_loop")

    def test_reset_clears_cached_load(self, monkeypatch):
        monkeypatch.setattr(fastpath, "_cached", True)
        sentinel = object()
        monkeypatch.setattr(fastpath, "_module", sentinel)
        assert fastpath.load() is sentinel
        fastpath.reset()
        assert fastpath._cached is False and fastpath._module is None
