"""IEC 60802-guided traffic profiles."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.core.units import mbps, ms, us
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import (
    DEADLINE_CHOICES_NS,
    TS_SIZE_CHOICES,
    background_flows,
    controller_to_controller_flows,
    isochronous_cell_flows,
    production_cell_flows,
)


class TestProductionCell:
    def test_paper_defaults(self):
        flows = production_cell_flows(["t0", "t1", "t2"], "listener")
        assert len(flows) == 1024
        assert all(f.traffic_class is TrafficClass.TS for f in flows)
        assert all(f.period_ns == ms(10) for f in flows)
        assert all(f.size_bytes == 64 for f in flows)

    def test_deadlines_from_paper_set(self):
        flows = production_cell_flows(["t0"], "l", flow_count=100)
        assert {f.deadline_ns for f in flows} <= set(DEADLINE_CHOICES_NS)
        # with 100 draws all four values should appear
        assert len({f.deadline_ns for f in flows}) == 4

    def test_round_robin_talkers(self):
        flows = production_cell_flows(["a", "b"], "l", flow_count=4)
        assert [f.src for f in flows] == ["a", "b", "a", "b"]

    def test_deterministic_under_seed(self):
        a = production_cell_flows(["t"], "l", flow_count=16,
                                  rng=random.Random(3))
        b = production_cell_flows(["t"], "l", flow_count=16,
                                  rng=random.Random(3))
        assert [f.deadline_ns for f in a] == [f.deadline_ns for f in b]

    def test_size_outside_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            production_cell_flows(["t"], "l", size_bytes=333)

    def test_needs_talkers(self):
        with pytest.raises(ConfigurationError):
            production_cell_flows([], "l")

    def test_size_choices_match_paper(self):
        assert TS_SIZE_CHOICES == (64, 128, 256, 512, 1024, 1500)


class TestBackground:
    def test_splits_rates_across_talkers(self):
        flows = background_flows(["a", "b"], "l",
                                 rc_rate_bps=mbps(200), be_rate_bps=mbps(100))
        rc = flows.rc_flows
        be = flows.be_flows
        assert len(rc) == 2 and len(be) == 2
        assert all(f.rate_bps == mbps(100) for f in rc)
        assert all(f.rate_bps == mbps(50) for f in be)
        assert all(f.size_bytes == 1024 for f in flows)

    def test_zero_rates_yield_no_flows(self):
        flows = background_flows(["a"], "l", rc_rate_bps=0, be_rate_bps=0)
        assert len(flows) == 0

    def test_unsplittable_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            background_flows(["a", "b", "c"], "l",
                             rc_rate_bps=2, be_rate_bps=0)


class TestOtherProfiles:
    def test_isochronous(self):
        flows = isochronous_cell_flows(["t"], "l", flow_count=8)
        assert all(f.period_ns == us(250) for f in flows)
        assert all(f.deadline_ns == f.period_ns for f in flows)

    def test_c2c(self):
        flows = controller_to_controller_flows([("a", "b"), ("b", "c")])
        assert len(flows) == 2
        assert all(f.traffic_class is TrafficClass.RC for f in flows)

    def test_c2c_bad_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            controller_to_controller_flows([("a",)])

    def test_flow_ids_disjoint_across_profiles(self):
        ts = production_cell_flows(["t"], "l", flow_count=10)
        bg = background_flows(["t"], "l", mbps(10), mbps(10))
        iso = isochronous_cell_flows(["t"], "l", flow_count=5)
        ids = (
            [f.flow_id for f in ts]
            + [f.flow_id for f in bg]
            + [f.flow_id for f in iso]
        )
        assert len(ids) == len(set(ids))
