"""Traffic sources."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.switch.packet import make_mac
from repro.traffic.generator import PeriodicSource, RateSource


def _periodic(sim, sink, **kwargs):
    defaults = dict(
        flow_id=1, src_mac=make_mac(1), dst_mac=make_mac(2),
        size_bytes=64, period_ns=1000,
    )
    defaults.update(kwargs)
    return PeriodicSource(sim, sink, **defaults)


def _rate(sim, sink, **kwargs):
    defaults = dict(
        flow_id=2, src_mac=make_mac(1), dst_mac=make_mac(2),
        size_bytes=1024, rate_bps=81_920_000,  # gap = 100 us
    )
    defaults.update(kwargs)
    return RateSource(sim, sink, **defaults)


class TestPeriodicSource:
    def test_injects_on_schedule(self):
        sim = Simulator()
        times = []
        src = _periodic(sim, lambda f: times.append(sim.now),
                        offset_ns=100, limit=3)
        src.start()
        sim.run()
        assert times == [100, 1100, 2100]

    def test_frames_stamped(self):
        sim = Simulator()
        frames = []
        src = _periodic(sim, frames.append, limit=2, pcp=7)
        src.start()
        sim.run()
        assert [f.seq for f in frames] == [0, 1]
        assert frames[1].created_ns == 1000
        assert frames[0].flow_id == 1 and frames[0].pcp == 7

    def test_stop(self):
        sim = Simulator()
        frames = []
        src = _periodic(sim, frames.append, limit=100)
        src.start()
        sim.run(until=2500)
        src.stop()
        sim.run(until=10_000)
        assert len(frames) == 3

    def test_emitted_counter(self):
        sim = Simulator()
        src = _periodic(sim, lambda f: None, limit=5)
        src.start()
        sim.run()
        assert src.emitted == 5

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigurationError):
            _periodic(Simulator(), lambda f: None, period_ns=0)

    def test_bad_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            _periodic(Simulator(), lambda f: None, offset_ns=-1)


class TestRateSource:
    def test_deterministic_spacing(self):
        sim = Simulator()
        times = []
        src = _rate(sim, lambda f: times.append(sim.now), until_ns=350_000)
        src.start()
        sim.run()
        assert times == [0, 100_000, 200_000, 300_000]

    def test_gap_matches_rate(self):
        src = _rate(Simulator(), lambda f: None)
        # 1024 B = 8192 bits at 81.92 Mbps -> 100 us
        assert src.mean_gap_ns == 100_000

    def test_zero_rate_produces_nothing(self):
        sim = Simulator()
        frames = []
        src = _rate(sim, frames.append, rate_bps=0)
        src.start()
        sim.run(until=10**7)
        assert frames == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            _rate(Simulator(), lambda f: None, rate_bps=-1)

    def test_poisson_requires_rng(self):
        with pytest.raises(ConfigurationError):
            _rate(Simulator(), lambda f: None, poisson=True)

    def test_poisson_reproducible(self):
        def run(seed):
            sim = Simulator()
            times = []
            src = _rate(sim, lambda f: times.append(sim.now),
                        poisson=True, rng=random.Random(seed),
                        until_ns=500_000)
            src.start()
            sim.run()
            return times

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_poisson_mean_rate_approximates_target(self):
        sim = Simulator()
        count = [0]
        src = _rate(sim, lambda f: count.__setitem__(0, count[0] + 1),
                    poisson=True, rng=random.Random(7),
                    until_ns=100_000_000)
        src.start()
        sim.run()
        # 1000 expected frames over 100 ms at one per 100 us
        assert count[0] == pytest.approx(1000, rel=0.15)

    def test_start_offset(self):
        sim = Simulator()
        times = []
        src = _rate(sim, lambda f: times.append(sim.now),
                    start_ns=5_000, until_ns=120_000)
        src.start()
        sim.run()
        assert times[0] == 5_000
