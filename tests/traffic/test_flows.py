"""Flow specs and flow sets."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.units import ms, mbps
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass


def _ts(flow_id=0, **kwargs):
    defaults = dict(
        flow_id=flow_id, traffic_class=TrafficClass.TS, src="t", dst="l",
        size_bytes=64, period_ns=ms(10),
    )
    defaults.update(kwargs)
    return FlowSpec(**defaults)


def _be(flow_id=0, **kwargs):
    defaults = dict(
        flow_id=flow_id, traffic_class=TrafficClass.BE, src="t", dst="l",
        size_bytes=1024, rate_bps=mbps(100),
    )
    defaults.update(kwargs)
    return FlowSpec(**defaults)


class TestFlowSpec:
    def test_ts_requires_period(self):
        with pytest.raises(ConfigurationError):
            FlowSpec(0, TrafficClass.TS, "t", "l", 64)

    def test_rc_requires_rate(self):
        with pytest.raises(ConfigurationError):
            FlowSpec(0, TrafficClass.RC, "t", "l", 64)

    def test_undersized_frame_rejected(self):
        with pytest.raises(ConfigurationError):
            _ts(size_bytes=32)

    def test_bad_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            _ts(deadline_ns=0)

    def test_bad_pcp_rejected(self):
        with pytest.raises(ConfigurationError):
            _ts(pcp=9)

    def test_default_pcps(self):
        assert _ts().effective_pcp == 7
        assert _be().effective_pcp == 0
        rc = FlowSpec(0, TrafficClass.RC, "t", "l", 1024, rate_bps=mbps(10))
        assert rc.effective_pcp == 5

    def test_pcp_override(self):
        assert _ts(pcp=6).effective_pcp == 6

    def test_ts_rate_derived_from_period(self):
        # 64B every 10ms = 51200 bps
        assert _ts().effective_rate_bps == 51_200

    def test_be_gap_derived_from_rate(self):
        # 1024B at 100 Mbps -> 81.92 us between frames
        assert _be().inter_frame_ns == 81_920

    def test_with_updates(self):
        assert _ts().with_updates(size_bytes=128).size_bytes == 128


class TestFlowSet:
    def _set(self):
        return FlowSet([_ts(0), _ts(1, period_ns=ms(5)), _be(2)])

    def test_duplicate_id_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowSet([_ts(0), _be(0)])

    def test_len_iter_getitem(self):
        flows = self._set()
        assert len(flows) == 3
        assert flows[1].period_ns == ms(5)
        assert [f.flow_id for f in flows] == [0, 1, 2]

    def test_by_class(self):
        flows = self._set()
        assert len(flows.ts_flows) == 2
        assert len(flows.be_flows) == 1
        assert flows.rc_flows == []

    def test_ts_periods(self):
        assert sorted(self._set().ts_periods()) == [ms(5), ms(10)]

    def test_total_rate(self):
        flows = self._set()
        assert flows.total_rate_bps(TrafficClass.BE) == mbps(100)
        assert flows.total_rate_bps() > mbps(100)

    def test_endpoints(self):
        srcs, dsts = self._set().endpoints()
        assert srcs == ["t"] and dsts == ["l"]
