"""Fixed-capacity tables, GCLs, and CBS parameter records."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import CapacityError, ConfigurationError
from repro.switch.packet import make_mac
from repro.switch.tables import (
    CbsMapTable,
    CbsParams,
    CbsTable,
    ClassificationTable,
    ClassTarget,
    FixedTable,
    GateControlList,
    GateEntry,
    MeterTable,
    MulticastTable,
    UnicastTable,
)
from repro.switch.meter import TokenBucketMeter


class TestFixedTable:
    def test_insert_lookup(self):
        table = FixedTable(4)
        table.insert("k", 1)
        assert table.lookup("k") == 1

    def test_miss_counts(self):
        table = FixedTable(4)
        assert table.lookup("absent") is None
        assert table.misses == 1 and table.lookups == 1

    def test_capacity_enforced(self):
        table = FixedTable(2, "t")
        table.insert("a", 1)
        table.insert("b", 2)
        with pytest.raises(CapacityError, match="t"):
            table.insert("c", 3)

    def test_update_in_place_does_not_consume(self):
        table = FixedTable(1)
        table.insert("a", 1)
        table.insert("a", 2)
        assert table.lookup("a") == 2 and table.free == 0

    def test_remove_frees_entry(self):
        table = FixedTable(1)
        table.insert("a", 1)
        table.remove("a")
        table.insert("b", 2)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedTable(0)

    @given(st.integers(min_value=1, max_value=64))
    def test_fill_exactly_to_capacity(self, capacity):
        table = FixedTable(capacity)
        for i in range(capacity):
            table.insert(i, i)
        assert table.free == 0
        with pytest.raises(CapacityError):
            table.insert("extra", 0)


class TestTypedTables:
    def test_unicast(self):
        table = UnicastTable(8)
        table.program(make_mac(1), 10, outport=2)
        assert table.find_outport(make_mac(1), 10) == 2
        assert table.find_outport(make_mac(1), 11) is None

    def test_multicast(self):
        table = MulticastTable(4)
        table.program(5, (0, 2))
        assert table.find_outports(5) == (0, 2)
        with pytest.raises(ConfigurationError):
            table.program(6, ())

    def test_classification(self):
        table = ClassificationTable(8)
        target = ClassTarget(meter_id=3, queue_id=7)
        table.program(make_mac(1), make_mac(2), 10, 7, target)
        assert table.classify(make_mac(1), make_mac(2), 10, 7) == target

    def test_meter_table(self):
        table = MeterTable(2)
        meter = TokenBucketMeter(10**6, 2048)
        table.program(0, meter)
        assert table.meter(0) is meter
        assert table.meter(1) is None


class TestGateEntry:
    def test_is_open_per_queue(self):
        entry = GateEntry(0b1000_0001, 1000)
        assert entry.is_open(0) and entry.is_open(7)
        assert not entry.is_open(3)

    def test_bad_mask_rejected(self):
        with pytest.raises(ConfigurationError):
            GateEntry(256, 1000)

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            GateEntry(0xFF, 0)


class TestGateControlList:
    def test_append_capacity(self):
        gcl = GateControlList(2)
        gcl.append(GateEntry(0xFF, 10))
        gcl.append(GateEntry(0x0F, 10))
        with pytest.raises(CapacityError):
            gcl.append(GateEntry(0xFF, 10))

    def test_program_atomic(self):
        gcl = GateControlList(2)
        gcl.program([GateEntry(0x01, 5), GateEntry(0x02, 7)])
        assert gcl.cycle_ns == 12

    def test_program_too_many_rejected(self):
        gcl = GateControlList(1)
        with pytest.raises(CapacityError):
            gcl.program([GateEntry(0x01, 5), GateEntry(0x02, 7)])

    def test_program_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            GateControlList(2).program([])

    def test_state_at_walks_cycle(self):
        gcl = GateControlList(2)
        a, b = GateEntry(0x01, 10), GateEntry(0x02, 20)
        gcl.program([a, b])
        assert gcl.state_at(0) == a
        assert gcl.state_at(9) == a
        assert gcl.state_at(10) == b
        assert gcl.state_at(29) == b
        assert gcl.state_at(30) == a  # wraps

    def test_state_at_unprogrammed_rejected(self):
        with pytest.raises(ConfigurationError):
            GateControlList(2).state_at(0)


class TestCbs:
    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            CbsParams(0, -1)
        with pytest.raises(ConfigurationError):
            CbsParams(10, 1)

    def test_for_reservation(self):
        params = CbsParams.for_reservation(100_000_000, 1_000_000_000)
        assert params.idle_slope_bps == 100_000_000
        assert params.send_slope_bps == -900_000_000

    def test_reservation_at_line_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            CbsParams.for_reservation(10**9, 10**9)

    def test_map_and_table(self):
        cbs_map = CbsMapTable(3)
        cbs = CbsTable(3)
        cbs_map.program(queue_id=5, cbs_id=0)
        cbs.program(0, CbsParams.for_reservation(10**8, 10**9))
        assert cbs_map.shaper_for(5) == 0
        assert cbs.params(0).idle_slope_bps == 10**8
        assert cbs_map.shaper_for(4) is None


class TestUnicastAggregation:
    def test_wildcard_matches_any_vid(self):
        table = UnicastTable(4)
        table.program(make_mac(9), None, outport=2)
        assert table.find_outport(make_mac(9), 17) == 2
        assert table.find_outport(make_mac(9), 3012) == 2

    def test_exact_beats_wildcard(self):
        table = UnicastTable(4)
        table.program(make_mac(9), None, outport=2)
        table.program(make_mac(9), 17, outport=1)
        assert table.find_outport(make_mac(9), 17) == 1
        assert table.find_outport(make_mac(9), 18) == 2

    def test_wildcard_consumes_one_entry(self):
        table = UnicastTable(1)
        table.program(make_mac(9), None, outport=0)
        assert table.free == 0
