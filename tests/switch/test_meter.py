"""Token-bucket meters."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.switch.meter import TokenBucketMeter


class TestConstruction:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            TokenBucketMeter(0, 2048)

    def test_rejects_bad_burst(self):
        with pytest.raises(ConfigurationError):
            TokenBucketMeter(10**6, 0)

    def test_starts_full(self):
        meter = TokenBucketMeter(10**6, 3000)
        assert meter.tokens_bytes() == 3000


class TestPolicing:
    def test_burst_conforms_then_violates(self):
        meter = TokenBucketMeter(8_000, 100)  # 1 KB/s, 100 B bucket
        assert meter.offer(0, 64)
        assert not meter.offer(0, 64)  # only 36 B left
        assert meter.stats.conformed_frames == 1
        assert meter.stats.violated_frames == 1

    def test_replenishes_at_rate(self):
        meter = TokenBucketMeter(8_000_000, 100)  # 1 MB/s
        assert meter.offer(0, 100)
        assert not meter.offer(0, 100)
        # 100 B replenish in 100 us at 1 MB/s
        assert meter.offer(100_000, 100)

    def test_bucket_caps_at_burst(self):
        meter = TokenBucketMeter(10**9, 200)
        meter.offer(0, 64)
        assert meter.tokens_bytes(10**9) == 200  # long idle: capped

    def test_time_backwards_rejected(self):
        meter = TokenBucketMeter(10**6, 2048)
        meter.offer(1000, 64)
        with pytest.raises(ConfigurationError):
            meter.offer(500, 64)

    def test_periodic_flow_within_contract_never_violates(self):
        # 64 B every 1 ms = 512 kbps; meter at 1 Mbps with 2-frame burst.
        meter = TokenBucketMeter(1_000_000, 128)
        for k in range(1000):
            assert meter.offer(k * 1_000_000, 64)
        assert meter.stats.violated_frames == 0

    def test_flow_over_contract_is_clamped_to_rate(self):
        # Offer 2x the contracted rate; conformed share approaches 1/2.
        meter = TokenBucketMeter(8_000_000, 1000)  # 1 MB/s
        for k in range(2000):
            meter.offer(k * 250_000, 500)  # 500 B every 250 us = 2 MB/s
        share = meter.stats.conformed_frames / meter.stats.offered_frames
        assert share == pytest.approx(0.5, abs=0.05)


class TestProperties:
    @given(
        st.integers(min_value=8_000, max_value=10**9),
        st.integers(min_value=64, max_value=10_000),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),  # gap ns
                st.integers(min_value=64, max_value=1500),  # frame bytes
            ),
            max_size=50,
        ),
    )
    def test_conformed_bytes_bounded_by_rate_plus_burst(self, rate, burst, offers):
        meter = TokenBucketMeter(rate, burst)
        now = 0
        for gap, size in offers:
            now += gap
            meter.offer(now, size)
        # Token conservation: can never conform more than burst + rate*t.
        limit = burst + rate * now // (8 * 10**9) + 1
        assert meter.stats.conformed_bytes <= limit

    @given(st.lists(st.integers(min_value=64, max_value=1500), max_size=30))
    def test_tokens_never_negative(self, sizes):
        meter = TokenBucketMeter(10**6, 2000)
        for i, size in enumerate(sizes):
            meter.offer(i * 1000, size)
            assert meter.tokens_bytes() >= 0
