"""Frames, MAC helpers, descriptors."""

import pytest

from repro.switch.packet import (
    BROADCAST_MAC,
    Descriptor,
    EthernetFrame,
    is_multicast,
    make_mac,
)


def _frame(**kwargs):
    defaults = dict(src_mac=make_mac(1), dst_mac=make_mac(2), vlan_id=1,
                    pcp=7, size_bytes=64)
    defaults.update(kwargs)
    return EthernetFrame(**defaults)


class TestMacs:
    def test_make_mac_unicast(self):
        assert not is_multicast(make_mac(3, 1))

    def test_make_mac_distinct(self):
        assert make_mac(1) != make_mac(2)
        assert make_mac(1, 0) != make_mac(1, 1)

    def test_broadcast_is_multicast(self):
        assert is_multicast(BROADCAST_MAC)


class TestFrameValidation:
    def test_valid(self):
        frame = _frame()
        assert frame.size_bytes == 64 and not frame.is_multicast

    @pytest.mark.parametrize("pcp", [-1, 8])
    def test_bad_pcp(self, pcp):
        with pytest.raises(ValueError):
            _frame(pcp=pcp)

    @pytest.mark.parametrize("vid", [-1, 4096])
    def test_bad_vid(self, vid):
        with pytest.raises(ValueError):
            _frame(vlan_id=vid)

    def test_undersized_frame_rejected(self):
        with pytest.raises(ValueError):
            _frame(size_bytes=63)

    def test_frame_ids_unique(self):
        assert _frame().frame_id != _frame().frame_id

    def test_multicast_dst(self):
        assert _frame(dst_mac=BROADCAST_MAC).is_multicast


class TestDescriptor:
    def test_size_passthrough(self):
        frame = _frame(size_bytes=256)
        desc = Descriptor(frame=frame, buffer_slot=3, enqueued_ns=10, queue_id=7)
        assert desc.size_bytes == 256
        assert desc.buffer_slot == 3
