"""Bounded queues and buffer pools."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.switch.packet import Descriptor, EthernetFrame, make_mac
from repro.switch.queueing import BufferPool, MetadataQueue


def _frame(size=64):
    return EthernetFrame(make_mac(1), make_mac(2), 1, 7, size)


def _desc(queue_id=7, slot=0):
    return Descriptor(_frame(), buffer_slot=slot, enqueued_ns=0, queue_id=queue_id)


class TestMetadataQueue:
    def test_fifo_order(self):
        queue = MetadataQueue(4)
        first, second = _desc(slot=1), _desc(slot=2)
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_tail_drop_at_depth(self):
        queue = MetadataQueue(2)
        assert queue.enqueue(_desc())
        assert queue.enqueue(_desc())
        assert not queue.enqueue(_desc())
        assert queue.stats.tail_drops == 1
        assert len(queue) == 2

    def test_head_peek_nondestructive(self):
        queue = MetadataQueue(2)
        desc = _desc()
        queue.enqueue(desc)
        assert queue.head() is desc
        assert len(queue) == 1

    def test_head_empty(self):
        assert MetadataQueue(2).head() is None

    def test_high_water(self):
        queue = MetadataQueue(8)
        for _ in range(5):
            queue.enqueue(_desc())
        for _ in range(5):
            queue.dequeue()
        queue.enqueue(_desc())
        assert queue.stats.high_water == 5

    def test_drain(self):
        queue = MetadataQueue(8)
        for _ in range(3):
            queue.enqueue(_desc())
        assert len(queue.drain()) == 3
        assert queue.empty

    def test_zero_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            MetadataQueue(0)

    def test_iteration(self):
        queue = MetadataQueue(4)
        descs = [_desc(slot=i) for i in range(3)]
        for d in descs:
            queue.enqueue(d)
        assert list(queue) == descs

    @given(st.lists(st.sampled_from(["enq", "deq"]), max_size=100))
    def test_occupancy_invariants(self, ops):
        queue = MetadataQueue(5)
        model = []
        for op in ops:
            if op == "enq":
                accepted = queue.enqueue(_desc())
                if len(model) < 5:
                    assert accepted
                    model.append(None)
                else:
                    assert not accepted
            elif model:
                queue.dequeue()
                model.pop()
            assert len(queue) == len(model) <= 5


class TestBufferPool:
    def test_allocate_release(self):
        pool = BufferPool(2)
        a = pool.allocate(_frame())
        b = pool.allocate(_frame())
        assert {a, b} == {0, 1}
        assert pool.allocate(_frame()) is None
        assert pool.stats.exhaustion_drops == 1
        pool.release(a)
        assert pool.allocate(_frame()) == a  # LIFO recycling

    def test_high_water(self):
        pool = BufferPool(4)
        slots = [pool.allocate(_frame()) for _ in range(3)]
        for slot in slots:
            pool.release(slot)
        assert pool.stats.high_water == 3

    def test_oversize_frame_rejected(self):
        pool = BufferPool(2, slot_bytes=128)
        with pytest.raises(ConfigurationError):
            pool.allocate(_frame(size=256))

    def test_double_release_rejected(self):
        pool = BufferPool(2)
        slot = pool.allocate(_frame())
        pool.release(slot)
        with pytest.raises(ConfigurationError):
            pool.release(slot)

    def test_release_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            BufferPool(2).release(5)

    def test_zero_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            BufferPool(0)

    @given(st.lists(st.sampled_from(["alloc", "free"]), max_size=200))
    def test_slot_conservation(self, ops):
        pool = BufferPool(8)
        held = []
        for op in ops:
            if op == "alloc":
                slot = pool.allocate(_frame())
                if slot is not None:
                    assert slot not in held
                    held.append(slot)
            elif held:
                pool.release(held.pop())
            assert pool.free_count + len(held) == 8
