"""Egress port: admission, transmission timing, drop accounting."""

import pytest

from repro.core.errors import ConfigurationError, SimulationError
from repro.sim.kernel import Simulator
from repro.switch.counters import SwitchCounters
from repro.switch.gates import CqfPair, GateEngine
from repro.switch.packet import EthernetFrame, make_mac
from repro.switch.port import EgressPort
from repro.switch.queueing import BufferPool, MetadataQueue
from repro.switch.scheduler import StrictPriorityScheduler
from repro.switch.tables import GateControlList, GateEntry

GBPS = 10**9


def _frame(size=64, pcp=7):
    return EthernetFrame(make_mac(1), make_mac(2), 1, pcp, size, flow_id=1)


def _port(sim, depth=4, buffers=8, out_entries=None, in_entries=None,
          pairs=()):
    queues = [MetadataQueue(depth, q) for q in range(8)]
    in_gcl, out_gcl = GateControlList(2), GateControlList(2)
    in_gcl.program(in_entries or [GateEntry(0xFF, 1_000_000)])
    out_gcl.program(out_entries or [GateEntry(0xFF, 1_000_000)])
    gates = GateEngine(sim, in_gcl, out_gcl, cqf_pairs=list(pairs))
    port = EgressPort(
        sim=sim,
        port_id=0,
        rate_bps=GBPS,
        queues=queues,
        buffer_pool=BufferPool(buffers),
        gates=gates,
        scheduler=StrictPriorityScheduler(),
        counters=SwitchCounters(),
    )
    gates.set_on_change(port.kick)
    gates.start()
    return port


class TestTransmissionTiming:
    def test_last_bit_at_serialization_time(self):
        sim = Simulator()
        port = _port(sim)
        delivered = []
        port.attach(lambda f: delivered.append(sim.now))
        port.enqueue(_frame(size=64), 7)
        sim.run(until=100_000)
        assert delivered == [512]  # 64 B at 1 Gbps

    def test_back_to_back_frames_separated_by_ifg(self):
        sim = Simulator()
        port = _port(sim)
        delivered = []
        port.attach(lambda f: delivered.append(sim.now))
        port.enqueue(_frame(), 7)
        port.enqueue(_frame(), 7)
        sim.run(until=100_000)
        # second starts after wire time (84B = 672ns), lands at 672+512
        assert delivered == [512, 672 + 512]

    def test_priority_order_between_queues(self):
        sim = Simulator()
        port = _port(sim)
        seen = []
        port.attach(lambda f: seen.append(f.pcp))
        port.enqueue(_frame(pcp=0), 0)
        port.enqueue(_frame(pcp=7), 7)  # arrives while 0 is in flight
        sim.run(until=100_000)
        assert seen == [0, 7]  # no preemption, but 7 would beat later 0s

    def test_busy_flag(self):
        sim = Simulator()
        port = _port(sim)
        port.attach(lambda f: None)
        port.enqueue(_frame(size=1500), 7)
        assert port.busy
        sim.run(until=100_000)
        assert not port.busy


class TestAdmission:
    def test_tail_drop_counted_and_buffer_released(self):
        sim = Simulator()
        port = _port(sim, depth=1, buffers=8)
        port.attach(lambda f: None)
        # Hold the port busy so the queue cannot drain: gate all closed.
        port2 = _port(sim, depth=1, buffers=8,
                      out_entries=[GateEntry(0x00, 1_000_000)])
        port2.attach(lambda f: None)
        assert port2.enqueue(_frame(), 7)
        assert not port2.enqueue(_frame(), 7)
        assert port2.counters.dropped_tail == 1
        assert port2.pool.free_count == 7  # dropped frame's slot returned

    def test_buffer_exhaustion_counted(self):
        sim = Simulator()
        port = _port(sim, depth=8, buffers=1,
                     out_entries=[GateEntry(0x00, 1_000_000)])
        port.attach(lambda f: None)
        assert port.enqueue(_frame(), 7)
        assert not port.enqueue(_frame(), 7)
        assert port.counters.dropped_no_buffer == 1

    def test_gate_drop_when_in_gate_closed(self):
        sim = Simulator()
        port = _port(sim, in_entries=[GateEntry(0x7F, 1_000_000)])
        port.attach(lambda f: None)
        assert not port.enqueue(_frame(), 7)
        assert port.counters.dropped_gate == 1

    def test_cqf_redirect_on_enqueue(self):
        sim = Simulator()
        base = 0b0011_1111
        port = _port(
            sim,
            in_entries=[GateEntry(base | 0x40, 1000),
                        GateEntry(base | 0x80, 1000)],
            out_entries=[GateEntry(base | 0x80, 1000),
                         GateEntry(base | 0x40, 1000)],
            pairs=[CqfPair(6, 7)],
        )
        port.attach(lambda f: None)
        port.enqueue(_frame(), 7)
        # landed in queue 6 (the gathering queue of slot 0)
        assert len(port.queues[6]) + port.counters.transmitted >= 1
        assert port.counters.per_queue_enqueued.get(6) == 1


class TestWiring:
    def test_transmit_without_link_rejected(self):
        sim = Simulator()
        port = _port(sim)
        # kick fires synchronously from enqueue and must refuse to transmit
        with pytest.raises(SimulationError):
            port.enqueue(_frame(), 7)

    def test_double_attach_rejected(self):
        sim = Simulator()
        port = _port(sim)
        port.attach(lambda f: None)
        with pytest.raises(ConfigurationError):
            port.attach(lambda f: None)

    def test_backlog_accounting(self):
        sim = Simulator()
        port = _port(sim, out_entries=[GateEntry(0x00, 1_000_000)])
        port.attach(lambda f: None)
        port.enqueue(_frame(size=100), 7)
        port.enqueue(_frame(size=200), 3)
        assert port.backlog_frames() == 2
        assert port.backlog_bytes() == 300
