"""Ingress pipeline: classify, police, lookup."""

from repro.core.config import SwitchConfig
from repro.switch.counters import SwitchCounters
from repro.switch.packet import EthernetFrame, make_mac
from repro.switch.pipeline import SwitchPipeline
from repro.switch.tables import ClassTarget
from repro.switch.meter import TokenBucketMeter


def _pipeline(**config_kwargs):
    defaults = dict(unicast_size=16, class_size=16, meter_size=16)
    defaults.update(config_kwargs)
    config = SwitchConfig(**defaults)
    return SwitchPipeline(config, SwitchCounters())


def _frame(src=1, dst=2, vid=1, pcp=7, size=64):
    return EthernetFrame(make_mac(src), make_mac(dst), vid, pcp, size)


class TestClassify:
    def test_hit_returns_programmed_target(self):
        pipe = _pipeline()
        target = ClassTarget(meter_id=3, queue_id=7)
        pipe.classification.program(make_mac(1), make_mac(2), 1, 7, target)
        assert pipe.classify(_frame()) == target

    def test_miss_falls_back_to_pcp(self):
        pipe = _pipeline()
        target = pipe.classify(_frame(pcp=5))
        assert target.queue_id == 5 and target.meter_id == -1


class TestPolice:
    def test_unmetered_passes(self):
        pipe = _pipeline()
        assert pipe.police(_frame(), ClassTarget(-1, 7), now_ns=0)

    def test_unprogrammed_meter_passes(self):
        pipe = _pipeline()
        assert pipe.police(_frame(), ClassTarget(5, 7), now_ns=0)

    def test_violating_flow_dropped_and_counted(self):
        pipe = _pipeline()
        pipe.meters.program(0, TokenBucketMeter(8_000, 64))  # tiny
        target = ClassTarget(0, 7)
        assert pipe.police(_frame(), target, 0)
        assert not pipe.police(_frame(), target, 0)  # bucket empty


class TestLookup:
    def test_unicast_hit(self):
        pipe = _pipeline()
        pipe.unicast.program(make_mac(2), 1, outport=0)
        assert pipe.lookup(_frame()) == (0,)

    def test_unicast_miss_empty(self):
        assert _pipeline().lookup(_frame()) == ()

    def test_multicast_via_mc_table(self):
        pipe = _pipeline(multicast_size=8, port_num=3)
        mc_mac = (1 << 40) | 0x0005  # group bit + MC ID 5
        pipe.multicast.program(5, (0, 2))
        frame = EthernetFrame(make_mac(1), mc_mac, 1, 7, 64)
        assert pipe.lookup(frame) == (0, 2)

    def test_multicast_without_table_drops(self):
        pipe = _pipeline(multicast_size=0)
        mc_mac = (1 << 40) | 0x0005
        frame = EthernetFrame(make_mac(1), mc_mac, 1, 7, 64)
        assert pipe.lookup(frame) == ()


class TestProcess:
    def test_full_path(self):
        pipe = _pipeline()
        pipe.classification.program(
            make_mac(1), make_mac(2), 1, 7, ClassTarget(-1, 6)
        )
        pipe.unicast.program(make_mac(2), 1, outport=0)
        decision = pipe.process(_frame(), 0)
        assert decision.targets == ((0, 6),)
        assert not decision.dropped

    def test_policer_drop_counted(self):
        pipe = _pipeline()
        pipe.classification.program(
            make_mac(1), make_mac(2), 1, 7, ClassTarget(0, 6)
        )
        pipe.meters.program(0, TokenBucketMeter(8_000, 64))
        pipe.unicast.program(make_mac(2), 1, outport=0)
        pipe.process(_frame(), 0)
        decision = pipe.process(_frame(), 0)
        assert decision.drop_reason == "policer"
        assert pipe.counters.dropped_policer == 1

    def test_unknown_dst_counted(self):
        pipe = _pipeline()
        decision = pipe.process(_frame(), 0)
        assert decision.drop_reason == "unknown_dst"
        assert pipe.counters.dropped_unknown_dst == 1
