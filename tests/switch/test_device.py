"""The integrated TsnSwitch device."""

import pytest

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigurationError, TopologyError
from repro.cqf.gcl_gen import cqf_port_program
from repro.sim.kernel import Simulator
from repro.switch.device import TsnSwitch
from repro.switch.packet import EthernetFrame, make_mac
from repro.switch.tables import CbsParams, GateEntry


def _config(**kwargs):
    defaults = dict(
        name="dut", port_num=2, unicast_size=64, class_size=64,
        meter_size=64, gate_size=2, queue_num=8, cbs_map_size=3,
        cbs_size=3, queue_depth=8, buffer_num=32,
    )
    defaults.update(kwargs)
    return SwitchConfig(**defaults)


def _frame(src=1, dst=2, vid=5, pcp=7, size=64):
    return EthernetFrame(make_mac(src), make_mac(dst), vid, pcp, size)


class TestConstruction:
    def test_ports_match_config(self):
        switch = TsnSwitch(Simulator(), _config(port_num=3))
        assert len(switch.ports) == 3
        assert len(switch.cbs_tables) == 3

    def test_queue_shapes_match_config(self):
        switch = TsnSwitch(Simulator(), _config(queue_depth=5, queue_num=4))
        port = switch.ports[0]
        assert len(port.queues) == 4
        assert all(q.depth == 5 for q in port.queues)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            TsnSwitch(Simulator(), _config(queue_depth=0))


class TestControlPlane:
    def test_program_flow_validates_port_and_queue(self):
        switch = TsnSwitch(Simulator(), _config())
        with pytest.raises(TopologyError):
            switch.program_flow(make_mac(1), make_mac(2), 1, 7,
                                outport=9, queue_id=7)
        with pytest.raises(ConfigurationError):
            switch.program_flow(make_mac(1), make_mac(2), 1, 7,
                                outport=0, queue_id=8)

    def test_program_cbs_installs_shaper(self):
        switch = TsnSwitch(Simulator(), _config())
        params = CbsParams.for_reservation(10**8, 10**9)
        switch.program_cbs(0, queue_id=5, cbs_id=0, params=params)
        assert 5 in switch.ports[0].scheduler.shapers
        assert switch.cbs_tables[0].params(0) == params

    def test_program_gcls_after_start_rejected(self):
        switch = TsnSwitch(Simulator(), _config())
        switch.start()
        in_e, out_e, pairs = cqf_port_program(1000)
        with pytest.raises(ConfigurationError):
            switch.program_gcls(0, in_e, out_e, pairs)

    def test_double_start_rejected(self):
        switch = TsnSwitch(Simulator(), _config())
        switch.start()
        with pytest.raises(ConfigurationError):
            switch.start()


class TestDataplane:
    def _wire(self, switch, port_id=0):
        delivered = []
        switch.ports[port_id].attach(
            lambda frame: delivered.append((frame.flow_id, frame.size_bytes))
        )
        return delivered

    def test_receive_forward_transmit(self):
        sim = Simulator()
        switch = TsnSwitch(sim, _config())
        delivered = self._wire(switch)
        switch.program_flow(make_mac(1), make_mac(2), 5, 7,
                            outport=0, queue_id=7)
        switch.start()
        switch.receive(_frame())
        sim.run(until=1_000_000)
        assert len(delivered) == 1
        assert switch.counters.received == 1
        assert switch.counters.forwarded == 1
        assert switch.counters.transmitted == 1

    def test_processing_delay_applied(self):
        sim = Simulator()
        switch = TsnSwitch(sim, _config(), processing_delay_ns=480)
        arrivals = []
        switch.ports[0].attach(lambda f: arrivals.append(sim.now))
        switch.program_flow(make_mac(1), make_mac(2), 5, 7, 0, 7)
        switch.start()
        switch.receive(_frame(size=64))
        sim.run(until=1_000_000)
        # 480 ns processing + 512 ns serialization
        assert arrivals == [480 + 512]

    def test_unknown_dst_dropped(self):
        sim = Simulator()
        switch = TsnSwitch(sim, _config())
        self._wire(switch)
        switch.start()
        switch.receive(_frame())
        sim.run(until=1_000_000)
        assert switch.counters.dropped_unknown_dst == 1
        assert switch.counters.forwarded == 0

    def test_attach_host_local_delivery(self):
        sim = Simulator()
        switch = TsnSwitch(sim, _config())
        local = []
        local_port = switch.attach_host(lambda f: local.append(f.flow_id))
        assert local_port == 2  # after the two TSN ports
        switch.program_flow(make_mac(1), make_mac(2), 5, 7,
                            outport=local_port, queue_id=7)
        switch.start()
        switch.receive(_frame())
        sim.run(until=1_000_000)
        assert len(local) == 1

    def test_high_water_reporting(self):
        sim = Simulator()
        switch = TsnSwitch(sim, _config())
        self._wire(switch)
        switch.program_flow(make_mac(1), make_mac(2), 5, 7, 0, 7)
        switch.start()
        for _ in range(3):
            switch.receive(_frame())
        sim.run(until=1_000_000)
        assert max(switch.queue_high_water().values()) >= 1
        assert max(switch.buffer_high_water().values()) >= 1

    def test_cqf_gcls_shape_latency(self):
        """A frame arriving in slot k leaves during slot k+1."""
        sim = Simulator()
        slot = 10_000
        switch = TsnSwitch(sim, _config(), processing_delay_ns=0)
        departures = []
        switch.ports[0].attach(lambda f: departures.append(sim.now))
        in_e, out_e, pairs = cqf_port_program(slot)
        switch.program_gcls(0, in_e, out_e, pairs)
        switch.program_flow(make_mac(1), make_mac(2), 5, 7, 0, 7)
        switch.start()
        switch.receive(_frame())  # arrives in slot 0
        sim.run(until=100_000)
        assert len(departures) == 1
        # departure falls inside slot 1: [slot, 2*slot)
        assert slot <= departures[0] < 2 * slot


class TestBufferSharing:
    """Per-port pools (the paper) vs one shared pool (SMS, related work)."""

    def _burst_port0(self, shared):
        """Burst more frames at port 0 than one per-port pool holds.

        Frames spread over two queues (12 total, 6 each, queue depth 8) so
        the only bound in play is the 8-slot per-port buffer pool; the
        out-gates stay shut to keep buffers allocated.
        """
        sim = Simulator()
        config = _config(port_num=2, buffer_num=8, queue_depth=8,
                         unicast_size=64)
        switch = TsnSwitch(sim, config, shared_buffers=shared)
        closed = [GateEntry(0x00, 10_000_000)]
        opened = [GateEntry(0xFF, 10_000_000)]
        switch.program_gcls(0, opened, closed)
        switch.ports[0].attach(lambda f: None)
        switch.ports[1].attach(lambda f: None)
        switch.program_flow(make_mac(1), make_mac(2), 5, 7, 0, 7)
        switch.program_flow(make_mac(1), make_mac(2), 6, 5, 0, 5)
        switch.start()
        for _ in range(6):
            switch.receive(_frame(vid=5, pcp=7))
            switch.receive(_frame(vid=6, pcp=5))
        sim.run(until=1_000_000)
        return switch

    def test_per_port_pool_overflows(self):
        switch = self._burst_port0(shared=False)
        assert switch.counters.dropped_no_buffer == 4  # 12 - 8

    def test_shared_pool_absorbs_same_burst(self):
        """Same total buffer BRAM (8 x 2 ports), zero drops when shared."""
        switch = self._burst_port0(shared=True)
        assert switch.counters.dropped_no_buffer == 0
        assert switch.ports[0].pool is switch.ports[1].pool

    def test_shared_pool_capacity_is_total(self):
        sim = Simulator()
        config = _config(port_num=3, buffer_num=8)
        switch = TsnSwitch(sim, config, shared_buffers=True)
        assert switch.ports[0].pool.slots == 24


class TestMulticast:
    def test_multicast_replicates_to_outport_set(self):
        sim = Simulator()
        config = _config(port_num=2, multicast_size=8)
        switch = TsnSwitch(sim, config)
        deliveries = {0: [], 1: []}
        switch.ports[0].attach(lambda f: deliveries[0].append(f.frame_id))
        switch.ports[1].attach(lambda f: deliveries[1].append(f.frame_id))
        mc_mac = (1 << 40) | 0x0007  # group bit, MC ID 7
        switch.pipeline.multicast.program(7, (0, 1))
        switch.start()
        frame = EthernetFrame(make_mac(1), mc_mac, 5, 7, 64)
        switch.receive(frame)
        sim.run(until=1_000_000)
        assert deliveries[0] == [frame.frame_id]
        assert deliveries[1] == [frame.frame_id]
        # each replica claims its own egress buffer, both released
        assert switch.counters.forwarded == 2
        for port in switch.ports:
            assert port.pool.in_use == 0

    def test_unknown_multicast_group_dropped(self):
        sim = Simulator()
        switch = TsnSwitch(sim, _config(multicast_size=8))
        switch.ports[0].attach(lambda f: None)
        switch.ports[1].attach(lambda f: None)
        switch.start()
        mc_mac = (1 << 40) | 0x0042
        switch.receive(EthernetFrame(make_mac(1), mc_mac, 5, 7, 64))
        sim.run(until=1_000_000)
        assert switch.counters.dropped_unknown_dst == 1
