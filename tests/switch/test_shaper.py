"""Credit-based shaper state machine."""

import pytest

from repro.switch.shaper import CreditBasedShaper, ShaperMode
from repro.switch.tables import CbsParams

GBPS = 10**9
PARAMS = CbsParams.for_reservation(100_000_000, GBPS)  # 100 Mbps of 1 Gbps


def _shaper():
    return CreditBasedShaper(PARAMS)


class TestCreditEvolution:
    def test_starts_eligible(self):
        assert _shaper().eligible(0)

    def test_waiting_gains_idle_slope(self):
        shaper = _shaper()
        shaper.set_backlog(0, True)
        # 100 Mbps for 1 us -> 100 bits
        assert shaper.credit_bits(1000) == pytest.approx(100.0)

    def test_sending_loses_send_slope(self):
        shaper = _shaper()
        shaper.set_backlog(0, True)
        shaper.begin_transmission(0)
        # -900 Mbps for 1 us -> -900 bits
        assert shaper.credit_bits(1000) == pytest.approx(-900.0)
        assert not shaper.eligible(1000)

    def test_idle_snaps_positive_credit_to_zero(self):
        shaper = _shaper()
        shaper.set_backlog(0, True)
        assert shaper.credit_bits(10_000) > 0
        shaper.set_backlog(10_000, False)
        assert shaper.credit_bits(10_000) == 0.0

    def test_idle_recovers_negative_credit_to_zero_only(self):
        shaper = _shaper()
        shaper.set_backlog(0, True)
        shaper.begin_transmission(0)
        shaper.end_transmission(10_000, has_backlog=False)  # deep negative
        assert shaper.credit_bits(10_000) < 0
        # long idle: recovers but never above zero
        assert shaper.credit_bits(10_000_000_000) == 0.0

    def test_full_frame_cycle_conserves(self):
        # Transmit a 1500B frame (12 us at 1G): credit = -sendslope*12us...
        shaper = _shaper()
        shaper.set_backlog(0, True)
        shaper.begin_transmission(0)
        shaper.end_transmission(12_000, has_backlog=True)
        assert shaper.credit_bits(12_000) == pytest.approx(-10_800.0)
        # recovery at 100 Mbps: 10800 bits -> 108 us
        assert shaper.ns_until_eligible(12_000) == 108_000
        assert shaper.eligible(12_000 + 108_000)


class TestModeTracking:
    def test_modes(self):
        shaper = _shaper()
        assert shaper.mode is ShaperMode.IDLE
        shaper.set_backlog(0, True)
        assert shaper.mode is ShaperMode.WAITING
        shaper.begin_transmission(0)
        assert shaper.mode is ShaperMode.SENDING
        shaper.end_transmission(1000, has_backlog=False)
        assert shaper.mode is ShaperMode.IDLE

    def test_set_backlog_ignored_while_sending(self):
        shaper = _shaper()
        shaper.begin_transmission(0)
        shaper.set_backlog(100, True)
        assert shaper.mode is ShaperMode.SENDING

    def test_ns_until_eligible_none_when_ok(self):
        assert _shaper().ns_until_eligible(0) is None


class TestRateEnforcement:
    def test_long_run_throughput_matches_idle_slope(self):
        """Back-to-back 1500B frames gated by credit approach 100 Mbps."""
        shaper = _shaper()
        now = 0
        sent_bits = 0
        frame_ns = 12_000  # 1500 B at 1 Gbps
        shaper.set_backlog(now, True)
        for _ in range(200):
            wait = shaper.ns_until_eligible(now)
            if wait:
                now += wait
            shaper.begin_transmission(now)
            now += frame_ns
            shaper.end_transmission(now, has_backlog=True)
            sent_bits += 1500 * 8
        achieved = sent_bits * 1e9 / now
        assert achieved == pytest.approx(100e6, rel=0.02)
