"""Gate engine: GCL walking, CQF queue selection, guard-band queries."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.switch.gates import CqfPair, GateEngine
from repro.switch.tables import GateControlList, GateEntry


def _engine(sim, in_entries, out_entries, pairs=(), clock=None, mode="auto"):
    in_gcl = GateControlList(max(1, len(in_entries)))
    out_gcl = GateControlList(max(1, len(out_entries)))
    in_gcl.program(list(in_entries))
    out_gcl.program(list(out_entries))
    return GateEngine(
        sim, in_gcl, out_gcl, clock=clock, cqf_pairs=list(pairs), mode=mode
    )


def _cqf_engine(sim, slot=100, mode="auto"):
    # queues 6/7 alternate; all others always open
    base = 0b0011_1111
    in_entries = [GateEntry(base | 0x40, slot), GateEntry(base | 0x80, slot)]
    out_entries = [GateEntry(base | 0x80, slot), GateEntry(base | 0x40, slot)]
    return _engine(
        sim, in_entries, out_entries, pairs=[CqfPair(6, 7)], mode=mode
    )


class TestCqfPair:
    def test_membership(self):
        pair = CqfPair(6, 7)
        assert 6 in pair and 7 in pair and 5 not in pair

    def test_distinct_queues_required(self):
        with pytest.raises(ConfigurationError):
            CqfPair(3, 3)


class TestLifecycle:
    def test_start_applies_first_entry(self):
        sim = Simulator()
        engine = _cqf_engine(sim)
        engine.start()
        assert engine.in_open(6) and not engine.in_open(7)
        assert engine.out_open(7) and not engine.out_open(6)

    def test_double_start_rejected(self):
        sim = Simulator()
        engine = _cqf_engine(sim)
        engine.start()
        with pytest.raises(ConfigurationError):
            engine.start()

    @pytest.mark.parametrize("mode", ["flip", "table"])
    def test_flips_at_entry_boundaries(self, mode):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=100, mode=mode)
        engine.start()
        sim.run(until=99)
        assert engine.in_open(6)
        sim.run(until=100)
        assert engine.in_open(7) and not engine.in_open(6)
        sim.run(until=200)
        assert engine.in_open(6)

    def test_on_change_notified(self):
        # Flip mode: every transition notifies the scheduler.
        sim = Simulator()
        engine = _cqf_engine(sim, slot=50, mode="flip")
        kicks = []
        engine.set_on_change(lambda: kicks.append(sim.now))
        engine.start()
        sim.run(until=120)
        assert kicks[0] == 0            # at start
        assert 50 in kicks and 100 in kicks

    def test_table_mode_notifies_only_at_start(self):
        # Table mode produces no transitions; re-arbitration is pulled
        # through next_out_open_window wake hints instead.
        sim = Simulator()
        engine = _cqf_engine(sim, slot=50, mode="table")
        kicks = []
        engine.set_on_change(lambda: kicks.append(sim.now))
        engine.start()
        sim.run(until=120)
        assert kicks == [0]

    def test_auto_resolves_to_table_without_observers(self):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=50)
        assert engine.event_mode == "auto"
        engine.start()
        assert engine.event_mode == "table"
        # No periodic gate events on the calendar at all.
        assert sim.pending == 0

    def test_invalid_mode_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            _cqf_engine(sim, mode="sometimes")

    def test_program_after_start_rejected(self):
        sim = Simulator()
        engine = _cqf_engine(sim)
        engine.start()
        with pytest.raises(ConfigurationError):
            engine.program([GateEntry(0xFF, 10)], [GateEntry(0xFF, 10)])

    def test_drifting_clock_skews_boundaries(self):
        sim = Simulator()
        fast = LocalClock(sim, drift_ppm=100_000)  # 10% fast, exaggerated
        engine = _cqf_engine(sim, slot=1000)
        engine2 = GateEngine(
            sim,
            engine.in_gcl,
            engine.out_gcl,
            clock=fast,
        )
        # A 1000ns local interval on a 10%-fast clock elapses in ~909 sim ns.
        assert fast.sim_delay_for_local(1000) == 909


class TestQueueSelection:
    @pytest.mark.parametrize("mode", ["flip", "table"])
    def test_cqf_redirect_to_open_member(self, mode):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=100, mode=mode)
        engine.start()
        assert engine.select_enqueue_queue(7) == 6  # slot 0 gathers on 6
        sim.run(until=100)
        assert engine.select_enqueue_queue(7) == 7

    def test_non_cqf_queue_follows_own_gate(self):
        sim = Simulator()
        engine = _cqf_engine(sim)
        engine.start()
        assert engine.select_enqueue_queue(0) == 0  # BE: always open

    def test_closed_non_cqf_gate_drops(self):
        sim = Simulator()
        # queue 0 closed in every entry
        engine = _engine(
            sim, [GateEntry(0xFE, 100)], [GateEntry(0xFF, 100)]
        )
        engine.start()
        assert engine.select_enqueue_queue(0) is None


class TestGuardBandQuery:
    @pytest.mark.parametrize("mode", ["flip", "table"])
    def test_closed_gate_reports_zero(self, mode):
        sim = Simulator()
        engine = _cqf_engine(sim, mode=mode)
        engine.start()
        assert engine.time_until_out_close(6) == 0  # out-gate of 6 is closed

    @pytest.mark.parametrize("mode", ["flip", "table"])
    def test_open_gate_reports_remaining_window(self, mode):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=100, mode=mode)
        engine.start()
        assert engine.time_until_out_close(7) == 100
        sim.run(until=30)
        assert engine.time_until_out_close(7) == 70

    @pytest.mark.parametrize("mode", ["flip", "table"])
    def test_always_open_queue_reports_none(self, mode):
        sim = Simulator()
        engine = _cqf_engine(sim, mode=mode)
        engine.start()
        assert engine.time_until_out_close(0) is None  # open in both entries

    @pytest.mark.parametrize("mode", ["flip", "table"])
    def test_single_entry_gcl_reports_none(self, mode):
        sim = Simulator()
        engine = _engine(
            sim, [GateEntry(0xFF, 50)], [GateEntry(0xFF, 50)], mode=mode
        )
        engine.start()
        assert engine.time_until_out_close(3) is None


class TestWakeHints:
    def test_next_window_for_closed_gate(self):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=100, mode="table")
        engine.start()
        # Queue 6's out-gate opens at the next slot boundary.
        assert engine.next_out_open_window(6) == 100
        sim.run(until=30)
        assert engine.next_out_open_window(6) == 70

    def test_window_must_fit_frame(self):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=100, mode="table")
        engine.start()
        # A frame needing more than one slot never fits: no wake hint.
        assert engine.next_out_open_window(6, needed_ns=101) is None
        assert engine.next_out_open_window(6, needed_ns=100) == 100

    def test_open_gate_hints_next_cycle(self):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=100, mode="table")
        engine.start()
        # Queue 7 is open now; the *next* window starts a full cycle later.
        assert engine.next_out_open_window(7) == 200

    def test_flip_mode_returns_none(self):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=100, mode="flip")
        engine.start()
        assert not engine.needs_wake_hints
        assert engine.next_out_open_window(6) is None

    def test_rate_change_rebuilds_boundaries(self):
        # Slew the clock mid-entry: the committed end of the in-flight
        # entry must hold, later boundaries follow the new rate -- exactly
        # what the flip engine does by computing each delay at entry start.
        sim_flip, sim_table = Simulator(), Simulator()
        engines = {}
        clocks = {}
        for label, sim, mode in (
            ("flip", sim_flip, "flip"), ("table", sim_table, "table")
        ):
            clock = LocalClock(sim)
            in_gcl = GateControlList(2)
            out_gcl = GateControlList(2)
            base = 0b0011_1111
            in_gcl.program(
                [GateEntry(base | 0x40, 1000), GateEntry(base | 0x80, 1000)]
            )
            out_gcl.program(
                [GateEntry(base | 0x80, 1000), GateEntry(base | 0x40, 1000)]
            )
            engine = GateEngine(
                sim, in_gcl, out_gcl, clock=clock, mode=mode
            )
            engine.start()
            engines[label] = engine
            clocks[label] = clock
            sim.post(500, lambda c=clock: c.adjust_rate(100_000))  # +10%
        for probe in (999, 1000, 1400, 1900, 2000, 2800, 2900, 5000):
            for label, sim in (("flip", sim_flip), ("table", sim_table)):
                sim.run(until=probe)
            masks = {
                label: (engines[label].in_mask, engines[label].out_mask)
                for label in engines
            }
            assert masks["flip"] == masks["table"], f"diverged at {probe}"
