"""Gate engine: GCL walking, CQF queue selection, guard-band queries."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.switch.gates import CqfPair, GateEngine
from repro.switch.tables import GateControlList, GateEntry


def _engine(sim, in_entries, out_entries, pairs=(), clock=None):
    in_gcl = GateControlList(max(1, len(in_entries)))
    out_gcl = GateControlList(max(1, len(out_entries)))
    in_gcl.program(list(in_entries))
    out_gcl.program(list(out_entries))
    return GateEngine(sim, in_gcl, out_gcl, clock=clock, cqf_pairs=list(pairs))


def _cqf_engine(sim, slot=100):
    # queues 6/7 alternate; all others always open
    base = 0b0011_1111
    in_entries = [GateEntry(base | 0x40, slot), GateEntry(base | 0x80, slot)]
    out_entries = [GateEntry(base | 0x80, slot), GateEntry(base | 0x40, slot)]
    return _engine(sim, in_entries, out_entries, pairs=[CqfPair(6, 7)])


class TestCqfPair:
    def test_membership(self):
        pair = CqfPair(6, 7)
        assert 6 in pair and 7 in pair and 5 not in pair

    def test_distinct_queues_required(self):
        with pytest.raises(ConfigurationError):
            CqfPair(3, 3)


class TestLifecycle:
    def test_start_applies_first_entry(self):
        sim = Simulator()
        engine = _cqf_engine(sim)
        engine.start()
        assert engine.in_open(6) and not engine.in_open(7)
        assert engine.out_open(7) and not engine.out_open(6)

    def test_double_start_rejected(self):
        sim = Simulator()
        engine = _cqf_engine(sim)
        engine.start()
        with pytest.raises(ConfigurationError):
            engine.start()

    def test_flips_at_entry_boundaries(self):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=100)
        engine.start()
        sim.run(until=99)
        assert engine.in_open(6)
        sim.run(until=100)
        assert engine.in_open(7) and not engine.in_open(6)
        sim.run(until=200)
        assert engine.in_open(6)

    def test_on_change_notified(self):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=50)
        kicks = []
        engine.set_on_change(lambda: kicks.append(sim.now))
        engine.start()
        sim.run(until=120)
        assert kicks[0] == 0            # at start
        assert 50 in kicks and 100 in kicks

    def test_program_after_start_rejected(self):
        sim = Simulator()
        engine = _cqf_engine(sim)
        engine.start()
        with pytest.raises(ConfigurationError):
            engine.program([GateEntry(0xFF, 10)], [GateEntry(0xFF, 10)])

    def test_drifting_clock_skews_boundaries(self):
        sim = Simulator()
        fast = LocalClock(sim, drift_ppm=100_000)  # 10% fast, exaggerated
        engine = _cqf_engine(sim, slot=1000)
        engine2 = GateEngine(
            sim,
            engine.in_gcl,
            engine.out_gcl,
            clock=fast,
        )
        # A 1000ns local interval on a 10%-fast clock elapses in ~909 sim ns.
        assert fast.sim_delay_for_local(1000) == 909


class TestQueueSelection:
    def test_cqf_redirect_to_open_member(self):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=100)
        engine.start()
        assert engine.select_enqueue_queue(7) == 6  # slot 0 gathers on 6
        sim.run(until=100)
        assert engine.select_enqueue_queue(7) == 7

    def test_non_cqf_queue_follows_own_gate(self):
        sim = Simulator()
        engine = _cqf_engine(sim)
        engine.start()
        assert engine.select_enqueue_queue(0) == 0  # BE: always open

    def test_closed_non_cqf_gate_drops(self):
        sim = Simulator()
        # queue 0 closed in every entry
        engine = _engine(
            sim, [GateEntry(0xFE, 100)], [GateEntry(0xFF, 100)]
        )
        engine.start()
        assert engine.select_enqueue_queue(0) is None


class TestGuardBandQuery:
    def test_closed_gate_reports_zero(self):
        sim = Simulator()
        engine = _cqf_engine(sim)
        engine.start()
        assert engine.time_until_out_close(6) == 0  # out-gate of 6 is closed

    def test_open_gate_reports_remaining_window(self):
        sim = Simulator()
        engine = _cqf_engine(sim, slot=100)
        engine.start()
        assert engine.time_until_out_close(7) == 100
        sim.run(until=30)
        assert engine.time_until_out_close(7) == 70

    def test_always_open_queue_reports_none(self):
        sim = Simulator()
        engine = _cqf_engine(sim)
        engine.start()
        assert engine.time_until_out_close(0) is None  # open in both entries

    def test_single_entry_gcl_reports_none(self):
        sim = Simulator()
        engine = _engine(sim, [GateEntry(0xFF, 50)], [GateEntry(0xFF, 50)])
        engine.start()
        assert engine.time_until_out_close(3) is None
