"""Switch counters."""

from repro.switch.counters import SwitchCounters


class TestSwitchCounters:
    def test_dropped_total_sums_all_drop_kinds(self):
        counters = SwitchCounters(
            dropped_unknown_dst=1,
            dropped_policer=2,
            dropped_gate=3,
            dropped_tail=4,
            dropped_no_buffer=5,
            dropped_corrupt=6,
        )
        assert counters.dropped_total == 21

    def test_note_enqueue_accumulates_per_queue(self):
        counters = SwitchCounters()
        counters.note_enqueue(7)
        counters.note_enqueue(7)
        counters.note_enqueue(0)
        assert counters.per_queue_enqueued == {7: 2, 0: 1}

    def test_as_dict_round_numbers(self):
        counters = SwitchCounters(received=10, forwarded=9, transmitted=8,
                                  dropped_tail=1)
        data = counters.as_dict()
        assert data["received"] == 10
        assert data["dropped_total"] == 1
        assert set(data) == {
            "received", "forwarded", "transmitted", "dropped_unknown_dst",
            "dropped_policer", "dropped_gate", "dropped_tail",
            "dropped_no_buffer", "dropped_corrupt", "dropped_total",
        }

    def test_as_dict_includes_per_queue_enqueued(self):
        counters = SwitchCounters()
        counters.note_enqueue(7)
        counters.note_enqueue(7)
        counters.note_enqueue(0)
        data = counters.as_dict()
        assert data["enqueued_q7"] == 2
        assert data["enqueued_q0"] == 1
        # Flat keys keep the dump Dict[str, int] for JSON summaries.
        assert all(isinstance(v, int) for v in data.values())
        # Queues appear in sorted order after the fixed counters.
        queue_keys = [k for k in data if k.startswith("enqueued_q")]
        assert queue_keys == ["enqueued_q0", "enqueued_q7"]
