"""Frame preemption (802.1Qbu / 802.3br)."""

import pytest

from repro.core.units import mbps, ms
from repro.sim.kernel import Simulator
from repro.switch.counters import SwitchCounters
from repro.switch.gates import GateEngine
from repro.switch.packet import EthernetFrame, make_mac
from repro.switch.port import (
    EgressPort,
    MIN_FRAGMENT_BYTES,
    RESUME_OVERHEAD_BYTES,
)
from repro.switch.queueing import BufferPool, MetadataQueue
from repro.switch.scheduler import StrictPriorityScheduler
from repro.switch.tables import GateControlList, GateEntry

GBPS = 10**9


def _frame(pcp, size=64, flow=None):
    return EthernetFrame(make_mac(1), make_mac(2), 1, pcp, size,
                         flow_id=flow if flow is not None else pcp)


def _port(sim, preemption=True):
    queues = [MetadataQueue(64, q) for q in range(8)]
    in_gcl, out_gcl = GateControlList(1), GateControlList(1)
    in_gcl.program([GateEntry(0xFF, 10_000_000)])
    out_gcl.program([GateEntry(0xFF, 10_000_000)])
    gates = GateEngine(sim, in_gcl, out_gcl)
    port = EgressPort(
        sim, 0, GBPS, queues, BufferPool(64), gates,
        StrictPriorityScheduler(), SwitchCounters(),
        preemption_enabled=preemption, express_queues=(6, 7),
    )
    gates.set_on_change(port.kick)
    gates.start()
    return port


class TestPreemptionMechanics:
    def test_express_cuts_through_preemptable_frame(self):
        sim = Simulator()
        port = _port(sim)
        deliveries = []
        port.attach(lambda f: deliveries.append((f.flow_id, sim.now)))
        port.enqueue(_frame(0, size=1500, flow=100), 0)   # 12 us on the wire
        sim.run(until=2_000)                              # 250 B sent
        port.enqueue(_frame(7, size=64, flow=200), 7)     # express arrives
        sim.run(until=50_000)
        order = [flow for flow, _ in deliveries]
        assert order == [200, 100]
        assert port.preemptions == 1
        # express waited only for the 64B-boundary cut, not the full MTU:
        express_time = deliveries[0][1]
        assert express_time < 4_000  # vs ~12.5us without preemption

    def test_without_preemption_express_waits_full_frame(self):
        sim = Simulator()
        port = _port(sim, preemption=False)
        deliveries = []
        port.attach(lambda f: deliveries.append((f.flow_id, sim.now)))
        port.enqueue(_frame(0, size=1500, flow=100), 0)
        sim.run(until=2_000)
        port.enqueue(_frame(7, size=64, flow=200), 7)
        sim.run(until=50_000)
        order = [flow for flow, _ in deliveries]
        assert order == [100, 200]
        assert port.preemptions == 0

    def test_preempted_frame_resumes_with_overhead(self):
        sim = Simulator()
        port = _port(sim)
        deliveries = []
        port.attach(lambda f: deliveries.append((f.flow_id, sim.now)))
        port.enqueue(_frame(0, size=1500, flow=100), 0)
        sim.run(until=2_000)
        port.enqueue(_frame(7, size=64, flow=200), 7)
        sim.run(until=50_000)
        be_time = dict(deliveries)[100]
        # lower bound: 1500B data + express frame + cut tail + resume
        # overhead, all at 8 ns/B
        floor = (1500 + 64 + RESUME_OVERHEAD_BYTES) * 8
        assert be_time > floor

    def test_no_cut_near_frame_end(self):
        """The final fragment must keep >= 64B; a late express frame waits."""
        sim = Simulator()
        port = _port(sim)
        deliveries = []
        port.attach(lambda f: deliveries.append(f.flow_id))
        port.enqueue(_frame(0, size=128, flow=100), 0)
        sim.run(until=600)   # ~75 B sent; cut would leave < 64B remainder
        port.enqueue(_frame(7, size=64, flow=200), 7)
        sim.run(until=50_000)
        assert port.preemptions == 0
        assert deliveries == [100, 200]

    def test_small_preemptable_frame_never_cut(self):
        """64B frames cannot be fragmented at all."""
        sim = Simulator()
        port = _port(sim)
        port.attach(lambda f: None)
        port.enqueue(_frame(0, size=64, flow=100), 0)
        port.enqueue(_frame(7, size=64, flow=200), 7)
        sim.run(until=50_000)
        assert port.preemptions == 0

    def test_express_never_preempts_express(self):
        sim = Simulator()
        port = _port(sim)
        deliveries = []
        port.attach(lambda f: deliveries.append(f.flow_id))
        port.enqueue(_frame(6, size=1500, flow=100), 6)  # express too
        sim.run(until=2_000)
        port.enqueue(_frame(7, size=64, flow=200), 7)
        sim.run(until=50_000)
        assert port.preemptions == 0
        assert deliveries == [100, 200]

    def test_multiple_preemptions_of_one_frame(self):
        sim = Simulator()
        port = _port(sim)
        deliveries = []
        port.attach(lambda f: deliveries.append(f.flow_id))
        port.enqueue(_frame(0, size=1500, flow=100), 0)
        # two express arrivals far enough apart for two separate cuts
        sim.schedule(1_000, lambda: port.enqueue(_frame(7, flow=200), 7))
        sim.schedule(5_000, lambda: port.enqueue(_frame(7, flow=201), 7))
        sim.run(until=100_000)
        assert port.preemptions == 2
        assert deliveries[-1] == 100
        assert set(deliveries) == {100, 200, 201}

    def test_suspended_frame_resumes_before_new_preemptable(self):
        sim = Simulator()
        port = _port(sim)
        deliveries = []
        port.attach(lambda f: deliveries.append(f.flow_id))
        port.enqueue(_frame(0, size=1500, flow=100), 0)
        sim.run(until=2_000)
        port.enqueue(_frame(7, size=64, flow=200), 7)   # forces the cut
        port.enqueue(_frame(5, size=64, flow=300), 5)   # new preemptable
        sim.run(until=100_000)
        # 802.3br: the mPacket in progress completes before queue 5's frame
        assert deliveries == [200, 100, 300]

    def test_buffer_released_exactly_once(self):
        sim = Simulator()
        port = _port(sim)
        port.attach(lambda f: None)
        port.enqueue(_frame(0, size=1500, flow=100), 0)
        sim.run(until=2_000)
        port.enqueue(_frame(7, size=64, flow=200), 7)
        sim.run(until=100_000)
        assert port.pool.in_use == 0
        assert port.pool.stats.releases == port.pool.stats.allocations == 2


class TestPreemptionEndToEnd:
    def test_jitter_collapse_under_background(self):
        from repro.core.presets import customized_config
        from repro.network.testbed import Testbed
        from repro.network.topology import ring_topology
        from repro.traffic.iec60802 import (
            background_flows,
            production_cell_flows,
        )

        def run(preempt):
            topology = ring_topology(switch_count=3, talkers=["talker0"])
            flows = production_cell_flows(["talker0"], "listener",
                                          flow_count=48)
            for flow in background_flows(["talker0"], "listener",
                                         mbps(200), mbps(200)):
                flows.add(flow)
            testbed = Testbed(topology, customized_config(1), flows,
                              slot_ns=62_500, preemption_enabled=preempt)
            return testbed.run(duration_ns=ms(30))

        plain = run(False)
        preempted = run(True)
        assert plain.ts_loss == preempted.ts_loss == 0.0
        assert preempted.ts_summary.jitter_ns < plain.ts_summary.jitter_ns / 4
        # BE throughput is preserved (fragments all arrive)
        assert preempted.analyzer.received() == plain.analyzer.received()


class TestPreemptionProperties:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        be_size=st.integers(min_value=200, max_value=1500),
        express_times=st.lists(
            st.integers(min_value=0, max_value=15_000),
            min_size=0, max_size=4, unique=True,
        ),
    )
    def test_every_frame_delivered_exactly_once(self, be_size,
                                                express_times):
        """Whatever the express arrival pattern, each frame is delivered
        once, buffers balance, and the preemptable frame always finishes."""
        sim = Simulator()
        port = _port(sim)
        delivered = []
        port.attach(lambda f: delivered.append(f.flow_id))
        port.enqueue(_frame(0, size=be_size, flow=100), 0)
        for index, t in enumerate(sorted(express_times)):
            sim.schedule(
                t, lambda i=index: port.enqueue(_frame(7, flow=200 + i), 7)
            )
        sim.run(until=500_000)
        assert delivered.count(100) == 1
        for index in range(len(express_times)):
            assert delivered.count(200 + index) == 1
        assert port.pool.in_use == 0
        assert port.pool.stats.releases == port.pool.stats.allocations
