"""Strict-priority arbitration with gates and CBS."""

from repro.sim.kernel import Simulator
from repro.switch.gates import GateEngine
from repro.switch.packet import Descriptor, EthernetFrame, make_mac
from repro.switch.queueing import MetadataQueue
from repro.switch.scheduler import StrictPriorityScheduler
from repro.switch.shaper import CreditBasedShaper
from repro.switch.tables import CbsParams, GateControlList, GateEntry

GBPS = 10**9


def _ser(nbytes):
    return nbytes * 8  # 1 Gbps


def _queues(count=8, depth=16):
    return [MetadataQueue(depth, q) for q in range(count)]


def _gates(sim, in_entries=None, out_entries=None):
    in_gcl = GateControlList(2)
    out_gcl = GateControlList(2)
    in_gcl.program(in_entries or [GateEntry(0xFF, 1000)])
    out_gcl.program(out_entries or [GateEntry(0xFF, 1000)])
    engine = GateEngine(sim, in_gcl, out_gcl)
    engine.start()
    return engine


def _load(queue, size=64):
    frame = EthernetFrame(make_mac(1), make_mac(2), 1, 7, size)
    queue.enqueue(Descriptor(frame, buffer_slot=0, enqueued_ns=0,
                             queue_id=queue.queue_id))


class TestPriority:
    def test_highest_backlogged_queue_wins(self):
        sim = Simulator()
        queues = _queues()
        _load(queues[2])
        _load(queues[5])
        decision = StrictPriorityScheduler().select(
            0, queues, _gates(sim), _ser
        )
        assert decision.queue_id == 5

    def test_idle_when_all_empty(self):
        sim = Simulator()
        decision = StrictPriorityScheduler().select(
            0, _queues(), _gates(sim), _ser
        )
        assert decision.idle and decision.retry_delay_ns is None


class TestGating:
    def test_closed_gate_skipped(self):
        sim = Simulator()
        queues = _queues()
        _load(queues[7])
        _load(queues[0])
        gates = _gates(sim, out_entries=[GateEntry(0x7F, 1000)])  # 7 closed
        decision = StrictPriorityScheduler().select(0, queues, gates, _ser)
        assert decision.queue_id == 0

    def test_guard_band_blocks_overrunning_frame(self):
        sim = Simulator()
        queues = _queues()
        _load(queues[7], size=1500)  # 12 us serialization
        _load(queues[0], size=64)
        # queue 7 open for only 1 us windows
        gates = _gates(
            sim,
            out_entries=[GateEntry(0xFF, 1_000), GateEntry(0x7F, 1_000)],
        )
        decision = StrictPriorityScheduler().select(0, queues, gates, _ser)
        # 1500B doesn't fit the 1us window; falls through to queue 0
        assert decision.queue_id == 0

    def test_guard_band_admits_fitting_frame(self):
        sim = Simulator()
        queues = _queues()
        _load(queues[7], size=64)  # 512 ns fits the 1 us window
        gates = _gates(
            sim,
            out_entries=[GateEntry(0xFF, 1_000), GateEntry(0x7F, 1_000)],
        )
        decision = StrictPriorityScheduler().select(0, queues, gates, _ser)
        assert decision.queue_id == 7


class TestCbsIntegration:
    def _scheduler_with_negative_credit(self):
        shaper = CreditBasedShaper(CbsParams.for_reservation(10**8, GBPS))
        shaper.set_backlog(0, True)
        shaper.begin_transmission(0)
        shaper.end_transmission(12_000, has_backlog=True)  # deep negative
        return StrictPriorityScheduler({5: shaper}), shaper

    def test_ineligible_shaped_queue_skipped_with_hint(self):
        sim = Simulator()
        queues = _queues()
        _load(queues[5])
        scheduler, shaper = self._scheduler_with_negative_credit()
        decision = scheduler.select(12_000, queues, _gates(sim), _ser)
        assert decision.idle
        assert decision.retry_delay_ns == shaper.ns_until_eligible(12_000)

    def test_lower_priority_takes_over_when_shaped_blocked(self):
        sim = Simulator()
        queues = _queues()
        _load(queues[5])
        _load(queues[1])
        scheduler, _ = self._scheduler_with_negative_credit()
        decision = scheduler.select(12_000, queues, _gates(sim), _ser)
        assert decision.queue_id == 1

    def test_eligible_shaped_queue_selected(self):
        sim = Simulator()
        queues = _queues()
        _load(queues[5])
        shaper = CreditBasedShaper(CbsParams.for_reservation(10**8, GBPS))
        decision = StrictPriorityScheduler({5: shaper}).select(
            0, queues, _gates(sim), _ser
        )
        assert decision.queue_id == 5


class TestDeficitRoundRobin:
    def _drr(self, weights=None, **kwargs):
        from repro.switch.scheduler import DeficitRoundRobinScheduler

        return DeficitRoundRobinScheduler(weights=weights, **kwargs)

    def test_priority_queues_still_win(self):
        sim = Simulator()
        queues = _queues()
        _load(queues[7])
        _load(queues[0])
        decision = self._drr().select(0, queues, _gates(sim), _ser)
        assert decision.queue_id == 7

    def test_round_robin_alternates_below_floor(self):
        sim = Simulator()
        queues = _queues()
        gates = _gates(sim)
        drr = self._drr()
        for _ in range(4):
            _load(queues[0])
            _load(queues[1])
        served = []
        for _ in range(8):
            decision = drr.select(0, queues, gates, _ser)
            served.append(decision.queue_id)
            next(q for q in queues if q.queue_id == decision.queue_id).dequeue()
        # fair alternation rather than strict-priority starvation of queue 0
        assert served.count(0) == served.count(1) == 4

    def test_weights_bias_service(self):
        sim = Simulator()
        queues = _queues(depth=64)
        gates = _gates(sim)
        drr = self._drr(weights={1: 3, 0: 1}, quantum_bytes=64)
        for _ in range(40):
            _load(queues[0], size=64)
            _load(queues[1], size=64)
        served = []
        for _ in range(40):
            decision = drr.select(0, queues, gates, _ser)
            served.append(decision.queue_id)
            next(q for q in queues if q.queue_id == decision.queue_id).dequeue()
        # 3:1 weighting -> queue 1 gets 3x the service
        assert served.count(1) == 30 and served.count(0) == 10

    def test_work_conserving_with_large_frames(self):
        """A frame bigger than one quantum must still be served (no stall)."""
        sim = Simulator()
        queues = _queues()
        _load(queues[2], size=1500)
        drr = self._drr(quantum_bytes=64)
        decision = drr.select(0, queues, _gates(sim), _ser)
        assert decision.queue_id == 2

    def test_idle_when_everything_empty(self):
        sim = Simulator()
        decision = self._drr().select(0, _queues(), _gates(sim), _ser)
        assert decision.idle

    def test_gate_respected_below_floor(self):
        sim = Simulator()
        queues = _queues()
        _load(queues[0])
        gates = _gates(sim, out_entries=[GateEntry(0xFE, 1000)])  # 0 closed
        decision = self._drr().select(0, queues, gates, _ser)
        assert decision.idle

    def test_strict_priority_unaffected_by_base_refactor(self):
        """StrictPriorityScheduler (now a subclass) behaves as before."""
        sim = Simulator()
        queues = _queues()
        _load(queues[3])
        _load(queues[6])
        decision = StrictPriorityScheduler().select(0, queues, _gates(sim), _ser)
        assert decision.queue_id == 6
