"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestReport:
    def test_prints_table3(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "10818Kb" in out and "-80.53%" in out

    def test_table1_flag(self, capsys):
        assert main(["report", "--table1"]) == 0
        out = capsys.readouterr().out
        assert "2304Kb" in out and "1764Kb" in out


class TestSize:
    def test_stdout_json(self, capsys):
        assert main(["size", "--topology", "ring", "--flows", "128"]) == 0
        out = capsys.readouterr().out
        config = json.loads(out)
        assert config["unicast_size"] == 128
        assert config["port_num"] == 1

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "config.json"
        assert main(["size", "--flows", "64", "--output", str(target)]) == 0
        assert json.loads(target.read_text())["unicast_size"] == 64

    def test_qbv_mechanism(self, capsys):
        assert main(["size", "--flows", "64",
                     "--gate-mechanism", "qbv"]) == 0
        config = json.loads(capsys.readouterr().out)
        assert config["gate_size"] == 160  # slots per 10ms cycle

    def test_star_ignores_switch_count(self, capsys):
        assert main(["size", "--topology", "star", "--flows", "16"]) == 0
        assert json.loads(capsys.readouterr().out)["port_num"] == 3

    def test_note_reports_depth_margin(self, capsys):
        assert main(["size", "--topology", "ring", "--flows", "128"]) == 0
        captured = capsys.readouterr()
        config = json.loads(captured.out)
        import re

        match = re.search(r"ITP needs queue depth (\d+), configured "
                          r"(\d+) \(\+(\d+) frames margin\)", captured.err)
        assert match, captured.err
        required, configured, margin = map(int, match.groups())
        assert configured == config["queue_depth"]
        assert margin == configured - required


class TestEmitRtl:
    def test_preset(self, tmp_path, capsys):
        assert main(["emit-rtl", "--preset", "ring",
                     "--outdir", str(tmp_path)]) == 0
        assert (tmp_path / "tsn_switch_top.v").exists()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["predicted_bram_kb"] == 2106

    def test_config_file(self, tmp_path, capsys):
        cfg = tmp_path / "c.json"
        assert main(["size", "--flows", "32", "--output", str(cfg)]) == 0
        outdir = tmp_path / "rtl"
        assert main(["emit-rtl", "--config", str(cfg),
                     "--outdir", str(outdir)]) == 0
        assert (outdir / "gate_ctrl.v").exists()

    def test_missing_config_file(self, tmp_path, capsys):
        assert main(["emit-rtl", "--config", str(tmp_path / "nope.json"),
                     "--outdir", str(tmp_path)]) == 2


class TestSimulate:
    def _scenario(self, tmp_path, **overrides):
        data = {
            "name": "cli-test",
            "topology": {"kind": "ring", "switch_count": 2,
                         "talkers": ["talker0"], "listener": "listener"},
            "flows": {"ts_count": 8},
            "config": "derive",
            "slot_us": 62.5,
            "duration_ms": 15,
        }
        data.update(overrides)
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        return path

    def test_runs_and_prints_summary(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        assert main(["simulate", str(path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["classes"]["TS"]["loss"] == 0.0

    def test_summary_json_file(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        out = tmp_path / "summary.json"
        assert main(["simulate", str(path), "--summary-json", str(out)]) == 0
        assert json.loads(out.read_text())["classes"]["TS"]["received"] > 0

    def test_bad_scenario_reports_error(self, tmp_path, capsys):
        path = self._scenario(tmp_path, topology={"kind": "mesh"})
        assert main(["simulate", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_flag_writes_snapshot(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        out = tmp_path / "metrics.json"
        assert main(["simulate", str(path), "--metrics", str(out)]) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["frames_total"]["kind"] == "counter"
        assert any(
            series["value"] > 0
            for series in snapshot["frames_total"]["series"]
        )
        # The printed summary embeds the same snapshot and the sim stats.
        summary = json.loads(capsys.readouterr().out)
        assert summary["metrics"]["queue_depth"]["kind"] == "gauge"
        assert summary["sim"]["fired"] > 0

    def test_chrome_trace_flag_writes_events(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        out = tmp_path / "trace.json"
        assert main(["simulate", str(path), "--chrome-trace", str(out)]) == 0
        events = json.loads(out.read_text())
        assert isinstance(events, list) and events
        for event in events:
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in event
        assert any(e["ph"] == "X" for e in events)

    def test_jsonl_trace_flag(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        out = tmp_path / "trace.jsonl"
        assert main(["simulate", str(path), "--jsonl-trace", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines and all("time_ns" in json.loads(l) for l in lines)

    def test_profile_flag_prints_table(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        assert main(["simulate", str(path), "--profile"]) == 0
        assert "Wall-clock profile" in capsys.readouterr().err

    def test_flow_spans_add_async_trace_events(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        out = tmp_path / "trace.json"
        assert main(["simulate", str(path), "--flow-spans",
                     "--chrome-trace", str(out)]) == 0
        events = json.loads(out.read_text())
        phases = {e["ph"] for e in events}
        assert {"b", "n", "e"} <= phases
        begins = [e for e in events if e["ph"] == "b"]
        assert all(e["cat"] == "flow" for e in begins)
        assert "flow" in capsys.readouterr().err  # stderr flow summary

    def test_timeseries_flag_writes_csv(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        out = tmp_path / "series.csv"
        assert main(["simulate", str(path), "--timeseries", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "time_ns,metric,labels,value"
        assert len(lines) > 1

    def test_prom_flag_writes_exposition(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        out = tmp_path / "metrics.prom"
        assert main(["simulate", str(path), "--prom", str(out)]) == 0
        text = out.read_text()
        assert "# TYPE frames_total counter" in text
        assert 'le="+Inf"' in text

    def test_drops_flag_prints_report(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        assert main(["simulate", str(path), "--drops"]) == 0
        err = capsys.readouterr().err
        assert "Drops by reason" in err
        assert "Per-port occupancy and drops" in err

    def test_headroom_flag_prints_report_and_embeds_summary(
        self, tmp_path, capsys
    ):
        path = self._scenario(tmp_path)
        assert main(["simulate", str(path), "--headroom"]) == 0
        captured = capsys.readouterr()
        assert "Resource headroom" in captured.err
        summary = json.loads(captured.out)
        headroom = summary["headroom"]
        assert headroom["timeweighted"] is True
        assert headroom["provisioned_bram_kb"] > 0
        assert headroom["structures"]

    def test_headroom_flag_publishes_prom_gauges(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        out = tmp_path / "metrics.prom"
        assert main(["simulate", str(path), "--headroom",
                     "--prom", str(out)]) == 0
        text = out.read_text()
        assert "# TYPE headroom_utilization gauge" in text
        assert "headroom_queue_occupancy_mean" in text


class TestHeadroomCommand:
    def _scenario(self, tmp_path, **overrides):
        return TestSimulate()._scenario(tmp_path, **overrides)

    def test_renders_tables_and_exits_zero(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        assert main(["headroom", str(path)]) == 0
        captured = capsys.readouterr()
        assert "Resource headroom (observed vs provisioned)" in captured.out
        assert "Per-port occupancy and drops" in captured.out
        assert "Cheapest sufficient config" in captured.out
        assert "provisioned" in captured.err

    def test_json_mode_emits_report_schema(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        assert main(["headroom", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        for key in ("provisioned_bram_kb", "sufficient_bram_kb",
                    "wasted_bram_kb", "utilization", "cheapest_config",
                    "structures", "ports"):
            assert key in report, key
        assert report["timeweighted"] is True
        assert report["cheapest_bram_kb"] > 0

    def test_csv_and_prom_exports(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        csv_out = tmp_path / "headroom.csv"
        prom_out = tmp_path / "headroom.prom"
        assert main(["headroom", str(path), "--csv", str(csv_out),
                     "--prom", str(prom_out)]) == 0
        header = csv_out.read_text().splitlines()[0]
        assert header.startswith("switch,structure,provisioned,peak")
        assert "# TYPE headroom_utilization gauge" in prom_out.read_text()

    def test_margin_changes_sufficient_sizing(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        assert main(["headroom", str(path), "--json", "--margin", "8"]) == 0
        inflated = json.loads(capsys.readouterr().out)
        assert main(["headroom", str(path), "--json"]) == 0
        standard = json.loads(capsys.readouterr().out)
        assert inflated["cheapest_config"]["queue_depth"] >= \
            standard["cheapest_config"]["queue_depth"]

    def test_bad_scenario_reports_error(self, tmp_path, capsys):
        path = self._scenario(tmp_path, topology={"kind": "mesh"})
        assert main(["headroom", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestMetricsCommand:
    def _snapshot(self, tmp_path, capsys):
        scenario = TestSimulate()._scenario(tmp_path)
        out = tmp_path / "metrics.json"
        assert main(["simulate", str(scenario), "--metrics", str(out)]) == 0
        capsys.readouterr()  # swallow the simulate summary
        return out

    def test_renders_tables(self, tmp_path, capsys):
        out = self._snapshot(tmp_path, capsys)
        assert main(["metrics", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Counters" in text
        assert "frames_total" in text
        assert "Histograms" in text

    def test_accepts_embedded_summary(self, tmp_path, capsys):
        scenario = TestSimulate()._scenario(tmp_path)
        summary = tmp_path / "summary.json"
        metrics = tmp_path / "metrics.json"
        assert main(["simulate", str(scenario), "--metrics", str(metrics),
                     "--summary-json", str(summary)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(summary)]) == 0
        assert "frames_total" in capsys.readouterr().out

    def test_json_flag_reemits_snapshot(self, tmp_path, capsys):
        out = self._snapshot(tmp_path, capsys)
        assert main(["metrics", str(out), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["frames_total"]["kind"] == "counter"

    def test_rejects_non_snapshot(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": "world"}))
        assert main(["metrics", str(bogus)]) == 2
        assert "does not contain" in capsys.readouterr().err


class TestSloCommand:
    def _scenario(self, tmp_path, slo=None):
        data = {
            "name": "slo-test",
            "topology": {"kind": "ring", "switch_count": 2,
                         "talkers": ["talker0"], "listener": "listener"},
            "flows": {"ts_count": 8},
            "config": "derive",
            "slot_us": 62.5,
            "duration_ms": 15,
        }
        if slo is not None:
            data["slo"] = slo
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        return path

    def test_generous_budget_passes(self, tmp_path, capsys):
        path = self._scenario(
            tmp_path, slo={"class": {"TS": {"latency_us": 10000}}}
        )
        assert main(["slo", str(path)]) == 0
        out = capsys.readouterr().out
        assert "SLO: PASS" in out

    def test_impossible_budget_fails_with_exit_1(self, tmp_path, capsys):
        path = self._scenario(
            tmp_path, slo={"class": {"TS": {"latency_ns": 1}}}
        )
        assert main(["slo", str(path)]) == 1
        out = capsys.readouterr().out
        assert "SLO: FAIL" in out and "latency" in out

    def test_json_output(self, tmp_path, capsys):
        path = self._scenario(
            tmp_path, slo={"default": {"max_loss": 0.0}}
        )
        assert main(["slo", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True
        assert report["monitored_flows"] == 8

    def test_bad_slo_stanza_is_a_usage_error(self, tmp_path, capsys):
        path = self._scenario(tmp_path, slo={"default": {"bogus": 1}})
        assert main(["slo", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestSizeOptimize:
    def test_optimize_flag(self, capsys):
        assert main(["size", "--flows", "128", "--optimize",
                     "--deadline-us", "1000"]) == 0
        captured = capsys.readouterr()
        config = json.loads(captured.out)
        assert config["queue_depth"] <= 12
        assert "optimized" in captured.err

    def test_optimize_with_aggregation(self, capsys):
        assert main(["size", "--flows", "128", "--optimize",
                     "--aggregate"]) == 0
        config = json.loads(capsys.readouterr().out)
        assert config["unicast_size"] == 1

    def test_impossible_deadline_errors(self, capsys):
        assert main(["size", "--flows", "128", "--optimize",
                     "--deadline-us", "10"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSimulateCheck:
    def _scenario(self, tmp_path, **overrides):
        data = {
            "name": "check-test",
            "topology": {"kind": "ring", "switch_count": 2,
                         "talkers": ["talker0"], "listener": "listener"},
            "flows": {"ts_count": 8},
            "config": "derive",
            "slot_us": 62.5,
            "duration_ms": 15,
        }
        data.update(overrides)
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        return path

    def test_clean_deployment_passes(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        assert main(["simulate", str(path), "--check"]) == 0
        assert "0 error(s)" in capsys.readouterr().err

    def test_undersized_config_fails_check(self, tmp_path, capsys):
        explicit = {
            "port_num": 1, "unicast_size": 2, "multicast_size": 0,
            "class_size": 2, "meter_size": 2, "gate_size": 2,
            "queue_num": 8, "cbs_map_size": 3, "cbs_size": 3,
            "queue_depth": 8, "buffer_num": 64,
        }
        path = self._scenario(tmp_path, config=explicit)
        assert main(["simulate", str(path), "--check"]) == 1
        out = capsys.readouterr().out
        assert "class_tbl" in out


class TestSweep:
    def _sweep(self, tmp_path, **overrides):
        data = {
            "name": "cli-sweep",
            "base": {
                "name": "point",
                "topology": {"kind": "ring", "switch_count": 2,
                             "talkers": ["talker0"], "listener": "listener"},
                "flows": {"ts_count": 4},
                "config": "derive",
                "slot_us": 62.5,
                "duration_ms": 5,
                "seed": 0,
            },
            "grid": {"flows.ts_count": [4, 8]},
        }
        data.update(overrides)
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(data))
        return path

    def test_list_prints_expanded_runs(self, tmp_path, capsys):
        path = self._sweep(tmp_path)
        assert main(["sweep", str(path), "--list"]) == 0
        out = capsys.readouterr().out
        assert "cli-sweep:0000" in out and "cli-sweep:0001" in out

    def test_end_to_end_writes_rows_and_summary(self, tmp_path, capsys):
        path = self._sweep(tmp_path)
        out_dir = tmp_path / "out"
        assert main(["sweep", str(path), "--workers", "1",
                     "--out", str(out_dir)]) == 0
        rows = (out_dir / "runs.jsonl").read_text().splitlines()
        assert len(rows) == 2
        summary = json.loads((out_dir / "summary.json").read_text())
        assert summary["runs"] == 2
        assert summary["status"] == {"ok": 2}
        assert json.loads(capsys.readouterr().out) == summary

    def test_invalid_sweep_document_exits_2(self, tmp_path, capsys):
        path = self._sweep(tmp_path, grid={"flows.ts_cout": [4]})
        assert main(["sweep", str(path)]) == 2
        assert "ts_count" in capsys.readouterr().err

    def test_failed_runs_exit_1(self, tmp_path, capsys):
        path = self._sweep(tmp_path, grid={"config": [42]})
        out_dir = tmp_path / "out"
        assert main(["sweep", str(path), "--no-strict",
                     "--out", str(out_dir)]) == 1
        summary = json.loads((out_dir / "summary.json").read_text())
        assert summary["status"] == {"error": 1}


class TestSimulateStrict:
    def test_typo_in_scenario_exits_2_with_paths(self, tmp_path, capsys):
        data = {
            "name": "typo",
            "topology": {"kind": "ring", "switch_count": 2,
                         "talkers": ["talker0"], "listener": "listener"},
            "flows": {"ts_cout": 8},
            "duration_ms": 5,
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        assert main(["simulate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "flows.ts_cout" in err and "ts_count" in err


class TestSweepObservability:
    def _sweep(self, tmp_path):
        data = {
            "name": "obs-cli",
            "base": {
                "name": "point",
                "topology": {"kind": "ring", "switch_count": 2,
                             "talkers": ["talker0"], "listener": "listener"},
                "flows": {"ts_count": 4},
                "config": "derive",
                "slot_us": 62.5,
                "duration_ms": 2,
                "seed": 0,
            },
            "grid": {"flows.ts_count": [4, 8]},
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(data))
        return path

    def test_artifacts_written_by_default_and_flags(self, tmp_path, capsys):
        path = self._sweep(tmp_path)
        out_dir = tmp_path / "out"
        assert main(["sweep", str(path), "--workers", "1",
                     "--out", str(out_dir),
                     "--status-file", str(out_dir / "status.jsonl"),
                     "--flight-dir", str(out_dir / "flight")]) == 0
        captured = capsys.readouterr()
        # Ledger on by default: head + 2 runs + end.
        ledger = [json.loads(l) for l in
                  (out_dir / "ledger.jsonl").read_text().splitlines()]
        assert [r["record"] for r in ledger] == ["sweep", "run", "run",
                                                 "sweep_end"]
        assert ledger[0]["sweep"] == "obs-cli"
        telemetry = json.loads((out_dir / "telemetry.json").read_text())
        assert telemetry["runs"] == 2
        assert telemetry["stragglers"] == []
        status = [json.loads(l) for l in
                  (out_dir / "status.jsonl").read_text().splitlines()]
        assert status[0]["hb"] == "sweep"
        assert status[-1]["hb"] == "sweep_end"
        assert "# ledger:" in captured.err
        assert "# telemetry:" in captured.err

    def test_no_ledger_flag_suppresses_ledger(self, tmp_path, capsys):
        path = self._sweep(tmp_path)
        out_dir = tmp_path / "out"
        assert main(["sweep", str(path), "--out", str(out_dir),
                     "--no-ledger"]) == 0
        capsys.readouterr()
        assert not (out_dir / "ledger.jsonl").exists()

    def test_event_budget_timeouts_report_stragglers(self, tmp_path, capsys):
        path = self._sweep(tmp_path)
        out_dir = tmp_path / "out"
        assert main(["sweep", str(path), "--out", str(out_dir),
                     "--event-budget", "40",
                     "--flight-dir", str(out_dir / "flight")]) == 1
        captured = capsys.readouterr()
        assert "# straggler:" in captured.err
        summary = json.loads((out_dir / "summary.json").read_text())
        assert summary["status"] == {"timeout": 2}
        assert list((out_dir / "flight").glob("*.json"))

    def test_status_flag_renders_and_exits(self, tmp_path, capsys):
        path = self._sweep(tmp_path)
        out_dir = tmp_path / "out"
        assert main(["sweep", str(path), "--out", str(out_dir),
                     "--status-file", str(out_dir / "status.jsonl")]) == 0
        capsys.readouterr()
        assert main(["sweep", str(path), "--out", str(out_dir),
                     "--status"]) == 0
        out = capsys.readouterr().out
        assert "obs-cli" in out and "[complete]" in out

    def test_status_flag_without_file_exits_2(self, tmp_path, capsys):
        path = self._sweep(tmp_path)
        assert main(["sweep", str(path), "--out", str(tmp_path / "empty"),
                     "--status"]) == 2
        assert "no status file" in capsys.readouterr().err


class TestTailCommand:
    def test_renders_status_dir(self, tmp_path, capsys):
        sweep = TestSweepObservability()._sweep(tmp_path)
        out_dir = tmp_path / "out"
        assert main(["sweep", str(sweep), "--out", str(out_dir),
                     "--status-file", str(out_dir / "status.jsonl")]) == 0
        capsys.readouterr()
        # Accepts the --out directory and finds status.jsonl inside it.
        assert main(["tail", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "obs-cli" in out and "[complete]" in out

    def test_missing_status_file_exits_2(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path / "nope.jsonl")]) == 2
        assert "no status file" in capsys.readouterr().err


class TestBenchCheckCommand:
    def test_missing_baselines_exit_2(self, tmp_path, capsys):
        assert main(["bench", "check", "--smoke",
                     "--kernel-baseline", str(tmp_path / "nope.json"),
                     "--obs-baseline", str(tmp_path / "nope2.json")]) == 2
        err = capsys.readouterr().err
        assert "nope.json" in err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["bench"])


class TestSimulateFlight:
    def test_flight_flag_writes_dump(self, tmp_path, capsys):
        path = TestSimulate()._scenario(tmp_path, duration_ms=2)
        dump = tmp_path / "flight.json"
        assert main(["simulate", str(path), "--flight", str(dump)]) == 0
        captured = capsys.readouterr()
        assert "# flight recorder" in captured.err
        doc = json.loads(dump.read_text())
        assert doc["scenario"] == "cli-test"
        assert doc["status"] == "ok"
        assert len(doc["events"]) > 0
        assert doc["sim_stats"]["fired"] > 0
