"""Ring buffers, the periodic sampler, and Prometheus/CSV export."""

import pytest

from repro.core.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    RingBuffer,
    TimeSeriesSampler,
    prometheus_exposition,
)
from repro.sim.kernel import Simulator


class TestRingBuffer:
    def test_below_capacity_keeps_everything(self):
        ring = RingBuffer(capacity=4)
        for i in range(3):
            ring.append(i)
        assert ring.items() == [0, 1, 2]
        assert ring.overwritten == 0

    def test_wraparound_keeps_newest_in_order(self):
        ring = RingBuffer(capacity=3)
        for i in range(7):
            ring.append(i)
        assert ring.items() == [4, 5, 6]
        assert ring.overwritten == 4
        assert ring.latest == 6
        assert len(ring) == 3

    def test_exactly_full_no_overwrite(self):
        ring = RingBuffer(capacity=3)
        for i in range(3):
            ring.append(i)
        assert ring.items() == [0, 1, 2] and ring.overwritten == 0

    def test_empty_latest_is_none(self):
        assert RingBuffer(capacity=1).latest is None

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            RingBuffer(capacity=0)


class TestSampler:
    def _setup(self, interval_ns=100, capacity=1024):
        sim = Simulator()
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry, sim, interval_ns=interval_ns,
                                    capacity=capacity)
        return sim, registry, sampler

    def test_samples_counter_trajectory(self):
        sim, registry, sampler = self._setup(interval_ns=100)
        counter = registry.counter("frames").labels(switch="sw0")
        sampler.start()
        sim.schedule(150, lambda: counter.inc(5))
        sim.run(until=400)
        ring = sampler.rings[("frames", (("switch", "sw0"),))]
        assert ring.items() == [(100, 0), (200, 5), (300, 5), (400, 5)]

    def test_gauge_samples_level_not_high_water(self):
        sim, registry, sampler = self._setup(interval_ns=10)
        gauge = registry.gauge("depth").labels(q=0)
        gauge.set(9)
        gauge.set(2)
        sampler.start()
        sim.run(until=10)
        ring = sampler.rings[("depth", (("q", "0"),))]
        assert ring.items() == [(10, 2)]

    def test_histogram_samples_observation_count(self):
        sim, registry, sampler = self._setup(interval_ns=10)
        histogram = registry.histogram("lat").labels(port=1)
        histogram.observe(5)
        histogram.observe(7)
        sampler.start()
        sim.run(until=10)
        ring = sampler.rings[("lat", (("port", "1"),))]
        assert ring.items() == [(10, 2)]

    def test_ring_capacity_bounds_long_runs(self):
        sim, registry, sampler = self._setup(interval_ns=10, capacity=5)
        registry.counter("c").labels()
        sampler.start()
        sim.run(until=1000)
        ring = sampler.rings[("c", ())]
        assert len(ring) == 5
        assert ring.overwritten == 95
        assert [t for t, _ in ring.items()] == [960, 970, 980, 990, 1000]

    def test_series_bound_mid_run_starts_at_next_tick(self):
        sim, registry, sampler = self._setup(interval_ns=100)
        sampler.start()
        sim.schedule(250, lambda: registry.counter("late").labels().inc())
        sim.run(until=400)
        ring = sampler.rings[("late", ())]
        assert [t for t, _ in ring.items()] == [300, 400]

    def test_double_start_rejected(self):
        _, _, sampler = self._setup()
        sampler.start()
        with pytest.raises(ConfigurationError):
            sampler.start()

    def test_interval_validated(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            TimeSeriesSampler(MetricsRegistry(), sim, interval_ns=0)

    def test_csv_long_format(self):
        sim, registry, sampler = self._setup(interval_ns=10)
        registry.counter("frames").labels(switch="sw0", port=1).inc(3)
        sampler.start()
        sim.run(until=20)
        lines = sampler.to_csv().splitlines()
        assert lines[0] == "time_ns,metric,labels,value"
        assert lines[1] == '10,frames,"port=1;switch=sw0",3'
        assert len(lines) == 3


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", "frames seen").inc(
            7, switch="sw0"
        )
        registry.gauge("depth").labels(q=3).set(5)
        text = prometheus_exposition(registry)
        assert "# HELP frames_total frames seen" in text
        assert "# TYPE frames_total counter" in text
        assert 'frames_total{switch="sw0"} 7' in text
        assert 'depth{q="3"} 5' in text
        assert 'depth_high_water{q="3"} 5' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(10, 100))
        histogram.observe(5, port=0)
        histogram.observe(7, port=0)
        histogram.observe(50, port=0)
        histogram.observe(10**6, port=0)
        text = prometheus_exposition(registry)
        assert 'lat_bucket{port="0",le="10"} 2' in text
        assert 'lat_bucket{port="0",le="100"} 3' in text
        assert 'lat_bucket{port="0",le="+Inf"} 4' in text
        assert 'lat_sum{port="0"} 1000062' in text
        assert 'lat_count{port="0"} 4' in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, name='say "hi"\nback\\slash')
        text = prometheus_exposition(registry)
        assert r'c{name="say \"hi\"\nback\\slash"} 1' in text

    def test_unlabeled_series_renders_bare(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(2)
        assert "\nevents 2" in prometheus_exposition(registry)

    def test_float_gauge_keeps_precision(self):
        registry = MetricsRegistry()
        registry.gauge("ratio").set(0.25)
        assert "\nratio 0.25" in prometheus_exposition(registry)


class TestSamplerOutlivesSimulationEnd:
    """Sampling configured to run past the simulation horizon must stop
    cleanly at the horizon -- no phantom samples, no broken chain."""

    def _setup(self, interval_ns):
        sim = Simulator()
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry, sim, interval_ns=interval_ns)
        return sim, registry, sampler

    def test_ticks_beyond_horizon_do_not_fire(self):
        sim, registry, sampler = self._setup(interval_ns=300)
        counter = registry.counter("frames").labels(switch="sw0")
        counter.inc()
        sampler.start()
        sim.run(until=1000)
        # Ticks at 300/600/900 fire; the rescheduled 1200 tick is beyond
        # the horizon and must not have been sampled.
        assert sampler.samples_taken == 3
        times = [t for t, _ in sampler.series()["frames"][(("switch",
                                                            "sw0"),)]]
        assert times == [300, 600, 900]
        assert sim.now == 1000

    def test_interval_longer_than_run_samples_nothing(self):
        sim, registry, sampler = self._setup(interval_ns=5000)
        registry.counter("frames").labels(switch="sw0").inc()
        sampler.start()
        sim.run(until=1000)
        assert sampler.samples_taken == 0
        assert sampler.series() == {}
        assert sampler.to_csv() == "time_ns,metric,labels,value\n"

    def test_chain_resumes_on_a_later_run(self):
        # The cut-off tick stays queued: extending the horizon resumes
        # sampling without a second start().
        sim, registry, sampler = self._setup(interval_ns=300)
        registry.counter("frames").labels(switch="sw0").inc()
        sampler.start()
        sim.run(until=1000)
        assert sampler.samples_taken == 3
        sim.run(until=2000)
        assert sampler.samples_taken == 6
        times = [t for t, _ in sampler.series()["frames"][(("switch",
                                                            "sw0"),)]]
        assert times == [300, 600, 900, 1200, 1500, 1800]
