"""SLO spec parsing, policy resolution, and monitor verdicts."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.units import ms
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloMonitor, SloPolicy, SloSpec
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass


def _flow(flow_id=0, traffic_class=TrafficClass.TS, deadline_ns=None):
    return FlowSpec(
        flow_id=flow_id,
        traffic_class=traffic_class,
        src="talker0",
        dst="listener",
        size_bytes=64,
        period_ns=ms(10) if traffic_class is TrafficClass.TS else None,
        rate_bps=None if traffic_class is TrafficClass.TS else 1_000_000,
        deadline_ns=deadline_ns,
    )


class TestSpec:
    def test_us_keys_scale_to_ns(self):
        spec = SloSpec.from_dict({"latency_us": 500, "jitter_us": 1.5})
        assert spec.latency_ns == 500_000
        assert spec.jitter_ns == 1_500

    def test_ns_and_us_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            SloSpec.from_dict({"latency_us": 1, "latency_ns": 1000})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            SloSpec.from_dict({"latencyus": 1})

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            SloSpec(latency_ns=0)
        with pytest.raises(ConfigurationError):
            SloSpec(max_loss=1.5)

    def test_merge_layers_field_by_field(self):
        base = SloSpec(latency_ns=100, jitter_ns=50)
        over = SloSpec(latency_ns=10, allow_duplicates=False)
        merged = over.merged_over(base)
        assert merged.latency_ns == 10          # override wins
        assert merged.jitter_ns == 50           # base fills the gap
        assert merged.allow_duplicates is False


class TestPolicy:
    def test_resolution_precedence(self):
        policy = SloPolicy.from_dict(
            {
                "default": {"max_loss": 0.0},
                "class": {"TS": {"latency_us": 500}},
                "flows": {"7": {"latency_us": 50}},
            }
        )
        plain = policy.resolve(_flow(1))
        tight = policy.resolve(_flow(7))
        assert plain.latency_ns == 500_000 and plain.max_loss == 0.0
        assert tight.latency_ns == 50_000 and tight.max_loss == 0.0

    def test_flow_definition_deadline_is_the_bottom_layer(self):
        policy = SloPolicy()
        spec = policy.resolve(_flow(0, deadline_ns=123_000))
        assert spec.deadline_ns == 123_000
        assert not spec.is_empty

    def test_policy_deadline_overrides_flow_definition(self):
        policy = SloPolicy.from_dict(
            {"class": {"TS": {"deadline_us": 1}}}
        )
        spec = policy.resolve(_flow(0, deadline_ns=999_000))
        assert spec.deadline_ns == 1_000

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            SloPolicy.from_dict({"class": {"XX": {}}})


def _monitor(policy, flows=None, metrics=None):
    flow_set = FlowSet(flows or [_flow(0)])
    return SloMonitor(policy, flow_set, metrics=metrics)


class TestMonitor:
    def test_latency_violation_recorded(self):
        monitor = _monitor(SloPolicy(default=SloSpec(latency_ns=100)))
        monitor.observe(0, seq=0, latency_ns=99, now_ns=99)
        monitor.observe(0, seq=1, latency_ns=150, now_ns=250)
        report = monitor.report({0: 2})
        verdict = report.verdicts[0]
        assert not verdict.passed and verdict.failures == ("latency",)
        [violation] = verdict.violations
        assert violation.seq == 1 and violation.observed == 150

    def test_max_latency_watermark(self):
        monitor = _monitor(SloPolicy(default=SloSpec(latency_ns=1000)))
        for seq, latency in enumerate((10, 400, 200)):
            monitor.observe(0, seq=seq, latency_ns=latency, now_ns=latency)
        verdict = monitor.report({0: 3}).verdicts[0]
        assert verdict.passed
        assert verdict.max_latency_ns == 400

    def test_jitter_checked_at_report_time(self):
        monitor = _monitor(SloPolicy(default=SloSpec(jitter_ns=10)))
        monitor.observe(0, seq=0, latency_ns=100, now_ns=100)
        monitor.observe(0, seq=1, latency_ns=300, now_ns=300)
        report = monitor.report({0: 2}, end_ns=1000)
        verdict = report.verdicts[0]
        assert verdict.failures == ("jitter",)
        assert verdict.jitter_ns == pytest.approx(100.0)
        assert verdict.violations[0].time_ns == 1000

    def test_loss_budget(self):
        monitor = _monitor(
            SloPolicy(default=SloSpec(max_loss=0.4))
        )
        monitor.observe(0, seq=0, latency_ns=1, now_ns=1)
        # 1 of 3 delivered: 66% loss > 40% budget.
        report = monitor.report({0: 3})
        assert report.verdicts[0].failures == ("loss",)
        assert report.verdicts[0].lost == 2

    def test_duplicates_tolerated_by_default_but_not_redelivered(self):
        monitor = _monitor(SloPolicy(default=SloSpec(max_loss=0.0)))
        monitor.observe(0, seq=0, latency_ns=1, now_ns=1)
        monitor.observe(0, seq=0, latency_ns=2, now_ns=2)
        verdict = monitor.report({0: 1}).verdicts[0]
        assert verdict.passed
        assert verdict.received == 1 and verdict.duplicates == 1

    def test_duplicate_violation_when_disallowed(self):
        monitor = _monitor(
            SloPolicy(default=SloSpec(allow_duplicates=False))
        )
        monitor.observe(0, seq=0, latency_ns=1, now_ns=1)
        monitor.observe(0, seq=0, latency_ns=2, now_ns=2)
        verdict = monitor.report({0: 1}).verdicts[0]
        assert verdict.failures == ("duplicate",)

    def test_deadline_misses_counted(self):
        flow = _flow(0, deadline_ns=100)
        monitor = _monitor(SloPolicy(), flows=[flow])
        monitor.observe(0, seq=0, latency_ns=150, now_ns=150)
        verdict = monitor.report({0: 1}).verdicts[0]
        assert verdict.deadline_misses == 1
        assert verdict.failures == ("deadline",)

    def test_unknown_flow_ignored(self):
        monitor = _monitor(SloPolicy(default=SloSpec(latency_ns=1)))
        monitor.observe(999, seq=0, latency_ns=100, now_ns=100)
        assert 999 not in monitor.report({}).verdicts

    def test_violations_mirror_into_registry(self):
        registry = MetricsRegistry()
        monitor = _monitor(
            SloPolicy(default=SloSpec(latency_ns=10)), metrics=registry
        )
        monitor.observe(0, seq=0, latency_ns=100, now_ns=100)
        counter = registry.counter("slo_violations_total")
        assert counter.value(flow=0, kind="latency") == 1

    def test_report_shape_round_trips_to_json(self):
        monitor = _monitor(SloPolicy(default=SloSpec(latency_ns=10)))
        monitor.observe(0, seq=0, latency_ns=100, now_ns=100)
        report = monitor.report({0: 1})
        data = report.as_dict()
        assert data["passed"] is False
        assert data["failed_flows"] == [0]
        assert data["flows"]["0"]["failures"] == ["latency"]

    def test_empty_policy_unmonitored_flow_passes(self):
        monitor = _monitor(SloPolicy())
        monitor.observe(0, seq=0, latency_ns=10**9, now_ns=10**9)
        report = monitor.report({0: 1})
        assert report.passed
        assert report.monitored == 0
