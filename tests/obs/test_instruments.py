"""Dataplane instrumentation: bound series and end-to-end metric flow."""

import json

import pytest

from repro.core.presets import customized_config
from repro.core.units import ms
from repro.network.testbed import Testbed
from repro.network.topology import ring_topology
from repro.obs.chrome_trace import chrome_trace_events
from repro.obs.instruments import SwitchInstruments
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import WallClockProfiler
from repro.sim.trace import Tracer

SLOT = 62_500


class TestSwitchInstruments:
    def test_frame_lifecycle_counters(self):
        registry = MetricsRegistry()
        instruments = SwitchInstruments(registry, "sw0")
        instruments.on_received()
        instruments.on_received()
        instruments.on_forwarded()
        frames = registry.counter("frames_total")
        assert frames.value(switch="sw0", event="received") == 2
        assert frames.value(switch="sw0", event="forwarded") == 1

    def test_meter_decisions(self):
        registry = MetricsRegistry()
        instruments = SwitchInstruments(registry, "sw0")
        instruments.on_meter(True)
        instruments.on_meter(False)
        instruments.on_meter(False)
        meter = registry.counter("meter_decisions_total")
        assert meter.value(switch="sw0", decision="conform") == 1
        assert meter.value(switch="sw0", decision="violate") == 2

    def test_switches_share_metric_names_but_not_series(self):
        registry = MetricsRegistry()
        SwitchInstruments(registry, "sw0").on_received()
        SwitchInstruments(registry, "sw1").on_received()
        frames = registry.counter("frames_total")
        assert frames.value(switch="sw0", event="received") == 1
        assert frames.value(switch="sw1", event="received") == 1

    def test_port_instruments_track_depth_and_residence(self):
        registry = MetricsRegistry()
        port = SwitchInstruments(registry, "sw0").for_port(0, range(8))
        port.on_enqueue(7, occupancy=1)
        port.on_enqueue(7, occupancy=2)
        port.on_dequeue(7, occupancy=1, residence_ns=5_000)
        depth = registry.gauge("queue_depth")
        assert depth.value(switch="sw0", port=0, queue=7) == 1
        assert depth.high_water(switch="sw0", port=0, queue=7) == 2
        residence = registry.histogram("queue_residence_ns")
        series = residence.labels(switch="sw0", port=0, queue=7)
        assert series.count == 1 and series.sum == 5_000

    def test_port_buffer_and_drops(self):
        registry = MetricsRegistry()
        port = SwitchInstruments(registry, "sw0").for_port(2, range(8))
        port.on_buffer(40)
        port.on_buffer(10)
        port.on_drop("tail")
        port.on_gate_flip("out")
        assert registry.gauge("buffer_in_use").high_water(
            switch="sw0", port=2) == 40
        assert registry.counter("drops_total").value(
            switch="sw0", reason="tail") == 1
        assert registry.counter("gate_flips_total").value(
            switch="sw0", port=2, direction="out") == 1

    def test_for_port_accepts_generator(self):
        registry = MetricsRegistry()
        port = SwitchInstruments(registry, "sw0").for_port(
            0, (q for q in range(8))
        )
        port.on_enqueue(7, occupancy=1)
        port.on_dequeue(7, occupancy=0, residence_ns=100)
        series = registry.histogram("queue_residence_ns").labels(
            switch="sw0", port=0, queue=7
        )
        assert series.count == 1


@pytest.fixture(scope="module")
def observed_run():
    """One instrumented ring scenario shared by the end-to-end assertions."""
    from repro.traffic.iec60802 import production_cell_flows

    topo = ring_topology(switch_count=3, talkers=["talker0"])
    flows = production_cell_flows(["talker0"], "listener", flow_count=32)
    registry = MetricsRegistry()
    tracer = Tracer(enabled={"gate", "queue", "tx", "drop"})
    profiler = WallClockProfiler()
    testbed = Testbed(
        topo, customized_config(topo.max_enabled_ports), flows,
        slot_ns=SLOT, tracer=tracer, metrics=registry, profiler=profiler,
    )
    result = testbed.run(duration_ns=ms(30))
    return registry, tracer, profiler, result


class TestEndToEnd:
    def test_frames_flow_through_counters(self, observed_run):
        registry, _, _, result = observed_run
        frames = registry.counter("frames_total")
        received = sum(
            s.value for key, s in frames.series()
            if ("event", "received") in key
        )
        transmitted = sum(
            s.value for key, s in frames.series()
            if ("event", "transmitted") in key
        )
        assert received > 0
        assert transmitted > 0
        # Metrics agree with the legacy per-switch counters.
        assert received == sum(
            c["received"] for c in result.counters().values()
        )

    def test_queue_depth_high_water_positive(self, observed_run):
        registry, _, _, _ = observed_run
        assert registry.gauge("queue_depth").max_high_water() > 0

    def test_residence_histogram_collected(self, observed_run):
        registry, _, _, _ = observed_run
        residence = registry.histogram("queue_residence_ns")
        total = sum(series.count for _, series in residence.series())
        assert total > 0

    def test_gate_flips_counted(self, observed_run):
        registry, _, _, _ = observed_run
        assert registry.counter("gate_flips_total").total() > 0

    def test_nominal_run_has_no_drops(self, observed_run):
        registry, _, _, _ = observed_run
        assert registry.counter("drops_total").total() == 0

    def test_sim_stats_populated(self, observed_run):
        _, _, _, result = observed_run
        stats = result.sim_stats
        assert stats["fired"] > 0
        assert stats["scheduled"] >= stats["fired"]
        assert stats["calendar_high_water"] > 0

    def test_profiler_saw_the_run(self, observed_run):
        _, _, profiler, _ = observed_run
        assert profiler.total_ns > 0
        assert profiler.report()

    def test_trace_exports_as_chrome_events(self, observed_run):
        _, tracer, _, result = observed_run
        events = chrome_trace_events(tracer.records,
                                     end_ns=result.duration_ns)
        assert any(e["ph"] == "X" for e in events)
        for event in events:
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in event

    def test_snapshot_is_json_serializable(self, observed_run):
        registry, _, _, _ = observed_run
        json.loads(registry.to_json())

    def test_unobserved_run_records_nothing(self):
        from repro.traffic.iec60802 import production_cell_flows

        topo = ring_topology(switch_count=3, talkers=["talker0"])
        flows = production_cell_flows(["talker0"], "listener", flow_count=8)
        testbed = Testbed(
            topo, customized_config(topo.max_enabled_ports), flows,
            slot_ns=SLOT,
        )
        result = testbed.run(duration_ns=ms(10))
        assert result.metrics is None
        assert result.tracer.records == []
