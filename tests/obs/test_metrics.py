"""Metric instruments: counters, gauges, histograms, registry."""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)


class TestLogBuckets:
    def test_powers_of_two(self):
        assert log_buckets(64, 1024) == (64, 128, 256, 512, 1024)

    def test_covers_hi_inclusive(self):
        bounds = log_buckets(1, 100, factor=10.0)
        assert bounds[-1] >= 100

    def test_default_latency_buckets_span_six_decades(self):
        assert DEFAULT_LATENCY_BUCKETS_NS[0] == 64
        assert DEFAULT_LATENCY_BUCKETS_NS[-1] == 2**30

    def test_rejects_bad_ranges(self):
        with pytest.raises(ConfigurationError):
            log_buckets(0, 10)
        with pytest.raises(ConfigurationError):
            log_buckets(10, 5)
        with pytest.raises(ConfigurationError):
            log_buckets(1, 10, factor=1.0)


class TestCounter:
    def test_series_are_per_label_set(self):
        counter = Counter("frames_total")
        counter.inc(switch="sw0")
        counter.inc(3, switch="sw1")
        assert counter.value(switch="sw0") == 1
        assert counter.value(switch="sw1") == 3
        assert counter.total() == 4

    def test_labels_returns_same_series(self):
        counter = Counter("c")
        assert counter.labels(a=1) is counter.labels(a=1)

    def test_label_order_is_canonical(self):
        counter = Counter("c")
        counter.labels(a=1, b=2).inc()
        assert counter.value(b=2, a=1) == 1

    def test_monotonic(self):
        counter = Counter("c")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_unseen_labels_read_zero(self):
        assert Counter("c").value(switch="nope") == 0


class TestGauge:
    def test_high_water_tracks_max_seen(self):
        gauge = Gauge("queue_depth")
        series = gauge.labels(queue=7)
        series.set(3)
        series.set(9)
        series.set(1)
        assert gauge.value(queue=7) == 1
        assert gauge.high_water(queue=7) == 9

    def test_inc_raises_high_water_dec_does_not(self):
        gauge = Gauge("g")
        series = gauge.labels()
        series.inc(5)
        series.dec(4)
        assert series.value == 1
        assert series.high_water == 5
        series.inc()  # back to 2: below the old high-water
        assert series.high_water == 5

    def test_max_high_water_across_series(self):
        gauge = Gauge("g")
        gauge.set(2, port=0)
        gauge.set(7, port=1)
        gauge.set(1, port=1)
        assert gauge.max_high_water() == 7

    def test_dec_below_zero_is_not_clamped(self):
        """Gauges track signed values: dec past zero must go negative
        (an imbalance a clamp would silently hide)."""
        gauge = Gauge("g")
        series = gauge.labels()
        series.dec(3)
        assert series.value == -3
        series.dec()
        assert series.value == -4
        assert gauge.value() == -4

    def test_dec_never_moves_high_water(self):
        gauge = Gauge("g")
        series = gauge.labels()
        series.set(6)
        series.dec(10)   # value -4
        assert series.value == -4
        assert series.high_water == 6
        series.dec(100)  # far below zero: high-water still untouched
        assert series.high_water == 6

    def test_high_water_of_never_set_series_is_zero(self):
        gauge = Gauge("g")
        series = gauge.labels()
        series.dec(5)
        assert series.high_water == 0
        assert gauge.max_high_water() == 0

    def test_labelless_high_water_in_prometheus_exposition(self):
        from repro.obs.timeseries import prometheus_exposition

        registry = MetricsRegistry()
        gauge = registry.gauge("pool_in_use")
        series = gauge.labels()
        series.set(9)
        series.dec(7)
        text = prometheus_exposition(registry)
        assert "# TYPE pool_in_use gauge" in text
        assert "\npool_in_use 2" in text
        # The high-water companion series must appear for label-less
        # gauges too, with its own TYPE header.
        assert "# TYPE pool_in_use_high_water gauge" in text
        assert "\npool_in_use_high_water 9" in text


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        histogram = Histogram("h", buckets=(10, 100, 1000))
        series = histogram.labels()
        series.observe(5)      # <= 10
        series.observe(10)     # boundary: still the first bucket
        series.observe(11)     # <= 100
        series.observe(5000)   # overflow
        snapshot = histogram.snapshot()["series"][0]
        by_bound = {b["le"]: b["count"] for b in snapshot["buckets"]}
        assert by_bound == {10: 2, 100: 1, 1000: 0, "inf": 1}
        assert snapshot["count"] == 4
        assert snapshot["min"] == 5
        assert snapshot["max"] == 5000

    def test_mean_and_sum(self):
        histogram = Histogram("h", buckets=(100,))
        series = histogram.labels()
        for value in (10, 20, 30):
            series.observe(value)
        assert series.sum == 60
        assert series.mean == pytest.approx(20.0)

    def test_quantile_is_bucketed_estimate(self):
        histogram = Histogram("h", buckets=(10, 100, 1000))
        series = histogram.labels()
        for _ in range(99):
            series.observe(5)
        series.observe(500)
        assert series.quantile(0.5) == 10
        assert series.quantile(0.99) == 10
        assert series.quantile(1.0) == 1000

    def test_quantile_overflow_reports_max(self):
        histogram = Histogram("h", buckets=(10,))
        series = histogram.labels()
        series.observe(99)
        assert series.quantile(0.5) == 99

    def test_quantile_empty_is_none(self):
        series = Histogram("h", buckets=(10,)).labels()
        assert series.quantile(0.5) is None

    def test_empty_snapshot_percentiles_all_none(self):
        """A registered-but-never-observed histogram must snapshot with
        every percentile (and min/max) as None, not zero."""
        histogram = Histogram("h", buckets=(10, 100))
        histogram.labels()
        snapshot = histogram.snapshot()["series"][0]
        assert snapshot["count"] == 0
        for key in ("p50", "p95", "p99", "min", "max"):
            assert snapshot[key] is None, key
        assert snapshot["mean"] == 0.0

    def test_snapshot_carries_percentiles(self):
        histogram = Histogram("h", buckets=(10, 100, 1000))
        series = histogram.labels()
        for _ in range(99):
            series.observe(5)
        series.observe(500)
        snapshot = histogram.snapshot()["series"][0]
        assert snapshot["p50"] == 10
        assert snapshot["p95"] == 10
        assert snapshot["p99"] == 10

    def test_empty_snapshot_percentiles_are_none(self):
        histogram = Histogram("h", buckets=(10,))
        histogram.labels()
        snapshot = histogram.snapshot()["series"][0]
        assert snapshot["p50"] is None
        assert snapshot["p99"] is None

    def test_default_buckets_are_log_ns(self):
        histogram = Histogram("h")
        assert histogram.bounds == DEFAULT_LATENCY_BUCKETS_NS

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(10, 5))
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())


class TestMetricsRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_contains_get_iter(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        assert "a" in registry and "c" not in registry
        assert registry.get("b").kind == "gauge"
        assert [i.name for i in registry] == ["a", "b"]

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("frames").inc(2, switch="sw0")
        registry.gauge("depth").set(4, queue=1)
        registry.histogram("lat", buckets=(100,)).observe(50, flow=3)
        snapshot = json.loads(registry.to_json())
        assert snapshot["frames"]["kind"] == "counter"
        assert snapshot["frames"]["series"][0] == {
            "labels": {"switch": "sw0"}, "value": 2,
        }
        assert snapshot["depth"]["series"][0]["high_water"] == 4
        assert snapshot["lat"]["series"][0]["labels"] == {"flow": "3"}
