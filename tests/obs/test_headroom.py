"""Resource-headroom observability: probes, recorder, report, exports."""

import json

import pytest

from repro.core.presets import table1_case2
from repro.core.sizing import ObservedDemand, sufficient_config
from repro.network.scenario import ScenarioSpec
from repro.obs.headroom import (
    BAND_LABELS,
    HeadroomRecorder,
    OccupancyProbe,
    build_headroom_report,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import prometheus_exposition

SCENARIO = {
    "name": "headroom-test",
    "topology": {"kind": "star", "talkers": ["talker0", "talker1"],
                 "listener": "listener"},
    "flows": {"ts_count": 8, "period_us": 10_000, "size_bytes": 64,
              "rc_mbps": 50, "be_mbps": 50},
    "config": "derive",
    "slot_us": 62.5,
    "duration_ms": 5,
    "seed": 0,
}


@pytest.fixture(scope="module")
def plain_result():
    return ScenarioSpec.from_dict(SCENARIO).run()


@pytest.fixture(scope="module")
def recorded():
    recorder = HeadroomRecorder()
    result = ScenarioSpec.from_dict(SCENARIO).run(headroom=recorder)
    return result, recorder


class TestOccupancyProbe:
    def test_time_weighted_mean_is_exact_integral(self):
        probe = OccupancyProbe(12)
        probe.update(0, 0)
        probe.update(100, 3)    # occupancy 0 held for [0, 100)
        probe.update(200, 7)    # occupancy 3 held for [100, 200)
        probe.finalize(400)     # occupancy 7 held for [200, 400)
        assert probe.observed_ns == 400
        assert probe.mean() == pytest.approx((0 * 100 + 3 * 100 + 7 * 200) / 400)
        assert probe.peak == 7

    def test_band_fractions(self):
        probe = OccupancyProbe(12)
        probe.update(0, 0)
        probe.update(100, 3)    # 3/12 -> le25
        probe.update(200, 7)    # 7/12 -> le75
        probe.finalize(400)
        assert probe.band_fractions() == pytest.approx(
            [0.25, 0.25, 0.0, 0.5, 0.0]
        )

    def test_band_boundaries(self):
        probe = OccupancyProbe(8)
        # occ=2 is exactly 25% -> le25 band; occ=3 crosses into le50.
        bands = probe._band_of
        assert bands[0] == 0
        assert bands[1] == 1
        assert bands[2] == 1
        assert bands[3] == 2
        assert bands[8] == 4

    def test_untouched_probe_reads_zero(self):
        probe = OccupancyProbe(4)
        assert probe.mean() == 0.0
        assert probe.band_fractions() == [0.0] * len(BAND_LABELS)
        assert probe.observed_ns == 0

    def test_finalize_is_idempotent(self):
        probe = OccupancyProbe(4)
        probe.update(0, 2)
        probe.finalize(100)
        probe.finalize(100)
        assert probe.observed_ns == 100
        assert probe.mean() == pytest.approx(2.0)


class TestHeadroomRecorder:
    def test_shared_pool_gets_one_probe(self):
        from repro.switch.queueing import BufferPool

        recorder = HeadroomRecorder()
        pool = BufferPool(16)
        first = recorder.for_port("sw0", 0, 2, 4, pool)
        second = recorder.for_port("sw0", 1, 2, 4, pool)
        assert first.pool is second.pool
        other = recorder.for_port("sw0", 2, 2, 4, BufferPool(16))
        assert other.pool is not first.pool

    def test_finalize_flushes_tails(self):
        from repro.switch.queueing import BufferPool

        recorder = HeadroomRecorder()
        probes = recorder.for_port("sw0", 0, 1, 4, BufferPool(8))
        probes.on_queue(0, 2, 100)
        recorder.finalize(300)
        assert recorder.end_ns == 300
        assert probes.queues[0].observed_ns == 300
        # occupancy 0 in [0,100), then 2 in [100,300)
        assert probes.queues[0].mean() == pytest.approx(400 / 300)


class TestReportWithoutRecorder:
    def test_structures_cover_every_switch(self, plain_result):
        report = plain_result.headroom_report()
        assert not report.timeweighted
        switches = {s.switch for s in report.structures}
        assert switches == set(plain_result.switches)
        for name in switches:
            rows = {s.structure for s in report.switch_structures(name)}
            assert {"Switch Tbl", "Class. Tbl", "Meter Tbl", "Gate Tbl",
                    "CBS Tbl", "Queues", "Buffers"} <= rows

    def test_totals_are_row_sums(self, plain_result):
        report = plain_result.headroom_report()
        assert report.provisioned_kb == pytest.approx(
            sum(s.provisioned_kb for s in report.structures)
        )
        assert report.sufficient_kb == pytest.approx(
            sum(s.sufficient_kb for s in report.structures)
        )
        assert report.wasted_kb == pytest.approx(
            report.provisioned_kb - report.sufficient_kb
        )

    def test_cheapest_config_costed_through_bram(self, plain_result):
        report = plain_result.headroom_report()
        cheapest = report.cheapest_config
        cheapest.validate()
        # The Kb figure must be the BRAM allocator's own answer for that
        # config, not an independent estimate.
        assert report.cheapest_kb == pytest.approx(
            cheapest.resource_report().total_kb
        )

    def test_observed_demand_matches_high_waters(self, plain_result):
        report = plain_result.headroom_report()
        assert report.observed.queue_depth == \
            plain_result.max_queue_high_water()
        queues = [s for s in report.structures if s.structure == "Queues"]
        assert max(q.peak for q in queues) == \
            plain_result.max_queue_high_water()

    def test_sufficient_configs_validate(self, plain_result):
        report = plain_result.headroom_report()
        assert set(report.sufficient) == set(plain_result.switches)
        for config in report.sufficient.values():
            config.validate()

    def test_report_is_deterministic(self, plain_result):
        again = ScenarioSpec.from_dict(SCENARIO).run()
        first = json.dumps(plain_result.headroom_report().as_dict(),
                           sort_keys=True)
        second = json.dumps(again.headroom_report().as_dict(),
                            sort_keys=True)
        assert first == second

    def test_utilization_digest_is_slugged_and_bounded(self, plain_result):
        digest = plain_result.headroom_report().utilization_digest()
        assert "queues" in digest and "buffers" in digest
        for value in digest.values():
            assert 0.0 <= value


class TestReportWithRecorder:
    def test_timeweighted_rows_carry_means_and_bands(self, recorded):
        result, recorder = recorded
        report = build_headroom_report(result, recorder)
        assert report.timeweighted
        assert report.duration_ns == recorder.end_ns
        queues = [s for s in report.structures if s.structure == "Queues"]
        busy = [s for s in queues if s.peak > 0]
        assert busy, "scenario must exercise at least one queue"
        for row in busy:
            assert row.mean is not None and row.mean > 0.0
            assert row.bands is not None
            assert sum(row.bands) == pytest.approx(1.0)

    def test_probe_peak_agrees_with_stats_high_water(self, recorded):
        result, recorder = recorded
        for (switch, port_id), probes in recorder.ports.items():
            port = next(
                p for p in result.switches[switch].ports
                if p.port_id == port_id
            )
            for queue, probe in zip(port.queues, probes.queues):
                assert probe.peak == queue.stats.high_water

    def test_ports_carry_timeweighted_means(self, recorded):
        result, recorder = recorded
        report = build_headroom_report(result, recorder)
        active = [p for p in report.ports if p.queue_peak > 0]
        assert active
        for port in active:
            assert port.queue_mean is not None
            assert port.buffer_mean is not None

    def test_peaks_identical_with_and_without_recorder(
        self, plain_result, recorded
    ):
        result, recorder = recorded
        with_rec = build_headroom_report(result, recorder)
        without = plain_result.headroom_report()
        peaks = lambda rep: sorted(  # noqa: E731
            (s.switch, s.structure, s.peak, s.provisioned)
            for s in rep.structures
        )
        assert peaks(with_rec) == peaks(without)


class TestExports:
    def test_as_dict_schema(self, recorded):
        result, recorder = recorded
        data = build_headroom_report(result, recorder).as_dict()
        for key in ("provisioned_bram_kb", "sufficient_bram_kb",
                    "wasted_bram_kb", "utilization", "observed",
                    "cheapest_config", "cheapest_bram_kb", "structures",
                    "ports", "timeweighted", "duration_ns"):
            assert key in data, key
        json.dumps(data)  # JSON-compatible
        assert data["timeweighted"] is True
        assert data["structures"], "no structure rows"
        row = data["structures"][0]
        assert {"switch", "structure", "provisioned", "peak", "utilization",
                "provisioned_kb", "sufficient_kb", "wasted_kb"} <= set(row)

    def test_csv_header_and_rows(self, plain_result):
        report = plain_result.headroom_report()
        lines = report.to_csv().splitlines()
        assert lines[0] == ("switch,structure,provisioned,peak,utilization,"
                            "mean,provisioned_kb,sufficient_kb,wasted_kb")
        assert len(lines) == len(report.structures) + 1

    def test_publish_feeds_prometheus(self, recorded):
        result, recorder = recorded
        report = build_headroom_report(result, recorder)
        registry = MetricsRegistry()
        report.publish(registry)
        text = prometheus_exposition(registry)
        assert "# TYPE headroom_utilization gauge" in text
        assert 'headroom_utilization{' in text
        assert "headroom_provisioned_bram_kb" in text
        assert "headroom_queue_occupancy_mean" in text

    def test_renderers(self, recorded):
        from repro.analysis.report import (
            render_headroom,
            render_port_occupancy,
        )

        result, recorder = recorded
        report = build_headroom_report(result, recorder)
        headroom_text = render_headroom(report)
        assert "Resource headroom" in headroom_text
        assert "Queues" in headroom_text
        port_text = render_port_occupancy(report)
        assert "Per-port occupancy and drops" in port_text
        assert "queue twa" in port_text
        # Without a recorder the historical column set is preserved.
        bare = render_port_occupancy(plain := result.headroom_report())
        assert plain.timeweighted  # result retains its recorder
        assert "queue hw" in bare


class TestSufficientConfig:
    def test_table1_case2_from_observed_demand(self):
        """The paper's Case 2: 7 frames/slot observed, 1.5x margin rounded
        up to a multiple of 4 -> depth 12, buffers 96 (12 x 8 queues)."""
        base = table1_case2()
        observed = ObservedDemand(
            queue_depth=7, buffer_slots=56, unicast=1024,
            classification=1024, meters=1024, gate_entries=2,
            cbs_map=3, cbs=3,
        )
        config = sufficient_config(base, observed)
        assert config.queue_depth == 12
        assert config.buffer_num == 96
        assert config.total_bram_kb == base.total_bram_kb

    def test_multicast_stays_absent(self):
        base = table1_case2()  # multicast_size == 0
        config = sufficient_config(base, ObservedDemand(queue_depth=1))
        assert config.multicast_size == 0

    def test_under_provisioned_costs_more(self):
        base = table1_case2().with_updates(queue_depth=8, buffer_num=64)
        config = sufficient_config(base, ObservedDemand(queue_depth=7))
        # Observed 7 with 1.5x margin needs depth 12 > provisioned 8.
        assert config.queue_depth == 12
        assert config.total_bram_kb > base.total_bram_kb
