"""Wall-clock profiler, action categorization, zero-overhead default."""

import time

import pytest

from repro.obs.profiler import (
    NULL_PROFILER,
    NullProfiler,
    WallClockProfiler,
    categorize,
)
from repro.sim.kernel import Simulator


def ticking_clock(step=100):
    state = {"now": 0}

    def clock():
        state["now"] += step
        return state["now"]

    return clock


class TestCategorize:
    def test_nested_function_attributed_to_enclosing(self):
        def helper():
            pass

        # helper's qualname contains ".<locals>."; attribution stops there.
        assert categorize(helper) == (
            "TestCategorize.test_nested_function_attributed_to_enclosing"
        )

    def test_bound_method(self):
        sim = Simulator()
        assert categorize(sim.step) == "Simulator.step"

    def test_lambda_attributed_to_enclosing_function(self):
        action = lambda: None  # noqa: E731
        category = categorize(action)
        assert "<lambda>" not in category
        assert "<locals>" not in category

    def test_callable_object_uses_type_name(self):
        class Kick:
            def __call__(self):
                pass

        # No __qualname__ on the instance itself -> __call__'s is used via
        # the instance attribute lookup failing, falling back to type name
        # or the call's qualname; either way it is stable and non-empty.
        assert categorize(Kick()) != ""


class TestWallClockProfiler:
    def test_record_action_accumulates_by_category(self):
        profiler = WallClockProfiler(clock=ticking_clock())
        sim = Simulator()
        profiler.record_action(sim.step, 250)
        profiler.record_action(sim.step, 750)
        report = profiler.report()
        assert report["Simulator.step"] == {
            "total_ns": 1000, "calls": 2, "max_ns": 750, "mean_ns": 500,
        }

    def test_span_times_with_injected_clock(self):
        profiler = WallClockProfiler(clock=ticking_clock(step=100))
        with profiler.span("work"):
            pass
        entry = profiler.report()["work"]
        assert entry["calls"] == 1
        assert entry["total_ns"] == 100

    def test_report_sorted_hottest_first(self):
        profiler = WallClockProfiler(clock=ticking_clock())
        profiler.record("cold", 10)
        profiler.record("hot", 1000)
        assert list(profiler.report()) == ["hot", "cold"]

    def test_total_ns(self):
        profiler = WallClockProfiler(clock=ticking_clock())
        profiler.record("a", 40)
        profiler.record("b", 60)
        assert profiler.total_ns == 100

    def test_render_mentions_categories(self):
        profiler = WallClockProfiler(clock=ticking_clock())
        profiler.record("GateEngine._flip", 500)
        text = profiler.render()
        assert "Wall-clock profile" in text
        assert "GateEngine._flip" in text


class TestKernelIntegration:
    def test_profiled_run_attributes_actions(self):
        profiler = WallClockProfiler(clock=ticking_clock())
        sim = Simulator(profiler=profiler)
        fired = []
        sim.schedule(10, lambda: fired.append(sim.now))
        sim.schedule(20, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [10, 20]
        assert sum(e["calls"] for e in profiler.report().values()) == 2

    def test_default_path_makes_zero_clock_reads(self, monkeypatch):
        """Acceptance: profiling off => no perf_counter calls at all."""
        def poisoned(*args, **kwargs):
            raise AssertionError("clock read on the unprofiled path")

        monkeypatch.setattr(time, "perf_counter_ns", poisoned)
        monkeypatch.setattr(time, "perf_counter", poisoned)
        sim = Simulator()  # default: profiler=None
        fired = []
        for delay in (5, 10, 15):
            sim.schedule(delay, lambda: fired.append(sim.now))
        handle = sim.schedule(20, lambda: fired.append(sim.now))
        handle.cancel()
        sim.run()
        assert fired == [5, 10, 15]

    def test_null_profiler_is_inert(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.span("anything"):
            pass
        NULL_PROFILER.record("x", 100)
        NULL_PROFILER.record_action(lambda: None, 100)
        assert NULL_PROFILER.report() == {}
        assert isinstance(NULL_PROFILER, NullProfiler)

    def test_profiler_survives_raising_action(self):
        profiler = WallClockProfiler(clock=ticking_clock())
        sim = Simulator(profiler=profiler)

        def boom():
            raise RuntimeError("kaboom")

        sim.schedule(1, boom)
        with pytest.raises(RuntimeError):
            sim.run()
        assert sum(e["calls"] for e in profiler.report().values()) == 1


class TestNestedSections:
    def test_nested_spans_record_both_categories(self):
        profiler = WallClockProfiler(clock=ticking_clock())
        with profiler.span("outer"):
            with profiler.span("inner"):
                pass
        report = profiler.report()
        assert report["inner"]["calls"] == 1
        assert report["outer"]["calls"] == 1
        # The outer section's wall time contains the inner section's:
        # sections overlap, they are not exclusive buckets.
        assert report["outer"]["total_ns"] > report["inner"]["total_ns"]

    def test_nested_same_category_accumulates_calls(self):
        profiler = WallClockProfiler(clock=ticking_clock())
        with profiler.span("work"):
            with profiler.span("work"):
                pass
        entry = profiler.report()["work"]
        assert entry["calls"] == 2
        assert entry["max_ns"] > 0

    def test_triple_nesting_totals_are_monotonic(self):
        profiler = WallClockProfiler(clock=ticking_clock())
        with profiler.span("a"):
            with profiler.span("b"):
                with profiler.span("c"):
                    pass
        report = profiler.report()
        assert (report["a"]["total_ns"] > report["b"]["total_ns"]
                > report["c"]["total_ns"])

    def test_nested_span_survives_inner_exception(self):
        profiler = WallClockProfiler(clock=ticking_clock())
        with pytest.raises(RuntimeError):
            with profiler.span("outer"):
                with profiler.span("inner"):
                    raise RuntimeError("kaboom")
        report = profiler.report()
        assert report["outer"]["calls"] == 1
        assert report["inner"]["calls"] == 1
