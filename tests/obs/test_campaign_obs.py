"""Campaign observability primitives: ledger, heartbeats, stragglers."""

import json

from repro.obs.campaign import (
    HeartbeatWriter,
    LedgerWriter,
    WorkerTelemetry,
    flag_stragglers,
    flight_dump_name,
    ledger_run_records,
    read_ledger,
    read_status,
    render_status,
    robust_z_scores,
    sweep_spec_hash,
    telemetry_summary,
)
from repro.sim.kernel import Simulator


class TestSpecHash:
    def test_stable_across_key_order(self):
        a = sweep_spec_hash({"name": "s", "base": {"x": 1, "y": 2}})
        b = sweep_spec_hash({"base": {"y": 2, "x": 1}, "name": "s"})
        assert a == b
        assert len(a) == 16

    def test_different_documents_differ(self):
        assert sweep_spec_hash({"name": "a"}) != sweep_spec_hash({"name": "b"})

    def test_sweep_spec_method_matches(self):
        from repro.campaign import SweepSpec

        spec = SweepSpec(name="s", base={"x": 1})
        assert spec.spec_hash() == sweep_spec_hash(spec.to_dict())


def _row(run_id="s:0000", index=0, status="ok", **extra):
    row = {
        "run_id": run_id,
        "index": index,
        "replicate": 0,
        "seed": 42,
        "params": {"flows.ts_count": 4},
        "status": status,
        "attempts": 1,
    }
    row.update(extra)
    return row


class TestLedger:
    def test_head_run_end_lifecycle(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = LedgerWriter(path, sweep="s", spec_hash="abc", runs=2)
        ledger.record_run(_row("s:0000", 0))
        ledger.record_run(_row("s:0001", 1, status="timeout",
                               error="budget", attempts=2))
        ledger.close({"ok": 1, "timeout": 1})
        records = read_ledger(path)
        assert [r["record"] for r in records] == ["sweep", "run", "run",
                                                  "sweep_end"]
        head, end = records[0], records[-1]
        assert head["runs"] == 2 and head["spec_hash"] == "abc"
        assert end["runs_recorded"] == 2
        assert end["status"] == {"ok": 1, "timeout": 1}

    def test_run_records_capture_lineage(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = LedgerWriter(path, sweep="s", spec_hash="abc", runs=1)
        ledger.record_run(_row(
            status="timeout", attempts=2, error="budget",
            attempt_history=[{"attempt": 1, "status": "timeout",
                              "error": "budget"}],
            flight_dump="s_0000.attempt2.json",
        ))
        ledger.close()
        run = ledger_run_records(read_ledger(path))[0]
        assert run["attempts"] == 2
        assert run["attempt_history"][0]["attempt"] == 1
        assert run["flight_dump"] == "s_0000.attempt2.json"
        assert run["seed"] == 42 and run["params"] == {"flows.ts_count": 4}

    def test_records_contain_no_wall_clock(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = LedgerWriter(path, sweep="s", spec_hash="abc", runs=1)
        ledger.record_run(_row())
        ledger.close({"ok": 1})
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert "t" not in record and "wall_s" not in record

    def test_read_tolerates_torn_last_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = LedgerWriter(path, sweep="s", spec_hash="abc", runs=1)
        ledger.record_run(_row())
        ledger.close()
        with path.open("a") as fh:
            fh.write('{"record": "run", "trunc')
        records = read_ledger(path)
        assert [r["record"] for r in records] == ["sweep", "run", "sweep_end"]

    def test_run_records_sorted_by_index(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = LedgerWriter(path, sweep="s", spec_hash="abc", runs=2)
        ledger.record_run(_row("s:0001", 1))
        ledger.record_run(_row("s:0000", 0))
        ledger.close()
        runs = ledger_run_records(read_ledger(path))
        assert [r["index"] for r in runs] == [0, 1]


class TestFlightDumpName:
    def test_sanitizes_run_id(self):
        assert flight_dump_name("sweep:0003", 2) == "sweep_0003.attempt2.json"


class TestRobustZ:
    def test_outlier_scores_high(self):
        values = [1.0, 1.1, 0.9, 1.0, 1.05, 10.0]
        scores = robust_z_scores(values)
        assert scores[-1] > 3.5
        assert all(abs(z) < 3.5 for z in scores[:-1])

    def test_degenerate_spread_scores_zero(self):
        assert robust_z_scores([2.0, 2.0, 2.0]) == [0.0, 0.0, 0.0]

    def test_empty(self):
        assert robust_z_scores([]) == []


class TestStragglers:
    def test_timeout_always_flagged(self):
        telemetry = [
            {"run_id": "s:0000", "attempt": 1, "status": "ok", "wall_s": 1.0},
            {"run_id": "s:0001", "attempt": 1, "status": "timeout",
             "wall_s": 1.0},
        ]
        flags = flag_stragglers(telemetry)
        assert len(flags) == 1
        assert flags[0]["run_id"] == "s:0001"
        assert flags[0]["reasons"] == ["timeout"]

    def test_slow_run_flagged_by_robust_z(self):
        telemetry = [
            {"run_id": f"s:{i:04d}", "status": "ok", "wall_s": w}
            for i, w in enumerate([1.0, 1.1, 0.9, 1.0, 1.05, 25.0])
        ]
        flags = flag_stragglers(telemetry)
        assert [f["run_id"] for f in flags] == ["s:0005"]
        assert "slow" in flags[0]["reasons"][0]

    def test_uniform_walls_produce_no_flags(self):
        telemetry = [
            {"run_id": f"s:{i:04d}", "status": "ok", "wall_s": 1.0}
            for i in range(4)
        ]
        assert flag_stragglers(telemetry) == []

    def test_summary_document(self):
        telemetry = [
            {"run_id": "s:0001", "index": 1, "attempt": 1, "status": "ok",
             "wall_s": 2.0, "events": 10, "max_rss_kb": 100},
            {"run_id": "s:0000", "index": 0, "attempt": 1, "status": "ok",
             "wall_s": 1.0, "events": 20, "max_rss_kb": 200},
        ]
        doc = telemetry_summary("sweep", telemetry)
        assert doc["campaign"] == "sweep"
        assert doc["runs"] == 2
        assert doc["wall_s"]["total"] == 3.0
        assert doc["events"] == 30
        assert doc["max_rss_kb"] == 200
        assert [t["index"] for t in doc["per_run"]] == [0, 1]


class TestWorkerTelemetry:
    def test_finish_digest_without_sim(self, tmp_path):
        telemetry = WorkerTelemetry("s:0000", attempt=1, index=0)
        digest = telemetry.finish("error", "boom")
        assert digest["run_id"] == "s:0000"
        assert digest["status"] == "error"
        assert digest["error"] == "boom"
        assert digest["events"] == 0
        assert digest["wall_s"] >= 0

    def test_sim_ticks_stream_heartbeats(self, tmp_path):
        status = tmp_path / "status.jsonl"
        sim = Simulator()
        telemetry = WorkerTelemetry("s:0000", attempt=1, index=0,
                                    status_path=status)
        telemetry.attach(sim, duration_ns=800)
        sim.post_at(1000, lambda: None)  # horizon for the tick chain
        sim.run(until=1000)
        digest = telemetry.finish("ok")
        records = read_status(status)
        kinds = [r["hb"] for r in records]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        ticks = [r for r in records if r["hb"] == "tick"]
        assert len(ticks) >= 2
        assert digest["heartbeats"] == len(ticks)
        assert ticks[0]["sim_ns"] == 100  # duration/8
        assert 0 <= ticks[0]["progress"] <= 1

    def test_no_status_file_means_no_ticks(self):
        sim = Simulator()
        telemetry = WorkerTelemetry("s:0000")
        telemetry.attach(sim, duration_ns=800)
        sim.run()
        digest = telemetry.finish("ok")
        assert digest["heartbeats"] == 0
        assert sim.stats.fired == 0


class TestStatusRendering:
    def _records(self):
        return [
            {"hb": "sweep", "sweep": "demo", "total": 4, "workers": 2,
             "t": 100.0},
            {"hb": "run_start", "run_id": "demo:0000", "attempt": 1,
             "index": 0, "pid": 11, "t": 100.1},
            {"hb": "run_start", "run_id": "demo:0001", "attempt": 1,
             "index": 1, "pid": 12, "t": 100.1},
            {"hb": "tick", "run_id": "demo:0001", "attempt": 1, "pid": 12,
             "t": 101.0, "sim_ns": 2_500_000, "progress": 0.5,
             "events": 1200, "rss_kb": 50_000, "cpu_s": 0.8},
            {"hb": "run_end", "run_id": "demo:0000", "attempt": 1,
             "index": 0, "pid": 11, "t": 102.0, "status": "ok",
             "wall_s": 1.9},
        ]

    def test_renders_progress_and_inflight(self):
        text = render_status(self._records(), now=103.0)
        assert "demo" in text
        assert "1/4 runs finished" in text
        assert "ok=1" in text
        assert "demo:0001" in text
        assert "50%" in text
        assert "ETA" in text

    def test_complete_sweep_marked(self):
        records = self._records() + [
            {"hb": "run_end", "run_id": "demo:0001", "attempt": 1,
             "index": 1, "pid": 12, "t": 104.0, "status": "ok",
             "wall_s": 3.9},
            {"hb": "sweep_end", "sweep": "demo", "t": 104.0,
             "status": {"ok": 2}},
        ]
        text = render_status(records, now=105.0)
        assert "[complete]" in text
        assert "2/4 runs finished" in text

    def test_no_sweep_record(self):
        assert "status file" in render_status([], now=1.0)

    def test_retried_run_counted_once(self):
        records = [
            {"hb": "sweep", "sweep": "demo", "total": 2, "workers": 1,
             "t": 100.0},
            {"hb": "run_start", "run_id": "demo:0000", "attempt": 1,
             "index": 0, "pid": 11, "t": 100.1},
            {"hb": "run_end", "run_id": "demo:0000", "attempt": 1,
             "index": 0, "pid": 11, "t": 101.0, "status": "timeout",
             "wall_s": 0.9},
            {"hb": "run_start", "run_id": "demo:0000", "attempt": 2,
             "index": 0, "pid": 11, "t": 101.1},
        ]
        # The retry supersedes attempt 1's run_end: back in flight.
        text = render_status(records, now=102.0)
        assert "0/2 runs finished" in text
        assert "demo:0000" in text  # shown in the in-flight table
        records.append(
            {"hb": "run_end", "run_id": "demo:0000", "attempt": 2,
             "index": 0, "pid": 11, "t": 102.0, "status": "ok",
             "wall_s": 0.9}
        )
        text = render_status(records, now=103.0)
        assert "1/2 runs finished" in text
        assert "ok=1" in text and "timeout" not in text

    def test_read_status_skips_torn_line(self, tmp_path):
        path = tmp_path / "status.jsonl"
        writer = HeartbeatWriter(path)
        writer.write({"hb": "sweep", "total": 1, "t": 1.0})
        writer.close()
        with path.open("a") as fh:
            fh.write('{"hb": "tick", "trunc')
        assert [r["hb"] for r in read_status(path)] == ["sweep"]


def _spam_heartbeats(args):
    """Child-process worker: append many oversized heartbeat lines."""
    path, ident, count = args
    writer = HeartbeatWriter(path)
    for i in range(count):
        # Far larger than any stdio buffer: a buffered write()+flush()
        # would issue several syscalls per line and could tear under
        # concurrency; a single os.write() on O_APPEND cannot.
        writer.write({"hb": "tick", "w": ident, "i": i, "pad": "x" * 9000})
    writer.close()
    return count


class TestAtomicAppends:
    """Ledger/heartbeat lines are single O_APPEND writes: never torn."""

    def test_ledger_tolerates_partial_final_line_without_newline(
        self, tmp_path
    ):
        # A writer killed mid-append leaves a final line with no trailing
        # newline; read_ledger must drop exactly that line.
        path = tmp_path / "ledger.jsonl"
        ledger = LedgerWriter(path, sweep="s", spec_hash="abc", runs=1)
        ledger.record_run(_row())
        ledger.close()
        with path.open("ab") as fh:
            fh.write(b'{"record": "run", "run_id": "s:9')
        records = read_ledger(path)
        assert [r["record"] for r in records] == ["sweep", "run", "sweep_end"]

    def test_concurrent_heartbeat_writers_never_interleave(self, tmp_path):
        import multiprocessing

        path = tmp_path / "status.jsonl"
        writers, per_writer = 4, 25
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(writers) as pool:
            pool.map(
                _spam_heartbeats,
                [(str(path), w, per_writer) for w in range(writers)],
            )
        lines = path.read_text().splitlines()
        assert len(lines) == writers * per_writer
        seen = set()
        for line in lines:
            record = json.loads(line)  # a torn line would fail to parse
            assert record["pad"] == "x" * 9000
            seen.add((record["w"], record["i"]))
        assert len(seen) == writers * per_writer

    def test_heartbeat_write_after_close_rejected(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "status.jsonl")
        writer.close()
        import pytest

        with pytest.raises(ValueError):
            writer.write({"hb": "tick"})
