"""Chrome trace-event export: schema, gate spans, instants, JSONL."""

import json

from repro.obs.chrome_trace import (
    chrome_trace_events,
    flow_span_events,
    gate_span_events,
    instant_events,
    trace_to_jsonl,
    write_chrome_trace,
)
from repro.obs.flowspans import FlowSpanRecorder
from repro.sim.trace import TraceRecord


class _Frame:
    def __init__(self, frame_id, flow_id=0, seq=0):
        self.frame_id = frame_id
        self.flow_id = flow_id
        self.seq = seq


def gate_record(time, engine, kind, mask):
    return TraceRecord(
        time, "gate", f"{engine} {kind}-gates", (("mask", mask),)
    )


class TestGateSpans:
    def test_open_close_becomes_one_span(self):
        records = [
            gate_record(1000, "sw0.p0", "out", "00000001"),  # q0 opens
            gate_record(3000, "sw0.p0", "out", "00000000"),  # q0 closes
        ]
        spans = gate_span_events(records)
        assert len(spans) == 1
        span = spans[0]
        assert span["ph"] == "X"
        assert span["ts"] == 1.0     # us
        assert span["dur"] == 2.0    # us
        assert span["args"] == {"queue": 0, "direction": "out"}

    def test_still_open_window_closed_at_horizon(self):
        records = [gate_record(1000, "sw0.p0", "out", "00000010")]
        spans = gate_span_events(records, end_ns=5000)
        assert len(spans) == 1
        assert spans[0]["ts"] == 1.0 and spans[0]["dur"] == 4.0
        assert spans[0]["args"]["queue"] == 1

    def test_mask_diffing_tracks_each_queue(self):
        records = [
            gate_record(0, "sw0.p0", "out", "00000011"),     # q0+q1 open
            gate_record(1000, "sw0.p0", "out", "00000010"),  # q0 closes
            gate_record(2000, "sw0.p0", "out", "00000000"),  # q1 closes
        ]
        spans = gate_span_events(records)
        by_queue = {s["args"]["queue"]: s for s in spans}
        assert by_queue[0]["dur"] == 1.0
        assert by_queue[1]["dur"] == 2.0

    def test_directions_and_engines_get_distinct_tracks(self):
        records = [
            gate_record(0, "sw0.p0", "in", "00000001"),
            gate_record(0, "sw0.p1", "out", "00000001"),
            gate_record(1000, "sw0.p0", "in", "00000000"),
            gate_record(1000, "sw0.p1", "out", "00000000"),
        ]
        spans = gate_span_events(records)
        assert len(spans) == 2
        assert len({(s["pid"], s["tid"]) for s in spans}) == 2


class TestInstants:
    def test_non_gate_records_become_instants(self):
        records = [
            TraceRecord(5000, "queue", "sw0.p0 enqueue", (("queue", 7),)),
            TraceRecord(6000, "drop", "sw1.p2 tail-drop"),
        ]
        instants = instant_events(records)
        assert [e["ph"] for e in instants] == ["i", "i"]
        assert instants[0]["name"] == "enqueue"
        assert instants[0]["args"] == {"queue": 7}
        assert instants[0]["ts"] == 5.0
        # Different categories -> different processes.
        assert instants[0]["pid"] != instants[1]["pid"]


class TestFullExport:
    def test_every_event_has_required_keys(self, tmp_path):
        """Acceptance: array of objects with name/ph/ts/pid/tid."""
        records = [
            gate_record(0, "sw0.p0", "out", "00000001"),
            gate_record(2000, "sw0.p0", "out", "00000000"),
            TraceRecord(500, "queue", "sw0.p0 enqueue", (("queue", 0),)),
            TraceRecord(1500, "tx", "sw0.p0 start", (("bytes", 64),)),
        ]
        path = write_chrome_trace(records, tmp_path / "trace.json")
        events = json.loads(path.read_text())
        assert isinstance(events, list) and events
        for event in events:
            assert isinstance(event, dict)
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in event, f"missing {key}: {event}"

    def test_metadata_names_processes_and_threads(self):
        records = [
            gate_record(0, "sw0.p0", "out", "00000001"),
            gate_record(1000, "sw0.p0", "out", "00000000"),
        ]
        events = chrome_trace_events(records)
        metadata = [e for e in events if e["ph"] == "M"]
        names = {e["name"] for e in metadata}
        assert names == {"process_name", "thread_name",
                         "process_sort_index"}
        process = next(e for e in metadata if e["name"] == "process_name")
        assert process["args"]["name"] == "sw0.p0"

    def test_sort_index_pins_track_order(self):
        records = [
            gate_record(0, "sw0.p0", "out", "00000001"),
            gate_record(0, "sw0.p1", "out", "00000001"),
            gate_record(1000, "sw0.p0", "out", "00000000"),
            gate_record(1000, "sw0.p1", "out", "00000000"),
        ]
        events = chrome_trace_events(records)
        sorts = [e for e in events if e["name"] == "process_sort_index"]
        assert [s["args"]["sort_index"] for s in sorts] == \
            [s["pid"] for s in sorts]

    def test_extra_events_are_appended(self):
        extra = {"name": "marker", "ph": "i", "ts": 0, "pid": 99, "tid": 1,
                 "s": "g"}
        events = chrome_trace_events([], extra_events=[extra])
        assert events[-1] == extra

    def test_empty_records_still_valid_json_array(self, tmp_path):
        path = write_chrome_trace([], tmp_path / "empty.json")
        assert json.loads(path.read_text()) == []


class TestFlowSpans:
    def _recorder(self):
        recorder = FlowSpanRecorder()
        frame = _Frame(0x2a, flow_id=3, seq=5)
        recorder.record(1000, "gen", "flow3", frame)
        recorder.record(2000, "enqueue", "sw0.p1", frame, detail=6)
        recorder.record(3000, "ingress", "sw1", frame)
        recorder.record(9000, "rx", "listener", frame)
        return recorder

    def test_journey_becomes_one_async_span(self):
        events = flow_span_events(self._recorder())
        assert [e["ph"] for e in events] == ["b", "n", "n", "e"]
        begin, enqueue, _, end = events
        assert begin["name"] == "flow 3 seq 5"
        assert begin["ts"] == 1.0 and end["ts"] == 9.0
        assert begin["args"]["outcome"] == "delivered"
        assert enqueue["name"] == "enqueue sw0.p1"
        assert enqueue["args"] == {"queue": 6}
        # All four share the flow category and the frame-id span id.
        assert {e["cat"] for e in events} == {"flow"}
        assert {e["id"] for e in events} == {"0x2a"}

    def test_flows_share_a_process_per_flow_id(self):
        recorder = FlowSpanRecorder()
        for frame in (_Frame(1, flow_id=0), _Frame(2, flow_id=0, seq=1),
                      _Frame(3, flow_id=1)):
            recorder.record(0, "gen", "f", frame)
            recorder.record(5, "rx", "l", frame)
        events = flow_span_events(recorder)
        pids = {e["name"]: e["pid"] for e in events if e["ph"] == "b"}
        assert pids["flow 0 seq 0"] == pids["flow 0 seq 1"]
        assert pids["flow 0 seq 0"] != pids["flow 1 seq 0"]

    def test_span_recorder_threads_through_full_export(self):
        events = chrome_trace_events([], span_recorder=self._recorder())
        assert [e["ph"] for e in events if e["ph"] in "bne"] == \
            ["b", "n", "n", "e"]
        process = next(e for e in events if e["name"] == "process_name")
        assert process["args"]["name"] == "flow 3"


class TestJsonl:
    def test_one_object_per_record(self, tmp_path):
        records = [
            TraceRecord(100, "queue", "sw0.p0 enqueue", (("queue", 3),)),
            TraceRecord(200, "tx", "sw0.p0 start"),
        ]
        path = trace_to_jsonl(records, tmp_path / "trace.jsonl")
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines == [
            {"time_ns": 100, "category": "queue",
             "message": "sw0.p0 enqueue", "queue": 3},
            {"time_ns": 200, "category": "tx", "message": "sw0.p0 start"},
        ]
