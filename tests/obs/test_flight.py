"""Flight recorder: ring semantics, kernel hook, event budget, dumps."""

import json

import pytest

from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder
from repro.sim.kernel import EventBudgetExceeded, Simulator


def wakeup():
    pass


class TestRecording:
    def test_records_time_and_category(self):
        recorder = FlightRecorder()
        recorder.record(125, wakeup)
        assert recorder.events() == [(125, "wakeup")]

    def test_ring_keeps_most_recent_and_counts_drops(self):
        recorder = FlightRecorder(capacity=4)

        def tick():
            pass

        for t in range(10):
            recorder.record(t, tick)
        assert [t for t, _ in recorder.events()] == [6, 7, 8, 9]
        assert recorder.dropped_events == 6

    def test_category_cached_per_code_object(self):
        recorder = FlightRecorder()

        def tick():
            pass

        recorder.record(1, tick)
        recorder.record(2, tick)
        assert len(recorder._categories) == 1

    def test_notes_ring_bounded(self):
        recorder = FlightRecorder(note_capacity=2)
        for i in range(5):
            recorder.note("fault.link_down", f"link{i}", time_ns=i)
        notes = recorder.notes()
        assert [n["detail"] for n in notes] == ["link3", "link4"]
        assert recorder.dropped_notes == 3

    def test_len_counts_buffered_events(self):
        recorder = FlightRecorder(capacity=8)
        assert len(recorder) == 0
        recorder.record(1, lambda: None)
        assert len(recorder) == 1


class TestKernelHook:
    def test_attached_recorder_sees_fired_events(self):
        sim = Simulator()
        sim.flight = recorder = FlightRecorder()
        fired = []
        sim.post(10, lambda: fired.append(1))
        sim.post(20, lambda: fired.append(2))
        sim.run()
        assert len(fired) == 2
        assert [t for t, _ in recorder.events()] == [10, 20]

    def test_detached_kernel_records_nothing(self):
        sim = Simulator()
        sim.post(10, lambda: None)
        sim.run()
        assert sim.flight is None

    def test_step_records_too(self):
        sim = Simulator()
        sim.flight = recorder = FlightRecorder()
        sim.post(5, lambda: None)
        assert sim.step() is True
        assert len(recorder.events()) == 1

    def test_cancelled_events_not_recorded(self):
        sim = Simulator()
        sim.flight = recorder = FlightRecorder()
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        sim.post(20, lambda: None)
        sim.run()
        assert [t for t, _ in recorder.events()] == [20]


class TestEventBudget:
    def test_budget_trips_deterministically(self):
        def run_with_budget():
            sim = Simulator()
            sim.event_budget = 5

            def tick():
                sim.post(10, tick)

            sim.post(10, tick)
            with pytest.raises(EventBudgetExceeded) as exc:
                sim.run()
            return sim.now, str(exc.value)

        assert run_with_budget() == run_with_budget()

    def test_budget_allows_exactly_budget_events(self):
        sim = Simulator()
        sim.event_budget = 3
        fired = []
        for t in (10, 20, 30):
            sim.post(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == [10, 20, 30]

    def test_budget_message_names_count_and_time(self):
        sim = Simulator()
        sim.event_budget = 2

        def tick():
            sim.post(10, tick)

        sim.post(10, tick)
        with pytest.raises(EventBudgetExceeded, match="budget of 2 .*30ns"):
            sim.run()

    def test_budget_enforced_in_step(self):
        sim = Simulator()
        sim.event_budget = 1
        sim.post(10, lambda: None)
        sim.post(20, lambda: None)
        assert sim.step() is True
        with pytest.raises(EventBudgetExceeded):
            sim.step()


class TestDump:
    def test_dump_merges_context_and_accounting(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record(7, wakeup)
        recorder.note("fault.link_down", "ring0 down", time_ns=7)
        doc = recorder.dump(context={"run_id": "s:0001", "status": "timeout"})
        assert doc["run_id"] == "s:0001"
        assert doc["status"] == "timeout"
        assert doc["capacity"] == 4
        assert doc["events"] == [[7, "wakeup"]]
        assert doc["notes"][0]["detail"] == "ring0 down"
        assert doc["events_dropped"] == 0

    def test_dump_to_writes_sorted_json(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(1, lambda: None)
        path = recorder.dump_to(tmp_path / "deep" / "dump.json",
                                context={"run_id": "x"})
        data = json.loads(path.read_text())
        assert data["run_id"] == "x"
        assert len(data["events"]) == 1

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_FLIGHT_CAPACITY


class TestFaultIntegration:
    def test_fault_firings_noted_in_recorder(self):
        from repro.network.scenario import ScenarioSpec

        spec = ScenarioSpec.from_dict({
            "name": "flight-fault",
            "topology": {"kind": "ring", "switch_count": 2,
                         "talkers": ["talker0"], "listener": "listener"},
            "flows": {"ts_count": 2},
            "duration_ms": 2,
            "faults": {"events": [
                {"kind": "link_down", "link": "sw0.p0", "at_us": 500},
                {"kind": "link_up", "link": "sw0.p0", "at_us": 1000},
            ]},
        })
        testbed = spec.build_testbed()
        testbed.sim.flight = recorder = FlightRecorder()
        testbed.run(duration_ns=spec.duration_ns)
        kinds = [n["kind"] for n in recorder.notes()]
        assert "fault.link_down" in kinds
        assert "fault.link_up" in kinds
        assert len(recorder.events()) > 0
