"""Frame-journey recording and reconstruction."""

import pytest

from repro.core.errors import ConfigurationError
from repro.obs.flowspans import (
    FlowSpanRecorder,
    FrameJourney,
    HopEvent,
    flow_stats,
)


class _Frame:
    """Minimal stand-in carrying the three identity fields."""

    def __init__(self, frame_id, flow_id=0, seq=0):
        self.frame_id = frame_id
        self.flow_id = flow_id
        self.seq = seq


def _journey(events, flow_id=0, seq=0, frame_id=0):
    journey = FrameJourney(frame_id, flow_id, seq)
    journey.events = [HopEvent(*e) for e in events]
    return journey


class TestRecorder:
    def test_events_grouped_per_frame(self):
        recorder = FlowSpanRecorder()
        a, b = _Frame(1, flow_id=0, seq=0), _Frame(2, flow_id=0, seq=1)
        recorder.record(0, "gen", "flow0", a)
        recorder.record(5, "gen", "flow0", b)
        recorder.record(10, "rx", "listener", a)
        recorder.record(15, "rx", "listener", b)
        journeys = recorder.journeys()
        assert [j.seq for j in journeys] == [0, 1]
        assert [e.kind for e in journeys[0].events] == ["gen", "rx"]

    def test_journeys_sorted_by_flow_then_seq(self):
        recorder = FlowSpanRecorder()
        recorder.record(0, "gen", "f", _Frame(10, flow_id=3, seq=0))
        recorder.record(1, "gen", "f", _Frame(11, flow_id=1, seq=1))
        recorder.record(2, "gen", "f", _Frame(12, flow_id=1, seq=0))
        ordering = [(j.flow_id, j.seq) for j in recorder.journeys()]
        assert ordering == [(1, 0), (1, 1), (3, 0)]

    def test_event_order_within_journey_is_recording_order(self):
        recorder = FlowSpanRecorder()
        frame = _Frame(1)
        for time_ns, kind in [(0, "gen"), (2, "inject"), (7, "enqueue"),
                              (9, "dequeue"), (12, "tx"), (20, "rx")]:
            recorder.record(time_ns, kind, "n", frame)
        [journey] = recorder.journeys()
        assert [e.time_ns for e in journey.events] == [0, 2, 7, 9, 12, 20]

    def test_cap_counts_dropped_events(self):
        recorder = FlowSpanRecorder(max_events=3)
        frame = _Frame(1)
        for i in range(5):
            recorder.record(i, "gen", "n", frame)
        assert len(recorder) == 3
        assert recorder.dropped_events == 2

    def test_zero_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowSpanRecorder(max_events=0)

    def test_frer_replicas_stay_distinct_journeys(self):
        # Same (flow, seq), different frames: two member streams.
        recorder = FlowSpanRecorder()
        recorder.record(0, "gen", "f", _Frame(1, flow_id=0, seq=0))
        recorder.record(0, "gen", "f", _Frame(2, flow_id=0, seq=0))
        assert len(recorder.journeys()) == 2


class TestJourney:
    def test_delivered_and_end_to_end(self):
        journey = _journey([(5, "gen", "f"), (105, "rx", "listener")])
        assert journey.delivered and not journey.dropped
        assert journey.end_to_end_ns == 100

    def test_dropped_journey_names_the_node(self):
        journey = _journey(
            [(0, "gen", "f"), (3, "ingress", "sw0"), (3, "drop", "sw0")]
        )
        assert journey.dropped and not journey.delivered
        assert journey.drop_node == "sw0"
        assert journey.end_to_end_ns is None

    def test_hop_span_reconstruction(self):
        journey = _journey(
            [
                (0, "gen", "flow0"),
                (1, "inject", "talker0"),
                (2, "enqueue", "talker0.nic", 7),
                (3, "dequeue", "talker0.nic", 7),
                (5, "tx", "talker0.nic", 7),
                (6, "ingress", "sw0"),
                (8, "enqueue", "sw0.p1", 6),
                (70, "dequeue", "sw0.p1", 6),
                (75, "tx", "sw0.p1", 6),
                (80, "rx", "listener"),
            ]
        )
        nic, hop = journey.hop_spans()
        assert nic.node == "talker0.nic" and nic.arrived_ns is None
        assert nic.gate_wait_ns == 1 and nic.residence_ns == 3
        assert hop.node == "sw0.p1" and hop.queue_id == 6
        assert hop.arrived_ns == 6
        assert hop.gate_wait_ns == 62 and hop.residence_ns == 67

    def test_partial_hop_closed_without_tx(self):
        journey = _journey(
            [(0, "enqueue", "sw0.p0", 7), (4, "dequeue", "sw0.p0", 7)]
        )
        [span] = journey.hop_spans()
        assert span.dequeued_ns == 4 and span.tx_ns is None
        assert span.residence_ns is None


class TestFlowStats:
    def test_interior_sequence_gap_is_loss(self):
        journeys = [
            _journey([(0, "gen", "f"), (9, "rx", "l")], seq=s, frame_id=s)
            for s in (0, 2, 3)
        ]
        stats = flow_stats(journeys)
        assert stats[0].missing_seqs == (1,)
        assert stats[0].lost == 1
        assert stats[0].delivered == 3

    def test_expected_counts_extend_the_horizon(self):
        journeys = [
            _journey([(0, "gen", "f"), (9, "rx", "l")], seq=0, frame_id=0)
        ]
        stats = flow_stats(journeys, expected_by_flow={0: 3})
        assert stats[0].missing_seqs == (1, 2)

    def test_duplicate_seq_counted_not_double_delivered(self):
        journeys = [
            _journey([(0, "gen", "f"), (9, "rx", "l")], seq=0, frame_id=0),
            _journey([(0, "gen", "f"), (9, "rx", "l")], seq=0, frame_id=1),
        ]
        stats = flow_stats(journeys)
        assert stats[0].delivered == 1
        assert stats[0].duplicates == 1

    def test_in_flight_neither_lost_nor_delivered(self):
        journeys = [
            _journey([(0, "gen", "f"), (2, "enqueue", "n", 7)],
                     seq=0, frame_id=0)
        ]
        stats = flow_stats(journeys)
        assert stats[0].in_flight == 1 and stats[0].delivered == 0

    def test_latency_watermarks(self):
        journeys = [
            _journey([(0, "gen", "f"), (100, "rx", "l")], seq=0, frame_id=0),
            _journey([(0, "gen", "f"), (300, "rx", "l")], seq=1, frame_id=1),
        ]
        stats = flow_stats(journeys)
        assert stats[0].max_end_to_end_ns == 300
        assert stats[0].mean_end_to_end_ns == 200.0
