"""Frame conservation: nothing is silently created or destroyed.

The accounting invariant every QoS number rests on: after a run drains,

    emitted == delivered + (counted drops at switches)
                        + (counted losses on links)

holds per class and in total.  Checked over randomized small scenarios
(hypothesis chooses flow counts, sizes, background rates, seeds) and over
deliberately undersized/lossy runs where the drop paths are exercised.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.presets import customized_config
from repro.core.units import mbps, ms
from repro.network.testbed import Testbed
from repro.network.topology import ring_topology
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import background_flows, production_cell_flows

SLOT = 62_500


def _accounting(testbed, result):
    emitted = sum(result.expected_by_flow.values())
    delivered = result.analyzer.received() + result.analyzer.unknown_frames
    switch_drops = sum(
        c["dropped_total"] for c in result.counters().values()
    )
    link_losses = sum(
        link.frames_corrupted + link.frames_blackholed
        for link in testbed.links
    )
    return emitted, delivered, switch_drops, link_losses


def _build(count, size, rc, be, seed, config=None, drain_slots=64, **kwargs):
    topology = ring_topology(switch_count=3, talkers=["talker0"])
    flows = production_cell_flows(["talker0"], "listener",
                                  flow_count=count, size_bytes=size)
    if rc or be:
        for flow in background_flows(["talker0"], "listener",
                                     mbps(rc), mbps(be)):
            flows.add(flow)
    testbed = Testbed(
        topology, config or customized_config(1), flows, slot_ns=SLOT,
        seed=seed, **kwargs
    )
    result = testbed.run(duration_ns=ms(25), drain_slots=drain_slots)
    return testbed, result


class TestConservation:
    @settings(max_examples=8, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=48),
        size=st.sampled_from([64, 256, 1024]),
        rc=st.sampled_from([0, 50]),
        be=st.sampled_from([0, 50]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_lossless_scenarios_conserve_exactly(self, count, size, rc, be,
                                                 seed):
        testbed, result = _build(count, size, rc, be, seed)
        emitted, delivered, switch_drops, link_losses = _accounting(
            testbed, result
        )
        assert switch_drops == 0 and link_losses == 0
        assert emitted == delivered

    def test_undersized_queues_conserve_with_drops(self):
        config = customized_config(1, queue_depth=1, buffer_num=8)
        testbed, result = _build(
            count=48, size=64, rc=0, be=0, seed=0, config=config,
            use_itp=False,  # slam everything into slot 0
        )
        emitted, delivered, switch_drops, link_losses = _accounting(
            testbed, result
        )
        assert switch_drops > 0
        assert emitted == delivered + switch_drops

    def test_lossy_links_conserve_with_corruptions(self):
        testbed, result = _build(
            count=32, size=64, rc=0, be=0, seed=1, trunk_error_rate=0.1
        )
        emitted, delivered, switch_drops, link_losses = _accounting(
            testbed, result
        )
        assert link_losses > 0
        assert emitted == delivered + switch_drops + link_losses

    def test_per_flow_accounting_matches_class_totals(self):
        testbed, result = _build(count=16, size=64, rc=20, be=20, seed=2)
        for flow in result.flows:
            record = result.analyzer.records[flow.flow_id]
            assert record.received == result.expected_by_flow[flow.flow_id]
            assert record.duplicates == 0 and record.reorders == 0

    def test_buffer_pools_fully_released_after_drain(self):
        testbed, result = _build(count=32, size=64, rc=30, be=30, seed=3)
        for switch in result.switches.values():
            for port in switch.ports:
                assert port.pool.in_use == 0
                assert port.backlog_frames() == 0
