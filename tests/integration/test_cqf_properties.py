"""Property-based end-to-end CQF invariants.

Hypothesis drives randomized scenarios (flow counts, sizes, hop counts,
slot sizes, seeds) through the full stack and checks the properties the
paper's evaluation rests on:

* every delivered TS packet obeys Eq. (1);
* with planned (ITP) injection each flow's latency is *constant* -- CQF is
  deterministic per flow, not merely bounded;
* the simulator's observed queue occupancy equals the ITP plan's per-slot
  bound -- the planner and the dataplane agree about the world.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.presets import customized_config
from repro.core.units import ms
from repro.cqf.bounds import cqf_bounds
from repro.network.testbed import Testbed
from repro.network.topology import ring_topology
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import production_cell_flows

SLOTS = [31_250, 62_500, 125_000]


def _run(flow_count, size, hops, slot_ns, seed):
    topology = ring_topology(switch_count=hops, talkers=["talker0"])
    flows = production_cell_flows(["talker0"], "listener",
                                  flow_count=flow_count, size_bytes=size)
    testbed = Testbed(
        topology, customized_config(1), flows, slot_ns=slot_ns, seed=seed
    )
    return testbed, testbed.run(duration_ns=ms(25))


class TestCqfProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        flow_count=st.integers(min_value=1, max_value=40),
        size=st.sampled_from([64, 256, 1024]),
        hops=st.integers(min_value=1, max_value=4),
        slot_ns=st.sampled_from(SLOTS),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_eq1_and_per_flow_determinism(self, flow_count, size, hops,
                                          slot_ns, seed):
        _, result = _run(flow_count, size, hops, slot_ns, seed)
        assert result.ts_loss == 0.0
        bounds = cqf_bounds(hops, slot_ns)
        for flow in result.flows.ts_flows:
            latencies = result.analyzer.records[flow.flow_id].latencies_ns
            assert latencies, flow.flow_id
            assert all(bounds.contains(x) for x in latencies)
            # deterministic per flow: every packet takes the same time
            assert max(latencies) - min(latencies) == 0

    @settings(max_examples=8, deadline=None)
    @given(
        flow_count=st.integers(min_value=8, max_value=64),
        slot_ns=st.sampled_from(SLOTS),
    )
    def test_observed_occupancy_matches_itp_plan(self, flow_count, slot_ns):
        testbed, result = _run(flow_count, 64, 2, slot_ns, seed=0)
        plan = result.itp_plan
        assert plan is not None
        # the gathering queues never exceed -- and do reach -- the plan's
        # worst per-slot load
        assert result.max_queue_high_water() == plan.max_frames_per_slot
