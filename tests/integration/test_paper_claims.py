"""End-to-end acceptance tests: the paper's headline claims.

These are reduced-scale versions of the benchmark harnesses -- small enough
for the unit-test budget, but each one asserts the *shape* of a published
result: exact BRAM arithmetic for the tables, Eq. (1) containment and
background-immunity for the figures.
"""

import pytest

from repro.core.presets import bcm53154_config, customized_config
from repro.core.sizing import derive_config
from repro.core.units import mbps, ms
from repro.cqf.bounds import cqf_bounds
from repro.network.testbed import Testbed
from repro.network.topology import linear_topology, ring_topology, star_topology
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import background_flows, production_cell_flows

SLOT = 62_500
FLOWS = 48
DURATION = ms(30)


def _run(topo, rc=0, be=0, size=64, flow_count=FLOWS, slot=SLOT, **kwargs):
    talkers = [u.host for u in topo.uplinks]
    flows = production_cell_flows(talkers, "listener", flow_count=flow_count,
                                  size_bytes=size)
    if rc or be:
        for f in background_flows(talkers, "listener", rc, be):
            flows.add(f)
    config = customized_config(topo.max_enabled_ports)
    testbed = Testbed(topo, config, flows, slot_ns=slot, **kwargs)
    return testbed.run(duration_ns=DURATION)


class TestTable3Claim:
    """Customization saves 46.59/63.56/80.53% of BRAM at equal parameters."""

    def test_reductions(self):
        base = bcm53154_config().resource_report()
        for factory_ports, expected in ((3, 0.4659), (2, 0.6356), (1, 0.8053)):
            report = customized_config(factory_ports).resource_report()
            assert report.reduction_vs(base) == pytest.approx(
                expected, abs=5e-5
            )

    def test_sizing_pipeline_reaches_same_configs(self):
        flows = production_cell_flows(["t0", "t1", "t2"], "l",
                                      flow_count=1024)
        for topo, total in (
            (star_topology(), 5778),
            (linear_topology(6), 3942),
            (ring_topology(6), 2106),
        ):
            assert derive_config(topo, flows, SLOT).config.total_bram_kb == total


class TestFig7aClaim:
    """Latency grows one slot per hop; jitter stays put (Fig. 7a)."""

    def test_latency_tracks_hops(self):
        means, jitters = [], []
        for hops in (1, 2, 3, 4):
            topo = ring_topology(switch_count=hops, talkers=["talker0"])
            result = _run(topo)
            bounds = cqf_bounds(hops, SLOT)
            latencies = result.analyzer.class_latencies(TrafficClass.TS)
            assert latencies and all(bounds.contains(x) for x in latencies)
            assert result.ts_loss == 0.0
            means.append(result.ts_summary.mean_ns)
            jitters.append(result.ts_summary.jitter_ns)
        # one extra slot per hop
        deltas = [b - a for a, b in zip(means, means[1:])]
        assert all(d == pytest.approx(SLOT, rel=0.05) for d in deltas)
        # jitter unrelated to hops: stays well under a slot
        assert all(j < SLOT / 10 for j in jitters)


class TestFig7bClaim:
    """Latency rises only slightly with packet size (Fig. 7b)."""

    def test_small_monotone_rise(self):
        means = []
        for size in (64, 512, 1500):
            topo = ring_topology(switch_count=2, talkers=["talker0"])
            result = _run(topo, size=size, flow_count=32)
            assert result.ts_loss == 0.0
            means.append(result.ts_summary.mean_ns)
        assert means[0] < means[-1]
        # the whole effect is serialization: well under one slot
        assert means[-1] - means[0] < SLOT


class TestFig7cClaim:
    """Latency and jitter scale with slot size (Fig. 7c)."""

    def test_scaling(self):
        means = []
        for slot in (31_250, 62_500, 125_000):
            topo = ring_topology(switch_count=2, talkers=["talker0"])
            result = _run(topo, slot=slot, flow_count=32)
            assert result.ts_loss == 0.0
            means.append(result.ts_summary.mean_ns)
        assert means[1] / means[0] == pytest.approx(2.0, rel=0.1)
        assert means[2] / means[1] == pytest.approx(2.0, rel=0.1)


class TestFig2AndFig7dClaim:
    """TS latency and jitter are immune to RC/BE background load."""

    def test_background_sweep_flat(self):
        means, jitters = [], []
        for load in (0, mbps(200), mbps(400)):
            topo = ring_topology(switch_count=3, talkers=["talker0"])
            result = _run(topo, rc=load // 2, be=load // 2)
            assert result.ts_loss == 0.0
            means.append(result.ts_summary.mean_ns)
            jitters.append(result.ts_summary.jitter_ns)
        spread = (max(means) - min(means)) / (sum(means) / len(means))
        assert spread < 0.02
        assert all(j < SLOT / 10 for j in jitters)

    def test_zero_packet_loss_under_load(self):
        """'The packet loss in all the experiments is 0.'"""
        topo = ring_topology(switch_count=3, talkers=["talker0"])
        result = _run(topo, rc=mbps(300), be=mbps(300))
        assert result.ts_loss == 0.0
        for counters in result.counters().values():
            assert counters["dropped_tail"] == 0
            assert counters["dropped_no_buffer"] == 0


class TestTable1Claim:
    """Case 2 (smaller queues/buffers) matches Case 1's QoS (Table I+Fig 2)."""

    def test_equal_qos_across_cases(self):
        results = {}
        for label, depth, buffers in (("case1", 16, 128), ("case2", 12, 96)):
            topo = linear_topology(switch_count=3, talkers=["talker0"])
            talkers = ["talker0"]
            flows = production_cell_flows(talkers, "listener",
                                          flow_count=FLOWS)
            for f in background_flows(talkers, "listener",
                                      mbps(100), mbps(100)):
                flows.add(f)
            config = customized_config(2, queue_depth=depth,
                                       buffer_num=buffers)
            result = Testbed(topo, config, flows, slot_ns=SLOT).run(DURATION)
            assert result.ts_loss == 0.0
            results[label] = result.ts_summary
        assert results["case1"].mean_ns == pytest.approx(
            results["case2"].mean_ns, rel=0.01
        )
        assert abs(results["case1"].jitter_ns - results["case2"].jitter_ns) \
            < 2_000


class TestTopologyEquivalenceClaim:
    """'The transmission performance of different topologies is the same.'"""

    def test_ring_equals_linear_at_equal_hops(self):
        ring_result = _run(ring_topology(switch_count=3, talkers=["talker0"]))
        linear_result = _run(
            linear_topology(switch_count=3, talkers=["talker0"])
        )
        assert ring_result.ts_summary.mean_ns == pytest.approx(
            linear_result.ts_summary.mean_ns, rel=0.01
        )
