"""802.1CB sequence recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ConfigurationError
from repro.frer.elimination import FrerEliminator, SequenceRecovery
from repro.switch.packet import EthernetFrame, make_mac


def _frame(flow, seq):
    return EthernetFrame(make_mac(1), make_mac(2), 1, 7, 64,
                         flow_id=flow, seq=seq)


class TestSequenceRecovery:
    def test_accepts_first_and_increments(self):
        recovery = SequenceRecovery()
        assert recovery.accept(0)
        assert recovery.accept(1)
        assert recovery.accepted == 2

    def test_duplicate_of_highest_discarded(self):
        recovery = SequenceRecovery()
        assert recovery.accept(5)
        assert not recovery.accept(5)
        assert recovery.discarded == 1

    def test_late_replica_within_window_discarded_once(self):
        recovery = SequenceRecovery()
        for seq in (0, 1, 2, 3):
            recovery.accept(seq)
        assert not recovery.accept(1)   # replica of an accepted frame
        assert recovery.discarded == 1

    def test_gap_then_late_original_accepted(self):
        recovery = SequenceRecovery()
        recovery.accept(0)
        recovery.accept(2)          # 1 lost on the fast path
        assert recovery.accept(1)   # slow-path copy of 1: genuinely new
        assert not recovery.accept(1)

    def test_out_of_window_is_rogue(self):
        recovery = SequenceRecovery(history_length=4)
        recovery.accept(100)
        assert not recovery.accept(10)
        assert recovery.rogue == 1

    def test_big_jump_clears_history(self):
        recovery = SequenceRecovery(history_length=8)
        recovery.accept(0)
        recovery.accept(1000)
        assert recovery.accept(999)   # within new window, never seen
        assert not recovery.accept(1000)

    def test_huge_jump_keeps_history_bounded(self):
        """A delta far beyond the window must not materialize a
        delta-bit shift mask (regression: seq jumps used to build
        unbounded integers)."""
        recovery = SequenceRecovery(history_length=64)
        recovery.accept(0)
        assert recovery.accept(10**9)
        assert recovery._history.bit_length() <= 64
        assert not recovery.accept(10**9)          # replica of new head
        assert recovery.accept(10**9 - 1)          # inside the new window

    def test_straggler_at_exact_window_edge_is_rogue(self):
        recovery = SequenceRecovery(history_length=8)
        recovery.accept(100)
        # lag == history_length: one past the oldest trackable slot
        assert not recovery.accept(100 - 9)
        assert recovery.rogue == 1
        # lag == history_length - 1: the oldest trackable slot, accepted
        assert recovery.accept(100 - 8)
        assert recovery.rogue == 1

    def test_jump_of_exactly_history_length(self):
        recovery = SequenceRecovery(history_length=8)
        recovery.accept(0)
        recovery.accept(8)           # delta == history_length: 0 ages out
        assert recovery.accept(1)    # lag 7, never seen
        assert not recovery.accept(8)
        assert recovery._history.bit_length() <= 8

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            SequenceRecovery(history_length=0)
        with pytest.raises(ConfigurationError):
            SequenceRecovery().accept(-1)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=100))
    def test_each_sequence_number_accepted_at_most_once(self, seqs):
        """With an ample window, acceptance is exactly first-occurrence."""
        recovery = SequenceRecovery(history_length=64)
        seen = set()
        for seq in seqs:
            accepted = recovery.accept(seq)
            if seq in seen:
                assert not accepted
            if accepted:
                assert seq not in seen
                seen.add(seq)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=80))
    def test_counters_partition_offers(self, seqs):
        recovery = SequenceRecovery()
        for seq in seqs:
            recovery.accept(seq)
        assert (recovery.accepted + recovery.discarded + recovery.rogue
                == len(seqs))


class TestFrerEliminator:
    def test_per_flow_contexts(self):
        delivered = []
        eliminator = FrerEliminator(delivered.append)
        eliminator(_frame(1, 0))
        eliminator(_frame(2, 0))   # same seq, different flow: both pass
        eliminator(_frame(1, 0))   # duplicate
        assert [f.flow_id for f in delivered] == [1, 2]
        assert eliminator.duplicates_eliminated == 1

    def test_interleaved_replicas(self):
        delivered = []
        eliminator = FrerEliminator(delivered.append)
        for seq in range(5):
            eliminator(_frame(7, seq))       # path A
            eliminator(_frame(7, seq))       # path B replica
        assert [f.seq for f in delivered] == list(range(5))
        assert eliminator.duplicates_eliminated == 5

    def test_context_lookup(self):
        eliminator = FrerEliminator(lambda f: None)
        eliminator(_frame(3, 0))
        assert eliminator.context(3).accepted == 1
        with pytest.raises(KeyError):
            eliminator.context(99)

    def test_rogue_accounting(self):
        eliminator = FrerEliminator(lambda f: None, history_length=2)
        eliminator(_frame(1, 100))
        eliminator(_frame(1, 1))
        assert eliminator.rogue_frames == 1
