"""FRER end-to-end: replication, elimination, seamless failover."""

import pytest

from repro.core.errors import ConfigurationError, TopologyError
from repro.core.presets import customized_config
from repro.core.units import ms
from repro.cqf.bounds import cqf_bounds
from repro.network.testbed import Testbed
from repro.network.topology import dual_path_topology, ring_topology
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import production_cell_flows

SLOT = 62_500
CHAIN = 3  # switches per path


def _testbed(frer=True, flow_count=24, topo=None):
    topology = topo or dual_path_topology(chain_len=CHAIN)
    flows = production_cell_flows(["talker0"], "listener",
                                  flow_count=flow_count)
    config = customized_config(2, flow_count=4 * flow_count)
    return Testbed(topology, config, flows, slot_ns=SLOT, frer_ts=frer)


class TestTopology:
    def test_dual_path_shape(self):
        topo = dual_path_topology(chain_len=3)
        assert topo.switch_ports["head"] == 2
        assert len(topo.attachments) == 2
        assert topo.hops("talker0", "listener") == 3

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            dual_path_topology(chain_len=1)


class TestReplication:
    def test_duplicates_eliminated_not_delivered(self):
        testbed = _testbed()
        result = testbed.run(duration_ns=ms(30))
        assert result.ts_loss == 0.0
        eliminated = sum(
            e.duplicates_eliminated
            for e in testbed.frer_eliminators.values()
        )
        # every packet arrived twice; the analyzer saw each exactly once
        assert eliminated == result.analyzer.received(TrafficClass.TS)
        for flow in result.flows.ts_flows:
            record = result.analyzer.records[flow.flow_id]
            assert record.duplicates == 0

    def test_latency_within_bounds(self):
        result = _testbed().run(duration_ns=ms(30))
        bounds = cqf_bounds(CHAIN, SLOT)
        latencies = result.analyzer.class_latencies(TrafficClass.TS)
        assert latencies and all(bounds.contains(x) for x in latencies)

    def test_replica_paths_disjoint_by_construction(self):
        testbed = _testbed()
        testbed.build()
        flow = testbed.flows.ts_flows[0]
        path_a, path_b = testbed._frer_hop_port_sets(flow)
        assert not (set(path_a) & set(path_b))

    def test_single_attachment_destination_rejected(self):
        testbed = _testbed(topo=ring_topology(3, talkers=["talker0"]))
        with pytest.raises(TopologyError, match="two attachments"):
            testbed.build()

    def test_frer_requires_cqf(self):
        with pytest.raises(ConfigurationError, match="CQF"):
            Testbed(
                dual_path_topology(),
                customized_config(2),
                production_cell_flows(["talker0"], "listener", flow_count=4),
                slot_ns=SLOT,
                frer_ts=True,
                gate_mechanism="qbv",
            )


class TestSeamlessFailover:
    def _run_with_cut(self, cut_prefix, cut_at=ms(10)):
        testbed = _testbed()
        testbed.build()
        trunk = next(
            link for link in testbed.links
            if link.name.startswith(cut_prefix)
        )
        testbed.sim.schedule(cut_at, trunk.fail)
        return testbed, testbed.run(duration_ns=ms(30))

    def test_zero_loss_through_path_a_failure(self):
        testbed, result = self._run_with_cut("head.p0")
        assert result.ts_loss == 0.0
        assert result.analyzer.deadline_misses(TrafficClass.TS) == 0
        # after the cut only one copy arrives: fewer eliminations
        eliminated = sum(
            e.duplicates_eliminated
            for e in testbed.frer_eliminators.values()
        )
        assert 0 < eliminated < result.analyzer.received(TrafficClass.TS)

    def test_zero_loss_through_path_b_failure(self):
        _, result = self._run_with_cut("head.p1")
        assert result.ts_loss == 0.0

    def test_without_frer_the_same_cut_loses_packets(self):
        testbed = _testbed(frer=False)
        testbed.build()
        # find the trunk the single (path-A) route uses
        trunk = next(
            link for link in testbed.links
            if link.name.startswith("head.p0")
        )
        testbed.sim.schedule(ms(10), trunk.fail)
        result = testbed.run(duration_ns=ms(30))
        assert result.ts_loss > 0.3

    def test_latency_unchanged_across_failover(self):
        """Seamless means no recovery transient: the surviving copies keep
        the same CQF timing."""
        _, result = self._run_with_cut("head.p0")
        assert result.ts_summary.jitter_ns < 1_000
