"""Declarative scenario specifications."""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.network.scenario import ScenarioSpec


def _spec_dict(**overrides):
    data = {
        "name": "unit",
        "topology": {"kind": "ring", "switch_count": 2,
                     "talkers": ["talker0"], "listener": "listener"},
        "flows": {"ts_count": 8, "rc_mbps": 10, "be_mbps": 10},
        "config": "derive",
        "slot_us": 62.5,
        "duration_ms": 15,
    }
    data.update(overrides)
    return data


class TestParsing:
    def test_from_dict_roundtrip(self):
        spec = ScenarioSpec.from_dict(_spec_dict())
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored.name == "unit"
        assert restored.slot_us == 62.5

    def test_from_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(_spec_dict()))
        spec = ScenarioSpec.from_file(path)
        assert spec.topology["kind"] == "ring"

    def test_missing_required_keys(self):
        with pytest.raises(ConfigurationError, match="missing"):
            ScenarioSpec.from_dict({"name": "x"})

    def test_extras_forwarded(self):
        spec = ScenarioSpec.from_dict(
            _spec_dict(clock_drift_ppm=20, enable_gptp=True)
        )
        assert spec.extras == {"clock_drift_ppm": 20, "enable_gptp": True}


class TestBuilding:
    def test_unknown_topology_kind(self):
        spec = ScenarioSpec.from_dict(
            _spec_dict(topology={"kind": "mesh"}), strict=False
        )
        with pytest.raises(ConfigurationError, match="topology kind"):
            spec.build_topology()

    def test_unknown_flow_parameter(self):
        spec = ScenarioSpec.from_dict(
            _spec_dict(flows={"ts_count": 4, "bogus": 1}), strict=False
        )
        with pytest.raises(ConfigurationError, match="bogus"):
            spec.build_flows()

    def test_derived_config(self):
        spec = ScenarioSpec.from_dict(_spec_dict())
        topology = spec.build_topology()
        flows = spec.build_flows()
        config = spec.build_config(topology, flows)
        assert config.port_num == 1
        assert config.unicast_size == len(flows)

    def test_explicit_config(self):
        explicit = {
            "port_num": 1, "unicast_size": 64, "multicast_size": 0,
            "class_size": 64, "meter_size": 64, "gate_size": 2,
            "queue_num": 8, "cbs_map_size": 3, "cbs_size": 3,
            "queue_depth": 8, "buffer_num": 64,
        }
        spec = ScenarioSpec.from_dict(_spec_dict(config=explicit))
        config = spec.build_config(spec.build_topology(), spec.build_flows())
        assert config.unicast_size == 64

    def test_invalid_config_value(self):
        spec = ScenarioSpec.from_dict(_spec_dict(config=42), strict=False)
        with pytest.raises(ConfigurationError):
            spec.build_config(spec.build_topology(), spec.build_flows())


class TestRunning:
    def test_run_end_to_end(self):
        result = ScenarioSpec.from_dict(_spec_dict()).run()
        assert result.ts_loss == 0.0
        assert result.analyzer.received() > 0

    def test_extras_reach_testbed(self):
        spec = ScenarioSpec.from_dict(_spec_dict(trunk_error_rate=0.2))
        result = spec.run()
        assert result.ts_loss > 0.0


class TestSloStanza:
    def test_slo_key_parses_and_round_trips(self):
        slo = {"class": {"TS": {"latency_us": 500}},
               "flows": {"0": {"latency_us": 50}}}
        spec = ScenarioSpec.from_dict(_spec_dict(slo=slo))
        assert spec.slo == slo
        assert "slo" not in spec.extras  # not splatted into Testbed
        assert ScenarioSpec.from_dict(spec.to_dict()).slo == slo

    def test_build_slo_policy(self):
        spec = ScenarioSpec.from_dict(
            _spec_dict(slo={"default": {"max_loss": 0.0}})
        )
        policy = spec.build_slo_policy()
        assert policy is not None
        assert policy.default.max_loss == 0.0
        assert ScenarioSpec.from_dict(_spec_dict()).build_slo_policy() is None

    def test_run_attaches_slo_report(self):
        spec = ScenarioSpec.from_dict(
            _spec_dict(slo={"class": {"TS": {"latency_us": 10000,
                                             "max_loss": 0.0}}})
        )
        result = spec.run()
        assert result.slo is not None
        assert result.slo.passed
        assert result.slo.monitored == 8

    def test_run_without_stanza_has_no_report(self):
        result = ScenarioSpec.from_dict(_spec_dict()).run()
        assert result.slo is None


class TestFrerScenario:
    def test_dual_path_frer_via_scenario_file(self):
        """FRER is reachable purely declaratively (topology kind +
        frer_ts extra)."""
        spec = ScenarioSpec.from_dict(
            {
                "name": "frer",
                "topology": {"kind": "dual_path", "chain_len": 3,
                             "talkers": ["talker0"],
                             "listener": "listener"},
                "flows": {"ts_count": 8},
                "config": "derive",
                "slot_us": 62.5,
                "duration_ms": 15,
                "frer_ts": True,
            }
        )
        testbed = spec.build_testbed()
        result = testbed.run(duration_ns=spec.duration_ns)
        assert result.ts_loss == 0.0
        eliminated = sum(
            e.duplicates_eliminated
            for e in testbed.frer_eliminators.values()
        )
        assert eliminated > 0


class TestStrictValidation:
    def test_unknown_top_key_suggests_nearest(self):
        from repro.core.errors import SpecValidationError

        with pytest.raises(SpecValidationError, match="duration_ms"):
            ScenarioSpec.from_dict(_spec_dict(duration_mss=5))

    def test_all_problems_reported_at_once(self):
        from repro.core.errors import SpecValidationError

        with pytest.raises(SpecValidationError) as excinfo:
            ScenarioSpec.from_dict(_spec_dict(
                slot_us="fast",
                seed=1.5,
                flows={"ts_cout": 4},
                topology={"kind": "mesh"},
            ))
        problems = excinfo.value.problems
        paths = {p.split(":")[0] for p in problems}
        assert {"slot_us", "seed", "flows.ts_cout", "topology.kind"} <= paths

    def test_flow_typo_suggestion(self):
        from repro.core.errors import SpecValidationError

        with pytest.raises(SpecValidationError, match="ts_count"):
            ScenarioSpec.from_dict(_spec_dict(flows={"ts_cout": 4}))

    def test_topology_params_checked_against_builder(self):
        from repro.core.errors import SpecValidationError

        with pytest.raises(SpecValidationError, match="switch_count"):
            ScenarioSpec.from_dict(_spec_dict(
                topology={"kind": "ring", "switch_cout": 2}
            ))

    def test_config_object_fields_checked(self):
        from repro.core.errors import SpecValidationError

        with pytest.raises(SpecValidationError, match="queue_depth"):
            ScenarioSpec.from_dict(_spec_dict(
                config={"queue_dept": 12}
            ))

    def test_bool_rejected_where_number_expected(self):
        from repro.core.errors import SpecValidationError

        with pytest.raises(SpecValidationError, match="slot_us"):
            ScenarioSpec.from_dict(_spec_dict(slot_us=True))

    def test_testbed_extras_remain_legal(self):
        spec = ScenarioSpec.from_dict(
            _spec_dict(clock_drift_ppm=20, trunk_error_rate=0.1)
        )
        assert spec.extras["clock_drift_ppm"] == 20

    def test_escape_hatch_allows_anything(self):
        spec = ScenarioSpec.from_dict(
            _spec_dict(totally_unknown=1), strict=False
        )
        assert spec.extras["totally_unknown"] == 1

    def test_validate_scenario_dict_returns_paths(self):
        from repro.network.scenario import validate_scenario_dict

        problems = validate_scenario_dict(
            {"name": 7, "topology": {"kind": "ring"}, "flows": {}}
        )
        assert any(p.startswith("name:") for p in problems)

    def test_known_extra_keys_track_testbed_signature(self):
        from repro.network.scenario import known_extra_keys

        keys = known_extra_keys()
        assert "frer_ts" in keys and "trunk_error_rate" in keys
        assert "topology" not in keys and "metrics" not in keys

    def test_spec_validation_error_is_configuration_error(self):
        from repro.core.errors import SpecValidationError

        assert issubclass(SpecValidationError, ConfigurationError)


class TestFaultsStanza:
    def _faults(self):
        return {"events": [
            {"kind": "link_down", "link": "sw0.p0", "at_us": 5_000,
             "duration_us": 2_000},
        ]}

    def test_faults_key_parses_and_round_trips(self):
        spec = ScenarioSpec.from_dict(_spec_dict(faults=self._faults()))
        assert spec.faults == self._faults()
        assert "faults" not in spec.extras  # not splatted into Testbed
        assert ScenarioSpec.from_dict(spec.to_dict()).faults == self._faults()

    def test_build_fault_plan(self):
        spec = ScenarioSpec.from_dict(_spec_dict(faults=self._faults()))
        plan = spec.build_fault_plan()
        assert plan is not None and len(plan) == 1
        assert plan.events[0].kind == "link_down"
        assert ScenarioSpec.from_dict(_spec_dict()).build_fault_plan() is None

    def test_invalid_faults_rejected_strictly(self):
        from repro.core.errors import SpecValidationError

        bad = {"events": [{"kind": "link_dwn", "link": "x", "at_us": 1}]}
        with pytest.raises(SpecValidationError,
                           match="did you mean 'link_down'"):
            ScenarioSpec.from_dict(_spec_dict(faults=bad))

    def test_run_attaches_fault_report(self):
        spec = ScenarioSpec.from_dict(_spec_dict(faults=self._faults()))
        result = spec.run()
        assert result.faults is not None
        assert [e["kind"] for e in result.faults.timeline] == [
            "link_down", "link_down",   # applied, then auto-restored
        ]

    def test_run_without_stanza_has_no_report(self):
        result = ScenarioSpec.from_dict(_spec_dict()).run()
        assert result.faults is None

    def test_frer_ring_kind_available(self):
        spec = ScenarioSpec.from_dict(_spec_dict(
            topology={"kind": "frer_ring", "switch_count": 4,
                      "talkers": ["talker0"], "listener": "listener"},
        ))
        topo = spec.build_topology()
        assert len(topo.attachments) == 2
