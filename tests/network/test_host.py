"""End devices."""

from repro.network.host import Host
from repro.network.link import Link
from repro.sim.kernel import Simulator
from repro.switch.packet import EthernetFrame


def _frame(host, pcp, size=64):
    return EthernetFrame(host.mac, host.mac + 1, 1, pcp, size, flow_id=pcp)


class TestHost:
    def test_unique_macs(self):
        sim = Simulator()
        a, b = Host(sim, "a"), Host(sim, "b")
        assert a.mac != b.mac

    def test_inject_serializes_through_nic(self):
        sim = Simulator()
        host = Host(sim, "talker")
        host.start()
        arrivals = []
        Link(sim, host.nic, lambda f: arrivals.append(sim.now),
             propagation_ns=0)
        host.inject(_frame(host, pcp=7))
        sim.run(until=10_000)
        assert arrivals == [512]

    def test_nic_prioritizes_ts_over_be_backlog(self):
        sim = Simulator()
        host = Host(sim, "talker")
        host.start()
        order = []
        Link(sim, host.nic, lambda f: order.append(f.pcp), propagation_ns=0)
        # Three BE frames queue up; a TS frame injected later must pass
        # everything that has not started serializing yet.
        for _ in range(3):
            host.inject(_frame(host, pcp=0, size=1500))
        host.inject(_frame(host, pcp=7))
        sim.run(until=10**6)
        assert order[0] == 0        # in flight, cannot preempt
        assert order[1] == 7        # TS overtakes the rest
        assert order[2:] == [0, 0]

    def test_receive_hook(self):
        sim = Simulator()
        host = Host(sim, "listener")
        seen = []
        host.on_receive = seen.append
        frame = _frame(host, 7)
        host.receive(frame)
        assert seen == [frame] and host.received == 1

    def test_receive_without_hook_counts(self):
        sim = Simulator()
        host = Host(sim, "listener")
        host.receive(_frame(host, 7))
        assert host.received == 1

    def test_start_idempotent(self):
        sim = Simulator()
        host = Host(sim, "h")
        host.start()
        host.start()  # must not raise
