"""MSRP-style RC stream admission."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.units import mbps
from repro.network.admission import admit_flows
from repro.network.topology import ring_topology, star_topology
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass


def _rc(flow_id, rate, src="talker0", dst="listener"):
    return FlowSpec(flow_id, TrafficClass.RC, src, dst, 1024, rate_bps=rate)


def _topo(hops=3):
    return ring_topology(hops, talkers=["talker0"])


class TestAdmission:
    def test_within_budget_admitted(self):
        # budget/port = 0.75 * 0.5 * 1G = 375 Mbps
        flows = FlowSet([_rc(1, mbps(100)), _rc(2, mbps(100))])
        report = admit_flows(_topo(), flows)
        assert len(report.admitted) == 2 and not report.rejected

    def test_oversubscription_rejected_in_order(self):
        flows = FlowSet([_rc(1, mbps(200)), _rc(2, mbps(200)),
                         _rc(3, mbps(200))])
        report = admit_flows(_topo(), flows)
        assert [v.flow_id for v in report.admitted] == [1]
        assert [v.flow_id for v in report.rejected] == [2, 3]

    def test_rejection_names_hop_and_shortfall(self):
        flows = FlowSet([_rc(1, mbps(300)), _rc(2, mbps(300))])
        report = admit_flows(_topo(), flows)
        verdict = report.verdict(2)
        assert not verdict.admitted
        assert verdict.rejecting_hop == ("sw0", 0)
        assert verdict.shortfall_bps == mbps(600) - mbps(375)

    def test_rejected_flow_leaves_no_reservation(self):
        flows = FlowSet([_rc(1, mbps(300)), _rc(2, mbps(300)),
                         _rc(3, mbps(50))])
        report = admit_flows(_topo(), flows)
        # flow 2 rejected; flow 3 still fits in the remainder
        assert report.verdict(3).admitted
        assert report.utilization(("sw0", 0)) == pytest.approx(
            mbps(350) / mbps(375)
        )

    def test_disjoint_paths_do_not_compete(self):
        """Star: two talkers on different leaves only share the core->leaf
        downlink, so each uplink carries only its own flow."""
        topo = star_topology(talkers=("talker0", "talker1"))
        flows = FlowSet([
            _rc(1, mbps(300), src="talker0"),
            _rc(2, mbps(300), src="talker1"),
        ])
        report = admit_flows(topo, flows)
        # the shared final hop (core -> listener leaf -> listener) carries
        # 600 Mbps > 375 budget: the second flow must be rejected there
        assert report.verdict(1).admitted
        assert not report.verdict(2).admitted
        assert report.verdict(2).rejecting_hop[0] == "core"

    def test_reservation_margin(self):
        flows = FlowSet([_rc(1, mbps(200))])
        report = admit_flows(_topo(), flows, reservation_margin=1.5)
        assert report.verdict(1).reserved_bps == mbps(300)

    def test_ts_share_shrinks_budget(self):
        flows = FlowSet([_rc(1, mbps(300))])
        tight = admit_flows(_topo(), flows, ts_utilization=0.7)
        # 0.75 * 0.3 * 1G = 225 Mbps < 300
        assert not tight.verdict(1).admitted

    def test_non_rc_flows_ignored(self):
        flows = FlowSet([
            FlowSpec(1, TrafficClass.TS, "talker0", "listener", 64,
                     period_ns=10_000_000),
            FlowSpec(2, TrafficClass.BE, "talker0", "listener", 1024,
                     rate_bps=mbps(900)),
        ])
        report = admit_flows(_topo(), flows)
        assert report.verdicts == []

    @pytest.mark.parametrize("kwargs", [
        {"rc_limit": 0.0}, {"rc_limit": 1.5},
        {"ts_utilization": 1.0}, {"reservation_margin": 0.5},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            admit_flows(_topo(), FlowSet(), **kwargs)

    def test_admitted_set_runs_clean_in_simulation(self):
        """Admission's promise: the accepted flows really fit."""
        from repro.core.presets import customized_config
        from repro.core.units import ms
        from repro.network.testbed import Testbed
        from repro.traffic.iec60802 import production_cell_flows

        rc_requests = FlowSet([_rc(900_000 + i, mbps(150), src="talker0")
                               for i in range(4)])
        report = admit_flows(_topo(), rc_requests)
        assert len(report.admitted) == 2  # 2 x 150 fits the 375 budget
        flows = production_cell_flows(["talker0"], "listener", flow_count=16)
        for verdict in report.admitted:
            original = rc_requests[verdict.flow_id]
            flows.add(original)
        result = Testbed(_topo(), customized_config(1), flows,
                         slot_ns=62_500).run(duration_ns=ms(20))
        assert result.ts_loss == 0.0
        assert result.loss_rate(TrafficClass.RC) == 0.0
