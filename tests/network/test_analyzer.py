"""The TSN analyzer's statistics."""

import math

import pytest

from repro.core.errors import SimulationError
from repro.core.units import ms
from repro.network.analyzer import LatencySummary, TsnAnalyzer
from repro.sim.kernel import Simulator
from repro.switch.packet import EthernetFrame, make_mac
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass


def _flows():
    return FlowSet(
        [
            FlowSpec(0, TrafficClass.TS, "t", "l", 64, period_ns=ms(10),
                     deadline_ns=1_000_000),
            FlowSpec(1, TrafficClass.TS, "t", "l", 64, period_ns=ms(10)),
            FlowSpec(2, TrafficClass.BE, "t", "l", 1024, rate_bps=10**6),
        ]
    )


def _frame(flow_id, seq, created_ns):
    return EthernetFrame(make_mac(1), make_mac(2), 1, 7, 64,
                         flow_id=flow_id, seq=seq, created_ns=created_ns)


def _arrive(sim, analyzer, flow_id, seq, created, arrival):
    sim.schedule_at(arrival, lambda: analyzer.record(_frame(flow_id, seq, created)))


class TestLatencySummary:
    def test_basic_stats(self):
        summary = LatencySummary.of([100, 200, 300])
        assert summary.count == 3
        assert summary.min_ns == 100 and summary.max_ns == 300
        assert summary.mean_ns == 200
        assert summary.jitter_ns == pytest.approx(math.sqrt(2 / 3) * 100)

    def test_p99(self):
        values = list(range(1, 101))
        assert LatencySummary.of(values).p99_ns == 99

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            LatencySummary.of([])


class TestAnalyzer:
    def test_latency_recorded_per_flow(self):
        sim = Simulator()
        analyzer = TsnAnalyzer(sim, _flows())
        _arrive(sim, analyzer, 0, 0, created=100, arrival=600)
        _arrive(sim, analyzer, 0, 1, created=10_100, arrival=10_700)
        sim.run()
        record = analyzer.records[0]
        assert record.latencies_ns == [500, 600]

    def test_unknown_flow_counted(self):
        sim = Simulator()
        analyzer = TsnAnalyzer(sim, _flows())
        analyzer.record(_frame(999, 0, 0))
        assert analyzer.unknown_frames == 1

    def test_missing_timestamp_rejected(self):
        sim = Simulator()
        analyzer = TsnAnalyzer(sim, _flows())
        with pytest.raises(SimulationError):
            analyzer.record(_frame(0, 0, created_ns=-1))

    def test_class_summary(self):
        sim = Simulator()
        analyzer = TsnAnalyzer(sim, _flows())
        _arrive(sim, analyzer, 0, 0, 0, 500)
        _arrive(sim, analyzer, 1, 0, 0, 700)
        sim.run()
        summary = analyzer.class_summary(TrafficClass.TS)
        assert summary.count == 2 and summary.mean_ns == 600

    def test_deadline_misses(self):
        sim = Simulator()
        analyzer = TsnAnalyzer(sim, _flows())
        _arrive(sim, analyzer, 0, 0, 0, 2_000_000)  # > 1 ms deadline
        _arrive(sim, analyzer, 0, 1, ms(10), ms(10) + 500)
        sim.run()
        assert analyzer.deadline_misses(TrafficClass.TS) == 1

    def test_loss_rate(self):
        sim = Simulator()
        analyzer = TsnAnalyzer(sim, _flows())
        _arrive(sim, analyzer, 0, 0, 0, 500)
        sim.run()
        expected = {0: 2, 1: 2}
        assert analyzer.loss_rate(expected, TrafficClass.TS) == 0.75

    def test_loss_rate_zero_expected(self):
        sim = Simulator()
        analyzer = TsnAnalyzer(sim, _flows())
        assert analyzer.loss_rate({}, TrafficClass.TS) == 0.0

    def test_duplicates_and_reorders(self):
        sim = Simulator()
        analyzer = TsnAnalyzer(sim, _flows())
        for seq, t in [(0, 100), (1, 200), (1, 300), (0, 400)]:
            _arrive(sim, analyzer, 0, seq, 0, t)
        sim.run()
        record = analyzer.records[0]
        assert record.duplicates == 1
        assert record.reorders == 1

    def test_per_flow_jitter_near_zero_for_constant_latency(self):
        sim = Simulator()
        analyzer = TsnAnalyzer(sim, _flows())
        for k in range(4):
            _arrive(sim, analyzer, 0, k, k * ms(10), k * ms(10) + 500)
        sim.run()
        jitters = analyzer.per_flow_jitter_ns(TrafficClass.TS)
        assert jitters == [0.0]
