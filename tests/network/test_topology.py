"""Topology builders and path resolution."""

import pytest

from repro.core.errors import TopologyError
from repro.network.topology import (
    HostAttachment,
    HostUplink,
    TopologySpec,
    TrunkLink,
    linear_topology,
    ring_topology,
    star_topology,
)


class TestRing:
    def test_default_shape(self):
        topo = ring_topology()
        assert len(topo.switches) == 6
        assert topo.max_enabled_ports == 1
        assert topo.hops("talker0", "listener") == 6

    def test_hop_count_tracks_switch_count(self):
        for k in (1, 2, 3, 4):
            topo = ring_topology(switch_count=k, talkers=["t"])
            assert topo.hops("t", "listener") == k

    def test_every_switch_port_consumed(self):
        topo = ring_topology(switch_count=3, talkers=["t"])
        wired = {(t.src, t.src_port) for t in topo.trunks}
        wired |= {(a.switch, a.port) for a in topo.attachments}
        assert wired == {("sw0", 0), ("sw1", 0), ("sw2", 0)}


class TestLinear:
    def test_default_shape(self):
        topo = linear_topology()
        assert topo.max_enabled_ports == 2
        assert topo.hops("talker0", "listener") == 6

    def test_bidirectional_trunks(self):
        topo = linear_topology(switch_count=3, talkers=["t"])
        directed = {(t.src, t.dst) for t in topo.trunks}
        assert ("sw0", "sw1") in directed and ("sw1", "sw0") in directed

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            linear_topology(switch_count=1)


class TestStar:
    def test_default_shape(self):
        topo = star_topology()
        assert topo.switch_ports["core"] == 3
        assert topo.switch_ports["leaf0"] == 1
        # talker leaf -> core -> listener leaf
        assert topo.hops("talker0", "listener") == 3

    def test_talkers_avoid_listener_leaf(self):
        topo = star_topology()
        listener_leaf = topo.attachments[0].switch
        assert all(u.dst != listener_leaf for u in topo.uplinks)


class TestValidation:
    def test_unknown_switch_in_trunk(self):
        spec = TopologySpec(
            "bad", {"sw0": 1}, trunks=[TrunkLink("sw0", 0, "ghost")]
        )
        with pytest.raises(TopologyError):
            spec.validate()

    def test_port_out_of_range(self):
        spec = TopologySpec(
            "bad", {"sw0": 1, "sw1": 1}, trunks=[TrunkLink("sw0", 5, "sw1")]
        )
        with pytest.raises(TopologyError):
            spec.validate()

    def test_double_wired_port(self):
        spec = TopologySpec(
            "bad",
            {"sw0": 1, "sw1": 1, "sw2": 1},
            trunks=[TrunkLink("sw0", 0, "sw1"), TrunkLink("sw0", 0, "sw2")],
        )
        with pytest.raises(TopologyError, match="wired to both"):
            spec.validate()

    def test_attachment_conflicts_with_trunk(self):
        spec = TopologySpec(
            "bad",
            {"sw0": 1, "sw1": 1},
            trunks=[TrunkLink("sw0", 0, "sw1")],
            attachments=[HostAttachment("sw0", 0, "listener")],
        )
        with pytest.raises(TopologyError, match="wired to both"):
            spec.validate()

    def test_uplink_to_unknown_switch(self):
        spec = TopologySpec(
            "bad", {"sw0": 1}, uplinks=[HostUplink("t", "ghost")]
        )
        with pytest.raises(TopologyError):
            spec.validate()


class TestPaths:
    def test_switch_path_includes_endpoints(self):
        topo = ring_topology(switch_count=4, talkers=["t"])
        assert topo.switch_path("t", "listener") == ["sw0", "sw1", "sw2", "sw3"]

    def test_egress_ports_on_path(self):
        topo = ring_topology(switch_count=3, talkers=["t"])
        path = topo.switch_path("t", "listener")
        assert topo.egress_ports_on_path(path) == [("sw0", 0), ("sw1", 0)]

    def test_no_path_raises(self):
        spec = TopologySpec(
            "split",
            {"sw0": 1, "sw1": 1},
            uplinks=[HostUplink("t", "sw0")],
            attachments=[HostAttachment("sw1", 0, "l")],
        )
        spec.validate()
        with pytest.raises(TopologyError, match="no trunk path"):
            spec.switch_path("t", "l")

    def test_unknown_host(self):
        with pytest.raises(TopologyError):
            ring_topology().host_switch("nobody")

    def test_hosts_listing(self):
        topo = ring_topology(talkers=["a", "b"])
        assert set(topo.hosts) == {"a", "b", "listener"}


class TestFrerRing:
    def _topo(self, k=6):
        from repro.network.topology import frer_ring_topology

        return frer_ring_topology(switch_count=k)

    def test_default_shape(self):
        topo = self._topo()
        assert len(topo.switches) == 6
        # sw0 feeds both arcs; everyone else forwards on one port
        assert topo.switch_ports["sw0"] == 2
        assert all(topo.switch_ports[s] == 1 for s in topo.switches
                   if s != "sw0")
        # the listener hangs off both end-of-arc switches
        assert len(topo.attachments) == 2
        assert {a.host for a in topo.attachments} == {"listener"}
        assert len({a.switch for a in topo.attachments}) == 2

    def test_arcs_are_node_disjoint_after_sw0(self):
        topo = self._topo()
        onward = {t.src: t.dst for t in topo.trunks if t.src != "sw0"}
        starts = {t.src_port: t.dst for t in topo.trunks
                  if t.src == "sw0"}

        def arc(first):
            nodes, current = [first], first
            while current in onward:
                current = onward[current]
                nodes.append(current)
            return nodes

        arc_a, arc_b = arc(starts[0]), arc(starts[1])
        assert not set(arc_a) & set(arc_b)
        # each arc terminates at one of the listener's switches
        assert {arc_a[-1], arc_b[-1]} == {a.switch
                                          for a in topo.attachments}

    def test_odd_switch_count(self):
        topo = self._topo(5)
        assert len(topo.switches) == 5
        assert len(topo.attachments) == 2

    def test_minimum_size(self):
        import pytest as _pytest

        from repro.core.errors import TopologyError as _TopologyError
        from repro.network.topology import frer_ring_topology

        with _pytest.raises(_TopologyError):
            frer_ring_topology(switch_count=2)

    def test_validates(self):
        self._topo().validate()
