"""End-to-end scenario runs."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.presets import customized_config
from repro.core.units import mbps, ms
from repro.cqf.bounds import cqf_bounds
from repro.network.testbed import Testbed
from repro.network.topology import ring_topology, star_topology
from repro.traffic.flows import TrafficClass
from repro.traffic.iec60802 import background_flows, production_cell_flows

SLOT = 62_500


def _flows(count=32, talkers=("talker0",), rc=0, be=0, size=64):
    flows = production_cell_flows(list(talkers), "listener",
                                  flow_count=count, size_bytes=size)
    if rc or be:
        for f in background_flows(list(talkers), "listener", rc, be):
            flows.add(f)
    return flows


def _run(topo=None, flows=None, config=None, duration=ms(30), **kwargs):
    topo = topo or ring_topology(switch_count=3, talkers=["talker0"])
    flows = flows if flows is not None else _flows()
    config = config or customized_config(topo.max_enabled_ports)
    testbed = Testbed(topo, config, flows, slot_ns=SLOT, **kwargs)
    return testbed, testbed.run(duration_ns=duration)


class TestBasicRun:
    def test_all_ts_packets_delivered_in_bounds(self):
        topo = ring_topology(switch_count=3, talkers=["talker0"])
        _, result = _run(topo)
        assert result.ts_loss == 0.0
        bounds = cqf_bounds(3, SLOT)
        latencies = result.analyzer.class_latencies(TrafficClass.TS)
        assert latencies and all(bounds.contains(x) for x in latencies)

    def test_expected_counts_match_duration(self):
        _, result = _run(duration=ms(30))
        # 32 flows x 3 periods of 10 ms
        assert sum(
            result.expected_by_flow[f.flow_id] for f in result.flows.ts_flows
        ) == 96

    def test_background_flows_also_delivered(self):
        _, result = _run(flows=_flows(rc=mbps(50), be=mbps(50)))
        assert result.analyzer.received(TrafficClass.RC) > 0
        assert result.analyzer.received(TrafficClass.BE) > 0

    def test_no_switch_drops_in_nominal_run(self):
        _, result = _run(flows=_flows(rc=mbps(50), be=mbps(50)))
        for counters in result.counters().values():
            assert counters["dropped_total"] == 0

    def test_multi_talker_star(self):
        topo = star_topology(talkers=("talker0", "talker1"))
        flows = _flows(count=32, talkers=("talker0", "talker1"))
        _, result = _run(topo, flows, customized_config(3))
        assert result.ts_loss == 0.0
        bounds = cqf_bounds(3, SLOT)
        assert all(
            bounds.contains(x)
            for x in result.analyzer.class_latencies(TrafficClass.TS)
        )

    def test_high_water_within_customized_depth(self):
        _, result = _run(flows=_flows(count=64))
        config = customized_config(1)
        assert result.max_queue_high_water() <= config.queue_depth
        assert result.max_buffer_high_water() <= config.buffer_num


class TestDeterminism:
    def test_same_seed_identical_latencies(self):
        def latencies(seed):
            _, result = _run(
                flows=_flows(rc=mbps(30), be=mbps(30)), seed=seed,
                duration=ms(20),
            )
            return result.analyzer.class_latencies(TrafficClass.TS)

        assert latencies(1) == latencies(1)

    def test_different_seed_changes_background_phases(self):
        def be_latencies(seed):
            _, result = _run(
                flows=_flows(rc=0, be=mbps(30)), seed=seed, duration=ms(20)
            )
            return result.analyzer.class_latencies(TrafficClass.BE)

        assert be_latencies(1) != be_latencies(2)


class TestItpToggle:
    def test_unplanned_injections_overflow_small_queues(self):
        """Without ITP, same-period flows collide in slot 0 and overrun the
        customized queue depth -- the motivation for [24]."""
        flows = _flows(count=64)
        config = customized_config(1, queue_depth=12, buffer_num=96)
        testbed = Testbed(
            ring_topology(switch_count=3, talkers=["talker0"]),
            config, flows, slot_ns=SLOT, use_itp=False,
        )
        result = testbed.run(duration_ns=ms(30))
        assert result.ts_loss > 0.0
        drops = sum(
            c["dropped_tail"] + c["dropped_no_buffer"]
            for c in result.counters().values()
        )
        assert drops > 0

    def test_itp_keeps_same_workload_lossless(self):
        _, result = _run(flows=_flows(count=64))
        assert result.ts_loss == 0.0


class TestValidationErrors:
    def test_duration_positive(self):
        testbed, _ = _run()
        with pytest.raises(ConfigurationError):
            Testbed(
                ring_topology(switch_count=2, talkers=["talker0"]),
                customized_config(1),
                _flows(count=4),
                slot_ns=SLOT,
            ).run(duration_ns=0)

    def test_double_build_rejected(self):
        testbed = Testbed(
            ring_topology(switch_count=2, talkers=["talker0"]),
            customized_config(1),
            _flows(count=4),
            slot_ns=SLOT,
        )
        testbed.build()
        with pytest.raises(ConfigurationError):
            testbed.build()

    def test_too_many_flows_for_vids(self):
        flows = _flows(count=8)
        testbed = Testbed(
            ring_topology(switch_count=2, talkers=["talker0"]),
            customized_config(1),
            flows,
            slot_ns=SLOT,
        )
        testbed._flow_vids = {}
        # simulate the overflow check directly
        big = production_cell_flows(["talker0"], "listener", flow_count=1024)
        for i in range(4):
            for f in production_cell_flows(
                ["talker0"], "listener", flow_count=1024,
                first_flow_id=(i + 1) * 10_000,
            ):
                big.add(f)
        bad = Testbed(
            ring_topology(switch_count=2, talkers=["talker0"]),
            customized_config(1, flow_count=8192),
            big,
            slot_ns=SLOT,
        )
        with pytest.raises(ConfigurationError, match="VLAN"):
            bad.build()


class TestTimeSync:
    def test_drift_without_sync_destroys_determinism(self):
        """Misaligned gates smear the constant CQF latency: per-class jitter
        jumps from ~0 to tens of microseconds."""
        _, synced = _run(flows=_flows(count=16), duration=ms(30))
        _, unsynced = _run(
            flows=_flows(count=16),
            clock_drift_ppm=200,
            clock_offset_spread_ns=40_000,
            duration=ms(30),
        )
        assert unsynced.ts_summary.jitter_ns > 10_000
        assert unsynced.ts_summary.jitter_ns > 10 * max(
            synced.ts_summary.jitter_ns, 1.0
        )

    def test_gptp_restores_bounds(self):
        testbed, result = _run(
            flows=_flows(count=16),
            clock_drift_ppm=20,
            clock_offset_spread_ns=100_000,
            enable_gptp=True,
            duration=ms(30),
        )
        assert testbed.sync_domain.max_abs_offset_ns() < 50
        bounds = cqf_bounds(3, SLOT)
        latencies = result.analyzer.class_latencies(TrafficClass.TS)
        assert latencies and all(bounds.contains(x) for x in latencies)


class TestFailureInjection:
    def test_trunk_errors_surface_as_ts_loss(self):
        """A lossy trunk breaks the zero-loss guarantee and the analyzer
        sees it -- the instrumentation the QoS claims rest on."""
        _, clean = _run(duration=ms(20))
        testbed = Testbed(
            ring_topology(switch_count=3, talkers=["talker0"]),
            customized_config(1),
            _flows(),
            slot_ns=SLOT,
            trunk_error_rate=0.05,
        )
        lossy = testbed.run(duration_ns=ms(20))
        assert clean.ts_loss == 0.0
        assert lossy.ts_loss > 0.01
        corrupted = sum(l.frames_corrupted for l in testbed.links)
        assert corrupted > 0

    def test_link_failure_blackholes_downstream(self):
        testbed = Testbed(
            ring_topology(switch_count=3, talkers=["talker0"]),
            customized_config(1),
            _flows(),
            slot_ns=SLOT,
        )
        testbed.build()
        # cut the first trunk after half the window
        trunk = testbed.links[0]
        testbed.sim.schedule(ms(10), trunk.fail)
        result = testbed.run(duration_ns=ms(20))
        assert result.ts_loss > 0.3
        assert trunk.frames_blackholed > 0


class TestRouteAggregation:
    def test_aggregated_routes_shrink_unicast_usage(self):
        """guideline 1's aggregation: one forwarding entry per destination
        instead of per flow, with identical QoS."""
        flows = _flows(count=32)
        per_flow_tb = Testbed(
            ring_topology(switch_count=2, talkers=["talker0"]),
            customized_config(1), flows, slot_ns=SLOT,
        )
        per_flow = per_flow_tb.run(duration_ns=ms(20))
        flows2 = _flows(count=32)
        aggregated_tb = Testbed(
            ring_topology(switch_count=2, talkers=["talker0"]),
            customized_config(1), flows2, slot_ns=SLOT,
            aggregate_routes=True,
        )
        aggregated = aggregated_tb.run(duration_ns=ms(20))
        assert per_flow.ts_loss == aggregated.ts_loss == 0.0
        assert per_flow.ts_summary.mean_ns == pytest.approx(
            aggregated.ts_summary.mean_ns, rel=0.001
        )
        per_flow_entries = len(per_flow_tb.switches["sw0"].pipeline.unicast)
        aggregated_entries = len(
            aggregated_tb.switches["sw0"].pipeline.unicast
        )
        assert per_flow_entries == 32
        assert aggregated_entries == 1

    def test_aggregated_config_can_shrink_table(self):
        """With aggregation the unicast table can be sized to the
        destination count."""
        flows = _flows(count=32)
        config = customized_config(1).with_updates(unicast_size=1)
        testbed = Testbed(
            ring_topology(switch_count=2, talkers=["talker0"]),
            config, flows, slot_ns=SLOT, aggregate_routes=True,
        )
        result = testbed.run(duration_ns=ms(20))
        assert result.ts_loss == 0.0


class TestPortReport:
    def test_rows_per_port_with_occupancy(self):
        testbed, result = _run(flows=_flows(count=32))
        report = result.port_report()
        lines = report.splitlines()
        port_count = sum(
            len(sw.ports) for sw in result.switches.values()
        )
        # title + header + rule + one row per port
        assert len(lines) == 3 + port_count
        assert "sw0.p0" in report
        assert "queue hw" in lines[1]

    def test_shared_pool_reported_consistently(self):
        testbed = Testbed(
            ring_topology(switch_count=2, talkers=["talker0"]),
            customized_config(1),
            _flows(count=8),
            slot_ns=SLOT,
            shared_buffers=True,
        )
        result = testbed.run(duration_ns=ms(15))
        assert "/96" in result.port_report()  # pool slots shown per row
