"""Links: delay lines between ports and receivers."""

import pytest

from repro.core.errors import ConfigurationError
from repro.network.link import Link
from repro.sim.kernel import Simulator
from repro.switch.counters import SwitchCounters
from repro.switch.gates import GateEngine
from repro.switch.packet import EthernetFrame, make_mac
from repro.switch.port import EgressPort
from repro.switch.queueing import BufferPool, MetadataQueue
from repro.switch.scheduler import StrictPriorityScheduler
from repro.switch.tables import GateControlList, GateEntry


def _port(sim):
    in_gcl, out_gcl = GateControlList(1), GateControlList(1)
    in_gcl.program([GateEntry(0xFF, 10**6)])
    out_gcl.program([GateEntry(0xFF, 10**6)])
    gates = GateEngine(sim, in_gcl, out_gcl)
    port = EgressPort(
        sim, 0, 10**9,
        [MetadataQueue(8, q) for q in range(8)],
        BufferPool(8), gates, StrictPriorityScheduler(), SwitchCounters(),
    )
    gates.set_on_change(port.kick)
    gates.start()
    return port


def _frame():
    return EthernetFrame(make_mac(1), make_mac(2), 1, 7, 64)


class TestLink:
    def test_adds_propagation_delay(self):
        sim = Simulator()
        port = _port(sim)
        arrivals = []
        Link(sim, port, lambda f: arrivals.append(sim.now), propagation_ns=500)
        port.enqueue(_frame(), 7)
        sim.run(until=10_000)
        assert arrivals == [512 + 500]

    def test_counts_frames(self):
        sim = Simulator()
        port = _port(sim)
        link = Link(sim, port, lambda f: None, propagation_ns=0)
        port.enqueue(_frame(), 7)
        port.enqueue(_frame(), 7)
        sim.run(until=10_000)
        assert link.frames_carried == 2

    def test_preserves_order(self):
        sim = Simulator()
        port = _port(sim)
        seqs = []
        Link(sim, port, lambda f: seqs.append(f.frame_id))
        first, second = _frame(), _frame()
        port.enqueue(first, 7)
        port.enqueue(second, 7)
        sim.run(until=10_000)
        assert seqs == [first.frame_id, second.frame_id]

    def test_negative_propagation_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Link(sim, _port(sim), lambda f: None, propagation_ns=-1)


class TestFailureInjection:
    def test_error_rate_drops_reproducibly(self):
        import random as _random

        def run(seed):
            sim = Simulator()
            port = _port(sim)
            arrivals = []
            Link(sim, port, lambda f: arrivals.append(sim.now),
                 error_rate=0.5, rng=_random.Random(seed))
            for _ in range(20):
                port.enqueue(_frame(), 7)
            sim.run(until=10**6)
            return arrivals

        first = run(7)
        assert first == run(7)
        assert 0 < len(first) < 20

    def test_corruption_counted(self):
        import random as _random
        sim = Simulator()
        port = _port(sim)
        link = Link(sim, port, lambda f: None, error_rate=1.0,
                    rng=_random.Random(1))
        port.enqueue(_frame(), 7)
        sim.run(until=10**6)
        assert link.frames_corrupted == 1 and link.frames_carried == 0

    def test_lossy_link_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Link(sim, _port(sim), lambda f: None, error_rate=0.1)

    def test_invalid_error_rate(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Link(sim, _port(sim), lambda f: None, error_rate=1.5)

    def test_fail_and_restore(self):
        sim = Simulator()
        port = _port(sim)
        arrivals = []
        link = Link(sim, port, lambda f: arrivals.append(sim.now))
        link.fail()
        port.enqueue(_frame(), 7)
        sim.run(until=10_000)
        assert arrivals == [] and link.frames_blackholed == 1
        link.restore()
        port.enqueue(_frame(), 7)
        sim.run(until=20_000)
        assert len(arrivals) == 1
