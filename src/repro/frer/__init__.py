"""Subpackage of the TSN-Builder reproduction."""
