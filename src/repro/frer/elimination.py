"""802.1CB sequence recovery: duplicate elimination at the listener.

FRER (Frame Replication and Elimination for Reliability) sends each
stream's frames over multiple disjoint paths and eliminates the duplicates
at (or before) the listener, so any single link/switch failure is seamless
-- zero loss, zero recovery time.  The paper's intro lists *flow integrity*
(802.1CB's family) among the TSN standard groups; this module supplies the
elimination side, and the testbed's ``frer_ts`` mode the replication side.

:class:`SequenceRecovery` implements the standard's *vector recovery
algorithm*: per stream it tracks the highest accepted sequence number and a
sliding history window (bitmask), accepting a frame iff its sequence number
has not been seen inside the window.  Out-of-window stragglers are treated
as rogue and dropped, matching 802.1CB's behaviour.

:class:`FrerEliminator` applies one recovery context per flow id in front
of any receive callback (the TSN analyzer, a host handler, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.core.errors import ConfigurationError
from repro.switch.packet import EthernetFrame

__all__ = ["SequenceRecovery", "FrerEliminator"]


class SequenceRecovery:
    """Vector recovery function for one stream.

    ``history_length`` is the standard's ``frerSeqRcvyHistoryLength``: how
    far behind the highest accepted sequence number a late replica may
    arrive and still be recognized as a duplicate.
    """

    def __init__(self, history_length: int = 64):
        if history_length < 1:
            raise ConfigurationError(
                f"history length must be >= 1, got {history_length}"
            )
        self.history_length = history_length
        self._highest: int = -1
        self._history: int = 0  # bit k = seq (highest - 1 - k) seen
        self.accepted = 0
        self.discarded = 0
        self.rogue = 0

    def accept(self, seq: int) -> bool:
        """True if *seq* is new (deliver it); False if duplicate/rogue."""
        if seq < 0:
            raise ConfigurationError(f"sequence numbers must be >= 0: {seq}")
        if self._highest < 0:
            self._highest = seq
            self.accepted += 1
            return True
        delta = seq - self._highest
        if delta > 0:
            if delta > self.history_length:
                # The whole window scrolls past: every previously seen
                # sequence number is out of range now.  Clearing directly
                # avoids materializing a delta-bit integer for huge jumps
                # (a rogue talker could otherwise force unbounded shifts).
                self._history = 0
            else:
                # advance: shift history, mark the previous highest as seen
                self._history = (
                    (self._history << delta) | (1 << (delta - 1))
                ) & ((1 << self.history_length) - 1)
            self._highest = seq
            self.accepted += 1
            return True
        if delta == 0:
            self.discarded += 1
            return False
        lag = -delta - 1
        if lag >= self.history_length:
            self.rogue += 1
            return False
        if self._history >> lag & 1:
            self.discarded += 1
            return False
        self._history |= 1 << lag
        self.accepted += 1
        return True


class FrerEliminator:
    """Per-flow duplicate elimination in front of a receive callback.

    >>> eliminator = FrerEliminator(analyzer.record)      # doctest: +SKIP
    >>> listener.on_receive = eliminator
    """

    def __init__(
        self,
        deliver: Callable[[EthernetFrame], None],
        history_length: int = 64,
        batch=None,
    ):
        self._deliver = deliver
        self._history_length = history_length
        self._contexts: Dict[int, SequenceRecovery] = {}
        #: Optional :class:`~repro.switch.batch.FrameBatch`; when set,
        #: :meth:`record` also accepts integer frame handles (recovery only
        #: reads flow id + sequence number, so no materialization needed).
        self._batch = batch

    def __call__(self, frame) -> None:
        self.record(frame)

    def record(self, frame) -> None:
        if type(frame) is int:
            flow_id = self._batch.flow_id[frame]
            seq = self._batch.seq[frame]
        else:
            flow_id = frame.flow_id
            seq = frame.seq
        context = self._contexts.get(flow_id)
        if context is None:
            context = SequenceRecovery(self._history_length)
            self._contexts[flow_id] = context
        if context.accept(seq):
            self._deliver(frame)

    # ------------------------------------------------------------- queries

    def context(self, flow_id: int) -> SequenceRecovery:
        if flow_id not in self._contexts:
            raise KeyError(f"no frames seen for flow {flow_id}")
        return self._contexts[flow_id]

    @property
    def duplicates_eliminated(self) -> int:
        return sum(c.discarded for c in self._contexts.values())

    @property
    def rogue_frames(self) -> int:
        return sum(c.rogue for c in self._contexts.values())
