"""One TSN egress port: queues, gates, shapers, buffer pool, transmitter.

The egress port is where the customized resources physically live (paper
Fig. 4): its 8 metadata queues of ``queue_depth`` descriptors, its pool of
``buffer_num`` 2048 B slots, its in/out GCL pair, and its CBS shapers.

Life of a frame here:

``enqueue()``  gate-selects the target queue (CQF redirects to the gathering
queue of the current slot), claims a buffer slot, appends the descriptor,
and arbitrates.  ``_start_transmission()`` dequeues the winner, occupies the
wire for the frame's serialization time plus preamble/IFG overhead, hands
the frame to the attached link at last-bit time, releases the buffer slot,
and re-arbitrates.

Optionally the port implements **frame preemption** (802.1Qbu / 802.3br):
queues in ``express_queues`` form the express MAC; everything else is
preemptable.  When an express frame becomes eligible while a preemptable
frame is on the wire, transmission is cut at the next 64 B fragment
boundary (provided both fragments stay >= 64 B), the express traffic runs,
and the preempted frame resumes afterwards with the extra per-fragment
wire overhead the standard charges.  This removes the one-MTU head-of-line
blocking that is otherwise the only background interference TS traffic
sees -- the residual jitter visible in the paper's Fig. 2 / Fig. 7(d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import ConfigurationError, SimulationError
from repro.core.units import serialization_ns, wire_bytes
from repro.obs.flowspans import FlowSpanRecorder
from repro.obs.headroom import PortHeadroomProbes
from repro.obs.instruments import PortInstruments
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.trace import NULL_TRACER, Tracer
from .counters import SwitchCounters
from .gates import GATE_EVENT_PRIORITY, GateEngine
from .packet import Descriptor, EthernetFrame
from .queueing import BufferPool, MetadataQueue
from .scheduler import SchedulerDecision, StrictPriorityScheduler
from .shaper import CreditBasedShaper

__all__ = ["EgressPort", "MIN_FRAGMENT_BYTES", "RESUME_OVERHEAD_BYTES"]

#: Deliver callback: invoked when the frame's last bit leaves this port.
DeliverFn = Callable[[EthernetFrame], None]

#: 802.3br: every fragment must carry at least this much frame data.
MIN_FRAGMENT_BYTES = 64

#: First-fragment wire overhead equals a normal frame's (preamble/SMD + IFG);
#: each continuation fragment adds its own SMD-C preamble, frag count and
#: mCRC on top -- modelled as this many extra wire bytes per resume.
RESUME_OVERHEAD_BYTES = 24

#: Wire bytes occupied after a preemption cut (mCRC + IFG) before the
#: express frame's preamble may start.
CUT_TAIL_BYTES = 16

#: Shared idle decision for ports without express queues.
_NO_EXPRESS = SchedulerDecision(None)


@dataclass
class _ActiveTx:
    """Bookkeeping of the fragment currently on the wire."""

    descriptor: Descriptor
    queue_id: int
    preemptable: bool
    bytes_done: int            # frame bytes completed in earlier fragments
    fragment_start_ns: int
    fragment_data_bytes: int   # frame bytes this fragment carries
    data_done_handle: EventHandle
    idle_handle: EventHandle
    cut_scheduled: bool = False

    @property
    def total_bytes(self) -> int:
        return self.descriptor.size_bytes

    @property
    def remaining_after_fragment(self) -> int:
        return self.total_bytes - self.bytes_done - self.fragment_data_bytes


class EgressPort:
    """The transmit side of one enabled TSN port."""

    def __init__(
        self,
        sim: Simulator,
        port_id: int,
        rate_bps: int,
        queues: List[MetadataQueue],
        buffer_pool: BufferPool,
        gates: GateEngine,
        scheduler: StrictPriorityScheduler,
        counters: Optional[SwitchCounters] = None,
        preemption_enabled: bool = False,
        express_queues: Tuple[int, ...] = (6, 7),
        tracer: Tracer = NULL_TRACER,
        instruments: Optional[PortInstruments] = None,
        spans: Optional[FlowSpanRecorder] = None,
        headroom: Optional[PortHeadroomProbes] = None,
        name: str = "port",
        batch=None,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"port rate must be positive, got {rate_bps}")
        if not queues:
            raise ConfigurationError("port needs at least one queue")
        self._sim = sim
        self.port_id = port_id
        self.rate_bps = rate_bps
        self.queues = queues
        self.pool = buffer_pool
        self.gates = gates
        self.scheduler = scheduler
        self.counters = counters or SwitchCounters()
        self.preemption_enabled = preemption_enabled
        self.express_queues: Set[int] = set(express_queues)
        self.preemptions = 0
        self._tracer = tracer
        self._obs = instruments
        self._spans = spans
        self._headroom = headroom
        #: Optional :class:`~repro.switch.batch.FrameBatch`; when set,
        #: ``enqueue`` also accepts integer frame handles.
        self._batch = batch
        self.name = name
        self._deliver: Optional[DeliverFn] = None
        self._busy_until = 0
        self._retry_armed_at: Optional[int] = None
        self._gate_wake_at: Optional[int] = None
        self._active: Optional[_ActiveTx] = None
        self._suspended: Optional[_ActiveTx] = None
        self._queue_by_id: Dict[int, MetadataQueue] = {
            q.queue_id: q for q in queues
        }
        self._express_list = [
            q for q in queues if q.queue_id in self.express_queues
        ]

    # ---------------------------------------------------------------- wiring

    def attach(self, deliver: DeliverFn) -> None:
        """Connect the transmit side to a link's receive path."""
        if self._deliver is not None:
            raise ConfigurationError(f"{self.name}: already attached to a link")
        self._deliver = deliver

    @property
    def attached(self) -> bool:
        return self._deliver is not None

    # --------------------------------------------------------------- ingress

    def _flow_of(self, frame) -> int:
        """The flow id of a frame object or batch handle (observer paths)."""
        return (
            self._batch.flow_id[frame] if type(frame) is int
            else frame.flow_id
        )

    def _span_frame(self, frame):
        """A real frame object for the span recorder (materializes handles)."""
        return (
            self._batch.materialize(frame) if type(frame) is int else frame
        )

    def enqueue(self, frame: EthernetFrame, queue_id: int) -> bool:
        """Admit *frame* toward queue *queue_id*; False if dropped.

        Applies, in order: gate-based queue selection (CQF redirect or
        802.1Qci-style gate filtering), buffer allocation, and the queue's
        depth bound.  Every drop is counted in both the port counters and
        the specific queue/pool stats.
        """
        target_id = self.gates.select_enqueue_queue(queue_id)
        if target_id is None:
            self.counters.dropped_gate += 1
            queue = self._queue_by_id.get(queue_id)
            if queue is not None:
                queue.stats.gate_drops += 1
            if self._obs is not None:
                self._obs.on_drop("gate")
            if self._spans is not None:
                self._spans.record(
                    self._sim.now, "drop", self.name, self._span_frame(frame)
                )
            return False
        queue = self._queue_by_id.get(target_id)
        if queue is None:
            raise SimulationError(
                f"{self.name}: gate selected unknown queue {target_id}"
            )
        size_bytes = (
            self._batch.size_bytes[frame] if type(frame) is int
            else frame.size_bytes
        )
        slot = self.pool.allocate(size_bytes)
        if slot is None:
            self.counters.dropped_no_buffer += 1
            if self._obs is not None:
                self._obs.on_drop("no_buffer")
            if self._spans is not None:
                self._spans.record(
                    self._sim.now, "drop", self.name, self._span_frame(frame)
                )
            return False
        descriptor = Descriptor(
            frame=frame,
            buffer_slot=slot,
            enqueued_ns=self._sim.now,
            queue_id=target_id,
            size_bytes=size_bytes,
        )
        if not queue.enqueue(descriptor):
            self.pool.release(slot)
            self.counters.dropped_tail += 1
            if self._obs is not None:
                self._obs.on_drop("tail")
            if self._spans is not None:
                self._spans.record(
                    self._sim.now, "drop", self.name, self._span_frame(frame)
                )
            return False
        self.counters.note_enqueue(target_id)
        if self._obs is not None:
            self._obs.on_enqueue(target_id, len(queue))
            self._obs.on_buffer(self.pool.in_use)
        if self._headroom is not None:
            now = self._sim.now
            self._headroom.on_queue(target_id, len(queue), now)
            self._headroom.on_buffer(self.pool.in_use, now)
        if self._spans is not None:
            self._spans.record(
                self._sim.now, "enqueue", self.name,
                self._span_frame(frame), target_id
            )
        self._update_shaper_backlog(target_id)
        if self._tracer.active:
            self._tracer.emit(
                self._sim.now,
                "queue",
                f"{self.name} enqueue",
                queue=target_id,
                occupancy=len(queue),
                flow=self._flow_of(frame),
            )
        self.kick()
        return True

    def _update_shaper_backlog(self, queue_id: int) -> None:
        shaper = self.scheduler.shapers.get(queue_id)
        if shaper is not None:
            shaper.set_backlog(
                self._sim.now, not self._queue_by_id[queue_id].empty
            )

    # ---------------------------------------------------------------- egress

    def _serialization_ns(self, frame_bytes: int) -> int:
        # Inlined :func:`repro.core.units.serialization_ns` (ceil of
        # bits/rate); called once per arbitration-eligibility check.
        return -(-frame_bytes * 8_000_000_000 // self.rate_bps)

    def kick(self) -> None:
        """(Re-)arbitrate; called on enqueue, gate wakeups, tx completion.

        While a preemptable fragment occupies the wire, an eligible express
        frame triggers a preemption cut instead of waiting.  When idle, the
        order is: express traffic, then the resumption of a suspended
        preemptable frame, then everything else (802.3br: the preemptable
        MAC finishes its mPacket before starting a new preemptable frame).

        With the flip-mode gate engine every gate transition calls back in
        here; the table-mode engine produces no transitions, so whenever an
        arbitration blocks on a gate this method arms a one-shot wakeup at
        the blocked frame's next usable window (the scheduler's
        ``gate_wake_delay_ns`` hint) -- same instant, same event priority
        as the flip that would have kicked the port.
        """
        if self._sim.now < self._busy_until:
            if (
                self.preemption_enabled
                and self._active is not None
                and self._active.preemptable
                and not self._active.cut_scheduled
            ):
                express = self._express_select()
                if express.queue_id is not None:
                    self._schedule_cut()
                elif express.gate_wake_delay_ns is not None:
                    # An express frame could preempt once its gate opens
                    # mid-transmission; wake up to cut exactly then.
                    self._arm_gate_wake(express.gate_wake_delay_ns)
            return
        if self.preemption_enabled:
            express = self._express_select()
            if express.queue_id is not None:
                self._start_transmission(self._queue_by_id[express.queue_id])
                return
            if self._suspended is not None:
                if self._can_resume(self._suspended):
                    self._resume(self._suspended)
                else:
                    self._arm_resume_wake(self._suspended)
                    if express.gate_wake_delay_ns is not None:
                        self._arm_gate_wake(express.gate_wake_delay_ns)
                return  # preemptable MAC is committed to the suspended frame
        decision = self.scheduler.select(
            self._sim.now, self.queues, self.gates, self._serialization_ns
        )
        if decision.queue_id is not None:
            self._start_transmission(self._queue_by_id[decision.queue_id])
            return
        if decision.retry_delay_ns is not None:
            self._arm_retry(decision.retry_delay_ns)
        if decision.gate_wake_delay_ns is not None:
            self._arm_gate_wake(decision.gate_wake_delay_ns)

    def _express_select(self) -> SchedulerDecision:
        """Arbitration over the express queues only."""
        if not self._express_list:
            return _NO_EXPRESS
        return self.scheduler.select(
            self._sim.now,
            self._express_list,
            self.gates,
            self._serialization_ns,
        )

    def _arm_retry(self, delay_ns: int) -> None:
        when = self._sim.now + max(1, delay_ns)
        if self._retry_armed_at is not None and self._retry_armed_at <= when:
            return  # an earlier-or-equal retry is already pending
        self._retry_armed_at = when
        self._sim.post_at(when, self._retry_fire)

    def _retry_fire(self) -> None:
        self._retry_armed_at = None
        self.kick()

    def _arm_gate_wake(self, delay_ns: int) -> None:
        """One-shot re-arbitration when a blocked-on gate window opens.

        Fires at :data:`GATE_EVENT_PRIORITY` -- the same priority the
        flip-mode engine's transitions use -- so same-time frame events
        still observe the post-wakeup arbitration order.  Deduplicated:
        an already-armed earlier-or-equal wakeup is reused.
        """
        when = self._sim.now + delay_ns
        if self._gate_wake_at is not None and self._gate_wake_at <= when:
            return
        self._gate_wake_at = when
        self._sim.post_at(when, self._gate_wake_fire, GATE_EVENT_PRIORITY)

    def _gate_wake_fire(self) -> None:
        self._gate_wake_at = None
        self.kick()

    def _arm_resume_wake(self, tx: _ActiveTx) -> None:
        """Wake when the suspended frame's remainder next fits its gate."""
        if not self.gates.needs_wake_hints:
            return  # flip-mode gate transitions already kick the port
        remaining = tx.total_bytes - tx.bytes_done
        wait = self.gates.next_out_open_window(
            tx.queue_id, self._serialization_ns(remaining)
        )
        if wait is not None:
            self._arm_gate_wake(wait)

    # -------------------------------------------------------- transmission

    def _begin_fragment(
        self,
        tx: _ActiveTx,
        data_bytes: int,
        overhead_bytes: int,
    ) -> None:
        """Put one fragment (possibly the whole frame) on the wire."""
        if self._deliver is None:
            raise SimulationError(f"{self.name}: transmitting with no link")
        now = self._sim.now
        data_time = self._serialization_ns(data_bytes)
        wire_time = self._serialization_ns(data_bytes + overhead_bytes)
        tx.fragment_start_ns = now
        tx.fragment_data_bytes = data_bytes
        tx.cut_scheduled = False
        if self.preemption_enabled:
            tx.data_done_handle = self._sim.schedule(
                data_time, lambda: self._fragment_data_done(tx)
            )
            tx.idle_handle = self._sim.schedule(wire_time, self._tx_idle)
        else:
            # Only a preemption cut ever cancels these; without preemption
            # the fire-and-forget path skips two handle allocations per
            # transmission (event order and SimStats are identical).
            self._sim.post(data_time, lambda: self._fragment_data_done(tx))
            self._sim.post(wire_time, self._tx_idle)
        self._busy_until = now + wire_time
        self._active = tx

    def _start_transmission(self, queue: MetadataQueue) -> None:
        descriptor = queue.dequeue()
        now = self._sim.now
        if self._obs is not None:
            self._obs.on_dequeue(
                queue.queue_id, len(queue), now - descriptor.enqueued_ns
            )
        if self._headroom is not None:
            self._headroom.on_queue(queue.queue_id, len(queue), now)
        if self._spans is not None:
            self._spans.record(
                now, "dequeue", self.name,
                self._span_frame(descriptor.frame), queue.queue_id
            )
        shaper = self.scheduler.shapers.get(queue.queue_id)
        if shaper is not None:
            shaper.begin_transmission(now)
        preemptable = (
            self.preemption_enabled
            and queue.queue_id not in self.express_queues
        )
        if self._tracer.active:
            self._tracer.emit(
                now,
                "tx",
                f"{self.name} start",
                queue=queue.queue_id,
                flow=self._flow_of(descriptor.frame),
                bytes=descriptor.size_bytes,
            )
        tx = _ActiveTx(
            descriptor=descriptor,
            queue_id=queue.queue_id,
            preemptable=preemptable,
            bytes_done=0,
            fragment_start_ns=now,
            fragment_data_bytes=descriptor.size_bytes,
            data_done_handle=None,  # type: ignore[arg-type]
            idle_handle=None,  # type: ignore[arg-type]
        )
        self._begin_fragment(
            tx,
            data_bytes=descriptor.size_bytes,
            overhead_bytes=wire_bytes(0),
        )

    def _can_resume(self, tx: _ActiveTx) -> bool:
        remaining = tx.total_bytes - tx.bytes_done
        # Fused gate query: 0 = closed, None = open forever.
        window = self.gates.time_until_out_close(tx.queue_id)
        needed = self._serialization_ns(remaining)
        return window is None or needed <= window

    def _resume(self, tx: _ActiveTx) -> None:
        """Continue a preempted frame with a continuation fragment."""
        self._suspended = None
        remaining = tx.total_bytes - tx.bytes_done
        shaper = self.scheduler.shapers.get(tx.queue_id)
        if shaper is not None:
            shaper.begin_transmission(self._sim.now)
        if self._tracer.active:
            self._tracer.emit(
                self._sim.now,
                "tx",
                f"{self.name} resume",
                queue=tx.queue_id,
                flow=self._flow_of(tx.descriptor.frame),
                remaining=remaining,
            )
        self._begin_fragment(
            tx,
            data_bytes=remaining,
            overhead_bytes=RESUME_OVERHEAD_BYTES,
        )

    # ----------------------------------------------------------- preemption

    def _schedule_cut(self) -> None:
        """Arrange to stop the active preemptable fragment at a legal
        boundary (both resulting fragments >= 64 B of frame data)."""
        tx = self._active
        assert tx is not None
        now = self._sim.now
        elapsed = now - tx.fragment_start_ns
        on_wire = elapsed * self.rate_bps // (8 * 10**9)
        cut_data = max(
            MIN_FRAGMENT_BYTES,
            -(-max(on_wire + 1, 1) // MIN_FRAGMENT_BYTES)
            * MIN_FRAGMENT_BYTES,
        )
        total_done_after = tx.bytes_done + cut_data
        if tx.total_bytes - total_done_after < MIN_FRAGMENT_BYTES:
            return  # too close to the end; let the frame finish
        if cut_data >= tx.fragment_data_bytes:
            return
        tx.cut_scheduled = True
        tx.data_done_handle.cancel()
        tx.idle_handle.cancel()
        cut_time = tx.fragment_start_ns + self._serialization_ns(cut_data)
        tail_time = self._serialization_ns(CUT_TAIL_BYTES)
        self._busy_until = cut_time + tail_time
        self._sim.post_at(cut_time, lambda: self._execute_cut(tx, cut_data))
        self._sim.post_at(cut_time + tail_time, self._tx_idle)

    def _execute_cut(self, tx: _ActiveTx, cut_data: int) -> None:
        tx.bytes_done += cut_data
        self.preemptions += 1
        shaper = self.scheduler.shapers.get(tx.queue_id)
        if shaper is not None:
            shaper.end_transmission(
                self._sim.now, not self._queue_by_id[tx.queue_id].empty
            )
        if self._tracer.active:
            self._tracer.emit(
                self._sim.now,
                "tx",
                f"{self.name} preempt",
                queue=tx.queue_id,
                flow=self._flow_of(tx.descriptor.frame),
                done=tx.bytes_done,
            )
        self._active = None
        self._suspended = tx

    # ----------------------------------------------------------- completion

    def _fragment_data_done(self, tx: _ActiveTx) -> None:
        """Last data bit of the fragment left; final fragments deliver."""
        tx.bytes_done += tx.fragment_data_bytes
        if tx.bytes_done < tx.total_bytes:
            raise SimulationError(
                f"{self.name}: fragment accounting out of sync"
            )
        self.pool.release(tx.descriptor.buffer_slot)
        self.counters.transmitted += 1
        if self._obs is not None:
            self._obs.on_buffer(self.pool.in_use)
            self._obs.on_transmitted()
        if self._headroom is not None:
            self._headroom.on_buffer(self.pool.in_use, self._sim.now)
        if self._spans is not None:
            self._spans.record(
                self._sim.now, "tx", self.name,
                self._span_frame(tx.descriptor.frame), tx.queue_id
            )
        shaper = self.scheduler.shapers.get(tx.queue_id)
        if shaper is not None:
            shaper.end_transmission(
                self._sim.now, not self._queue_by_id[tx.queue_id].empty
            )
        assert self._deliver is not None
        self._deliver(tx.descriptor.frame)

    def _tx_idle(self) -> None:
        """Wire overhead elapsed: the port may carry the next fragment."""
        if self._active is not None and not self._active.cut_scheduled:
            self._active = None
        self.kick()

    # --------------------------------------------------------------- queries

    @property
    def busy(self) -> bool:
        return self._sim.now < self._busy_until

    def backlog_frames(self) -> int:
        return sum(len(q) for q in self.queues)

    def backlog_bytes(self) -> int:
        return sum(d.size_bytes for q in self.queues for d in q)
