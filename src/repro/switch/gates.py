"""The Gate Ctrl engine: driving queue gates from programmed GCLs.

Each port owns two Gate Control Lists (paper Section III.A): the *in-GCL*
gates enqueue eligibility, the *out-GCL* gates dequeue eligibility.  The
:class:`GateEngine` answers gate-state queries against the switch's
(synchronized) local clock and wakes the egress scheduler when gate state
it was blocked on changes.

Two event disciplines are implemented:

``flip`` (the legacy engine)
    One simulation event per GCL entry transition: the engine walks both
    lists, flips the gate masks at entry boundaries, and notifies the
    egress scheduler on every flip.  Two flip events per entry per cycle
    dominate idle-network event counts, but every transition is observable
    -- so this mode drives the gate tracer category and the
    ``gate_flips_total`` metric.

``table`` (the elided engine)
    Both GCLs are lowered once per cycle-position to a *window table*:
    cumulative sim-time boundary offsets plus the gate mask per segment.
    ``is_open``-style queries are answered by O(log n) bisect on the table
    and a modulo for the cycle wrap -- **no periodic events at all**.  The
    scheduler's re-arbitration is demand-driven instead: when arbitration
    blocks on a gate, it asks :meth:`GateEngine.next_out_open_window` for
    the next usable window and the port posts itself a single wakeup at
    that boundary (at :data:`GATE_EVENT_PRIORITY`, exactly when the legacy
    flip would have kicked it).  Clock-rate slews (the gPTP servo) rebuild
    the tables via :meth:`repro.sim.clock.LocalClock.on_rate_change`,
    preserving the already-committed end of the in-flight entry -- the same
    boundary the legacy engine would have honored, since it computes each
    entry's delay when the entry starts.

The default ``mode="auto"`` picks ``flip`` when a gate tracer or port
instruments are attached (observability wants the transitions) and
``table`` otherwise, so uninstrumented production runs pay no per-cycle
gate events.  Frame-level behaviour is identical in both modes; the
equivalence is locked by tests comparing full frame traces.

Under CQF the two lists each have two entries that alternate a pair of TS
queues every time slot: while queue A's in-gate is open (absorbing arrivals),
queue B's out-gate is open (draining last slot's arrivals); next slot they
swap.  :func:`repro.cqf.gcl_gen` generates exactly those entries.

Non-TS queues are simply left open in every entry's mask, so RC/BE traffic
is gated only by priority and CBS credit.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.obs.instruments import PortInstruments
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACER, Tracer
from .tables import GateControlList, GateEntry

__all__ = ["GateEngine", "CqfGroup", "CqfPair", "GATE_EVENT_PRIORITY"]

#: Gate-flip events (and the table engine's gate wakeups) run before
#: same-time frame events so a frame arriving at exactly a slot boundary
#: sees the new slot's gate states (the hardware updates gate registers on
#: the slot-boundary clock edge).
GATE_EVENT_PRIORITY = -10

_GATE_EVENT_MODES = ("auto", "flip", "table")


class CqfGroup:
    """A group of queues rotated cyclically by a CQF-family shaper.

    ``members`` are the queue ids; ingress enqueues into whichever
    member's in-gate is currently open.  Classic CQF rotates two queues,
    CSQF three; Multi-CQF ports carry one group per CQF system.
    """

    def __init__(self, *members: int):
        if len(members) < 2:
            raise ConfigurationError(
                f"CQF group needs at least two queues, got {members}"
            )
        if len(set(members)) != len(members):
            raise ConfigurationError(
                f"CQF group members must be distinct, got {members}"
            )
        self.members = tuple(members)

    def __contains__(self, queue_id: int) -> bool:
        return queue_id in self.members

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CqfGroup):
            return NotImplemented
        return self.members == other.members

    def __hash__(self) -> int:
        return hash(self.members)

    def __repr__(self) -> str:
        return f"{type(self).__name__}{self.members}"


class CqfPair(CqfGroup):
    """The two-queue group operated by classic CQF (802.1Qch)."""

    def __init__(self, first: int, second: int):
        if first == second:
            raise ConfigurationError("CQF pair needs two distinct queues")
        super().__init__(first, second)


class _GclWalker:
    """Tracks one GCL's active entry against the local clock (flip mode)."""

    def __init__(self, gcl: GateControlList):
        self.gcl = gcl
        self.index = 0
        self.mask = 0xFF  # all open until programmed/started

    @property
    def entry(self) -> GateEntry:
        return self.gcl.entries[self.index]

    def advance(self) -> GateEntry:
        self.index = (self.index + 1) % len(self.gcl.entries)
        self.mask = self.entry.gate_states
        return self.entry


class _WindowTable:
    """One GCL lowered to sim-time boundary offsets over one cycle.

    ``offsets[i]`` is the cumulative sim-ns offset (from ``anchor_ns``) at
    which table position *i* begins; ``masks[i]`` its gate states.  Position
    0 corresponds to GCL entry ``base_index`` -- after a mid-cycle rebuild
    the table is re-anchored at the in-flight entry's committed end, and
    the short stretch before the anchor is answered by ``pre_mask``.

    Per-entry delays replicate the flip engine's arithmetic exactly:
    ``max(1, round(interval / rate))`` per entry, accumulated -- not a
    rounded cumulative sum -- so boundary times are bit-identical to the
    flip engine's under any constant clock rate.
    """

    __slots__ = (
        "entries", "count", "offsets", "masks", "cycle_ns", "anchor_ns",
        "base_index", "pre_mask", "pre_start_ns", "_runs", "_ext",
    )

    def __init__(
        self,
        entries: Tuple[GateEntry, ...],
        clock: LocalClock,
        anchor_ns: int,
        base_index: int = 0,
        pre_mask: Optional[int] = None,
        pre_start_ns: Optional[int] = None,
    ) -> None:
        self.entries = entries
        n = self.count = len(entries)
        offsets: List[int] = []
        masks: List[int] = []
        total = 0
        for i in range(n):
            entry = entries[(base_index + i) % n]
            offsets.append(total)
            masks.append(entry.gate_states)
            total += clock.sim_delay_for_local(entry.interval_ns)
        self.offsets = offsets
        self.masks = masks
        self.cycle_ns = total
        self.anchor_ns = anchor_ns
        self.base_index = base_index
        self.pre_mask = pre_mask
        self.pre_start_ns = pre_start_ns
        self._runs: dict = {}  # queue_id -> ((start_offset, length), ...)
        #: Optional compiled query module (repro.sim._fastpath); attached
        #: by the gate engine when the kernel runs the "c" backend.
        self._ext = None

    # ------------------------------------------------------------- queries

    def mask_at(self, now: int) -> int:
        ext = self._ext
        if ext is not None:
            return ext.mask_at(
                self.offsets, self.masks, self.anchor_ns, self.cycle_ns,
                -1 if self.pre_mask is None else self.pre_mask, now,
            )
        if now < self.anchor_ns:
            return self.pre_mask if self.pre_mask is not None else self.masks[-1]
        pos = (now - self.anchor_ns) % self.cycle_ns
        return self.masks[bisect_right(self.offsets, pos) - 1]

    def locate(self, now: int) -> Tuple[int, int, int, int]:
        """(mask, segment_start, segment_end, table_pos) active at *now*.

        ``table_pos`` is -1 while *now* is still inside the pre-anchor
        stretch left behind by a mid-cycle rebuild.
        """
        if now < self.anchor_ns:
            mask = self.pre_mask if self.pre_mask is not None else self.masks[-1]
            start = self.pre_start_ns if self.pre_start_ns is not None else now
            return mask, start, self.anchor_ns, -1
        rel = now - self.anchor_ns
        pos = rel % self.cycle_ns
        cycle_start = now - pos
        j = bisect_right(self.offsets, pos) - 1
        end = (
            self.offsets[j + 1] if j + 1 < self.count else self.cycle_ns
        ) + cycle_start
        return self.masks[j], cycle_start + self.offsets[j], end, j

    def _duration(self, pos: int) -> int:
        nxt = self.offsets[pos + 1] if pos + 1 < self.count else self.cycle_ns
        return nxt - self.offsets[pos]

    def open_run_remaining(self, queue_id: int, now: int) -> Optional[int]:
        """Sim-ns until *queue_id*'s gate closes; None if it never does."""
        ext = self._ext
        if ext is not None:
            return ext.open_run_remaining(
                self.offsets, self.masks, self.anchor_ns, self.cycle_ns,
                -1 if self.pre_mask is None else self.pre_mask,
                queue_id, now,
            )
        bit = 1 << queue_id
        mask, _start, end, j = self.locate(now)
        if not mask & bit:
            return 0
        total = end - now
        pos = 0 if j < 0 else (j + 1) % self.count
        for _ in range(self.count - 1 if j >= 0 else self.count):
            if not self.masks[pos] & bit:
                return total
            total += self._duration(pos)
            pos = (pos + 1) % self.count
        return None  # open in every entry: open forever

    def runs(self, queue_id: int) -> Tuple[Tuple[int, int], ...]:
        """Open runs of *queue_id* as ``(start_offset, length)`` tuples.

        A *run* is a maximal stretch of consecutive table segments whose
        masks keep the gate open; its start is where the gate transitions
        closed -> open.  Empty when the gate is open (or closed) for the
        whole cycle -- no transitions to wake on.
        """
        cached = self._runs.get(queue_id)
        if cached is not None:
            return cached
        bit = 1 << queue_id
        masks = self.masks
        n = self.count
        runs: List[Tuple[int, int]] = []
        for i in range(n):
            if masks[i] & bit and not masks[i - 1] & bit:
                length = 0
                pos = i
                for _ in range(n):
                    if not masks[pos] & bit:
                        break
                    length += self._duration(pos)
                    pos = (pos + 1) % n
                runs.append((self.offsets[i], length))
        result = tuple(runs)
        self._runs[queue_id] = result
        return result

    def next_open_window(
        self, queue_id: int, needed_ns: int, now: int
    ) -> Optional[int]:
        """Delay until the next run start with length >= *needed_ns*.

        Returns None when no future window within a cycle can ever fit the
        frame (it will never become eligible -- matching the flip engine,
        where such a frame is re-checked on every flip and never passes).
        Only run *starts* are candidates: within a run the remaining window
        only shrinks, so a frame ineligible at the start stays ineligible.
        """
        candidates = [
            offset for offset, length in self.runs(queue_id)
            if length >= needed_ns
        ]
        if not candidates:
            return None
        if now < self.anchor_ns:
            return self.anchor_ns + min(candidates) - now
        pos = (now - self.anchor_ns) % self.cycle_ns
        cycle_start = now - pos
        best = None
        for offset in candidates:
            t = offset if offset > pos else offset + self.cycle_ns
            if best is None or t < best:
                best = t
        return cycle_start + best - now

    # ------------------------------------------------------------ rebuild

    def rebuilt(self, clock: LocalClock, now: int) -> "_WindowTable":
        """A new table reflecting the clock's current rate.

        The in-flight segment's committed end boundary is preserved (the
        flip engine computed that delay when the segment began and will not
        revisit it); everything after is re-derived at the new rate.
        """
        mask, start, end, j = self.locate(now)
        if j < 0:
            # Still inside a previous rebuild's pre-anchor stretch: keep
            # the same committed boundary, refresh the rates beyond it.
            return _WindowTable(
                self.entries, clock, self.anchor_ns, self.base_index,
                self.pre_mask, self.pre_start_ns,
            )
        entry_index = (self.base_index + j) % self.count
        return _WindowTable(
            self.entries, clock, anchor_ns=end,
            base_index=(entry_index + 1) % self.count,
            pre_mask=mask, pre_start_ns=start,
        )


class GateEngine:
    """Runs the in/out GCLs of one port.

    Parameters
    ----------
    sim, clock:
        Simulation kernel and the device's local clock.  Entry intervals are
        expressed in local nanoseconds and converted through the clock, so a
        drifting unsynchronized clock visibly skews slot boundaries (which
        is what time sync exists to prevent).
    on_change:
        Called (with no arguments) after gate masks changed; the port's
        egress scheduler hooks this to re-arbitrate.  In ``table`` mode it
        fires only at :meth:`start` -- later re-arbitration is demand-driven
        through :meth:`next_out_open_window` wake hints.
    mode:
        ``"auto"`` (default) selects ``"flip"`` when gate tracing or port
        instruments are attached and ``"table"`` otherwise; either value
        forces that engine.
    """

    def __init__(
        self,
        sim: Simulator,
        in_gcl: GateControlList,
        out_gcl: GateControlList,
        clock: Optional[LocalClock] = None,
        cqf_pairs: Sequence[CqfGroup] = (),
        on_change: Optional[Callable[[], None]] = None,
        tracer: Tracer = NULL_TRACER,
        instruments: Optional[PortInstruments] = None,
        mode: str = "auto",
        name: str = "gate",
    ) -> None:
        if mode not in _GATE_EVENT_MODES:
            raise ConfigurationError(
                f"{name}: gate event mode must be one of "
                f"{_GATE_EVENT_MODES}, got {mode!r}"
            )
        self._sim = sim
        self._clock = clock or LocalClock(sim)
        self._in = _GclWalker(in_gcl)
        self._out = _GclWalker(out_gcl)
        self._cqf_pairs = list(cqf_pairs)
        self._on_change = on_change
        self._tracer = tracer
        self._obs = instruments
        self._mode = mode
        self._name = name
        self._started = False
        self._elide = False
        self._in_table: Optional[_WindowTable] = None
        self._out_table: Optional[_WindowTable] = None
        self._out_entries: Tuple[GateEntry, ...] = ()
        # Sim-time when the currently active entry of each walker began
        # (flip mode only).
        self._in_entry_start = 0
        self._out_entry_start = 0

    # ------------------------------------------------------------- lifecycle

    @property
    def in_gcl(self) -> GateControlList:
        return self._in.gcl

    @property
    def out_gcl(self) -> GateControlList:
        return self._out.gcl

    def set_on_change(self, callback: Optional[Callable[[], None]]) -> None:
        """Install the scheduler re-arbitration hook."""
        self._on_change = callback

    def program(
        self,
        in_entries: Sequence[GateEntry],
        out_entries: Sequence[GateEntry],
        cqf_pairs: Sequence[CqfGroup] = (),
    ) -> None:
        """Program both GCLs and the CQF group set (before ``start``)."""
        if self._started:
            raise ConfigurationError(f"{self._name}: already started")
        self._in.gcl.program(list(in_entries))
        self._out.gcl.program(list(out_entries))
        self._cqf_pairs = list(cqf_pairs)

    def start(self) -> None:
        """Begin walking both GCLs from their first entries, now.

        A real TAS aligns the cycle to a configured base time; the testbed
        starts all engines at the same simulation instant, which is the
        aligned case (time sync experiments perturb the clocks instead).
        """
        if self._started:
            raise ConfigurationError(f"{self._name}: engine already started")
        if len(self._in.gcl) == 0 or len(self._out.gcl) == 0:
            raise ConfigurationError(
                f"{self._name}: both GCLs must be programmed before start"
            )
        self._started = True
        if self._mode == "auto":
            self._elide = (
                not self._tracer.enabled_for("gate") and self._obs is None
            )
        else:
            self._elide = self._mode == "table"
        self._out_entries = self._out.gcl.entries
        now = self._sim.now
        self._in.mask = self._in.entry.gate_states
        self._out.mask = self._out.entry.gate_states
        self._in_entry_start = now
        self._out_entry_start = now
        for walker, kind in ((self._in, "in"), (self._out, "out")):
            self._tracer.emit(
                now,
                "gate",
                f"{self._name} {kind}-gates",
                mask=f"{walker.mask:08b}",
            )
        if self._elide:
            self._in_table = _WindowTable(self._in.gcl.entries, self._clock, now)
            self._out_table = _WindowTable(self._out_entries, self._clock, now)
            ext = getattr(self._sim, "_ext", None)
            if ext is not None:
                self._in_table._ext = ext
                self._out_table._ext = ext
            subscribe = getattr(self._clock, "on_rate_change", None)
            if subscribe is not None:
                subscribe(self._on_rate_change)
        else:
            self._schedule_flip(self._in, is_in=True)
            self._schedule_flip(self._out, is_in=False)
        self._notify()

    @property
    def event_mode(self) -> str:
        """The resolved event discipline: ``"flip"`` or ``"table"``.

        Only meaningful after :meth:`start` (``"auto"`` resolves there).
        """
        if not self._started:
            return self._mode
        return "table" if self._elide else "flip"

    @property
    def needs_wake_hints(self) -> bool:
        """True when blocked arbitrations must arm their own gate wakeups.

        The flip engine kicks the port on every transition, so hints are
        wasted work there; the table engine produces no transitions and
        relies on the scheduler asking :meth:`next_out_open_window`.
        """
        return self._elide

    # --------------------------------------------------------- flip engine

    def _schedule_flip(self, walker: _GclWalker, is_in: bool) -> None:
        delay = self._clock.sim_delay_for_local(walker.entry.interval_ns)
        self._sim.post(
            delay,
            lambda: self._flip(walker, is_in),
            GATE_EVENT_PRIORITY,
        )

    def _flip(self, walker: _GclWalker, is_in: bool) -> None:
        walker.advance()
        if is_in:
            self._in_entry_start = self._sim.now
        else:
            self._out_entry_start = self._sim.now
        if self._obs is not None:
            self._obs.on_gate_flip("in" if is_in else "out")
        self._tracer.emit(
            self._sim.now,
            "gate",
            f"{self._name} {'in' if is_in else 'out'}-gates",
            mask=f"{walker.mask:08b}",
        )
        self._schedule_flip(walker, is_in)
        self._notify()

    def _notify(self) -> None:
        if self._on_change is not None:
            self._on_change()

    # -------------------------------------------------------- table engine

    def _on_rate_change(self) -> None:
        now = self._sim.now
        assert self._in_table is not None and self._out_table is not None
        self._in_table = self._in_table.rebuilt(self._clock, now)
        self._out_table = self._out_table.rebuilt(self._clock, now)
        ext = getattr(self._sim, "_ext", None)
        if ext is not None:
            self._in_table._ext = ext
            self._out_table._ext = ext

    # --------------------------------------------------------------- queries

    @property
    def started(self) -> bool:
        return self._started

    @property
    def in_mask(self) -> int:
        if self._in_table is not None:
            return self._in_table.mask_at(self._sim.now)
        return self._in.mask

    @property
    def out_mask(self) -> int:
        if self._out_table is not None:
            return self._out_table.mask_at(self._sim.now)
        return self._out.mask

    def in_open(self, queue_id: int) -> bool:
        """Is the enqueue gate of *queue_id* currently open?"""
        return bool(self.in_mask >> queue_id & 1)

    def out_open(self, queue_id: int) -> bool:
        """Is the dequeue gate of *queue_id* currently open?"""
        return bool(self.out_mask >> queue_id & 1)

    def select_enqueue_queue(self, queue_id: int) -> Optional[int]:
        """Resolve which queue should absorb a frame classified to *queue_id*.

        If the queue belongs to a CQF group, the open member of the group
        is returned (CQF-family shapers enqueue into the gathering queue of
        the current slot).  Otherwise *queue_id* itself is returned when its
        in-gate is open, or ``None`` when closed (the frame is filtered --
        a gate drop).
        """
        for pair in self._cqf_pairs:
            if queue_id in pair:
                in_mask = self.in_mask
                for member in pair.members:
                    if in_mask >> member & 1:
                        return member
                return None
        return queue_id if self.in_open(queue_id) else None

    def time_until_out_close(self, queue_id: int) -> Optional[int]:
        """Sim-ns until *queue_id*'s out-gate closes; None if it never does.

        Used by the egress scheduler's guard band: a frame is started only
        if its serialization completes before the gate closes, preventing
        slot overruns (802.1Qbv transmission-window check).
        """
        if self._out_table is not None:
            return self._out_table.open_run_remaining(queue_id, self._sim.now)
        if not self.out_open(queue_id):
            return 0
        entries = self._out_entries or self._out.gcl.entries
        if len(entries) == 1:
            return None  # single always-matching entry: open forever
        # Remaining time in the current entry, then walk ahead.
        elapsed = self._sim.now - self._out_entry_start
        current_len = self._clock.sim_delay_for_local(
            entries[self._out.index].interval_ns
        )
        remaining = max(0, current_len - elapsed)
        total = remaining
        index = self._out.index
        for _ in range(len(entries) - 1):
            index = (index + 1) % len(entries)
            entry = entries[index]
            if not entry.is_open(queue_id):
                return total
            total += self._clock.sim_delay_for_local(entry.interval_ns)
        return None  # open in every entry

    def next_out_open_window(
        self, queue_id: int, needed_ns: int = 0
    ) -> Optional[int]:
        """Sim-ns until the next out-gate window fitting *needed_ns* opens.

        The table engine's wake hint: the earliest future closed->open
        transition of *queue_id* whose contiguous open run is at least
        *needed_ns* long.  None when no such window exists in the cycle
        (the frame can never transmit) or when the engine runs per-flip
        events (the flips already provide the wakeups).
        """
        if self._out_table is None:
            return None
        return self._out_table.next_open_window(
            queue_id, needed_ns, self._sim.now
        )
