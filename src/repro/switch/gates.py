"""The Gate Ctrl engine: driving queue gates from programmed GCLs.

Each port owns two Gate Control Lists (paper Section III.A): the *in-GCL*
gates enqueue eligibility, the *out-GCL* gates dequeue eligibility.  The
:class:`GateEngine` walks both lists against the switch's (synchronized)
local clock, flips the gate state masks at entry boundaries, and notifies
the egress scheduler so a newly opened gate immediately re-arbitrates.

Under CQF the two lists each have two entries that alternate a pair of TS
queues every time slot: while queue A's in-gate is open (absorbing arrivals),
queue B's out-gate is open (draining last slot's arrivals); next slot they
swap.  :func:`repro.cqf.gcl_gen` generates exactly those entries.

Non-TS queues are simply left open in every entry's mask, so RC/BE traffic
is gated only by priority and CBS credit.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.obs.instruments import PortInstruments
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACER, Tracer
from .tables import GateControlList, GateEntry

__all__ = ["GateEngine", "CqfPair"]

#: Gate-flip events run before same-time frame events so a frame arriving at
#: exactly a slot boundary sees the new slot's gate states (the hardware
#: updates gate registers on the slot-boundary clock edge).
GATE_EVENT_PRIORITY = -10


class CqfPair:
    """A pair of queues operated cyclically by CQF (802.1Qch).

    ``members`` are the two queue ids; ingress enqueues into whichever
    member's in-gate is currently open.
    """

    def __init__(self, first: int, second: int):
        if first == second:
            raise ConfigurationError("CQF pair needs two distinct queues")
        self.members = (first, second)

    def __contains__(self, queue_id: int) -> bool:
        return queue_id in self.members

    def __repr__(self) -> str:
        return f"CqfPair{self.members}"


class _GclWalker:
    """Tracks one GCL's active entry against the local clock."""

    def __init__(self, gcl: GateControlList):
        self.gcl = gcl
        self.index = 0
        self.mask = 0xFF  # all open until programmed/started

    @property
    def entry(self) -> GateEntry:
        return self.gcl.entries[self.index]

    def advance(self) -> GateEntry:
        self.index = (self.index + 1) % len(self.gcl.entries)
        self.mask = self.entry.gate_states
        return self.entry


class GateEngine:
    """Runs the in/out GCLs of one port.

    Parameters
    ----------
    sim, clock:
        Simulation kernel and the device's local clock.  Entry intervals are
        expressed in local nanoseconds and converted through the clock, so a
        drifting unsynchronized clock visibly skews slot boundaries (which
        is what time sync exists to prevent).
    on_change:
        Called (with no arguments) after gate masks changed; the port's
        egress scheduler hooks this to re-arbitrate.
    """

    def __init__(
        self,
        sim: Simulator,
        in_gcl: GateControlList,
        out_gcl: GateControlList,
        clock: Optional[LocalClock] = None,
        cqf_pairs: Sequence[CqfPair] = (),
        on_change: Optional[Callable[[], None]] = None,
        tracer: Tracer = NULL_TRACER,
        instruments: Optional[PortInstruments] = None,
        name: str = "gate",
    ) -> None:
        self._sim = sim
        self._clock = clock or LocalClock(sim)
        self._in = _GclWalker(in_gcl)
        self._out = _GclWalker(out_gcl)
        self._cqf_pairs = list(cqf_pairs)
        self._on_change = on_change
        self._tracer = tracer
        self._obs = instruments
        self._name = name
        self._started = False
        # Sim-time when the currently active entry of each walker began.
        self._in_entry_start = 0
        self._out_entry_start = 0

    # ------------------------------------------------------------- lifecycle

    @property
    def in_gcl(self) -> GateControlList:
        return self._in.gcl

    @property
    def out_gcl(self) -> GateControlList:
        return self._out.gcl

    def set_on_change(self, callback: Optional[Callable[[], None]]) -> None:
        """Install the scheduler re-arbitration hook."""
        self._on_change = callback

    def program(
        self,
        in_entries: Sequence[GateEntry],
        out_entries: Sequence[GateEntry],
        cqf_pairs: Sequence[CqfPair] = (),
    ) -> None:
        """Program both GCLs and the CQF pair set (before ``start``)."""
        if self._started:
            raise ConfigurationError(f"{self._name}: already started")
        self._in.gcl.program(list(in_entries))
        self._out.gcl.program(list(out_entries))
        self._cqf_pairs = list(cqf_pairs)

    def start(self) -> None:
        """Begin walking both GCLs from their first entries, now.

        A real TAS aligns the cycle to a configured base time; the testbed
        starts all engines at the same simulation instant, which is the
        aligned case (time sync experiments perturb the clocks instead).
        """
        if self._started:
            raise ConfigurationError(f"{self._name}: engine already started")
        if len(self._in.gcl) == 0 or len(self._out.gcl) == 0:
            raise ConfigurationError(
                f"{self._name}: both GCLs must be programmed before start"
            )
        self._started = True
        self._in.mask = self._in.entry.gate_states
        self._out.mask = self._out.entry.gate_states
        self._in_entry_start = self._sim.now
        self._out_entry_start = self._sim.now
        for walker, kind in ((self._in, "in"), (self._out, "out")):
            self._tracer.emit(
                self._sim.now,
                "gate",
                f"{self._name} {kind}-gates",
                mask=f"{walker.mask:08b}",
            )
        self._schedule_flip(self._in, is_in=True)
        self._schedule_flip(self._out, is_in=False)
        self._notify()

    def _schedule_flip(self, walker: _GclWalker, is_in: bool) -> None:
        delay = self._clock.sim_delay_for_local(walker.entry.interval_ns)
        self._sim.schedule(
            delay,
            lambda: self._flip(walker, is_in),
            priority=GATE_EVENT_PRIORITY,
        )

    def _flip(self, walker: _GclWalker, is_in: bool) -> None:
        walker.advance()
        if is_in:
            self._in_entry_start = self._sim.now
        else:
            self._out_entry_start = self._sim.now
        if self._obs is not None:
            self._obs.on_gate_flip("in" if is_in else "out")
        self._tracer.emit(
            self._sim.now,
            "gate",
            f"{self._name} {'in' if is_in else 'out'}-gates",
            mask=f"{walker.mask:08b}",
        )
        self._schedule_flip(walker, is_in)
        self._notify()

    def _notify(self) -> None:
        if self._on_change is not None:
            self._on_change()

    # --------------------------------------------------------------- queries

    @property
    def started(self) -> bool:
        return self._started

    @property
    def in_mask(self) -> int:
        return self._in.mask

    @property
    def out_mask(self) -> int:
        return self._out.mask

    def in_open(self, queue_id: int) -> bool:
        """Is the enqueue gate of *queue_id* currently open?"""
        return bool(self._in.mask >> queue_id & 1)

    def out_open(self, queue_id: int) -> bool:
        """Is the dequeue gate of *queue_id* currently open?"""
        return bool(self._out.mask >> queue_id & 1)

    def select_enqueue_queue(self, queue_id: int) -> Optional[int]:
        """Resolve which queue should absorb a frame classified to *queue_id*.

        If the queue belongs to a CQF pair, the open member of the pair is
        returned (CQF enqueues into the gathering queue of the current
        slot).  Otherwise *queue_id* itself is returned when its in-gate is
        open, or ``None`` when closed (the frame is filtered -- a gate drop).
        """
        for pair in self._cqf_pairs:
            if queue_id in pair:
                for member in pair.members:
                    if self.in_open(member):
                        return member
                return None
        return queue_id if self.in_open(queue_id) else None

    def time_until_out_close(self, queue_id: int) -> Optional[int]:
        """Sim-ns until *queue_id*'s out-gate closes; None if it never does.

        Used by the egress scheduler's guard band: a frame is started only
        if its serialization completes before the gate closes, preventing
        slot overruns (802.1Qbv transmission-window check).
        """
        if not self.out_open(queue_id):
            return 0
        entries = self._out.gcl.entries
        if len(entries) == 1:
            return None  # single always-matching entry: open forever
        # Remaining time in the current entry, then walk ahead.
        elapsed = self._sim.now - self._out_entry_start
        current_len = self._clock.sim_delay_for_local(
            entries[self._out.index].interval_ns
        )
        remaining = max(0, current_len - elapsed)
        total = remaining
        index = self._out.index
        for _ in range(len(entries) - 1):
            index = (index + 1) % len(entries)
            entry = entries[index]
            if not entry.is_open(queue_id):
                return total
            total += self._clock.sim_delay_for_local(entry.interval_ns)
        return None  # open in every entry
