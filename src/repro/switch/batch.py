"""Struct-of-arrays frame store: the batched fast path's representation.

The generator→link→ingress→queue→egress hot loop spends most of its
Python-side budget constructing, validating and garbage-collecting
:class:`~repro.switch.packet.EthernetFrame` instances whose fields are
read a handful of times each.  A :class:`FrameBatch` keeps those fields in
preallocated parallel ``array('q')`` columns instead and hands the
dataplane an integer *frame handle*; every device on the fast path
(:class:`~repro.traffic.generator.PeriodicSource`,
:class:`~repro.network.host.Host`, :class:`~repro.network.link.Link`,
:class:`~repro.switch.device.TsnSwitch`,
:class:`~repro.switch.port.EgressPort`,
:class:`~repro.network.analyzer.TsnAnalyzer`) reads the columns directly.

Full frame objects are **materialized lazily** -- only when an observer
actually needs a real object:

* flow spans hold per-frame objects, so span-instrumented testbeds don't
  enable the batch at all (see ``Testbed(fastpath=...)``);
* fault corruption on a link materializes a per-link copy with
  ``fcs_ok=False`` (replicated/multicast handles must not share the
  corruption -- the object path corrupts only the traversing copy);
* anything outside the wired fast path that receives a handle can call
  :meth:`FrameBatch.materialize` for an ``EthernetFrame`` that is
  field-for-field identical to what the object path would have produced,
  including its ``frame_id``.

Determinism: handles consume the same global ``frame_id`` counter the
object path uses, at the same points in simulated time, so ids -- and
therefore traces and reports -- are byte-identical across both paths.
"""

from __future__ import annotations

from array import array

from .packet import EthernetFrame, _MULTICAST_BIT, _frame_ids

__all__ = ["FrameBatch"]


class FrameBatch:
    """Preallocated parallel columns of per-frame fields.

    Handles are dense indices (allocation order); columns double in
    capacity when full.  Handles are never recycled within a run -- a
    40 ms star run allocates ~1.5k frames, a 100k-frame campaign shard
    ~8 MB of columns, both trivially affordable next to object churn.
    """

    __slots__ = (
        "capacity", "count", "flow_id", "size_bytes", "priority", "seq",
        "inject_ns", "src_mac", "dst_mac", "vlan_id", "frame_id", "fcs_ok",
    )

    _COLUMNS = ("flow_id", "size_bytes", "priority", "seq", "inject_ns",
                "src_mac", "dst_mac", "vlan_id", "frame_id")

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.count = 0
        zeros = array("q", bytes(8 * capacity))
        for name in self._COLUMNS:
            setattr(self, name, array("q", zeros))
        self.fcs_ok = bytearray(capacity)

    def __len__(self) -> int:
        return self.count

    def _grow(self) -> None:
        pad = array("q", bytes(8 * self.capacity))
        for name in self._COLUMNS:
            getattr(self, name).extend(pad)
        self.fcs_ok.extend(bytes(self.capacity))
        self.capacity *= 2

    def alloc(self, src_mac: int, dst_mac: int, vlan_id: int, pcp: int,
              size_bytes: int, flow_id: int, seq: int,
              created_ns: int) -> int:
        """Claim a handle for one frame; fields mirror ``EthernetFrame``."""
        handle = self.count
        if handle == self.capacity:
            self._grow()
        self.count = handle + 1
        self.src_mac[handle] = src_mac
        self.dst_mac[handle] = dst_mac
        self.vlan_id[handle] = vlan_id
        self.priority[handle] = pcp
        self.size_bytes[handle] = size_bytes
        self.flow_id[handle] = flow_id
        self.seq[handle] = seq
        self.inject_ns[handle] = created_ns
        # Draw from the shared id counter so the object path and the batch
        # path assign identical frame ids in identical order.
        self.frame_id[handle] = next(_frame_ids)
        self.fcs_ok[handle] = 1
        return handle

    def is_multicast(self, handle: int) -> bool:
        return bool(self.dst_mac[handle] & _MULTICAST_BIT)

    def materialize(self, handle: int, fcs_ok=None) -> EthernetFrame:
        """The full ``EthernetFrame`` this handle stands for.

        The stored ``frame_id`` is passed through explicitly, so
        materializing does not advance the global id counter (ids were
        already drawn at :meth:`alloc` time).
        """
        return EthernetFrame(
            src_mac=self.src_mac[handle],
            dst_mac=self.dst_mac[handle],
            vlan_id=self.vlan_id[handle],
            pcp=self.priority[handle],
            size_bytes=self.size_bytes[handle],
            flow_id=self.flow_id[handle],
            seq=self.seq[handle],
            created_ns=self.inject_ns[handle],
            fcs_ok=bool(self.fcs_ok[handle]) if fcs_ok is None else fcs_ok,
            frame_id=self.frame_id[handle],
        )
