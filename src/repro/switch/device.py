"""The complete TSN switch device.

:class:`TsnSwitch` assembles the five components around one
:class:`~repro.core.config.SwitchConfig`: the shared-table pipeline (Packet
Switch + Ingress Filter), one :class:`~repro.switch.port.EgressPort` per
enabled TSN port (Gate Ctrl + Egress Sched + queues/buffers), and a local
clock for Time Sync to discipline.

Control-plane programming happens through the ``program_*`` methods, which
are what the testbed (and a user's own orchestration) call after synthesis:

* ``program_flow`` -- classification + unicast entry for one flow.
* ``program_meter`` -- a token-bucket policer.
* ``program_gcls`` -- the per-port in/out Gate Control Lists and CQF pairs.
* ``program_cbs`` -- bind a queue to a credit-based shaper.

``start()`` launches the gate engines; frames then flow through
``receive()``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigurationError, TopologyError
from repro.core.units import GIGABIT
from repro.obs.flowspans import FlowSpanRecorder
from repro.obs.headroom import HeadroomRecorder, PortHeadroomProbes
from repro.obs.instruments import PortInstruments, SwitchInstruments
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACER, Tracer
from .counters import SwitchCounters
from .gates import CqfPair, GateEngine
from .meter import TokenBucketMeter
from .packet import EthernetFrame, MacAddress
from .port import DeliverFn
from .pipeline import SwitchPipeline
from .port import EgressPort
from .queueing import BufferPool, MetadataQueue
from .scheduler import StrictPriorityScheduler
from .shaper import CreditBasedShaper
from .tables import (
    CbsMapTable,
    CbsParams,
    CbsTable,
    ClassTarget,
    GateControlList,
    GateEntry,
)

__all__ = ["TsnSwitch"]

#: FPGA pipeline latency: parse + classify + lookup before enqueue.  The
#: prototype runs at 125 MHz; 60 cycles of header processing is 480 ns.
DEFAULT_PROCESSING_DELAY_NS = 480


class TsnSwitch:
    """One customized TSN switch instance."""

    def __init__(
        self,
        sim: Simulator,
        config: SwitchConfig,
        rate_bps: int = GIGABIT,
        clock: Optional[LocalClock] = None,
        processing_delay_ns: int = DEFAULT_PROCESSING_DELAY_NS,
        scheduler_factory: Optional[Callable[[], StrictPriorityScheduler]] = None,
        shared_buffers: bool = False,
        preemption_enabled: bool = False,
        express_queues: Tuple[int, ...] = (6, 7),
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[FlowSpanRecorder] = None,
        headroom: Optional[HeadroomRecorder] = None,
        gate_events: str = "auto",
        name: Optional[str] = None,
        batch=None,
    ) -> None:
        config.validate()
        self._sim = sim
        self.config = config
        self.name = name or config.name
        self.rate_bps = rate_bps
        self.clock = clock or LocalClock(sim)
        self.processing_delay_ns = processing_delay_ns
        # One fresh arbiter per port; default is the paper's strict
        # priority.  The Egress Sched template's factory lands here when
        # instantiating through SwitchModel.
        self._scheduler_factory = scheduler_factory or StrictPriorityScheduler
        # Buffer organization: the paper allocates an exclusive pool per
        # enabled port (Table III's buffer row scales with ports); the
        # switch-memory-switch alternative it cites ([16]) shares one pool
        # across all ports.  Same total BRAM, different burst absorption --
        # see the buffer-sharing ablation benchmark.
        self.shared_buffers = shared_buffers
        # Frame preemption (802.1Qbu): the express_queues form the express
        # MAC; other queues' frames can be cut at 64B fragment boundaries.
        self.preemption_enabled = preemption_enabled
        self.express_queues = tuple(express_queues)
        self._shared_pool: Optional[BufferPool] = (
            BufferPool(config.buffer_num * config.port_num)
            if shared_buffers
            else None
        )
        self._tracer = tracer
        self._spans = spans
        # Opt-in occupancy probes (repro.obs.headroom); None keeps the
        # uninstrumented fast path, same contract as metrics/spans.
        self._headroom = headroom
        # Gate-event discipline for every port's GateEngine: "auto" elides
        # per-cycle flip events whenever nothing observes them (see
        # repro.switch.gates); "flip"/"table" force a mode.
        self.gate_events = gate_events
        # One SwitchInstruments per device binds this switch's label space
        # in the (shared) registry; None keeps the uninstrumented fast path.
        self.instruments: Optional[SwitchInstruments] = (
            SwitchInstruments(metrics, self.name)
            if metrics is not None
            else None
        )
        #: Optional :class:`~repro.switch.batch.FrameBatch`; when set, the
        #: dataplane also moves integer frame handles (the batched fast
        #: path -- see docs/performance.md).
        self._batch = batch
        self.counters = SwitchCounters()
        self.pipeline = SwitchPipeline(
            config, self.counters, instruments=self.instruments, batch=batch
        )
        self.ports: List[EgressPort] = []
        self._local_hosts: Dict[int, "DeliverFn"] = {}
        self._gate_engines: List[GateEngine] = []
        self.cbs_map_tables: List[CbsMapTable] = []
        self.cbs_tables: List[CbsTable] = []
        self._started = False
        for port_id in range(config.port_num):
            self._build_port(port_id)

    def _build_port(self, port_id: int) -> None:
        config = self.config
        queues = [
            MetadataQueue(config.queue_depth, queue_id)
            for queue_id in range(config.queue_num)
        ]
        pool = self._shared_pool or BufferPool(config.buffer_num)
        in_gcl = GateControlList(config.gate_size, f"{self.name}.p{port_id}.in")
        out_gcl = GateControlList(config.gate_size, f"{self.name}.p{port_id}.out")
        # Default: everything open all the time (a plain 802.1Q switch) --
        # program_gcls replaces this with the synthesized schedule.
        always_open = [GateEntry(0xFF, 1_000_000)]
        in_gcl.program(list(always_open))
        out_gcl.program(list(always_open))
        scheduler = self._scheduler_factory()
        port_instruments: Optional[PortInstruments] = (
            self.instruments.for_port(port_id, range(config.queue_num))
            if self.instruments is not None
            else None
        )
        headroom_probes: Optional[PortHeadroomProbes] = (
            self._headroom.for_port(
                self.name, port_id, config.queue_num, config.queue_depth,
                pool, start_ns=self._sim.now,
            )
            if self._headroom is not None
            else None
        )
        engine = GateEngine(
            self._sim,
            in_gcl,
            out_gcl,
            clock=self.clock,
            tracer=self._tracer,
            instruments=port_instruments,
            mode=self.gate_events,
            name=f"{self.name}.p{port_id}",
        )
        port = EgressPort(
            sim=self._sim,
            port_id=port_id,
            rate_bps=self.rate_bps,
            queues=queues,
            buffer_pool=pool,
            gates=engine,
            scheduler=scheduler,
            counters=self.counters,
            preemption_enabled=self.preemption_enabled,
            express_queues=self.express_queues,
            tracer=self._tracer,
            instruments=port_instruments,
            spans=self._spans,
            headroom=headroom_probes,
            name=f"{self.name}.p{port_id}",
            batch=self._batch,
        )
        engine.set_on_change(port.kick)
        self.ports.append(port)
        self._gate_engines.append(engine)
        self.cbs_map_tables.append(CbsMapTable(config.cbs_map_size))
        self.cbs_tables.append(CbsTable(config.cbs_size))

    # --------------------------------------------------------- control plane

    def attach_host(self, deliver: "DeliverFn") -> int:
        """Register a locally attached host (listener / embedded CPU).

        Returns the *local port id* to use as ``outport`` when programming
        flows that terminate here.  Local delivery models the prototype's
        host/DMA path: dedicated, so it contends with no TSN port.
        """
        local_id = self.config.port_num + len(self._local_hosts)
        self._local_hosts[local_id] = deliver
        return local_id

    def program_flow(
        self,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        vlan_id: int,
        pcp: int,
        outport: int,
        queue_id: int,
        meter_id: int = -1,
        aggregate_route: bool = False,
    ) -> None:
        """Install classification + forwarding state for one flow.

        *outport* may be a TSN port (0..port_num-1) or a local port id
        returned by :meth:`attach_host`.  With *aggregate_route* the
        forwarding entry is VLAN-wildcarded so every flow to the same
        destination shares it (guideline 1's aggregation option); the
        classification entry stays per-flow either way.
        """
        if outport not in self._local_hosts:
            self._check_port(outport)
        if not 0 <= queue_id < self.config.queue_num:
            raise ConfigurationError(
                f"{self.name}: queue {queue_id} outside 0.."
                f"{self.config.queue_num - 1}"
            )
        self.pipeline.classification.program(
            src_mac, dst_mac, vlan_id, pcp, ClassTarget(meter_id, queue_id)
        )
        self.program_route(
            dst_mac, None if aggregate_route else vlan_id, outport
        )

    def program_route(
        self, dst_mac: MacAddress, vlan_id: Optional[int], outport: int
    ) -> None:
        """Install only a forwarding entry (no classification, no meter).

        ``vlan_id=None`` installs a VLAN-wildcard (aggregated) entry.  Used
        for traffic that rides the 802.1Q defaults -- e.g. background
        aggregates whose queue comes from the PCP fallback.  Re-programming
        an existing route must agree with it: silently flipping an entry
        another flow depends on would corrupt that flow's path.
        """
        if outport not in self._local_hosts:
            self._check_port(outport)
        probe_vid = (
            self.pipeline.unicast.WILDCARD_VID if vlan_id is None else vlan_id
        )
        existing = self.pipeline.unicast.find_outport(dst_mac, probe_vid)
        if existing is not None and existing != outport:
            raise ConfigurationError(
                f"{self.name}: route ({dst_mac:#x}, vid {vlan_id}) already "
                f"points at port {existing}, refusing to repoint to "
                f"{outport}"
            )
        self.pipeline.unicast.program(dst_mac, vlan_id, outport)

    def program_meter(self, meter_id: int, rate_bps: int, burst_bytes: int) -> None:
        """Install a token-bucket policer."""
        self.pipeline.meters.program(
            meter_id, TokenBucketMeter(rate_bps, burst_bytes)
        )

    def program_gcls(
        self,
        port_id: int,
        in_entries: Sequence[GateEntry],
        out_entries: Sequence[GateEntry],
        cqf_pairs: Sequence[CqfPair] = (),
    ) -> None:
        """Replace a port's gate schedules (before ``start``)."""
        if self._started:
            raise ConfigurationError(
                f"{self.name}: cannot reprogram GCLs after start"
            )
        self._check_port(port_id)
        self._gate_engines[port_id].program(in_entries, out_entries, cqf_pairs)

    def program_cbs(
        self, port_id: int, queue_id: int, cbs_id: int, params: CbsParams
    ) -> None:
        """Bind *queue_id* on *port_id* to a credit-based shaper."""
        self._check_port(port_id)
        self.cbs_map_tables[port_id].program(queue_id, cbs_id)
        self.cbs_tables[port_id].program(cbs_id, params)
        self.ports[port_id].scheduler.shapers[queue_id] = CreditBasedShaper(
            params, name=f"{self.name}.p{port_id}.q{queue_id}"
        )

    def start(self) -> None:
        """Launch the gate engines; the switch begins honoring schedules."""
        if self._started:
            raise ConfigurationError(f"{self.name}: already started")
        self._started = True
        for engine in self._gate_engines:
            engine.start()

    # ------------------------------------------------------------- dataplane

    def _flow_of(self, frame) -> int:
        return (
            self._batch.flow_id[frame] if type(frame) is int
            else frame.flow_id
        )

    def _span_frame(self, frame):
        return (
            self._batch.materialize(frame) if type(frame) is int else frame
        )

    def receive(self, frame, inport: Optional[int] = None) -> None:
        """A frame arrived (fully, store-and-forward) from a link.

        *frame* is an :class:`EthernetFrame` or, on the batched fast path,
        an integer :class:`~repro.switch.batch.FrameBatch` handle.
        """
        self.counters.received += 1
        if self.instruments is not None:
            self.instruments.on_received()
        if self._spans is not None:
            self._spans.record(
                self._sim.now, "ingress", self.name, self._span_frame(frame)
            )
        fcs_ok = (
            self._batch.fcs_ok[frame] if type(frame) is int else frame.fcs_ok
        )
        if not fcs_ok:
            # The MAC's FCS check rejects bit-errored frames before the
            # pipeline ever sees them, exactly like real ingress silicon.
            self.counters.dropped_corrupt += 1
            if self._tracer.active:
                self._tracer.emit(
                    self._sim.now, "drop", f"{self.name} corrupt_fcs",
                    flow=self._flow_of(frame),
                )
            if self._spans is not None:
                self._spans.record(
                    self._sim.now, "drop", self.name, self._span_frame(frame)
                )
            return
        self._sim.post(
            self.processing_delay_ns, lambda: self._process(frame)
        )

    def _process(self, frame) -> None:
        decision = self.pipeline.process(frame, self._sim.now)
        if decision.dropped:
            if self._tracer.active:
                self._tracer.emit(
                    self._sim.now,
                    "drop",
                    f"{self.name} {decision.drop_reason}",
                    flow=self._flow_of(frame),
                )
            if self._spans is not None:
                self._spans.record(
                    self._sim.now, "drop", self.name, self._span_frame(frame)
                )
            return
        for outport, queue_id in decision.targets:
            local = self._local_hosts.get(outport)
            if local is not None:
                self.counters.forwarded += 1
                local(frame)
            elif self.ports[outport].enqueue(frame, queue_id):
                self.counters.forwarded += 1
            else:
                continue
            if self.instruments is not None:
                self.instruments.on_forwarded()

    # --------------------------------------------------------------- helpers

    def _check_port(self, port_id: int) -> None:
        if not 0 <= port_id < len(self.ports):
            raise TopologyError(
                f"{self.name}: port {port_id} outside 0..{len(self.ports) - 1}"
            )

    def gate_engine(self, port_id: int) -> GateEngine:
        """The Gate Ctrl engine of one port (inspection/testing)."""
        self._check_port(port_id)
        return self._gate_engines[port_id]

    def queue_high_water(self) -> Dict[Tuple[int, int], int]:
        """(port, queue) -> observed maximum occupancy, for sizing studies."""
        return {
            (port.port_id, queue.queue_id): queue.stats.high_water
            for port in self.ports
            for queue in port.queues
        }

    def buffer_high_water(self) -> Dict[int, int]:
        """port -> observed maximum buffer-pool occupancy."""
        return {port.port_id: port.pool.stats.high_water for port in self.ports}

    def table_fill(self) -> Dict[str, int]:
        """Installed entries per sized table kind (headroom accounting).

        Per-port tables (gate, CBS) report the worst port's fill, matching
        how the configuration provisions one size for every port.  The
        ``multicast`` key is present only when the table exists.
        """
        fill = {
            "unicast": len(self.pipeline.unicast),
            "classification": len(self.pipeline.classification),
            "meter": len(self.pipeline.meters),
            "gate": max(
                (
                    max(len(engine.in_gcl), len(engine.out_gcl))
                    for engine in self._gate_engines
                ),
                default=0,
            ),
            "cbs_map": max(
                (len(table) for table in self.cbs_map_tables), default=0
            ),
            "cbs": max((len(table) for table in self.cbs_tables), default=0),
        }
        if self.pipeline.multicast is not None:
            fill["multicast"] = len(self.pipeline.multicast)
        return fill

    def meters_in_use(self) -> int:
        """Installed meters that actually policed at least one frame."""
        return sum(
            1 for _, meter in self.pipeline.meters if meter.exercised
        )
