"""Credit-based shaper (802.1Qav), the Egress Sched's RC-queue regulator.

Credit evolves lazily between scheduler decisions:

* while the shaped queue has backlog and the port sends other traffic,
  credit rises at ``idleSlope`` (the reserved bandwidth);
* while a frame of the shaped queue is transmitting, credit falls at
  ``sendSlope`` (= idleSlope - port rate);
* an empty queue with positive credit snaps to zero (no banking), while
  negative credit recovers toward zero at ``idleSlope``.

A queue is *eligible* only when credit >= 0.  Credit is held in exact
integer bit-nanoseconds (slope_bps x elapsed_ns), avoiding float drift over
long runs; ``credit_bits`` exposes it as a float only for inspection.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.errors import SimulationError
from .tables import CbsParams

__all__ = ["CreditBasedShaper", "ShaperMode"]

_NS_PER_S = 10**9


class ShaperMode(enum.Enum):
    """What the shaped queue is doing, as told by the scheduler."""

    IDLE = "idle"          # queue empty
    WAITING = "waiting"    # backlog present, not currently transmitting
    SENDING = "sending"    # a frame of this queue occupies the port


class CreditBasedShaper:
    """One queue's CBS state machine."""

    def __init__(self, params: CbsParams, name: str = "cbs"):
        self.params = params
        self.name = name
        self._credit = 0          # bit-nanoseconds
        self._last_ns = 0
        self._mode = ShaperMode.IDLE

    # ----------------------------------------------------------- accounting

    def _slope(self) -> int:
        if self._mode is ShaperMode.SENDING:
            return self.params.send_slope_bps
        return self.params.idle_slope_bps

    def _accumulate(self, now_ns: int) -> None:
        if now_ns < self._last_ns:
            raise SimulationError(f"{self.name}: time moved backwards")
        elapsed = now_ns - self._last_ns
        if elapsed:
            self._credit += self._slope() * elapsed
            if self._mode is ShaperMode.IDLE and self._credit > 0:
                self._credit = 0
            self._last_ns = now_ns

    # ---------------------------------------------------- scheduler interface

    @property
    def mode(self) -> ShaperMode:
        return self._mode

    def credit_bits(self, now_ns: int) -> float:
        """Current credit in bits."""
        self._accumulate(now_ns)
        return self._credit / _NS_PER_S

    def eligible(self, now_ns: int) -> bool:
        """May the shaped queue start a frame now?"""
        self._accumulate(now_ns)
        return self._credit >= 0

    def set_backlog(self, now_ns: int, has_backlog: bool) -> None:
        """Scheduler reports the shaped queue's emptiness after en/dequeue."""
        self._accumulate(now_ns)
        if self._mode is ShaperMode.SENDING:
            return  # transition resolved at end_transmission
        self._mode = ShaperMode.WAITING if has_backlog else ShaperMode.IDLE
        if self._mode is ShaperMode.IDLE and self._credit > 0:
            self._credit = 0

    def begin_transmission(self, now_ns: int) -> None:
        self._accumulate(now_ns)
        self._mode = ShaperMode.SENDING

    def end_transmission(self, now_ns: int, has_backlog: bool) -> None:
        self._accumulate(now_ns)
        self._mode = ShaperMode.WAITING if has_backlog else ShaperMode.IDLE
        if self._mode is ShaperMode.IDLE and self._credit > 0:
            self._credit = 0

    def ns_until_eligible(self, now_ns: int) -> Optional[int]:
        """How long until credit recovers to zero, assuming WAITING.

        None when already eligible.  The scheduler uses this to arm a
        re-arbitration event instead of polling.
        """
        self._accumulate(now_ns)
        if self._credit >= 0:
            return None
        deficit = -self._credit
        slope = self.params.idle_slope_bps
        return -(-deficit // slope)  # ceil division
