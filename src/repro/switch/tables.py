"""The seven table kinds of the resource view (paper Fig. 4).

Every table is a *fixed-capacity* structure: its size is the customization
parameter the corresponding ``set_*`` API configured, and programming an
entry beyond capacity raises :class:`~repro.core.errors.CapacityError` --
exactly the failure a control plane hits on real silicon when the chosen
table size underestimated the application's flow count.

Lookups return ``None`` on miss; dataplane policy for misses (flood, drop,
default queue, ...) lives in the pipeline, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

from repro.core.errors import CapacityError, ConfigurationError
from .meter import TokenBucketMeter
from .packet import MacAddress

__all__ = [
    "FixedTable",
    "UnicastTable",
    "MulticastTable",
    "ClassTarget",
    "ClassificationTable",
    "MeterTable",
    "GateEntry",
    "GateControlList",
    "CbsMapTable",
    "CbsParams",
    "CbsTable",
]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class FixedTable(Generic[K, V]):
    """A bounded exact-match table.

    Models a hash/CAM lookup memory of ``capacity`` entries.  Re-inserting an
    existing key updates it in place without consuming a new entry.
    """

    def __init__(self, capacity: int, name: str = "table"):
        if capacity <= 0:
            raise ConfigurationError(
                f"{name}: capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.name = name
        self._entries: Dict[K, V] = {}
        self.lookups = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[K, V]]:
        return iter(self._entries.items())

    @property
    def free(self) -> int:
        return self.capacity - len(self._entries)

    @property
    def utilization(self) -> float:
        """Installed entries as a fraction of capacity."""
        return len(self._entries) / self.capacity

    def insert(self, key: K, value: V) -> None:
        """Program an entry; raises :class:`CapacityError` when full."""
        if key not in self._entries and len(self._entries) >= self.capacity:
            raise CapacityError(
                f"{self.name}: capacity {self.capacity} exhausted "
                f"inserting {key!r}"
            )
        self._entries[key] = value

    def remove(self, key: K) -> None:
        """Remove an entry; KeyError if absent."""
        del self._entries[key]

    def lookup(self, key: K) -> Optional[V]:
        """Match *key*; None on miss.  Counts lookups/misses."""
        self.lookups += 1
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        return value

    def clear(self) -> None:
        self._entries.clear()


# ---------------------------------------------------------------- Packet Switch


class UnicastTable(FixedTable[Tuple[MacAddress, int], int]):
    """(Dst MAC, VID) -> outport.  The Packet Switch's forwarding table.

    Supports *aggregated* entries (paper Section III.C guideline 1: "some
    table entries could be aggregated according to the transmission path"):
    programming with ``vid=None`` installs a VLAN-wildcard entry matching
    every VID of that destination, so all flows sharing a destination and
    path consume one entry instead of one per flow.  Exact entries win over
    the wildcard, as in real TCAM/hash lookup pipelines.
    """

    #: Sentinel VID for aggregated (VLAN-wildcard) entries.
    WILDCARD_VID = -1

    def __init__(self, capacity: int):
        super().__init__(capacity, "unicast table")

    def program(
        self, dst_mac: MacAddress, vid: Optional[int], outport: int
    ) -> None:
        key_vid = self.WILDCARD_VID if vid is None else vid
        self.insert((dst_mac, key_vid), outport)

    def find_outport(self, dst_mac: MacAddress, vid: int) -> Optional[int]:
        exact = self.lookup((dst_mac, vid))
        if exact is not None:
            return exact
        return self.lookup((dst_mac, self.WILDCARD_VID))


class MulticastTable(FixedTable[int, Tuple[int, ...]]):
    """MC ID -> set of outports.

    The paper's prototype omits this table (multicast split into unicast
    flows); it is provided for configurations with ``multicast_size > 0``.
    """

    def __init__(self, capacity: int):
        super().__init__(capacity, "multicast table")

    def program(self, mc_id: int, outports: Tuple[int, ...]) -> None:
        if not outports:
            raise ConfigurationError("multicast entry needs at least one outport")
        self.insert(mc_id, tuple(outports))

    def find_outports(self, mc_id: int) -> Optional[Tuple[int, ...]]:
        return self.lookup(mc_id)


# --------------------------------------------------------------- Ingress Filter


@dataclass(frozen=True)
class ClassTarget:
    """Result of a classification hit: which meter and which queue."""

    meter_id: int
    queue_id: int


ClassKey = Tuple[MacAddress, MacAddress, int, int]  # SMAC, DMAC, VID, PRI


class ClassificationTable(FixedTable[ClassKey, ClassTarget]):
    """(Src MAC, Dst MAC, VID, PRI) -> (Meter ID, Queue ID)."""

    def __init__(self, capacity: int):
        super().__init__(capacity, "classification table")

    def program(
        self,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        vid: int,
        pri: int,
        target: ClassTarget,
    ) -> None:
        self.insert((src_mac, dst_mac, vid, pri), target)

    def classify(
        self, src_mac: MacAddress, dst_mac: MacAddress, vid: int, pri: int
    ) -> Optional[ClassTarget]:
        return self.lookup((src_mac, dst_mac, vid, pri))


class MeterTable(FixedTable[int, TokenBucketMeter]):
    """Meter ID -> token-bucket policer state."""

    def __init__(self, capacity: int):
        super().__init__(capacity, "meter table")

    def program(self, meter_id: int, meter: TokenBucketMeter) -> None:
        self.insert(meter_id, meter)

    def meter(self, meter_id: int) -> Optional[TokenBucketMeter]:
        return self.lookup(meter_id)


# ------------------------------------------------------------------- Gate Ctrl


@dataclass(frozen=True)
class GateEntry:
    """One GCL row: per-queue gate states held for an interval.

    ``gate_states`` is an 8-bit mask, bit *q* = 1 meaning queue *q*'s gate is
    open.  With the 17 b entry width of the evaluation, 8 bits carry states
    and the rest the interval -- we keep the interval in ns for the
    simulator and let the RTL backend quantize it to clock cycles.
    """

    gate_states: int
    interval_ns: int

    def __post_init__(self) -> None:
        if not 0 <= self.gate_states < 256:
            raise ConfigurationError(
                f"gate_states must be an 8-bit mask, got {self.gate_states:#x}"
            )
        if self.interval_ns <= 0:
            raise ConfigurationError(
                f"gate interval must be positive, got {self.interval_ns}"
            )

    def is_open(self, queue_id: int) -> bool:
        return bool(self.gate_states >> queue_id & 1)


class GateControlList:
    """A bounded, cyclic list of :class:`GateEntry` rows.

    Capacity is the ``gate_size`` customization parameter: under CQF it is 2,
    under general 802.1Qbv schedules it equals the number of time slots in
    the scheduling cycle.
    """

    def __init__(self, capacity: int, name: str = "GCL"):
        if capacity <= 0:
            raise ConfigurationError(
                f"{name}: capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.name = name
        self._entries: List[GateEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[GateEntry]:
        return iter(self._entries)

    @property
    def entries(self) -> Tuple[GateEntry, ...]:
        return tuple(self._entries)

    @property
    def utilization(self) -> float:
        """Programmed rows as a fraction of capacity."""
        return len(self._entries) / self.capacity

    def append(self, entry: GateEntry) -> None:
        if len(self._entries) >= self.capacity:
            raise CapacityError(
                f"{self.name}: capacity {self.capacity} exhausted"
            )
        self._entries.append(entry)

    def program(self, entries: List[GateEntry]) -> None:
        """Replace the whole list atomically (a control-plane GCL update)."""
        if len(entries) > self.capacity:
            raise CapacityError(
                f"{self.name}: {len(entries)} entries exceed capacity "
                f"{self.capacity}"
            )
        if not entries:
            raise ConfigurationError(f"{self.name}: cannot program empty GCL")
        self._entries = list(entries)

    @property
    def cycle_ns(self) -> int:
        """Sum of entry intervals -- the schedule repeats with this period."""
        return sum(entry.interval_ns for entry in self._entries)

    def state_at(self, time_in_cycle_ns: int) -> GateEntry:
        """The entry active at an offset into the cycle."""
        if not self._entries:
            raise ConfigurationError(f"{self.name}: GCL not programmed")
        offset = time_in_cycle_ns % self.cycle_ns
        for entry in self._entries:
            if offset < entry.interval_ns:
                return entry
            offset -= entry.interval_ns
        raise AssertionError("unreachable: offset within cycle by construction")


# ----------------------------------------------------------------- Egress Sched


class CbsMapTable(FixedTable[int, int]):
    """Queue ID -> CBS ID: which shaper regulates which queue."""

    def __init__(self, capacity: int):
        super().__init__(capacity, "CBS map table")

    def program(self, queue_id: int, cbs_id: int) -> None:
        self.insert(queue_id, cbs_id)

    def shaper_for(self, queue_id: int) -> Optional[int]:
        return self.lookup(queue_id)


@dataclass(frozen=True)
class CbsParams:
    """Credit-based shaper slopes (802.1Qav).

    ``idle_slope_bps`` is the reserved bandwidth: credit gained per second
    while frames wait.  ``send_slope_bps`` is credit lost per second while
    transmitting and must be negative; the standard fixes
    ``send_slope = idle_slope - port_rate``.
    """

    idle_slope_bps: int
    send_slope_bps: int

    def __post_init__(self) -> None:
        if self.idle_slope_bps <= 0:
            raise ConfigurationError(
                f"idleSlope must be positive, got {self.idle_slope_bps}"
            )
        if self.send_slope_bps >= 0:
            raise ConfigurationError(
                f"sendSlope must be negative, got {self.send_slope_bps}"
            )

    @classmethod
    def for_reservation(cls, idle_slope_bps: int, port_rate_bps: int) -> "CbsParams":
        """Standard slopes for reserving *idle_slope_bps* on a port."""
        if idle_slope_bps >= port_rate_bps:
            raise ConfigurationError(
                f"reservation {idle_slope_bps} must be below port rate "
                f"{port_rate_bps}"
            )
        return cls(idle_slope_bps, idle_slope_bps - port_rate_bps)


class CbsTable(FixedTable[int, CbsParams]):
    """CBS ID -> shaper slopes."""

    def __init__(self, capacity: int):
        super().__init__(capacity, "CBS table")

    def program(self, cbs_id: int, params: CbsParams) -> None:
        self.insert(cbs_id, params)

    def params(self, cbs_id: int) -> Optional[CbsParams]:
        return self.lookup(cbs_id)
