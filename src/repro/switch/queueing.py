"""Bounded metadata queues and the per-port packet buffer pool.

These are the two resources the motivation experiment (paper Table I)
customizes, and the dominant BRAM consumers in Table III.  Their *bounded*
behaviour is the point: a queue beyond ``depth`` or an empty buffer pool
drops the packet and counts it -- the QoS experiments exist to show the
customized (smaller) sizes still never drop TS traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Union

from repro.core.errors import ConfigurationError
from .packet import Descriptor, EthernetFrame

__all__ = ["MetadataQueue", "BufferPool", "QueueStats", "PoolStats"]


@dataclass
class QueueStats:
    """Occupancy and drop accounting of one queue."""

    enqueued: int = 0
    enqueued_bytes: int = 0
    dequeued: int = 0
    tail_drops: int = 0
    gate_drops: int = 0          # arrived while the in-gate was closed
    high_water: int = 0


class MetadataQueue:
    """A FIFO of packet descriptors with a hard depth bound.

    ``depth`` is the ``queue_depth`` customization parameter: the number of
    32-bit metadata words the queue's BRAM holds.
    """

    def __init__(self, depth: int, queue_id: int = 0):
        if depth <= 0:
            raise ConfigurationError(f"queue depth must be positive, got {depth}")
        self.depth = depth
        self.queue_id = queue_id
        self._fifo: Deque[Descriptor] = deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._fifo)

    def __iter__(self):
        """Iterate resident descriptors head-first (non-destructive)."""
        return iter(self._fifo)

    @property
    def full(self) -> bool:
        return len(self._fifo) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._fifo

    def enqueue(self, descriptor: Descriptor) -> bool:
        """Append; False (tail drop) when the queue is at depth."""
        if self.full:
            self.stats.tail_drops += 1
            return False
        self._fifo.append(descriptor)
        self.stats.enqueued += 1
        self.stats.enqueued_bytes += descriptor.size_bytes
        if len(self._fifo) > self.stats.high_water:
            self.stats.high_water = len(self._fifo)
        return True

    def head(self) -> Optional[Descriptor]:
        """Peek the head descriptor without removing it."""
        return self._fifo[0] if self._fifo else None

    def dequeue(self) -> Descriptor:
        """Remove and return the head; IndexError if empty."""
        descriptor = self._fifo.popleft()
        self.stats.dequeued += 1
        return descriptor

    def drain(self) -> List[Descriptor]:
        """Remove everything (used when tearing a scenario down)."""
        items = list(self._fifo)
        self._fifo.clear()
        self.stats.dequeued += len(items)
        return items


@dataclass
class PoolStats:
    """Allocation accounting of one buffer pool."""

    allocations: int = 0
    allocated_bytes: int = 0
    releases: int = 0
    exhaustion_drops: int = 0
    high_water: int = 0


class BufferPool:
    """A fixed set of packet buffer slots for one port.

    ``slots`` is the ``buffer_num`` customization parameter.  Slot ids are
    recycled LIFO, which keeps high-water marks meaningful for sizing
    studies (``stats.high_water`` is the minimum ``buffer_num`` that this
    run would have needed).
    """

    def __init__(self, slots: int, slot_bytes: int = 2048):
        if slots <= 0:
            raise ConfigurationError(f"buffer slots must be positive, got {slots}")
        if slot_bytes <= 0:
            raise ConfigurationError(
                f"slot size must be positive, got {slot_bytes}"
            )
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._free: List[int] = list(range(slots - 1, -1, -1))
        # O(1) membership mirror of ``_free``: host pools run to 32k slots,
        # and a ``slot in self._free`` scan per release dominated profiles.
        self._is_free = bytearray(b"\x01") * slots
        self.stats = PoolStats()

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> int:
        return self.slots - len(self._free)

    def allocate(
        self, frame: Union[EthernetFrame, int]
    ) -> Optional[int]:
        """Claim a slot for *frame*; None when exhausted (drop) or oversize.

        *frame* is either a full :class:`EthernetFrame` or, on the batched
        fast path, its size in bytes (the only field admission needs).
        """
        size_bytes = frame if type(frame) is int else frame.size_bytes
        if size_bytes > self.slot_bytes:
            raise ConfigurationError(
                f"frame of {size_bytes}B exceeds buffer slot "
                f"{self.slot_bytes}B"
            )
        if not self._free:
            self.stats.exhaustion_drops += 1
            return None
        slot = self._free.pop()
        self._is_free[slot] = 0
        stats = self.stats
        stats.allocations += 1
        stats.allocated_bytes += size_bytes
        in_use = self.slots - len(self._free)
        if in_use > stats.high_water:
            stats.high_water = in_use
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the pool."""
        if not 0 <= slot < self.slots:
            raise ConfigurationError(f"slot {slot} outside pool of {self.slots}")
        if self._is_free[slot]:
            raise ConfigurationError(f"double release of slot {slot}")
        self._free.append(slot)
        self._is_free[slot] = 1
        self.stats.releases += 1

    # --------------------------------------------------------- fault windows

    def seize(self, count: int) -> List[int]:
        """Take up to *count* free slots out of circulation (fault injection).

        Models a transient shared-memory pressure fault: seized slots are
        invisible to :meth:`allocate` until handed back via :meth:`unseize`.
        Returns the seized slot ids (possibly fewer than requested when the
        pool is busy).  Occupied slots are never seized, so in-flight frames
        are unaffected -- only future admissions feel the shrink.
        """
        if count < 0:
            raise ConfigurationError(f"cannot seize {count} slots")
        taken: List[int] = []
        while self._free and len(taken) < count:
            slot = self._free.pop()
            self._is_free[slot] = 0
            taken.append(slot)
        return taken

    def unseize(self, taken: List[int]) -> None:
        """Return slots previously taken by :meth:`seize`."""
        for slot in taken:
            if not 0 <= slot < self.slots:
                raise ConfigurationError(
                    f"slot {slot} outside pool of {self.slots}"
                )
            if self._is_free[slot]:
                raise ConfigurationError(f"slot {slot} is already free")
            self._free.append(slot)
            self._is_free[slot] = 1
