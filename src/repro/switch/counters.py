"""Per-switch dataplane counters.

One :class:`SwitchCounters` per device aggregates what happened to every
frame: forwarded, or dropped at which stage.  The QoS experiments assert on
these (TS traffic must show zero drops of any kind), and the ablation
benchmarks read them to show *where* loss appears when a resource is
undersized (tail drops for queue depth, buffer-exhaustion drops for the
pool, policer drops for meters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["SwitchCounters"]


@dataclass
class SwitchCounters:
    """Frame-accounting for one switch."""

    received: int = 0
    forwarded: int = 0            # enqueued toward an egress port
    transmitted: int = 0          # completed serialization on some port
    dropped_unknown_dst: int = 0  # unicast/multicast lookup miss
    dropped_policer: int = 0      # meter declared the frame non-conforming
    dropped_gate: int = 0         # in-gate closed on arrival (802.1Qci filter)
    dropped_tail: int = 0         # queue at depth
    dropped_no_buffer: int = 0    # buffer pool exhausted
    dropped_corrupt: int = 0      # FCS check failed at ingress (bit errors)
    per_queue_enqueued: Dict[int, int] = field(default_factory=dict)

    @property
    def dropped_total(self) -> int:
        return (
            self.dropped_unknown_dst
            + self.dropped_policer
            + self.dropped_gate
            + self.dropped_tail
            + self.dropped_no_buffer
            + self.dropped_corrupt
        )

    def note_enqueue(self, queue_id: int) -> None:
        self.per_queue_enqueued[queue_id] = (
            self.per_queue_enqueued.get(queue_id, 0) + 1
        )

    def as_dict(self) -> Dict[str, int]:
        """Flat counter dump (used by reports and failure diagnostics).

        Per-queue enqueue counts flatten to ``enqueued_q<id>`` keys so the
        result stays ``Dict[str, int]`` and diffs cleanly in JSON summaries.
        """
        flat = {
            "received": self.received,
            "forwarded": self.forwarded,
            "transmitted": self.transmitted,
            "dropped_unknown_dst": self.dropped_unknown_dst,
            "dropped_policer": self.dropped_policer,
            "dropped_gate": self.dropped_gate,
            "dropped_tail": self.dropped_tail,
            "dropped_no_buffer": self.dropped_no_buffer,
            "dropped_corrupt": self.dropped_corrupt,
            "dropped_total": self.dropped_total,
        }
        for queue_id in sorted(self.per_queue_enqueued):
            flat[f"enqueued_q{queue_id}"] = self.per_queue_enqueued[queue_id]
        return flat
