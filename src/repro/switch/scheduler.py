"""The Egress Sched's arbitration: strict priority + gates + CBS.

Per transmission opportunity the scheduler scans queues from the highest id
(the highest priority, per 802.1Q convention) downward and starts the first
queue that passes all three eligibility checks:

1. **Backlog** -- the queue holds a descriptor.
2. **Gate** -- the queue's out-gate is open *and* the head frame's
   serialization finishes before the gate closes again (the 802.1Qbv
   transmission-window guard; this is what keeps CQF slots overrun-free).
3. **Credit** -- if the queue is CBS-mapped, its shaper credit is >= 0.

The decision also carries *retry hints*: when nothing is eligible but some
queue was blocked purely on CBS credit, ``retry_delay_ns`` says when credit
recovers so the port can arm a re-arbitration event instead of polling.
When the gate engine elides flip events (table mode, see
:mod:`repro.switch.gates`), queues blocked on a closed gate or a too-short
gate window additionally produce ``gate_wake_delay_ns`` -- the earliest
future window that fits the blocked head frame -- so the port wakes exactly
when the legacy per-flip engine would have kicked it.  With the flip engine
every transition already notifies the port, so no gate hints are computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from .gates import GateEngine
from .queueing import MetadataQueue
from .shaper import CreditBasedShaper

__all__ = ["SchedulerDecision", "StrictPriorityScheduler"]


@dataclass(frozen=True)
class SchedulerDecision:
    """Outcome of one arbitration."""

    queue_id: Optional[int]
    retry_delay_ns: Optional[int] = None
    gate_wake_delay_ns: Optional[int] = None

    @property
    def idle(self) -> bool:
        return self.queue_id is None


class EgressScheduler:
    """Base arbiter: gate/guard/credit eligibility shared by all variants.

    ``shapers`` maps queue id -> its :class:`CreditBasedShaper` for queues
    bound by the CBS map table; unmapped queues are unshaped.  Subclasses
    implement :meth:`select` using :meth:`_eligible` for the three checks.
    """

    def __init__(self, shapers: Optional[Dict[int, CreditBasedShaper]] = None):
        self.shapers: Dict[int, CreditBasedShaper] = dict(shapers or {})
        self._retry: Optional[int] = None
        self._gate_wake: Optional[int] = None
        self._order_src: Optional[Sequence[MetadataQueue]] = None
        self._order: Sequence[MetadataQueue] = ()

    def _ordered(
        self, queues: Sequence[MetadataQueue]
    ) -> Sequence[MetadataQueue]:
        """*queues* sorted by descending id, cached per queue set.

        A port arbitrates with the same queue list on every transmission
        opportunity; re-sorting it each time showed up in profiles.
        """
        if self._order_src is not queues:
            self._order = sorted(
                queues, key=lambda q: q.queue_id, reverse=True
            )
            self._order_src = queues
        return self._order

    def _note_gate_wake(
        self,
        gates: GateEngine,
        queue_id: int,
        needed_ns: int,
    ) -> None:
        wait = gates.next_out_open_window(queue_id, needed_ns)
        if wait is not None and (
            self._gate_wake is None or wait < self._gate_wake
        ):
            self._gate_wake = wait

    def _eligible(
        self,
        now_ns: int,
        queue: MetadataQueue,
        gates: GateEngine,
        serialization_ns_of: Callable[[int], int],
        head=None,
    ) -> bool:
        # Callers that already peeked the head descriptor pass it in; the
        # redundant empty-probe + re-peek per queue showed up in profiles.
        if head is None:
            head = queue.head()
            if head is None:
                return False
        serialization = serialization_ns_of(head.size_bytes)
        # One fused gate query: ``time_until_out_close`` already folds the
        # open/closed state in (0 = closed, None = open forever), so the
        # separate ``out_open`` probe -- a second window-table walk per
        # arbitration -- is redundant.
        window = gates.time_until_out_close(queue.queue_id)
        if window is not None and serialization > window:
            # Gate closed, or the frame would overrun the remaining window;
            # wake at the next window that fits.
            if gates.needs_wake_hints:
                self._note_gate_wake(gates, queue.queue_id, serialization)
            return False
        shaper = self.shapers.get(queue.queue_id)
        if shaper is not None and not shaper.eligible(now_ns):
            wait = shaper.ns_until_eligible(now_ns)
            if wait is not None and (self._retry is None or wait < self._retry):
                self._retry = wait
            return False
        return True

    def select(
        self,
        now_ns: int,
        queues: Sequence[MetadataQueue],
        gates: GateEngine,
        serialization_ns_of: Callable[[int], int],
    ) -> SchedulerDecision:
        raise NotImplementedError


class StrictPriorityScheduler(EgressScheduler):
    """The paper's Egress Sched: highest eligible queue id wins."""

    def select(
        self,
        now_ns: int,
        queues: Sequence[MetadataQueue],
        gates: GateEngine,
        serialization_ns_of: Callable[[int], int],
    ) -> SchedulerDecision:
        """Pick the queue to transmit from, or explain why none is ready.

        *serialization_ns_of* maps a frame byte count to its wire time on
        this port (the guard-band check needs it).
        """
        self._retry = None
        self._gate_wake = None
        for queue in self._ordered(queues):
            head = queue.head()
            if head is None:
                continue
            if self._eligible(now_ns, queue, gates, serialization_ns_of,
                              head):
                return SchedulerDecision(queue.queue_id)
        return SchedulerDecision(
            None,
            retry_delay_ns=self._retry,
            gate_wake_delay_ns=self._gate_wake,
        )


class DeficitRoundRobinScheduler(EgressScheduler):
    """Strict priority above ``priority_floor``, byte-fair DRR below it.

    An alternative Egress Sched template logic: the gated TS queues keep
    absolute precedence (determinism first), while the remaining queues
    share leftover bandwidth by weighted deficit round robin instead of
    starving low ids -- the classic fix for BE starvation under heavy RC
    load.  Used by the custom-template example to demonstrate swapping a
    template's fixed logic without touching the resource model.
    """

    def __init__(
        self,
        weights: Optional[Dict[int, int]] = None,
        quantum_bytes: int = 1522,
        priority_floor: int = 6,
        shapers: Optional[Dict[int, CreditBasedShaper]] = None,
    ):
        super().__init__(shapers)
        self.weights = dict(weights or {})
        self.quantum_bytes = quantum_bytes
        self.priority_floor = priority_floor
        self._deficits: Dict[int, int] = {}
        self._rotation: int = 0

    def _weight(self, queue_id: int) -> int:
        return max(1, self.weights.get(queue_id, 1))

    def select(
        self,
        now_ns: int,
        queues: Sequence[MetadataQueue],
        gates: GateEngine,
        serialization_ns_of: Callable[[int], int],
    ) -> SchedulerDecision:
        self._retry = None
        self._gate_wake = None
        ordered = self._ordered(queues)
        # Stage 1: strict priority for the gated TS queues.
        for queue in ordered:
            if queue.queue_id < self.priority_floor:
                continue
            if self._eligible(now_ns, queue, gates, serialization_ns_of):
                return SchedulerDecision(queue.queue_id)
        # Stage 2: DRR over the rest, starting after the last served queue.
        # Work-conserving formulation: find how many replenishment rounds
        # each eligible queue needs to afford its head frame, serve the one
        # needing fewest (rotation order breaks ties), and credit every
        # eligible queue with that many rounds -- equivalent to spinning the
        # classic DRR loop until somebody can send, without the loop.
        drr_queues = [q for q in ordered if q.queue_id < self.priority_floor]
        count = len(drr_queues)
        candidates = []
        for step in range(count):
            queue = drr_queues[(self._rotation + step) % count]
            head = queue.head()
            if head is None or not self._eligible(
                now_ns, queue, gates, serialization_ns_of, head
            ):
                continue
            deficit = self._deficits.get(queue.queue_id, 0)
            need = head.size_bytes - deficit
            per_round = self.quantum_bytes * self._weight(queue.queue_id)
            rounds = 0 if need <= 0 else -(-need // per_round)
            candidates.append((rounds, step, queue, head))
        if not candidates:
            return SchedulerDecision(
                None,
                retry_delay_ns=self._retry,
                gate_wake_delay_ns=self._gate_wake,
            )
        rounds_won, step_won, winner, head = min(
            candidates, key=lambda c: (c[0], c[1])
        )
        if rounds_won:
            for _, _, queue, _ in candidates:
                self._deficits[queue.queue_id] = (
                    self._deficits.get(queue.queue_id, 0)
                    + rounds_won
                    * self.quantum_bytes
                    * self._weight(queue.queue_id)
                )
        self._deficits[winner.queue_id] = (
            self._deficits.get(winner.queue_id, 0) - head.size_bytes
        )
        self._rotation = (self._rotation + step_won + 1) % count
        return SchedulerDecision(winner.queue_id)
