"""Token-bucket flow meters (the Ingress Filter's policing stage).

Each classification hit yields a ``meter_id``; the meter decides whether the
frame *conforms* to the flow's traffic contract.  Non-conforming frames are
dropped at ingress, which is how the switch protects reserved TS/RC capacity
from misbehaving sources (802.1Qci flow policing).

The implementation is a single-rate token bucket evaluated lazily: tokens
are replenished arithmetically on each offer from the elapsed time, so no
simulator events are consumed by idle meters.  Token state is kept in exact
integer *token-nanobytes* (bytes x 1e9) to avoid drift: at rate R bps a
frame of L bytes costs ``L * 8e9 / R`` wall-nanoseconds of tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ConfigurationError

__all__ = ["TokenBucketMeter", "MeterStats"]

_SCALE = 10**9  # token sub-units per byte


@dataclass
class MeterStats:
    """Conform/violate counters of one meter."""

    conformed_frames: int = 0
    conformed_bytes: int = 0
    violated_frames: int = 0
    violated_bytes: int = 0

    @property
    def offered_frames(self) -> int:
        return self.conformed_frames + self.violated_frames


class TokenBucketMeter:
    """A single-rate, single-bucket policer.

    Parameters
    ----------
    rate_bps:
        Committed information rate in bits/s.
    burst_bytes:
        Bucket depth: the largest back-to-back byte burst admitted at line
        rate.  Must hold at least one MTU frame or every large frame would
        violate unconditionally.
    """

    def __init__(self, rate_bps: int, burst_bytes: int):
        if rate_bps <= 0:
            raise ConfigurationError(f"meter rate must be positive, got {rate_bps}")
        if burst_bytes <= 0:
            raise ConfigurationError(
                f"meter burst must be positive, got {burst_bytes}"
            )
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = burst_bytes * _SCALE  # start full
        self._last_ns = 0
        self.stats = MeterStats()

    def _replenish(self, now_ns: int) -> None:
        elapsed = now_ns - self._last_ns
        if elapsed < 0:
            raise ConfigurationError("meter observed time moving backwards")
        if elapsed:
            # rate_bps/8 bytes per second = rate_bps/8 * elapsed / 1e9 bytes.
            self._tokens = min(
                self.burst_bytes * _SCALE,
                self._tokens + elapsed * self.rate_bps // 8,
            )
            self._last_ns = now_ns

    def offer(self, now_ns: int, frame_bytes: int) -> bool:
        """True if a *frame_bytes* frame at *now_ns* conforms (and debit it)."""
        self._replenish(now_ns)
        cost = frame_bytes * _SCALE
        if self._tokens >= cost:
            self._tokens -= cost
            self.stats.conformed_frames += 1
            self.stats.conformed_bytes += frame_bytes
            return True
        self.stats.violated_frames += 1
        self.stats.violated_bytes += frame_bytes
        return False

    @property
    def exercised(self) -> bool:
        """True once any frame has been offered (meter state is "in use")."""
        return self.stats.offered_frames > 0

    def tokens_bytes(self, now_ns: Optional[int] = None) -> float:
        """Current bucket level in bytes (after replenishing to *now_ns*)."""
        if now_ns is not None:
            self._replenish(now_ns)
        return self._tokens / _SCALE
