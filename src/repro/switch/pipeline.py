"""The ingress processing pipeline: Ingress Filter + Packet Switch stages.

Mirrors the left half of the paper's Fig. 3.  For each received frame:

1. **Parse** -- extract SMAC/DMAC/VID/PCP (already explicit on our frames).
2. **Classify** (Ingress Filter) -- exact-match the 4-tuple against the
   classification table to obtain a :class:`ClassTarget` (meter id + queue
   id).  A miss falls back to the 802.1Q default: queue = PCP, no meter.
   TSN networks are fully planned, so critical flows always hit.
3. **Police** (Ingress Filter) -- offer the frame to the resolved meter;
   non-conforming frames are dropped here.
4. **Lookup** (Packet Switch) -- unicast (DMAC, VID) -> outport, or
   multicast MC-ID -> outport set.  A miss drops the frame (a planned TSN
   network does not flood).

The pipeline owns the switch-shared tables; per-port resources live in
:class:`~repro.switch.port.EgressPort`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import SwitchConfig
from repro.obs.instruments import SwitchInstruments
from .counters import SwitchCounters
from .packet import EthernetFrame, is_multicast
from .tables import (
    ClassificationTable,
    ClassTarget,
    MeterTable,
    MulticastTable,
    UnicastTable,
)

__all__ = ["SwitchPipeline", "ForwardingDecision"]

#: Multicast MC-ID is carried in the low bits of a group DMAC.
_MC_ID_MASK = 0xFFFF


@dataclass(frozen=True)
class ForwardingDecision:
    """Where a frame goes: egress (port, queue) pairs, or a drop reason."""

    targets: Tuple[Tuple[int, int], ...]  # (outport, queue_id)
    drop_reason: Optional[str] = None

    @property
    def dropped(self) -> bool:
        return self.drop_reason is not None


class SwitchPipeline:
    """Shared-table stages of one switch."""

    def __init__(
        self,
        config: SwitchConfig,
        counters: SwitchCounters,
        instruments: Optional[SwitchInstruments] = None,
        batch=None,
    ):
        self.config = config
        self.counters = counters
        self._obs = instruments
        #: Optional :class:`~repro.switch.batch.FrameBatch`; when set,
        #: :meth:`process` also accepts integer frame handles.
        self._batch = batch
        self.unicast = UnicastTable(config.unicast_size)
        self.multicast: Optional[MulticastTable] = (
            MulticastTable(config.multicast_size)
            if config.multicast_size > 0
            else None
        )
        self.classification = ClassificationTable(config.class_size)
        self.meters = MeterTable(config.meter_size)

    # ------------------------------------------------------------- stages

    def classify(self, frame: EthernetFrame) -> ClassTarget:
        """Ingress Filter classification with the 802.1Q default fallback."""
        target = self.classification.classify(
            frame.src_mac, frame.dst_mac, frame.vlan_id, frame.pcp
        )
        if target is None:
            return ClassTarget(meter_id=-1, queue_id=frame.pcp)
        return target

    def police(self, frame: EthernetFrame, target: ClassTarget, now_ns: int) -> bool:
        """True if the frame conforms (or is unmetered)."""
        if target.meter_id < 0:
            return True
        meter = self.meters.meter(target.meter_id)
        if meter is None:
            return True  # classified to a meter that was never programmed
        conformed = meter.offer(now_ns, frame.size_bytes)
        if self._obs is not None:
            self._obs.on_meter(conformed)
        return conformed

    def lookup(self, frame: EthernetFrame) -> Tuple[int, ...]:
        """Packet Switch outport lookup; empty tuple on miss."""
        if frame.is_multicast and self.multicast is not None:
            outports = self.multicast.find_outports(frame.dst_mac & _MC_ID_MASK)
            return outports or ()
        outport = self.unicast.find_outport(frame.dst_mac, frame.vlan_id)
        return () if outport is None else (outport,)

    # ------------------------------------------------------------ full path

    def process(self, frame, now_ns: int) -> ForwardingDecision:
        """Run a frame through classify/police/lookup; count drops.

        *frame* is an :class:`EthernetFrame` or, on the batched fast path,
        an integer :class:`~repro.switch.batch.FrameBatch` handle -- the
        stages only ever touch the parsed header fields.
        """
        if type(frame) is int:
            batch = self._batch
            return self._process_fields(
                batch.src_mac[frame], batch.dst_mac[frame],
                batch.vlan_id[frame], batch.priority[frame],
                batch.size_bytes[frame], now_ns,
            )
        return self._process_fields(
            frame.src_mac, frame.dst_mac, frame.vlan_id, frame.pcp,
            frame.size_bytes, now_ns,
        )

    def _process_fields(
        self, src_mac: int, dst_mac: int, vlan_id: int, pcp: int,
        size_bytes: int, now_ns: int,
    ) -> ForwardingDecision:
        target = self.classification.classify(src_mac, dst_mac, vlan_id, pcp)
        if target is None:
            target = ClassTarget(meter_id=-1, queue_id=pcp)
        if target.meter_id >= 0:
            meter = self.meters.meter(target.meter_id)
            if meter is not None:
                conformed = meter.offer(now_ns, size_bytes)
                if self._obs is not None:
                    self._obs.on_meter(conformed)
                if not conformed:
                    self.counters.dropped_policer += 1
                    if self._obs is not None:
                        self._obs.on_drop("policer")
                    return ForwardingDecision((), "policer")
        if is_multicast(dst_mac) and self.multicast is not None:
            outports = (
                self.multicast.find_outports(dst_mac & _MC_ID_MASK) or ()
            )
        else:
            outport = self.unicast.find_outport(dst_mac, vlan_id)
            outports = () if outport is None else (outport,)
        if not outports:
            self.counters.dropped_unknown_dst += 1
            if self._obs is not None:
                self._obs.on_drop("unknown_dst")
            return ForwardingDecision((), "unknown_dst")
        return ForwardingDecision(
            tuple((port, target.queue_id) for port in outports)
        )
