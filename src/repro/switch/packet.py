"""Frames and packet descriptors.

The dataplane moves two things around, mirroring the hardware split the
paper's footnote 1 describes ("queue stores packet descriptor ... while
buffer stores packet payload"):

* :class:`EthernetFrame` -- the immutable wire object: addresses, VLAN tag,
  priority, size, plus measurement bookkeeping (flow id, sequence number,
  injection timestamp).  Payload *content* is never materialized; only sizes
  matter to timing and resource behaviour.

* :class:`Descriptor` -- the 32-bit metadata word a queue actually holds:
  a buffer-slot reference plus the frame length.  Descriptors are created at
  enqueue by the ingress pipeline after a buffer slot was claimed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.units import ETH_MIN_FRAME_BYTES

__all__ = [
    "MacAddress",
    "EthernetFrame",
    "Descriptor",
    "BROADCAST_MAC",
    "make_mac",
]

#: MAC addresses are 48-bit integers; bit 40 (the I/G bit of the first
#: transmitted octet) marks multicast.
MacAddress = int

BROADCAST_MAC: MacAddress = (1 << 48) - 1
_MULTICAST_BIT = 1 << 40


def make_mac(device_index: int, port_index: int = 0) -> MacAddress:
    """A locally administered unicast MAC for device/port indices."""
    return (0x02 << 40) | ((device_index & 0xFFFF) << 8) | (port_index & 0xFF)


def is_multicast(mac: MacAddress) -> bool:
    """True for group-addressed (multicast/broadcast) MACs."""
    return bool(mac & _MULTICAST_BIT)


_frame_ids = itertools.count()


def reset_frame_ids() -> None:
    """Restart the global frame-id counter from zero.

    Frame ids are debugging handles, never part of any observable (traces,
    reports, rows all omit them), but a forked shard worker must restart
    the counter so that its builds do not inherit however far the parent's
    counter had advanced.  ``batch`` imports the counter by value, so the
    alias there is rebound too.
    """
    global _frame_ids
    _frame_ids = itertools.count()
    from . import batch as _batch

    _batch._frame_ids = _frame_ids


@dataclass(frozen=True)
class EthernetFrame:
    """One frame on the wire.

    ``size_bytes`` counts DA through FCS, matching the paper's "packet size"
    axis in Fig. 7(b) ({64 ... 1500} B).
    """

    src_mac: MacAddress
    dst_mac: MacAddress
    vlan_id: int
    pcp: int                      # 802.1Q priority code point, 0..7
    size_bytes: int
    flow_id: int = -1             # measurement: which flow produced it
    seq: int = -1                 # measurement: per-flow sequence number
    created_ns: int = -1          # measurement: injection timestamp
    fcs_ok: bool = True           # False = bit errors on the wire; the
                                  # receiving MAC drops it at ingress
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if not 0 <= self.pcp <= 7:
            raise ValueError(f"PCP must be 0..7, got {self.pcp}")
        if not 0 <= self.vlan_id < 4096:
            raise ValueError(f"VLAN ID must be 0..4095, got {self.vlan_id}")
        if self.size_bytes < ETH_MIN_FRAME_BYTES:
            raise ValueError(
                f"frame size {self.size_bytes}B below Ethernet minimum "
                f"{ETH_MIN_FRAME_BYTES}B"
            )

    @property
    def is_multicast(self) -> bool:
        return is_multicast(self.dst_mac)

    def corrupted(self) -> "EthernetFrame":
        """A per-hop copy of this frame with ``fcs_ok=False``.

        Equivalent to ``dataclasses.replace(self, fcs_ok=False)`` (the
        ``frame_id`` is preserved, no fresh id is drawn) but skips the
        re-validation pass -- links corrupt frames on the hot path.
        """
        clone = object.__new__(EthernetFrame)
        clone.__dict__.update(self.__dict__)
        object.__setattr__(clone, "fcs_ok", False)
        return clone


class Descriptor:
    """The queue-resident metadata word referencing a buffered frame.

    The reproduction keeps a Python reference to the frame for convenience;
    the *modelled* width is the configured 32 bits (buffer slot id, length,
    and flags), which is what the BRAM cost model charges for.  On the
    batched fast path ``frame`` holds an integer
    :class:`~repro.switch.batch.FrameBatch` handle instead of an
    :class:`EthernetFrame`, and the length is carried explicitly.
    """

    __slots__ = ("frame", "buffer_slot", "enqueued_ns", "queue_id",
                 "size_bytes")

    def __init__(self, frame, buffer_slot: int, enqueued_ns: int,
                 queue_id: int, size_bytes: Optional[int] = None):
        self.frame = frame
        self.buffer_slot = buffer_slot
        self.enqueued_ns = enqueued_ns
        self.queue_id = queue_id
        self.size_bytes = (
            frame.size_bytes if size_bytes is None else size_bytes
        )

    def __repr__(self) -> str:
        return (
            f"Descriptor(frame={self.frame!r}, "
            f"buffer_slot={self.buffer_slot}, "
            f"enqueued_ns={self.enqueued_ns}, queue_id={self.queue_id})"
        )
