"""The TSN analyzer: latency / jitter / packet-loss measurement.

The paper's testbed ends in a "TSN analyzer ... used to receive the TS/RC/BE
flows and analyze the latency, jitter and packet loss".  This module is that
instrument: hook :meth:`TsnAnalyzer.record` to a listener host's
``on_receive`` and it timestamps every arrival against the frame's injection
time.

Definitions match the paper's usage:

* **latency** -- arrival time minus injection time (``created_ns``), end to
  end across the whole path including NICs and links;
* **jitter** -- the *standard deviation* of latency ("Here we use the
  standard deviation of latency to describe the jitter", Section IV.C),
  reported both per flow and across all packets of a class;
* **packet loss** -- 1 - received/expected, with expected counts supplied by
  the generators at the end of a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.switch.packet import EthernetFrame
from repro.traffic.flows import FlowSet, TrafficClass

__all__ = ["FlowRecord", "LatencySummary", "TsnAnalyzer"]


@dataclass
class FlowRecord:
    """Arrival bookkeeping of one flow."""

    flow_id: int
    latencies_ns: List[int] = field(default_factory=list)
    deadline_ns: Optional[int] = None
    deadline_misses: int = 0
    duplicates: int = 0
    reorders: int = 0
    _last_seq: int = -1

    def note(self, latency_ns: int, seq: int) -> None:
        self.latencies_ns.append(latency_ns)
        if self.deadline_ns is not None and latency_ns > self.deadline_ns:
            self.deadline_misses += 1
        if seq == self._last_seq:
            self.duplicates += 1
        elif seq < self._last_seq:
            self.reorders += 1
        self._last_seq = max(self._last_seq, seq)

    @property
    def received(self) -> int:
        return len(self.latencies_ns)


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate latency statistics over a set of packets."""

    count: int
    min_ns: int
    max_ns: int
    mean_ns: float
    jitter_ns: float   # standard deviation, the paper's jitter metric
    p99_ns: int

    @classmethod
    def of(cls, latencies: List[int]) -> "LatencySummary":
        if not latencies:
            raise SimulationError("no latencies to summarize")
        count = len(latencies)
        mean = sum(latencies) / count
        variance = sum((x - mean) ** 2 for x in latencies) / count
        ordered = sorted(latencies)
        p99 = ordered[min(count - 1, math.ceil(0.99 * count) - 1)]
        return cls(
            count=count,
            min_ns=ordered[0],
            max_ns=ordered[-1],
            mean_ns=mean,
            jitter_ns=math.sqrt(variance),
            p99_ns=p99,
        )


class TsnAnalyzer:
    """Receives frames at the listener and aggregates QoS statistics."""

    def __init__(self, sim: Simulator, flows: FlowSet, batch=None):
        self._sim = sim
        self._flows = flows
        #: Optional :class:`~repro.switch.batch.FrameBatch`; when set,
        #: :meth:`record` also accepts integer frame handles.
        self._batch = batch
        self.records: Dict[int, FlowRecord] = {}
        self.unknown_frames = 0
        #: Optional :class:`~repro.obs.slo.SloMonitor`; when set, every
        #: recorded arrival also streams through the SLO checks.
        self.slo = None
        for flow in flows:
            self.records[flow.flow_id] = FlowRecord(
                flow.flow_id, deadline_ns=flow.deadline_ns
            )

    # ------------------------------------------------------------- recording

    def record(self, frame) -> None:
        """Listener ``on_receive`` hook.

        *frame* is an :class:`EthernetFrame` or, on the batched fast path,
        an integer :class:`~repro.switch.batch.FrameBatch` handle -- the
        analyzer only reads flow id, sequence number and injection time.
        """
        if type(frame) is int:
            batch = self._batch
            flow_id = batch.flow_id[frame]
            seq = batch.seq[frame]
            created_ns = batch.inject_ns[frame]
        else:
            flow_id = frame.flow_id
            seq = frame.seq
            created_ns = frame.created_ns
        record = self.records.get(flow_id)
        if record is None:
            self.unknown_frames += 1
            return
        if created_ns < 0:
            raise SimulationError(
                f"frame of flow {flow_id} carries no injection timestamp"
            )
        latency_ns = self._sim.now - created_ns
        record.note(latency_ns, seq)
        if self.slo is not None:
            self.slo.observe(flow_id, seq, latency_ns, self._sim.now)

    # ------------------------------------------------------------ statistics

    def class_latencies(self, traffic_class: TrafficClass) -> List[int]:
        """All packet latencies of one traffic class, in arrival order."""
        result: List[int] = []
        for flow in self._flows.by_class(traffic_class):
            result.extend(self.records[flow.flow_id].latencies_ns)
        return result

    def class_summary(self, traffic_class: TrafficClass) -> LatencySummary:
        return LatencySummary.of(self.class_latencies(traffic_class))

    def flow_summary(self, flow_id: int) -> LatencySummary:
        return LatencySummary.of(self.records[flow_id].latencies_ns)

    def per_flow_jitter_ns(self, traffic_class: TrafficClass) -> List[float]:
        """Each flow's own latency standard deviation.

        Under CQF this is near zero (every packet of a flow takes the same
        slot-aligned path); the cross-flow spread shows up only in
        :meth:`class_summary`'s jitter.
        """
        result = []
        for flow in self._flows.by_class(traffic_class):
            latencies = self.records[flow.flow_id].latencies_ns
            if len(latencies) >= 2:
                result.append(LatencySummary.of(latencies).jitter_ns)
        return result

    def received(self, traffic_class: Optional[TrafficClass] = None) -> int:
        flows = (
            list(self._flows)
            if traffic_class is None
            else self._flows.by_class(traffic_class)
        )
        return sum(self.records[f.flow_id].received for f in flows)

    def loss_rate(
        self, expected_by_flow: Dict[int, int], traffic_class: TrafficClass
    ) -> float:
        """1 - received/expected over a class; *expected_by_flow* comes from
        the generators' emitted counts."""
        flows = self._flows.by_class(traffic_class)
        expected = sum(expected_by_flow.get(f.flow_id, 0) for f in flows)
        if expected == 0:
            return 0.0
        got = sum(
            min(self.records[f.flow_id].received, expected_by_flow.get(f.flow_id, 0))
            for f in flows
        )
        return 1.0 - got / expected

    def class_digest(
        self, expected_by_flow: Dict[int, int]
    ) -> Dict[str, Dict]:
        """Per-class QoS digest: received/loss plus latency statistics.

        The one canonical shape shared by ``result_summary`` and campaign
        worker rows, keyed by traffic-class name; latency fields appear
        only for classes that received traffic.
        """
        digest: Dict[str, Dict] = {}
        for traffic_class in TrafficClass:
            received = self.received(traffic_class)
            entry: Dict = {
                "received": received,
                "loss": self.loss_rate(expected_by_flow, traffic_class),
            }
            if received:
                stats = self.class_summary(traffic_class)
                entry.update(
                    mean_ns=stats.mean_ns,
                    jitter_ns=stats.jitter_ns,
                    min_ns=stats.min_ns,
                    max_ns=stats.max_ns,
                    p99_ns=stats.p99_ns,
                )
            digest[traffic_class.name] = entry
        return digest

    def deadline_misses(self, traffic_class: TrafficClass) -> int:
        return sum(
            self.records[f.flow_id].deadline_misses
            for f in self._flows.by_class(traffic_class)
        )
