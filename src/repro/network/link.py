"""Point-to-point Ethernet links.

A :class:`Link` binds one transmitter (an :class:`~repro.switch.port.
EgressPort`, whether on a switch or in a host NIC) to one receiver callback,
adding the cable's propagation delay.  The testbed's 1 Gbps copper runs are
short; the default 500 ns models ~100 m of cable ( ~5 ns/m), and the value is
per-link configurable for studies on longer spans.

Serialization time lives in the port (it depends on the port rate); the
link is purely a delay line that never reorders.  For failure-injection
studies it can *drop*: ``error_rate`` models FCS corruption (the receiver
discards the frame, as a real MAC does), drawn from a seeded RNG so lossy
runs stay reproducible.  ``fail()``/``restore()`` model a cable pull.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.switch.packet import EthernetFrame
from repro.switch.port import EgressPort

__all__ = ["Link", "DEFAULT_PROPAGATION_NS"]

DEFAULT_PROPAGATION_NS = 500

ReceiveFn = Callable[[EthernetFrame], None]


class Link:
    """A unidirectional delay line between an egress port and a receiver."""

    def __init__(
        self,
        sim: Simulator,
        src: EgressPort,
        receive: ReceiveFn,
        propagation_ns: int = DEFAULT_PROPAGATION_NS,
        error_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "link",
    ) -> None:
        if propagation_ns < 0:
            raise ConfigurationError(
                f"{name}: propagation delay must be >= 0, got {propagation_ns}"
            )
        if not 0.0 <= error_rate <= 1.0:
            raise ConfigurationError(
                f"{name}: error_rate must be in [0, 1], got {error_rate}"
            )
        if error_rate > 0.0 and rng is None:
            raise ConfigurationError(
                f"{name}: a lossy link needs a seeded rng for reproducibility"
            )
        self._sim = sim
        self._receive = receive
        self.propagation_ns = propagation_ns
        self.error_rate = error_rate
        self._rng = rng
        self.name = name
        self.frames_carried = 0
        self.frames_corrupted = 0
        self.frames_blackholed = 0
        self._up = True
        src.attach(self._carry)

    # -------------------------------------------------------------- failure

    @property
    def up(self) -> bool:
        return self._up

    def fail(self) -> None:
        """Cable pulled: every subsequent frame is lost until restore."""
        self._up = False

    def restore(self) -> None:
        self._up = True

    # ------------------------------------------------------------- carrying

    def _carry(self, frame: EthernetFrame) -> None:
        """Called by the port at last-bit-out; deliver after propagation."""
        if not self._up:
            self.frames_blackholed += 1
            return
        if self.error_rate and self._rng.random() < self.error_rate:
            self.frames_corrupted += 1
            return
        self.frames_carried += 1
        self._sim.post(self.propagation_ns, lambda: self._receive(frame))
