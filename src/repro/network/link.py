"""Point-to-point Ethernet links.

A :class:`Link` binds one transmitter (an :class:`~repro.switch.port.
EgressPort`, whether on a switch or in a host NIC) to one receiver callback,
adding the cable's propagation delay.  The testbed's 1 Gbps copper runs are
short; the default 500 ns models ~100 m of cable ( ~5 ns/m), and the value is
per-link configurable for studies on longer spans.

Serialization time lives in the port (it depends on the port rate); the
link is purely a delay line that never reorders.  For failure-injection
studies it can *drop*: ``error_rate`` models FCS corruption (the receiver
discards the frame, as a real MAC does), drawn from a seeded RNG so lossy
runs stay reproducible.  ``fail()``/``restore()`` model a cable pull.

The fault-injection layer (:mod:`repro.faults`) drives three additional,
independently counted impairments:

* **blackhole** -- ``fail()``/``restore()`` windows (``frames_blackholed``);
* **fault loss** -- :meth:`set_fault_loss` drops a seeded fraction of frames
  silently, modelling an EMI burst (``frames_fault_lost``);
* **fault corruption** -- :meth:`set_fault_corrupt` delivers frames with
  ``fcs_ok=False`` so the *receiving* MAC drops and counts them
  (``frames_fault_corrupted``), which is where real bit errors surface.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.errors import ConfigurationError
from repro.obs.flowspans import FlowSpanRecorder
from repro.sim.kernel import Simulator
from repro.switch.packet import EthernetFrame
from repro.switch.port import EgressPort

__all__ = ["Link", "DEFAULT_PROPAGATION_NS"]

DEFAULT_PROPAGATION_NS = 500

ReceiveFn = Callable[[EthernetFrame], None]


class Link:
    """A unidirectional delay line between an egress port and a receiver."""

    def __init__(
        self,
        sim: Simulator,
        src: EgressPort,
        receive: ReceiveFn,
        propagation_ns: int = DEFAULT_PROPAGATION_NS,
        error_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "link",
        spans: Optional[FlowSpanRecorder] = None,
        batch=None,
    ) -> None:
        if propagation_ns < 0:
            raise ConfigurationError(
                f"{name}: propagation delay must be >= 0, got {propagation_ns}"
            )
        if not 0.0 <= error_rate <= 1.0:
            raise ConfigurationError(
                f"{name}: error_rate must be in [0, 1], got {error_rate}"
            )
        if error_rate > 0.0 and rng is None:
            raise ConfigurationError(
                f"{name}: a lossy link needs a seeded rng for reproducibility"
            )
        self._sim = sim
        self._receive = receive
        self.propagation_ns = propagation_ns
        self.error_rate = error_rate
        self._rng = rng
        self.name = name
        self._spans = spans
        #: Optional :class:`~repro.switch.batch.FrameBatch`; when set, the
        #: link also carries integer frame handles.
        self._batch = batch
        self.frames_carried = 0
        self.frames_corrupted = 0
        self.frames_blackholed = 0
        self.frames_fault_lost = 0
        self.frames_fault_corrupted = 0
        self.down_count = 0
        self._up = True
        self._fault_loss_rate = 0.0
        self._fault_loss_rng: Optional[random.Random] = None
        self._fault_corrupt_rate = 0.0
        self._fault_corrupt_rng: Optional[random.Random] = None
        #: Same-instant tie-break for arrival events.  The testbed assigns
        #: every link a unique positive priority in wiring order, so two
        #: frames landing on the same component in the same nanosecond are
        #: ordered by *which link* carried them -- a property of the
        #: topology -- rather than by event-posting order, which differs
        #: between single-process and sharded execution.
        self.arrival_priority = 0
        self._divert: Optional[Callable[[int, EthernetFrame], None]] = None
        src.attach(self._carry)

    # -------------------------------------------------------------- failure

    @property
    def up(self) -> bool:
        return self._up

    def fail(self) -> None:
        """Cable pulled: every subsequent frame is lost until restore."""
        if self._up:
            self._up = False
            self.down_count += 1

    def restore(self) -> None:
        self._up = True

    def set_fault_loss(
        self, rate: float, rng: Optional[random.Random] = None
    ) -> None:
        """Silently drop a *rate* fraction of frames (fault injection).

        ``rate=0`` ends the loss window.  A non-zero rate below 1.0 needs a
        seeded *rng* so faulted runs stay byte-deterministic.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"{self.name}: fault loss rate must be in [0, 1], got {rate}"
            )
        if 0.0 < rate < 1.0 and rng is None:
            raise ConfigurationError(
                f"{self.name}: a partial loss window needs a seeded rng"
            )
        self._fault_loss_rate = rate
        self._fault_loss_rng = rng

    def set_fault_corrupt(
        self, rate: float, rng: Optional[random.Random] = None
    ) -> None:
        """Flip bits on a *rate* fraction of frames (fault injection).

        Corrupted frames are still delivered -- with ``fcs_ok=False`` -- so
        the receiving MAC's FCS check drops and counts them, matching where
        real bit errors are detected.  ``rate=0`` ends the window.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"{self.name}: fault corrupt rate must be in [0, 1], "
                f"got {rate}"
            )
        if 0.0 < rate < 1.0 and rng is None:
            raise ConfigurationError(
                f"{self.name}: a partial corruption window needs a seeded rng"
            )
        self._fault_corrupt_rate = rate
        self._fault_corrupt_rng = rng

    # ------------------------------------------------------------- carrying

    def _note_drop(self, frame) -> None:
        if self._spans is not None:
            if type(frame) is int:
                frame = self._batch.materialize(frame)
            self._spans.record(self._sim.now, "drop", self.name, frame)

    def _carry(self, frame) -> None:
        """Called by the port at last-bit-out; deliver after propagation.

        *frame* is an :class:`EthernetFrame` or, on the batched fast path,
        an integer :class:`~repro.switch.batch.FrameBatch` handle.
        """
        if not self._up:
            self.frames_blackholed += 1
            self._note_drop(frame)
            return
        if self._fault_loss_rate and (
            self._fault_loss_rate >= 1.0
            or self._fault_loss_rng.random() < self._fault_loss_rate
        ):
            self.frames_fault_lost += 1
            self._note_drop(frame)
            return
        if self.error_rate and self._rng.random() < self.error_rate:
            self.frames_corrupted += 1
            self._note_drop(frame)
            return
        if self._fault_corrupt_rate and (
            self._fault_corrupt_rate >= 1.0
            or self._fault_corrupt_rng.random() < self._fault_corrupt_rate
        ):
            self.frames_fault_corrupted += 1
            # Corruption is the one per-hop copy the link ever makes: a
            # *distinct* frame must exist because replicated (FRER /
            # multicast) copies of the same frame traverse other links
            # intact.  Clean frames are passed through by reference -- no
            # observer needs a per-hop object -- and ``corrupted()`` skips
            # dataclasses.replace's re-validation.  A batch handle
            # materializes here for the same reason: the shared column
            # store must not see one link's bit errors.
            if type(frame) is int:
                frame = self._batch.materialize(frame, fcs_ok=False)
            else:
                frame = frame.corrupted()
        self.frames_carried += 1
        if self._divert is not None:
            # Sharded execution: the receiver lives in another worker.  All
            # loss/corruption accounting above has already happened on this
            # (owning) side; the divert hook ships ``(arrival_ns, frame)``
            # across the shard boundary instead of posting locally.
            self._divert(self._sim.now + self.propagation_ns, frame)
            return
        self._sim.post(
            self.propagation_ns,
            lambda: self._receive(frame),
            self.arrival_priority,
        )

    def divert(self, handoff: Callable[[int, EthernetFrame], None]) -> None:
        """Route carried frames to *handoff(arrival_ns, frame)* instead of
        delivering locally.  Used by the shard coordinator for cut links."""
        self._divert = handoff

    def deliver(self, frame) -> None:
        """Hand *frame* to this link's receiver right now.

        The import side of a shard boundary: the destination worker posts
        an event at the frame's arrival time (with this link's
        ``arrival_priority``) whose action calls ``deliver``.
        """
        self._receive(frame)

    # -------------------------------------------------------------- queries

    def fault_counters(self) -> dict:
        """Flat counter dump for recovery reports."""
        return {
            "carried": self.frames_carried,
            "blackholed": self.frames_blackholed,
            "fault_lost": self.frames_fault_lost,
            "fault_corrupted": self.frames_fault_corrupted,
            "down_count": self.down_count,
        }
