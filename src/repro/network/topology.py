"""Network topologies: star, ring, linear (paper Section IV.A).

A :class:`TopologySpec` is a directed description of the evaluated network:

* **switches** with a number of enabled TSN ports each;
* **trunk links** -- (switch, egress port) -> switch, the deterministic
  TSN segments;
* **host uplinks** -- talker NIC -> switch ingress;
* **host attachments** -- switch -> locally attached listener (delivered via
  the switch's host/DMA path, not a TSN port -- see
  :meth:`repro.switch.device.TsnSwitch.attach_host`).

The three builders reproduce the paper's setups:

* :func:`ring_topology` -- 6 switches, each with **1** enabled port,
  unidirectional forwarding around the ring (Fig. 6a).
* :func:`linear_topology` -- 6 switches in a chain, each with **2** enabled
  ports (bidirectional forwarding).
* :func:`star_topology` -- a core with 3 child switches (4 total); the core
  has **3** enabled ports, one toward each child.

Path resolution uses a BFS over the trunk graph (via :mod:`networkx`), and
``hops(src_host, dst_host)`` counts traversed switches -- the x-axis of
Fig. 7(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.errors import TopologyError

__all__ = [
    "TrunkLink",
    "HostUplink",
    "HostAttachment",
    "TopologySpec",
    "ring_topology",
    "frer_ring_topology",
    "dual_path_topology",
    "linear_topology",
    "star_topology",
]


@dataclass(frozen=True)
class TrunkLink:
    """A TSN segment: *src* switch transmits on *src_port* toward *dst*."""

    src: str
    src_port: int
    dst: str


@dataclass(frozen=True)
class HostUplink:
    """A talker's NIC feeding *dst* switch."""

    host: str
    dst: str


@dataclass(frozen=True)
class HostAttachment:
    """A listener wired as the peer of *switch*'s TSN egress *port*.

    In the paper's demo (Fig. 6b) the TSN analyzer is a network member fed
    by a switch's deterministic port, so delivery to the listener passes the
    full Gate Ctrl / Egress Sched machinery of that last hop -- the final
    switch contributes its one-slot CQF delay exactly like every other hop
    in Eq. (1).
    """

    switch: str
    port: int
    host: str


@dataclass
class TopologySpec:
    """One complete network layout."""

    name: str
    switch_ports: Dict[str, int]
    trunks: List[TrunkLink] = field(default_factory=list)
    uplinks: List[HostUplink] = field(default_factory=list)
    attachments: List[HostAttachment] = field(default_factory=list)

    # ------------------------------------------------------------ validation

    def validate(self) -> None:
        used_ports: Dict[Tuple[str, int], str] = {}
        for trunk in self.trunks:
            for switch in (trunk.src, trunk.dst):
                if switch not in self.switch_ports:
                    raise TopologyError(f"{self.name}: unknown switch {switch!r}")
            if not 0 <= trunk.src_port < self.switch_ports[trunk.src]:
                raise TopologyError(
                    f"{self.name}: {trunk.src} has no port {trunk.src_port}"
                )
            key = (trunk.src, trunk.src_port)
            if key in used_ports:
                raise TopologyError(
                    f"{self.name}: port {key} wired to both "
                    f"{used_ports[key]!r} and {trunk.dst!r}"
                )
            used_ports[key] = trunk.dst
        for uplink in self.uplinks:
            if uplink.dst not in self.switch_ports:
                raise TopologyError(
                    f"{self.name}: uplink of {uplink.host!r} targets unknown "
                    f"switch {uplink.dst!r}"
                )
        for attachment in self.attachments:
            if attachment.switch not in self.switch_ports:
                raise TopologyError(
                    f"{self.name}: attachment of {attachment.host!r} on "
                    f"unknown switch {attachment.switch!r}"
                )
            if not 0 <= attachment.port < self.switch_ports[attachment.switch]:
                raise TopologyError(
                    f"{self.name}: {attachment.switch} has no port "
                    f"{attachment.port}"
                )
            key = (attachment.switch, attachment.port)
            if key in used_ports:
                raise TopologyError(
                    f"{self.name}: port {key} wired to both "
                    f"{used_ports[key]!r} and {attachment.host!r}"
                )
            used_ports[key] = attachment.host

    # -------------------------------------------------------------- queries

    @property
    def switches(self) -> List[str]:
        return list(self.switch_ports)

    @property
    def hosts(self) -> List[str]:
        return [u.host for u in self.uplinks] + [a.host for a in self.attachments]

    @property
    def max_enabled_ports(self) -> int:
        """The per-switch port requirement (Table III's port_num column)."""
        return max(self.switch_ports.values())

    def host_switch(self, host: str) -> str:
        """The switch a host hangs off (uplink or attachment)."""
        for uplink in self.uplinks:
            if uplink.host == host:
                return uplink.dst
        for attachment in self.attachments:
            if attachment.host == host:
                return attachment.switch
        raise TopologyError(f"{self.name}: unknown host {host!r}")

    def _trunk_graph(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        graph.add_nodes_from(self.switch_ports)
        for trunk in self.trunks:
            graph.add_edge(trunk.src, trunk.dst, port=trunk.src_port)
        return graph

    def switch_path(self, src_host: str, dst_host: str) -> List[str]:
        """Switches traversed from *src_host*'s switch to *dst_host*'s.

        Both endpoints' switches are included; a host attached to its
        talker's own switch yields a single-switch path (1 hop).
        """
        first = self.host_switch(src_host)
        last = self.host_switch(dst_host)
        if first == last:
            return [first]
        graph = self._trunk_graph()
        try:
            return nx.shortest_path(graph, first, last)
        except nx.NetworkXNoPath:
            raise TopologyError(
                f"{self.name}: no trunk path {first!r} -> {last!r}"
            ) from None

    def egress_ports_on_path(self, path: Sequence[str]) -> List[Tuple[str, int]]:
        """(switch, egress port) hops along a switch path (len(path)-1 pairs)."""
        graph = self._trunk_graph()
        pairs = []
        for src, dst in zip(path, path[1:]):
            if not graph.has_edge(src, dst):
                raise TopologyError(f"{self.name}: no trunk {src!r} -> {dst!r}")
            pairs.append((src, graph.edges[src, dst]["port"]))
        return pairs

    def hops(self, src_host: str, dst_host: str) -> int:
        """Number of TSN switches a flow traverses (Fig. 7a's x-axis)."""
        return len(self.switch_path(src_host, dst_host))


# ------------------------------------------------------------------ builders


def _switch_names(count: int) -> List[str]:
    return [f"sw{i}" for i in range(count)]


def ring_topology(
    switch_count: int = 6,
    talkers: Sequence[str] = ("talker0", "talker1", "talker2"),
    listener: str = "listener",
    talker_switch_index: int = 0,
) -> TopologySpec:
    """The paper's ring: unidirectional, one enabled TSN port per switch.

    In the demo (Fig. 6b) switches and end devices form one loop; measured
    flows enter at a TSNNic, traverse the ring switches, and terminate at
    the analyzer, which is itself a ring member.  We model exactly that
    measured segment: ``sw0 -> sw1 -> ... -> sw{n-1} -> listener``, each
    switch using its single enabled port -- so a flow from a talker on
    ``sw0`` traverses ``switch_count`` switches (the Fig. 7a hop count).
    The return arc of the loop carries no measured traffic and is elided.
    """
    if switch_count < 1:
        raise TopologyError("ring needs at least 1 switch")
    names = _switch_names(switch_count)
    trunks = [
        TrunkLink(names[i], 0, names[i + 1]) for i in range(switch_count - 1)
    ]
    spec = TopologySpec(
        name="ring",
        switch_ports={name: 1 for name in names},
        trunks=trunks,
        uplinks=[HostUplink(t, names[talker_switch_index]) for t in talkers],
        attachments=[HostAttachment(names[-1], 0, listener)],
    )
    spec.validate()
    return spec


def frer_ring_topology(
    switch_count: int = 6,
    talkers: Sequence[str] = ("talker0",),
    listener: str = "listener",
) -> TopologySpec:
    """A ring carrying FRER member streams both ways round.

    The 802.1CB variant of the paper's ring: the talker switch ``sw0``
    enables two ports and feeds each replica around the loop in opposite
    directions -- clockwise over ``sw1..sw{a}`` and counter-clockwise over
    ``sw{n-1}..sw{a+1}`` -- and the listener attaches at the far end of
    *both* arcs.  As in :func:`ring_topology`, the arc segment that carries
    no measured traffic (here the one between the two listener switches) is
    elided, which also makes each replica's shortest path unique and the
    two paths edge-disjoint: any single trunk cut leaves one arc intact.
    """
    if switch_count < 3:
        raise TopologyError("FRER ring needs at least 3 switches")
    names = _switch_names(switch_count)
    split = switch_count // 2
    clockwise = names[1:split + 1]
    counter = names[:split:-1]  # sw{n-1}, ..., sw{split+1}
    trunks = [TrunkLink(names[0], 0, clockwise[0])]
    for src, dst in zip(clockwise, clockwise[1:]):
        trunks.append(TrunkLink(src, 0, dst))
    trunks.append(TrunkLink(names[0], 1, counter[0]))
    for src, dst in zip(counter, counter[1:]):
        trunks.append(TrunkLink(src, 0, dst))
    spec = TopologySpec(
        name="frer-ring",
        switch_ports={names[0]: 2, **{name: 1 for name in names[1:]}},
        trunks=trunks,
        uplinks=[HostUplink(t, names[0]) for t in talkers],
        attachments=[
            HostAttachment(clockwise[-1], 0, listener),
            HostAttachment(counter[-1], 0, listener),
        ],
    )
    spec.validate()
    return spec


def linear_topology(
    switch_count: int = 6,
    talkers: Sequence[str] = ("talker0", "talker1", "talker2"),
    listener: str = "listener",
    talker_switch_index: int = 0,
) -> TopologySpec:
    """The paper's linear chain: two enabled ports, bidirectional forwarding.

    Port 0 faces "east" (toward higher indices), port 1 "west"; the
    listener terminates the east end off ``sw{n-1}``'s port 0.  Measured
    flows run eastward; the westward ports exist (and are counted in the
    2-port resource budget) for the reverse direction.
    """
    if switch_count < 2:
        raise TopologyError("linear needs at least 2 switches")
    names = _switch_names(switch_count)
    trunks = []
    for i in range(switch_count - 1):
        trunks.append(TrunkLink(names[i], 0, names[i + 1]))      # east
        trunks.append(TrunkLink(names[i + 1], 1, names[i]))      # west
    spec = TopologySpec(
        name="linear",
        switch_ports={name: 2 for name in names},
        trunks=trunks,
        uplinks=[HostUplink(t, names[talker_switch_index]) for t in talkers],
        attachments=[HostAttachment(names[-1], 0, listener)],
    )
    spec.validate()
    return spec


def dual_path_topology(
    chain_len: int = 3,
    talkers: Sequence[str] = ("talker0",),
    listener: str = "listener",
) -> TopologySpec:
    """Two edge-disjoint paths from one head switch to one listener.

    The FRER (802.1CB) topology: talkers feed ``head``, which forwards each
    replica down its own chain (``a1..a{n-1}`` on port 0, ``b1..b{n-1}`` on
    port 1); both chains terminate at the *same* listener via separate
    attachments.  Any single trunk failure leaves one path intact.
    ``chain_len`` counts the switches on each path including the shared
    head, so a replica traverses ``chain_len`` switches.
    """
    if chain_len < 2:
        raise TopologyError("dual-path needs at least 2 switches per path")
    head = "head"
    chain_a = [f"a{i}" for i in range(1, chain_len)]
    chain_b = [f"b{i}" for i in range(1, chain_len)]
    switch_ports = {head: 2}
    switch_ports.update({name: 1 for name in chain_a + chain_b})
    trunks = [TrunkLink(head, 0, chain_a[0]), TrunkLink(head, 1, chain_b[0])]
    for chain in (chain_a, chain_b):
        for src, dst in zip(chain, chain[1:]):
            trunks.append(TrunkLink(src, 0, dst))
    spec = TopologySpec(
        name="dual-path",
        switch_ports=switch_ports,
        trunks=trunks,
        uplinks=[HostUplink(t, head) for t in talkers],
        attachments=[
            HostAttachment(chain_a[-1], 0, listener),
            HostAttachment(chain_b[-1], 0, listener),
        ],
    )
    spec.validate()
    return spec


def star_topology(
    child_count: int = 3,
    talkers: Sequence[str] = ("talker0", "talker1", "talker2"),
    listener: str = "listener",
    listener_child_index: int = 0,
) -> TopologySpec:
    """The paper's star: a core with *child_count* children (4 switches).

    The core enables one port per child (3 for the default, Table III's
    star column); each child enables one port.  Talker children point that
    port at the core; the listener child points it at the listener, so a
    measured flow traverses talker-leaf -> core -> listener-leaf = 3
    switches.
    """
    if child_count < 2:
        raise TopologyError("star needs at least 2 children")
    core = "core"
    children = [f"leaf{i}" for i in range(child_count)]
    trunks = []
    for i, child in enumerate(children):
        trunks.append(TrunkLink(core, i, child))       # core port i -> child i
        if i != listener_child_index:
            trunks.append(TrunkLink(child, 0, core))   # child port 0 -> core
    talker_children = [
        children[i]
        for i in range(child_count)
        if i != listener_child_index
    ]
    uplinks = [
        HostUplink(talker, talker_children[i % len(talker_children)])
        for i, talker in enumerate(talkers)
    ]
    spec = TopologySpec(
        name="star",
        switch_ports={core: child_count, **{c: 1 for c in children}},
        trunks=trunks,
        uplinks=uplinks,
        attachments=[
            HostAttachment(children[listener_child_index], 0, listener)
        ],
    )
    spec.validate()
    return spec
