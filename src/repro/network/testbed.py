"""Scenario orchestration: topology + switches + flows -> measurements.

:class:`Testbed` reproduces the paper's experiment workflow end to end:

1. instantiate one customized :class:`~repro.switch.device.TsnSwitch` per
   topology node (same :class:`~repro.core.config.SwitchConfig`, per-node
   port count);
2. wire trunk links, talker uplinks and the listener attachment;
3. program the control plane along every flow's path: per-flow VLAN ids,
   classification + unicast entries, token-bucket meters, CQF gate control
   lists, CBS reservations for the RC queues;
4. run ITP to plan TS injection offsets, then attach generators
   (the TSNNic role) and the analyzer (the TSN analyzer role);
5. ``run()`` the schedule and return a :class:`ScenarioResult` with
   latency/jitter/loss summaries, switch counters, and occupancy high-water
   marks (the inputs to resource-sizing validation).

Every stochastic choice derives from the scenario ``seed``; identical
seeds give bit-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigurationError, SchedulingError, TopologyError
from repro.core.units import GIGABIT, ms, serialization_ns, wire_bytes
from repro.cqf.gcl_gen import (
    DEFAULT_TS_QUEUE_PAIR,
    cqf_port_program,
    csqf_port_program,
    multi_cqf_port_program,
)
from repro.cqf.itp import ItpPlan
from repro.sched import SchedPolicy, plan_flows
from repro.sched.problem import MultiSchedulePlan, SchedulePlan
from repro.faults.injector import FaultInjector, FaultReport
from repro.faults.plan import FaultPlan
from repro.obs.flowspans import FlowSpanRecorder
from repro.obs.headroom import HeadroomRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import WallClockProfiler
from repro.obs.slo import SloMonitor, SloPolicy, SloReport
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.sim.rng import RngFactory
from repro.sim.trace import NULL_TRACER, Tracer
from repro.switch.device import DEFAULT_PROCESSING_DELAY_NS, TsnSwitch
from repro.timesync.gptp import GptpConfig, SyncDomain
from repro.switch.tables import CbsParams, GateEntry
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass
from repro.traffic.generator import PeriodicSource, RateSource
from .analyzer import LatencySummary, TsnAnalyzer
from .host import Host
from .link import DEFAULT_PROPAGATION_NS, Link
from .topology import TopologySpec

__all__ = ["Testbed", "ScenarioResult"]

#: RC traffic spreads over queues 5, 4, 3 (the paper's "three queues for RC
#: flows in each port").
RC_QUEUES: Tuple[int, ...] = (5, 4, 3)
BE_QUEUE = 0


@dataclass
class ScenarioResult:
    """Everything one testbed run measured."""

    duration_ns: int
    slot_ns: int
    expected_by_flow: Dict[int, int]
    analyzer: TsnAnalyzer
    flows: FlowSet
    switches: Dict[str, TsnSwitch]
    itp_plan: Optional[ItpPlan]
    sched_plan: Optional[Union[SchedulePlan, MultiSchedulePlan]] = None
    metrics: Optional[MetricsRegistry] = None
    tracer: Tracer = NULL_TRACER
    sim_stats: Dict[str, int] = field(default_factory=dict)
    spans: Optional[FlowSpanRecorder] = None
    slo: Optional[SloReport] = None
    links: List["Link"] = field(default_factory=list)
    frer_eliminators: Dict[str, "FrerEliminator"] = field(
        default_factory=dict
    )
    faults: Optional[FaultReport] = None
    headroom: Optional[HeadroomRecorder] = None

    # ------------------------------------------------------------ shortcuts

    def summary(self, traffic_class: TrafficClass) -> LatencySummary:
        return self.analyzer.class_summary(traffic_class)

    @property
    def ts_summary(self) -> LatencySummary:
        return self.summary(TrafficClass.TS)

    def loss_rate(self, traffic_class: TrafficClass) -> float:
        return self.analyzer.loss_rate(self.expected_by_flow, traffic_class)

    @property
    def ts_loss(self) -> float:
        return self.loss_rate(TrafficClass.TS)

    def counters(self) -> Dict[str, Dict[str, int]]:
        return {
            name: switch.counters.as_dict()
            for name, switch in self.switches.items()
        }

    def max_queue_high_water(self) -> int:
        """Worst queue occupancy across all switches (sizing check)."""
        return max(
            (
                high
                for switch in self.switches.values()
                for high in switch.queue_high_water().values()
            ),
            default=0,
        )

    def max_buffer_high_water(self) -> int:
        return max(
            (
                high
                for switch in self.switches.values()
                for high in switch.buffer_high_water().values()
            ),
            default=0,
        )

    def headroom_report(
        self,
        queue_depth_margin: float = 1.5,
        depth_round_to: int = 4,
    ) -> "HeadroomReport":
        """Observed-vs-provisioned accounting for this run.

        Always available: peaks and table fills come from run state.  When
        the run was built with a :class:`HeadroomRecorder`, the report
        additionally carries time-weighted means and occupancy bands.
        """
        from repro.obs.headroom import build_headroom_report

        return build_headroom_report(
            self,
            self.headroom,
            queue_depth_margin=queue_depth_margin,
            depth_round_to=depth_round_to,
        )

    def port_report(self) -> str:
        """Per-port occupancy/drop table -- the sizing-evidence view.

        One row per (switch, port): queue high-water vs configured depth,
        buffer high-water vs pool size, the drop counters that fire when
        either is undersized and -- when occupancy probes ran --
        time-weighted mean occupancies.  Rendered from the headroom
        report so ``simulate --drops`` and ``repro headroom`` share one
        occupancy view.
        """
        from repro.analysis.report import render_port_occupancy

        return render_port_occupancy(self.headroom_report())

    def drop_report(self) -> str:
        """Per-switch drop totals broken down by reason.

        One row per switch, one column per drop stage (lookup miss,
        policer, Qci gate filter, queue tail, buffer exhaustion, ingress
        FCS rejection) -- the where-did-loss-come-from view the
        undersizing ablations read.  Runs with link faults or FRER active
        append the link-level losses and the eliminations under their own
        distinct reasons instead of folding them into switch loss.
        """
        from repro.analysis.report import render_table

        reasons = (
            "unknown_dst", "policer", "gate", "tail", "no_buffer", "corrupt",
        )
        rows = []
        for name, switch in self.switches.items():
            counters = switch.counters
            rows.append(
                [name]
                + [str(getattr(counters, f"dropped_{r}")) for r in reasons]
                + [str(counters.dropped_total)]
            )
        sections = [
            render_table(
                ["switch"] + list(reasons) + ["total"],
                rows,
                title="Drops by reason",
            )
        ]
        link_rows = [
            [
                link.name,
                str(link.frames_blackholed),
                str(link.frames_fault_lost),
                str(link.frames_fault_corrupted),
            ]
            for link in self.links
            if link.frames_blackholed
            or link.frames_fault_lost
            or link.frames_fault_corrupted
        ]
        if link_rows:
            sections.append(
                render_table(
                    ["link", "blackholed", "fault lost", "fault corrupted"],
                    link_rows,
                    title="Link losses",
                )
            )
        frer_rows = [
            [
                listener,
                str(eliminator.duplicates_eliminated),
                str(eliminator.rogue_frames),
            ]
            for listener, eliminator in sorted(self.frer_eliminators.items())
        ]
        if frer_rows:
            sections.append(
                render_table(
                    ["listener", "duplicates eliminated", "rogue"],
                    frer_rows,
                    title="FRER elimination (not loss)",
                )
            )
        return "\n\n".join(sections)


class Testbed:
    """Builds and runs one scenario."""

    def __init__(
        self,
        topology: TopologySpec,
        config: SwitchConfig,
        flows: FlowSet,
        slot_ns: int = 62_500,
        rate_bps: int = GIGABIT,
        propagation_ns: int = DEFAULT_PROPAGATION_NS,
        trunk_error_rate: float = 0.0,
        seed: int = 0,
        use_itp: bool = True,
        gate_mechanism: str = "cqf",
        injection_phase: str = "planned",
        aggregate_routes: bool = False,
        frer_ts: bool = False,
        enable_metering: bool = True,
        poisson_be: bool = False,
        ts_queue_pair: Tuple[int, int] = DEFAULT_TS_QUEUE_PAIR,
        sched: Optional[SchedPolicy] = None,
        scheduler_factory: Optional[Callable] = None,
        shared_buffers: bool = False,
        preemption_enabled: bool = False,
        clock_drift_ppm: float = 0.0,
        clock_offset_spread_ns: int = 0,
        enable_gptp: bool = False,
        gptp_config: Optional[GptpConfig] = None,
        gptp_warmup_ns: int = 2_000_000_000,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[WallClockProfiler] = None,
        spans: Optional[FlowSpanRecorder] = None,
        slo_policy: Optional[SloPolicy] = None,
        gate_events: str = "auto",
        fault_plan: Optional[FaultPlan] = None,
        headroom: Optional[HeadroomRecorder] = None,
        fastpath: str = "auto",
    ) -> None:
        topology.validate()
        config.validate()
        self.topology = topology
        self.base_config = config
        self.flows = flows
        self.slot_ns = slot_ns
        self.rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self.trunk_error_rate = trunk_error_rate
        self.use_itp = use_itp
        # The scheduling policy: backend + shaper + objective.  ``use_itp``
        # remains the legacy knob -- consulted only when no explicit policy
        # is given, so ``use_itp=False`` still means the unplanned ablation.
        if sched is None:
            sched = SchedPolicy(backend="greedy" if use_itp else "unplanned")
        self.sched = sched
        self.shaper = sched.shaper
        if gate_mechanism not in ("cqf", "qbv"):
            raise ConfigurationError(
                f"gate_mechanism must be 'cqf' or 'qbv', "
                f"got {gate_mechanism!r}"
            )
        if gate_mechanism != "cqf" and self.shaper != "cqf":
            raise ConfigurationError(
                f"shaper {self.shaper!r} requires gate_mechanism='cqf' "
                f"(Qbv window synthesis assumes classic CQF slotting)"
            )
        self.gate_mechanism = gate_mechanism
        if injection_phase not in ("planned", "uniform"):
            raise ConfigurationError(
                f"injection_phase must be 'planned' or 'uniform', "
                f"got {injection_phase!r}"
            )
        self.injection_phase = injection_phase
        self.aggregate_routes = aggregate_routes
        # 802.1CB seamless redundancy: replicate every TS flow over two
        # edge-disjoint paths (the destination needs two attachments, e.g.
        # dual_path_topology) and eliminate duplicates at the listener.
        self.frer_ts = frer_ts
        if frer_ts and gate_mechanism != "cqf":
            raise ConfigurationError("frer_ts currently requires CQF gating")
        if frer_ts and self.shaper != "cqf":
            raise ConfigurationError(
                "frer_ts currently requires the classic 'cqf' shaper"
            )
        self.frer_eliminators: Dict[str, "FrerEliminator"] = {}
        self._replica_vids: Dict[int, int] = {}
        self.enable_metering = enable_metering
        self.poisson_be = poisson_be
        self.ts_queue_pair = ts_queue_pair
        # Per-shaper queue layout.  Classic CQF keeps the historical map
        # (TS pair high, RC on 5/4/3 = their PCPs, BE on 0).  CSQF claims a
        # third TS queue and Multi-CQF a second queue group, pushing the RC
        # queues down; RC PCPs then no longer equal their queue ids, so RC
        # flows get explicit classification entries (rank-preserving map).
        if self.shaper == "cqf":
            self.ts_queue_groups: Tuple[Tuple[int, ...], ...] = (
                tuple(ts_queue_pair),
            )
            self.rc_queues: Tuple[int, ...] = RC_QUEUES
        elif self.shaper == "csqf":
            self.ts_queue_groups = (
                (ts_queue_pair[0] - 1, ts_queue_pair[0], ts_queue_pair[1]),
            )
            self.rc_queues = tuple(q - 1 for q in RC_QUEUES)
        else:  # multi_cqf: one queue group per CQF system
            self.ts_queue_groups = (
                tuple(ts_queue_pair),
                (ts_queue_pair[0] - 2, ts_queue_pair[1] - 2),
            )
            self.rc_queues = tuple(q - 2 for q in RC_QUEUES)
        if self.shaper != "cqf":
            used = [q for group in self.ts_queue_groups for q in group]
            used += [*self.rc_queues, BE_QUEUE]
            if (
                len(set(used)) != len(used)
                or min(used) < 0
                or max(used) >= config.queue_num
            ):
                raise ConfigurationError(
                    f"shaper {self.shaper!r} queue layout {sorted(used)} "
                    f"does not fit {config.queue_num} queues without overlap"
                )
        self.scheduler_factory = scheduler_factory
        self.shared_buffers = shared_buffers
        self.preemption_enabled = preemption_enabled
        self.clock_drift_ppm = clock_drift_ppm
        self.clock_offset_spread_ns = clock_offset_spread_ns
        self.enable_gptp = enable_gptp
        self.gptp_config = gptp_config or GptpConfig()
        self.gptp_warmup_ns = gptp_warmup_ns
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.spans = spans
        self.slo_policy = slo_policy
        self.slo_monitor = None
        self.headroom = headroom
        if gate_events not in ("auto", "flip", "table"):
            raise ConfigurationError(
                f"gate_events must be 'auto', 'flip' or 'table', "
                f"got {gate_events!r}"
            )
        self.gate_events = gate_events
        self.fault_plan = fault_plan
        self.fault_injector: Optional[FaultInjector] = None
        # Batched (struct-of-arrays) frame fast path.  ``"auto"`` enables it
        # whenever no flow-span recorder is attached (spans want full frame
        # objects at every hop, which would force materialization everywhere
        # and erase the win); ``"on"``/``"off"`` force either way.  The
        # tracer does NOT disable batching: trace emits read the batch
        # columns directly, which is what lets the equivalence tests compare
        # object-path and batch-path traces byte for byte.
        if fastpath not in ("auto", "on", "off"):
            raise ConfigurationError(
                f"fastpath must be 'auto', 'on' or 'off', got {fastpath!r}"
            )
        self.fastpath = fastpath
        if fastpath == "on" or (fastpath == "auto" and spans is None):
            from repro.switch.batch import FrameBatch

            self.batch: Optional["FrameBatch"] = FrameBatch()
        else:
            self.batch = None
        self.sim = Simulator(profiler=profiler)
        self.rng = RngFactory(seed)
        self.sync_domain: Optional[SyncDomain] = None

        self.switches: Dict[str, TsnSwitch] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        self._listener_ports: Dict[Tuple[str, str], int] = {}
        self._flow_vids: Dict[int, int] = {}
        self._rc_queue_of: Dict[int, int] = {}
        self.analyzer: Optional[TsnAnalyzer] = None
        self.itp_plan: Optional[ItpPlan] = None
        self.sched_plan: Optional[
            Union[SchedulePlan, MultiSchedulePlan]
        ] = None
        self._sources: List = []
        self._built = False

    # ------------------------------------------------------------- building

    def build(self) -> None:
        """Construct devices, wire links, program the control plane."""
        if self._built:
            raise ConfigurationError("testbed already built")
        self._built = True
        self._assign_vids()
        self._create_switches()
        self._create_hosts()
        self._wire_links()
        self._plan_injections()  # before gates: Qbv windows need the plan
        self._program_gates()
        self._program_cbs()
        self._program_paths()
        self._create_analyzer()
        self._create_sources()

    #: VLAN used by background flows toward a destination no TS flow serves.
    BACKGROUND_VID = 4095

    def _assign_vids(self) -> None:
        """Assign VLAN ids: per-flow for TS, shared for background.

        TS flows get unique VIDs -- the classification key (SMAC, DMAC,
        VID, PRI) distinguishes the 1024 flows by VID, which is exactly why
        the paper's classification *and* unicast tables are sized at the TS
        flow count (both are exactly full at the target workload).

        Background (RC/BE) aggregates ride the 802.1Q defaults instead:
        they reuse the VID of some TS flow to the same destination, so
        forwarding shares that flow's unicast entry (per-destination
        forwarding, as on real L2 silicon) while the PRI field keeps their
        classification on the PCP fallback -- zero extra table entries.
        """
        ts_flows = self.flows.ts_flows
        if len(ts_flows) > 4094:
            raise ConfigurationError(
                f"{len(ts_flows)} TS flows exceed the 4094 usable VLAN ids"
            )
        if self.frer_ts and 2 * len(ts_flows) > 4094:
            raise ConfigurationError(
                f"FRER doubles the VID demand: {2 * len(ts_flows)} > 4094"
            )
        vid_for_dst: Dict[str, int] = {}
        next_vid = 1
        for flow in self.flows:
            if flow.traffic_class is TrafficClass.TS:
                self._flow_vids[flow.flow_id] = next_vid
                vid_for_dst.setdefault(flow.dst, next_vid)
                next_vid += 1
        if self.frer_ts:
            # Replica VIDs sit in a second band so path-B routes and
            # classification entries stay distinct from path A's.
            for flow in self.flows.ts_flows:
                self._replica_vids[flow.flow_id] = (
                    self._flow_vids[flow.flow_id] + len(ts_flows)
                )
        for flow in self.flows:
            if flow.traffic_class is not TrafficClass.TS:
                self._flow_vids[flow.flow_id] = vid_for_dst.get(
                    flow.dst, self.BACKGROUND_VID
                )

    def _create_switches(self) -> None:
        """Instantiate one customized switch per topology node.

        With ``clock_drift_ppm`` set, every switch (except the first, which
        acts as gPTP grandmaster and time source) gets a drifting, offset
        local clock; gate schedules then only stay network-aligned if gPTP
        is enabled -- the time-sync ablation.
        """
        drift_rng = self.rng.stream("clock.drift")
        for index, (name, ports) in enumerate(
            self.topology.switch_ports.items()
        ):
            per_node = self.base_config.with_updates(name=name, port_num=ports)
            clock = None
            if self.clock_drift_ppm or self.clock_offset_spread_ns:
                is_grandmaster = index == 0
                clock = LocalClock(
                    self.sim,
                    drift_ppm=(
                        0.0
                        if is_grandmaster
                        else drift_rng.uniform(
                            -self.clock_drift_ppm, self.clock_drift_ppm
                        )
                    ),
                    offset_ns=(
                        0
                        if is_grandmaster
                        else drift_rng.randint(
                            -self.clock_offset_spread_ns,
                            self.clock_offset_spread_ns,
                        )
                    ),
                )
            self.switches[name] = TsnSwitch(
                self.sim,
                per_node,
                rate_bps=self.rate_bps,
                clock=clock,
                scheduler_factory=self.scheduler_factory,
                shared_buffers=self.shared_buffers,
                preemption_enabled=self.preemption_enabled,
                express_queues=tuple(
                    q for group in self.ts_queue_groups for q in group
                ),
                tracer=self.tracer,
                metrics=self.metrics,
                spans=self.spans,
                headroom=self.headroom,
                gate_events=self.gate_events,
                name=name,
                batch=self.batch,
            )
        if self.enable_gptp:
            self._build_sync_domain()

    def _build_sync_domain(self) -> None:
        """Sync tree over the trunk graph, rooted at the first switch."""
        domain = SyncDomain(self.sim, self.gptp_config)
        names = list(self.switches)
        root = names[0]
        domain.add_node(root, self.switches[root].clock)
        # BFS over trunks (either direction) to parent every switch.
        adjacency: Dict[str, List[str]] = {name: [] for name in names}
        for trunk in self.topology.trunks:
            adjacency[trunk.src].append(trunk.dst)
            adjacency[trunk.dst].append(trunk.src)
        frontier = [root]
        while frontier:
            current = frontier.pop(0)
            for neighbor in adjacency[current]:
                if neighbor in domain.nodes:
                    continue
                domain.add_node(
                    neighbor,
                    self.switches[neighbor].clock,
                    parent=current,
                    link_delay_ns=self.propagation_ns,
                )
                frontier.append(neighbor)
        missing = [n for n in names if n not in domain.nodes]
        if missing:
            raise TopologyError(
                f"gPTP tree cannot reach switches {missing} over trunks"
            )
        self.sync_domain = domain

    def _create_hosts(self) -> None:
        # dict.fromkeys: a host may appear twice (e.g. a FRER listener with
        # two attachments) but must be one device
        for host_name in dict.fromkeys(self.topology.hosts):
            self.hosts[host_name] = Host(
                self.sim,
                host_name,
                rate_bps=self.rate_bps,
                tracer=self.tracer,
                spans=self.spans,
                batch=self.batch,
            )

    def _wire_links(self) -> None:
        for trunk in self.topology.trunks:
            src_switch = self.switches[trunk.src]
            dst_switch = self.switches[trunk.dst]
            name = f"{trunk.src}.p{trunk.src_port}->{trunk.dst}"
            self.links.append(
                Link(
                    self.sim,
                    src_switch.ports[trunk.src_port],
                    dst_switch.receive,
                    self.propagation_ns,
                    error_rate=self.trunk_error_rate,
                    rng=(
                        self.rng.stream(f"link.{name}.errors")
                        if self.trunk_error_rate
                        else None
                    ),
                    name=name,
                    spans=self.spans,
                    batch=self.batch,
                )
            )
        for uplink in self.topology.uplinks:
            host = self.hosts[uplink.host]
            self.links.append(
                Link(
                    self.sim,
                    host.nic,
                    self.switches[uplink.dst].receive,
                    self.propagation_ns,
                    name=f"{uplink.host}->{uplink.dst}",
                    spans=self.spans,
                    batch=self.batch,
                )
            )
        for attachment in self.topology.attachments:
            host = self.hosts[attachment.host]
            switch = self.switches[attachment.switch]
            self.links.append(
                Link(
                    self.sim,
                    switch.ports[attachment.port],
                    host.receive,
                    self.propagation_ns,
                    name=(
                        f"{attachment.switch}.p{attachment.port}"
                        f"->{attachment.host}"
                    ),
                    spans=self.spans,
                    batch=self.batch,
                )
            )
            self._listener_ports[(attachment.switch, attachment.host)] = (
                attachment.port
            )
        # Unique positive arrival priority per link, in wiring order (a
        # pure function of the topology spec).  Same-instant arrivals are
        # then ordered identically whether the run is single-process or
        # sharded -- posting order is execution-dependent, link identity is
        # not.  Positive keeps them after gate/fault events (negative
        # priorities) and ordinary zero-priority events at the same time.
        for index, link in enumerate(self.links):
            link.arrival_priority = index + 1

    def _program_gates(self) -> None:
        if self.gate_mechanism != "cqf":
            self._program_gates_qbv()
            return
        queue_num = self.base_config.queue_num
        if self.shaper == "cqf":
            in_entries, out_entries, groups = cqf_port_program(
                self.slot_ns, self.ts_queue_pair, queue_num
            )
        elif self.shaper == "csqf":
            in_entries, out_entries, groups = csqf_port_program(
                self.slot_ns, self.ts_queue_groups[0], queue_num
            )
        else:
            in_entries, out_entries, groups = multi_cqf_port_program(
                self.slot_ns,
                self.sched.slot2_ns(self.slot_ns),
                self.ts_queue_groups,
                queue_num,
            )
        for switch in self.switches.values():
            for port_id in range(len(switch.ports)):
                switch.program_gcls(
                    port_id, list(in_entries), list(out_entries), groups
                )

    def _program_gates_qbv(self) -> None:
        """Per-port Time-Aware Shaper windows synthesized from the ITP plan.

        Qbv gates the egress only; in-gates stay open (no CQF queue pair),
        and TS frames flow through each hop inside its transmission window
        rather than waiting out a slot.  ``gate_size`` must cover the
        compiled schedule -- size it with
        :func:`repro.qbv.synthesis.estimate_gate_size`.
        """
        from repro.qbv.synthesis import PortTraffic, TasSynthesizer

        if self.itp_plan is None:
            raise ConfigurationError(
                "gate_mechanism='qbv' needs TS flows to synthesize windows"
            )
        schedule = self.itp_plan.schedule
        synthesizer = TasSynthesizer(
            schedule,
            rate_bps=self.rate_bps,
            processing_delay_ns=DEFAULT_PROCESSING_DELAY_NS,
            propagation_ns=self.propagation_ns,
            queue_num=self.base_config.queue_num,
            ts_queue=self.ts_queue_pair[1],
        )
        slot_flows: Dict[Tuple[str, int], Dict[int, List[FlowSpec]]] = {}
        hop_depths: Dict[Tuple[str, int], set] = {}
        for flow in self.flows.ts_flows:
            if flow.flow_id not in self.itp_plan.assignments:
                continue  # rejected by a max_admission plan
            assignment = self.itp_plan.assignments[flow.flow_id]
            slots = range(
                assignment.offset_slot,
                schedule.slot_count,
                assignment.period_slots,
            )
            for hop, port_key in enumerate(self._flow_hop_ports(flow)):
                hop_depths.setdefault(port_key, set()).add(hop)
                per_port = slot_flows.setdefault(port_key, {})
                for slot in slots:
                    per_port.setdefault(slot, []).append(flow)
        always_open = [GateEntry(0xFF, 1_000_000)]
        for (switch_name, port_id), per_slot in slot_flows.items():
            traffic = PortTraffic(
                slot_flows=per_slot,
                hop_indices=tuple(sorted(hop_depths[(switch_name, port_id)])),
            )
            port_schedule = synthesizer.synthesize_port(traffic)
            switch = self.switches[switch_name]
            if port_schedule.gate_size > switch.config.gate_size:
                raise ConfigurationError(
                    f"{switch_name}: Qbv schedule needs "
                    f"{port_schedule.gate_size} gate entries but gate_size "
                    f"is {switch.config.gate_size}; size the config with "
                    "repro.qbv.synthesis.estimate_gate_size"
                )
            switch.program_gcls(
                port_id, list(always_open), port_schedule.entries, ()
            )

    def _program_cbs(self) -> None:
        """Reserve CBS bandwidth for the RC queues on every port.

        Each RC queue's idleSlope covers the aggregate rate of the flows
        assigned to it with 100% headroom, clamped into (0, 75%] of the port
        rate; queues with no RC flows get a token reservation so the CBS
        map/table sizing of the config is exercised either way.
        """
        rc_flows = self.flows.rc_flows
        per_queue_rate: Dict[int, int] = {q: 0 for q in self.rc_queues}
        for flow in rc_flows:
            pcp = flow.effective_pcp
            if pcp not in RC_QUEUES:
                raise ConfigurationError(
                    f"RC flow {flow.flow_id}: PCP {pcp} does not map onto "
                    f"an RC queue {RC_QUEUES}"
                )
            # Rank-preserving PCP -> queue map; the identity under 'cqf'.
            queue = self.rc_queues[RC_QUEUES.index(pcp)]
            self._rc_queue_of[flow.flow_id] = queue
            per_queue_rate[queue] += flow.effective_rate_bps
        usable = len(self.rc_queues)
        if self.base_config.cbs_map_size < usable:
            usable = self.base_config.cbs_map_size
        for switch in self.switches.values():
            for port_id in range(len(switch.ports)):
                for slot_index, queue_id in enumerate(
                    self.rc_queues[:usable]
                ):
                    reserved = per_queue_rate.get(queue_id, 0) * 2
                    reserved = max(reserved, self.rate_bps // 100)
                    reserved = min(reserved, self.rate_bps * 3 // 4)
                    switch.program_cbs(
                        port_id,
                        queue_id,
                        slot_index,
                        CbsParams.for_reservation(reserved, self.rate_bps),
                    )

    def _queue_for(self, flow: FlowSpec) -> int:
        if flow.traffic_class is TrafficClass.TS:
            # Classification targets one member of the flow's CQF group;
            # the gate engine redirects to whichever member is gathering.
            # Under multi_cqf the flow's planned system picks the group.
            if self.shaper == "multi_cqf" and self.sched_plan is not None:
                system = self.sched_plan.system_of(flow.flow_id)
                return self.ts_queue_groups[system][-1]
            return self.ts_queue_groups[0][-1]
        if flow.traffic_class is TrafficClass.RC:
            return self._rc_queue_of[flow.flow_id]
        return BE_QUEUE

    def _ts_admitted(self, flow: FlowSpec) -> bool:
        """False only for flows a ``max_admission`` plan rejected."""
        return self.sched_plan is None or flow.flow_id in self.sched_plan.offsets

    def _flow_hop_ports(self, flow: FlowSpec) -> List[Tuple[str, int]]:
        """(switch, egress port) for every hop including listener delivery."""
        path = self.topology.switch_path(flow.src, flow.dst)
        egress = self.topology.egress_ports_on_path(path)
        last_switch = path[-1]
        local_port = self._listener_ports.get((last_switch, flow.dst))
        if local_port is None:
            raise TopologyError(
                f"flow {flow.flow_id}: destination {flow.dst!r} is not "
                f"attached to {last_switch!r}"
            )
        return list(egress) + [(last_switch, local_port)]

    def _frer_hop_port_sets(self, flow: FlowSpec) -> List[List[Tuple[str, int]]]:
        """Two edge-disjoint hop-port lists toward the flow's destination.

        One path per listener attachment (FRER needs the destination to be
        attached at least twice); edge-disjointness is verified so a single
        trunk failure cannot take out both replicas.
        """
        import networkx as nx

        attachments = [
            a for a in self.topology.attachments if a.host == flow.dst
        ]
        if len(attachments) < 2:
            raise TopologyError(
                f"FRER flow {flow.flow_id}: destination {flow.dst!r} needs "
                f"two attachments, found {len(attachments)}"
            )
        paths: List[List[Tuple[str, int]]] = []
        used_edges: set = set()
        graph = self.topology._trunk_graph()
        first = self.topology.host_switch(flow.src)
        for attachment in attachments[:2]:
            chain = (
                [first]
                if first == attachment.switch
                else nx.shortest_path(graph, first, attachment.switch)
            )
            hop_ports = list(self.topology.egress_ports_on_path(chain))
            hop_ports.append((attachment.switch, attachment.port))
            edges = set(hop_ports)
            overlap = edges & used_edges
            if overlap:
                raise TopologyError(
                    f"FRER flow {flow.flow_id}: replica paths share trunk "
                    f"ports {sorted(overlap)} -- not disjoint"
                )
            used_edges |= edges
            paths.append(hop_ports)
        return paths

    def _program_paths(self) -> None:
        """Install forwarding/classification/policing along every path.

        TS flows get per-flow classification entries and meters -- the table
        sizing the paper evaluates (class/meter size == TS flow count, so
        the tables are exactly full at the target workload).  RC and BE
        background ride the 802.1Q PCP default instead: their PCP lands
        them directly on the CBS-shaped queues (5..3) or the best-effort
        queue (0), consuming only a shared forwarding route.
        """
        meter_ids: Dict[str, int] = {name: 0 for name in self.switches}

        def next_meter(switch_name: str, rate_bps: int, burst: int) -> int:
            # Meters are assigned first-come until the customized meter
            # table fills; overflow flows run unmetered (the sizing
            # guideline sets meter_size to the flow count, so overflow only
            # happens in deliberate undersizing runs).
            switch = self.switches[switch_name]
            if (
                not self.enable_metering
                or meter_ids[switch_name] >= switch.config.meter_size
            ):
                return -1
            meter_id = meter_ids[switch_name]
            meter_ids[switch_name] += 1
            switch.program_meter(meter_id, rate_bps=rate_bps,
                                 burst_bytes=burst)
            return meter_id

        for flow in self.flows:
            vid = self._flow_vids[flow.flow_id]
            pcp = flow.effective_pcp
            queue_id = self._queue_for(flow)
            src_mac = self.hosts[flow.src].mac
            dst_mac = self.hosts[flow.dst].mac
            if flow.traffic_class is TrafficClass.TS:
                if not self._ts_admitted(flow):
                    continue  # rejected by a max_admission plan: no state
                if self.frer_ts:
                    replicas = list(
                        zip(
                            (vid, self._replica_vids[flow.flow_id]),
                            self._frer_hop_port_sets(flow),
                        )
                    )
                else:
                    replicas = [(vid, self._flow_hop_ports(flow))]
                for replica_vid, hop_ports in replicas:
                    for switch_name, outport in hop_ports:
                        switch = self.switches[switch_name]
                        meter_id = next_meter(
                            switch_name,
                            max(64_000, flow.effective_rate_bps * 2),
                            4 * flow.size_bytes,
                        )
                        switch.program_flow(
                            src_mac, dst_mac, replica_vid, pcp, outport,
                            queue_id, meter_id,
                            aggregate_route=(
                                self.aggregate_routes and not self.frer_ts
                            ),
                        )
            elif (
                flow.traffic_class is TrafficClass.RC
                and self.shaper != "cqf"
            ):
                # The PCP fallback would land RC frames on a queue the
                # shaper claimed; install explicit (unmetered)
                # classification entries mapping them to the shifted RC
                # queues instead.
                for switch_name, outport in self._flow_hop_ports(flow):
                    self.switches[switch_name].program_flow(
                        src_mac, dst_mac, vid, pcp, outport, queue_id, -1,
                        aggregate_route=self.aggregate_routes,
                    )
            else:  # RC/BE: forwarding route only, PCP default classifies
                for switch_name, outport in self._flow_hop_ports(flow):
                    self.switches[switch_name].program_route(
                        dst_mac,
                        None if self.aggregate_routes else vid,
                        outport,
                    )

    def _plan_injections(self) -> None:
        if not self.flows.ts_flows:
            return
        plan = plan_flows(
            list(self.flows), self.slot_ns, self.rate_bps, policy=self.sched
        )
        plan.raise_if_infeasible()
        self.sched_plan = plan
        if isinstance(plan, SchedulePlan):
            # Single-system plans keep the legacy view alive (Qbv window
            # synthesis, sizing evidence, exports); Multi-CQF has no
            # faithful single-schedule projection.
            self.itp_plan = plan.to_itp_plan()

    def _create_analyzer(self) -> None:
        from repro.frer.elimination import FrerEliminator

        self.analyzer = TsnAnalyzer(self.sim, self.flows, batch=self.batch)
        if self.slo_policy is not None:
            self.slo_monitor = SloMonitor(
                self.slo_policy, self.flows, metrics=self.metrics
            )
            self.analyzer.slo = self.slo_monitor
        for attachment in self.topology.attachments:
            host = self.hosts[attachment.host]
            if self.frer_ts:
                if attachment.host not in self.frer_eliminators:
                    self.frer_eliminators[attachment.host] = FrerEliminator(
                        self.analyzer.record, batch=self.batch
                    )
                host.on_receive = self.frer_eliminators[attachment.host]
            else:
                host.on_receive = self.analyzer.record

    def _create_sources(self) -> None:
        for flow in self.flows:
            host = self.hosts[flow.src]
            dst = self.hosts[flow.dst]
            vid = self._flow_vids[flow.flow_id]
            if flow.traffic_class is TrafficClass.TS:
                assert self.sched_plan is not None
                if not self._ts_admitted(flow):
                    continue  # rejected flows inject nothing
                plan = self.sched_plan
                offset = (
                    plan.offsets[flow.flow_id]
                    * plan.slot_ns_of(flow.flow_id)
                    + self._injection_phase_ns(flow)
                )
                vids = [vid]
                if self.frer_ts:
                    # FRER replication: one source per member stream, same
                    # cadence, so replicas carry identical (flow, seq)
                    vids.append(self._replica_vids[flow.flow_id])
                for member_vid in vids:
                    self._sources.append(
                        PeriodicSource(
                            self.sim,
                            host.inject,
                            flow.flow_id,
                            host.mac,
                            dst.mac,
                            size_bytes=flow.size_bytes,
                            period_ns=flow.period_ns or ms(10),
                            offset_ns=offset,
                            vlan_id=member_vid,
                            pcp=flow.effective_pcp,
                            spans=self.spans,
                            batch=self.batch,
                        )
                    )
            else:
                rng = self.rng.stream(f"flow{flow.flow_id}.phase")
                gap_hint = flow.inter_frame_ns
                self._sources.append(
                    RateSource(
                        self.sim,
                        host.inject,
                        flow.flow_id,
                        host.mac,
                        dst.mac,
                        size_bytes=flow.size_bytes,
                        rate_bps=flow.effective_rate_bps,
                        start_ns=rng.randrange(max(1, gap_hint)),
                        vlan_id=vid,
                        pcp=flow.effective_pcp,
                        poisson=(
                            self.poisson_be
                            and flow.traffic_class is TrafficClass.BE
                        ),
                        rng=self.rng.stream(f"flow{flow.flow_id}.gaps"),
                        spans=self.spans,
                        batch=self.batch,
                    )
                )

    def _injection_phase_ns(self, flow: FlowSpec) -> int:
        """Where inside its planned slot a TS flow injects.

        ``"planned"`` uses the plan's compact stagger (frames back-to-back
        at the slot head -- maximal drain margin, near-zero cross-flow
        jitter).  ``"uniform"`` draws a seeded random phase across the slot,
        the way unconstrained TSNNic applications inject: latency then
        spreads across the Eq. (1) window and the measured jitter becomes
        proportional to the slot size -- the behaviour behind the paper's
        "the jitter is related to the slot size" (Fig. 7c).  A guard at the
        slot tail keeps the frame's arrival at the first switch inside the
        intended slot.  The slot size is the flow's own system's (they
        differ under Multi-CQF).
        """
        assert self.sched_plan is not None
        if self.injection_phase == "planned":
            return self.sched_plan.phase_ns(flow.flow_id)
        guard = (
            serialization_ns(wire_bytes(flow.size_bytes), self.rate_bps)
            + self.propagation_ns
            + DEFAULT_PROCESSING_DELAY_NS
            + 1_000
        )
        window = max(1, self.sched_plan.slot_ns_of(flow.flow_id) - guard)
        rng = self.rng.stream(f"flow{flow.flow_id}.inject")
        return rng.randrange(window)

    # -------------------------------------------------------------- running

    def run(self, duration_ns: int, drain_slots: int = 8) -> ScenarioResult:
        """Inject for *duration_ns*, drain, and collect results."""
        if not self._built:
            self.build()
        if duration_ns <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {duration_ns}"
            )
        if self.sync_domain is not None:
            # Let the servos lock before gates and traffic start.
            self.sync_domain.start()
            self.sim.run(until=self.gptp_warmup_ns)
        start_ns = self.sim.now
        if self.fault_plan is not None:
            # Fault times are relative to traffic start so a plan means
            # the same thing regardless of gPTP warmup.
            self.fault_injector = FaultInjector(
                self.fault_plan,
                sim=self.sim,
                links=self.links,
                switches=self.switches,
                rng=self.rng,
                sync_domain=self.sync_domain,
                metrics=self.metrics,
            )
            self.fault_injector.arm(start_ns)
        for switch in self.switches.values():
            switch.start()
        for host in self.hosts.values():
            host.start()
        for source in self._sources:
            if isinstance(source, PeriodicSource):
                remaining = duration_ns - source.offset_ns
                source.limit = max(0, -(-remaining // source.period_ns))
            else:
                source.until_ns = start_ns + duration_ns
            source.start()
        drain_slot_ns = (
            self.sched.slot2_ns(self.slot_ns)
            if self.shaper == "multi_cqf"
            else self.slot_ns
        )
        self.sim.run(until=start_ns + duration_ns + drain_slots * drain_slot_ns)
        expected = {source.flow_id: source.emitted for source in self._sources}
        assert self.analyzer is not None
        slo_report = (
            self.slo_monitor.report(expected, end_ns=self.sim.now)
            if self.slo_monitor is not None
            else None
        )
        fault_report = (
            self.fault_injector.report(
                frer_eliminators=self.frer_eliminators
            )
            if self.fault_injector is not None
            else None
        )
        if self.headroom is not None:
            self.headroom.finalize(self.sim.now)
        if self.metrics is not None and self.frer_eliminators:
            gauge = self.metrics.gauge(
                "frer_duplicates_eliminated",
                help="FRER duplicates eliminated per listener",
            )
            for listener, eliminator in self.frer_eliminators.items():
                gauge.set(eliminator.duplicates_eliminated, listener=listener)
        return ScenarioResult(
            duration_ns=duration_ns,
            slot_ns=self.slot_ns,
            expected_by_flow=expected,
            analyzer=self.analyzer,
            flows=self.flows,
            switches=self.switches,
            itp_plan=self.itp_plan,
            sched_plan=self.sched_plan,
            metrics=self.metrics,
            tracer=self.tracer,
            sim_stats=self.sim.stats.as_dict(),
            spans=self.spans,
            slo=slo_report,
            links=self.links,
            frer_eliminators=self.frer_eliminators,
            faults=fault_report,
            headroom=self.headroom,
        )
