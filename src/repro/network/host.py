"""End devices: talkers (TSNNic equivalents) and listeners.

A :class:`Host` owns a NIC modelled with the same
:class:`~repro.switch.port.EgressPort` machinery as a switch port -- eight
PCP-mapped queues under strict priority with always-open gates -- so a
talker's TS frames overtake its own queued BE backlog exactly as on the real
TSNNic, leaving at most one in-flight background frame of head-of-line
blocking.  Queue depth and buffer count are generous (host DRAM, not
switch BRAM) and play no part in resource accounting.

Received frames are handed to ``on_receive`` -- the analyzer hooks this on
listener hosts.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.units import GIGABIT
from repro.obs.flowspans import FlowSpanRecorder
from repro.sim.clock import LocalClock
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACER, Tracer
from repro.switch.counters import SwitchCounters
from repro.switch.gates import GateEngine
from repro.switch.packet import EthernetFrame, MacAddress, make_mac
from repro.switch.port import EgressPort
from repro.switch.queueing import BufferPool, MetadataQueue
from repro.switch.scheduler import StrictPriorityScheduler
from repro.switch.tables import GateControlList, GateEntry

__all__ = ["Host"]

#: Host queues hold DRAM descriptors; deep enough never to tail-drop.
_HOST_QUEUE_DEPTH = 16384
_HOST_BUFFERS = 32768


class Host:
    """One end device with a single NIC."""

    _next_index = 0

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: int = GIGABIT,
        clock: Optional[LocalClock] = None,
        tracer: Tracer = NULL_TRACER,
        spans: Optional[FlowSpanRecorder] = None,
        batch=None,
    ) -> None:
        self._sim = sim
        self._spans = spans
        #: Optional :class:`~repro.switch.batch.FrameBatch`; when set, the
        #: host also injects/receives integer frame handles.
        self._batch = batch
        self.name = name
        self.mac: MacAddress = make_mac(0x8000 + Host._next_index)
        Host._next_index += 1
        self.clock = clock or LocalClock(sim)
        self.counters = SwitchCounters()
        self.on_receive: Optional[Callable[[EthernetFrame], None]] = None
        self.received = 0

        queues = [MetadataQueue(_HOST_QUEUE_DEPTH, q) for q in range(8)]
        in_gcl = GateControlList(1, f"{name}.nic.in")
        out_gcl = GateControlList(1, f"{name}.nic.out")
        in_gcl.program([GateEntry(0xFF, 1_000_000)])
        out_gcl.program([GateEntry(0xFF, 1_000_000)])
        self._gates = GateEngine(
            sim, in_gcl, out_gcl, clock=self.clock, name=f"{name}.nic"
        )
        self.nic = EgressPort(
            sim=sim,
            port_id=0,
            rate_bps=rate_bps,
            queues=queues,
            buffer_pool=BufferPool(_HOST_BUFFERS),
            gates=self._gates,
            scheduler=StrictPriorityScheduler(),
            counters=self.counters,
            tracer=tracer,
            spans=spans,
            name=f"{name}.nic",
            batch=batch,
        )
        self._gates.set_on_change(self.nic.kick)
        self._started = False

    def start(self) -> None:
        """Start the NIC's (always-open) gate engine."""
        if not self._started:
            self._started = True
            self._gates.start()

    # --------------------------------------------------------------- traffic

    def _span_frame(self, frame):
        return (
            self._batch.materialize(frame) if type(frame) is int else frame
        )

    def inject(self, frame) -> bool:
        """Queue a locally generated frame for transmission (by PCP).

        *frame* is an :class:`EthernetFrame` or, on the batched fast path,
        an integer :class:`~repro.switch.batch.FrameBatch` handle.
        """
        if type(frame) is int:
            pcp = self._batch.priority[frame]
        else:
            pcp = frame.pcp
        if self._spans is not None:
            self._spans.record(
                self._sim.now, "inject", self.name, self._span_frame(frame)
            )
        return self.nic.enqueue(frame, pcp)

    def receive(self, frame) -> None:
        """A frame arrived from the network."""
        fcs_ok = (
            self._batch.fcs_ok[frame] if type(frame) is int else frame.fcs_ok
        )
        if not fcs_ok:
            # NIC FCS check: bit-errored frames never reach the stack.
            self.counters.dropped_corrupt += 1
            if self._spans is not None:
                self._spans.record(
                    self._sim.now, "drop", self.name, self._span_frame(frame)
                )
            return
        self.received += 1
        if self._spans is not None:
            self._spans.record(
                self._sim.now, "rx", self.name, self._span_frame(frame)
            )
        if self.on_receive is not None:
            self.on_receive(frame)
