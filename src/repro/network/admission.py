"""Stream admission control (802.1Qat / MSRP-style, the "flow management"
family of the paper's intro).

Before a Rate-Constrained stream may use its CBS reservation, every hop on
its path must have the bandwidth to honor it.  :func:`admit_flows` walks
each RC flow's path and keeps per-(switch, port) ledgers:

* the **TS share** -- worst-case wire time the CQF schedule can hand TS
  traffic per slot (from the ITP plan, or the configured utilization
  limit);
* the **RC ledger** -- accumulated accepted reservations, capped at
  ``rc_limit`` of what TS leaves over (802.1Qav practice caps total
  shaped traffic at 75 % of link rate).

Flows are processed in request order; a flow is rejected at the *first*
hop that cannot carry it, with the hop and the shortfall in the verdict --
what an MSRP listener-ready failure would report.  Admission is a
*planning* check: the testbed will happily run an over-subscribed flow
set, and CBS will then shape RC flows down to their reservations; this
module is how a deployment avoids getting there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.units import GIGABIT
from repro.traffic.flows import FlowSet, FlowSpec, TrafficClass

__all__ = ["AdmissionVerdict", "AdmissionReport", "admit_flows"]


@dataclass(frozen=True)
class AdmissionVerdict:
    """One flow's admission outcome."""

    flow_id: int
    admitted: bool
    reserved_bps: int
    rejecting_hop: Optional[Tuple[str, int]] = None
    shortfall_bps: int = 0

    def __str__(self) -> str:
        if self.admitted:
            return f"flow {self.flow_id}: admitted ({self.reserved_bps} bps)"
        return (
            f"flow {self.flow_id}: rejected at {self.rejecting_hop} "
            f"(short {self.shortfall_bps} bps)"
        )


@dataclass
class AdmissionReport:
    """All verdicts plus the resulting per-port ledgers."""

    verdicts: List[AdmissionVerdict] = field(default_factory=list)
    port_reserved_bps: Dict[Tuple[str, int], int] = field(
        default_factory=dict
    )
    port_budget_bps: Dict[Tuple[str, int], int] = field(default_factory=dict)

    @property
    def admitted(self) -> List[AdmissionVerdict]:
        return [v for v in self.verdicts if v.admitted]

    @property
    def rejected(self) -> List[AdmissionVerdict]:
        return [v for v in self.verdicts if not v.admitted]

    def verdict(self, flow_id: int) -> AdmissionVerdict:
        for verdict in self.verdicts:
            if verdict.flow_id == flow_id:
                return verdict
        raise KeyError(f"no verdict for flow {flow_id}")

    def utilization(self, hop: Tuple[str, int]) -> float:
        budget = self.port_budget_bps.get(hop, 0)
        if not budget:
            return 0.0
        return self.port_reserved_bps.get(hop, 0) / budget


def admit_flows(
    topology,
    flows: FlowSet,
    rate_bps: int = GIGABIT,
    rc_limit: float = 0.75,
    ts_utilization: float = 0.5,
    reservation_margin: float = 1.0,
) -> AdmissionReport:
    """Admit RC flows against per-hop bandwidth budgets.

    ``ts_utilization`` is the slot share CQF may hand TS traffic (the ITP
    planner's budget); the per-port RC budget is
    ``rc_limit * (1 - ts_utilization) * rate``.  ``reservation_margin``
    scales each flow's requested rate into its reservation (CBS practice
    reserves some headroom above the long-term rate).
    """
    if not 0 < rc_limit <= 1:
        raise ConfigurationError(f"rc_limit must be in (0, 1], got {rc_limit}")
    if not 0 <= ts_utilization < 1:
        raise ConfigurationError(
            f"ts_utilization must be in [0, 1), got {ts_utilization}"
        )
    if reservation_margin < 1.0:
        raise ConfigurationError(
            f"reservation margin must be >= 1, got {reservation_margin}"
        )
    budget_per_port = int(rc_limit * (1.0 - ts_utilization) * rate_bps)
    report = AdmissionReport()

    def hop_ports(flow: FlowSpec) -> List[Tuple[str, int]]:
        path = topology.switch_path(flow.src, flow.dst)
        ports = list(topology.egress_ports_on_path(path))
        last = path[-1]
        for attachment in topology.attachments:
            if attachment.host == flow.dst and attachment.switch == last:
                ports.append((attachment.switch, attachment.port))
                break
        return ports

    for flow in flows.by_class(TrafficClass.RC):
        reservation = int(flow.effective_rate_bps * reservation_margin)
        hops = hop_ports(flow)
        rejecting: Optional[Tuple[str, int]] = None
        shortfall = 0
        for hop in hops:
            report.port_budget_bps.setdefault(hop, budget_per_port)
            used = report.port_reserved_bps.get(hop, 0)
            if used + reservation > budget_per_port:
                rejecting = hop
                shortfall = used + reservation - budget_per_port
                break
        if rejecting is None:
            for hop in hops:
                report.port_reserved_bps[hop] = (
                    report.port_reserved_bps.get(hop, 0) + reservation
                )
            report.verdicts.append(
                AdmissionVerdict(flow.flow_id, True, reservation)
            )
        else:
            report.verdicts.append(
                AdmissionVerdict(
                    flow.flow_id, False, reservation,
                    rejecting_hop=rejecting, shortfall_bps=shortfall,
                )
            )
    return report
