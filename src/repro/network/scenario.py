"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures one complete experiment -- topology, flow
set, switch configuration (explicit or guideline-derived), CQF slotting and
run window -- as a plain JSON-compatible dictionary.  This is the file
format behind ``python -m repro simulate`` and a convenient way to archive
the exact conditions of a measurement next to its results.

Example document::

    {
      "name": "ring-demo",
      "topology": {"kind": "ring", "switch_count": 3,
                    "talkers": ["talker0"], "listener": "listener"},
      "flows": {"ts_count": 64, "period_us": 10000, "size_bytes": 64,
                 "rc_mbps": 100, "be_mbps": 100},
      "config": "derive",
      "slot_us": 62.5,
      "duration_ms": 40,
      "seed": 0,
      "gate_mechanism": "cqf"
    }

``"config": "derive"`` applies the Section III.C sizing guidelines to the
declared flows; an object instead is interpreted as explicit
:class:`~repro.core.config.SwitchConfig` fields.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigurationError
from repro.core.sizing import derive_config
from repro.core.units import mbps, us
from repro.obs.flowspans import FlowSpanRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import WallClockProfiler
from repro.obs.slo import SloPolicy
from repro.sim.trace import NULL_TRACER, Tracer
from repro.traffic.flows import FlowSet
from repro.traffic.iec60802 import background_flows, production_cell_flows
from .testbed import ScenarioResult, Testbed
from .topology import (
    TopologySpec,
    dual_path_topology,
    linear_topology,
    ring_topology,
    star_topology,
)

__all__ = ["ScenarioSpec"]

_TOPOLOGY_BUILDERS = {
    "ring": ring_topology,
    "linear": linear_topology,
    "star": star_topology,
    "dual_path": dual_path_topology,
}


@dataclass
class ScenarioSpec:
    """One experiment, fully described."""

    name: str
    topology: Dict[str, Any]
    flows: Dict[str, Any]
    config: Union[str, Dict[str, Any]] = "derive"
    slot_us: float = 62.5
    duration_ms: float = 40.0
    seed: int = 0
    gate_mechanism: str = "cqf"
    use_itp: bool = True
    injection_phase: str = "planned"
    slo: Optional[Dict[str, Any]] = None  # SLO policy stanza (see obs.slo)
    rc_mbps: Optional[int] = None  # legacy alias; prefer flows.rc_mbps
    extras: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- parsing

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        payload = dict(data)
        known = {
            "name", "topology", "flows", "config", "slot_us", "duration_ms",
            "seed", "gate_mechanism", "use_itp", "injection_phase", "slo",
        }
        extras = {k: payload.pop(k) for k in list(payload) if k not in known}
        missing = {"name", "topology", "flows"} - set(payload)
        if missing:
            raise ConfigurationError(
                f"scenario is missing required keys: {sorted(missing)}"
            )
        return cls(extras=extras, **payload)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "topology": self.topology,
            "flows": self.flows,
            "config": self.config,
            "slot_us": self.slot_us,
            "duration_ms": self.duration_ms,
            "seed": self.seed,
            "gate_mechanism": self.gate_mechanism,
            "use_itp": self.use_itp,
            "injection_phase": self.injection_phase,
        }
        if self.slo is not None:
            data["slo"] = self.slo
        data.update(self.extras)
        return data

    # ------------------------------------------------------------ building

    @property
    def slot_ns(self) -> int:
        return us(self.slot_us)

    @property
    def duration_ns(self) -> int:
        return us(self.duration_ms * 1000)

    def build_topology(self) -> TopologySpec:
        params = dict(self.topology)
        kind = params.pop("kind", None)
        builder = _TOPOLOGY_BUILDERS.get(kind)
        if builder is None:
            raise ConfigurationError(
                f"unknown topology kind {kind!r}; expected one of "
                f"{sorted(_TOPOLOGY_BUILDERS)}"
            )
        return builder(**params)

    def build_flows(self) -> FlowSet:
        params = dict(self.flows)
        talkers = self.topology.get("talkers", ["talker0"])
        listener = self.topology.get("listener", "listener")
        flow_set = production_cell_flows(
            talkers,
            listener,
            flow_count=params.pop("ts_count", 64),
            period_ns=us(params.pop("period_us", 10_000)),
            size_bytes=params.pop("size_bytes", 64),
        )
        rc = params.pop("rc_mbps", 0)
        be = params.pop("be_mbps", 0)
        if rc or be:
            for flow in background_flows(
                talkers, listener, mbps(rc), mbps(be)
            ):
                flow_set.add(flow)
        if params:
            raise ConfigurationError(
                f"unknown flow parameters: {sorted(params)}"
            )
        return flow_set

    def build_config(
        self, topology: TopologySpec, flows: FlowSet
    ) -> SwitchConfig:
        if self.config == "derive":
            return derive_config(
                topology, flows, self.slot_ns, name=self.name,
                gate_mechanism=self.gate_mechanism,
                # FRER member streams double the per-flow table demand
                replication_factor=2 if self.extras.get("frer_ts") else 1,
            ).config
        if isinstance(self.config, Mapping):
            return SwitchConfig.from_dict(
                {"name": self.name, **self.config}
            )
        raise ConfigurationError(
            f"config must be 'derive' or an object, got {self.config!r}"
        )

    def build_slo_policy(self) -> Optional[SloPolicy]:
        """The parsed ``"slo"`` stanza, or ``None`` when absent."""
        if self.slo is None:
            return None
        return SloPolicy.from_dict(self.slo)

    def build_testbed(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[WallClockProfiler] = None,
        spans: Optional[FlowSpanRecorder] = None,
        slo_policy: Optional[SloPolicy] = None,
    ) -> Testbed:
        """Instantiate the testbed, optionally with observability attached.

        *metrics*, *tracer*, *profiler* and *spans* thread a
        :class:`~repro.obs.metrics.MetricsRegistry`, an enabled
        :class:`~repro.sim.trace.Tracer`, a wall-clock profiler and a
        :class:`~repro.obs.flowspans.FlowSpanRecorder` through every device
        -- the hooks behind ``repro simulate --metrics`` /
        ``--chrome-trace`` / ``--flow-spans``.  *slo_policy* overrides the
        spec's own ``"slo"`` stanza (used by ``repro slo``); by default the
        stanza, if present, is parsed and monitored.
        """
        topology = self.build_topology()
        flows = self.build_flows()
        config = self.build_config(topology, flows)
        return Testbed(
            topology,
            config,
            flows,
            slot_ns=self.slot_ns,
            seed=self.seed,
            gate_mechanism=self.gate_mechanism,
            use_itp=self.use_itp,
            injection_phase=self.injection_phase,
            tracer=tracer if tracer is not None else NULL_TRACER,
            metrics=metrics,
            profiler=profiler,
            spans=spans,
            slo_policy=(
                slo_policy if slo_policy is not None
                else self.build_slo_policy()
            ),
            **self.extras,
        )

    def run(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[WallClockProfiler] = None,
        spans: Optional[FlowSpanRecorder] = None,
        slo_policy: Optional[SloPolicy] = None,
    ) -> ScenarioResult:
        return self.build_testbed(
            metrics=metrics, tracer=tracer, profiler=profiler,
            spans=spans, slo_policy=slo_policy,
        ).run(duration_ns=self.duration_ns)
