"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures one complete experiment -- topology, flow
set, switch configuration (explicit or guideline-derived), CQF slotting and
run window -- as a plain JSON-compatible dictionary.  This is the file
format behind ``python -m repro simulate`` and a convenient way to archive
the exact conditions of a measurement next to its results.

Example document::

    {
      "name": "ring-demo",
      "topology": {"kind": "ring", "switch_count": 3,
                    "talkers": ["talker0"], "listener": "listener"},
      "flows": {"ts_count": 64, "period_us": 10000, "size_bytes": 64,
                 "rc_mbps": 100, "be_mbps": 100},
      "config": "derive",
      "slot_us": 62.5,
      "duration_ms": 40,
      "seed": 0,
      "gate_mechanism": "cqf"
    }

``"config": "derive"`` applies the Section III.C sizing guidelines to the
declared flows; an object instead is interpreted as explicit
:class:`~repro.core.config.SwitchConfig` fields.
"""

from __future__ import annotations

import difflib
import inspect
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigurationError, SpecValidationError
from repro.core.sizing import derive_config
from repro.core.units import mbps, us
from repro.faults.plan import FaultPlan, validate_faults_dict
from repro.obs.flowspans import FlowSpanRecorder
from repro.obs.headroom import HeadroomRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import WallClockProfiler
from repro.obs.slo import SloPolicy
from repro.sim.trace import NULL_TRACER, Tracer
from repro.traffic.flows import FlowSet
from repro.traffic.iec60802 import background_flows, production_cell_flows
from .testbed import ScenarioResult, Testbed
from .topology import (
    TopologySpec,
    dual_path_topology,
    frer_ring_topology,
    linear_topology,
    ring_topology,
    star_topology,
)

__all__ = ["ScenarioSpec", "validate_scenario_dict", "known_extra_keys"]

_TOPOLOGY_BUILDERS = {
    "ring": ring_topology,
    "linear": linear_topology,
    "star": star_topology,
    "dual_path": dual_path_topology,
    "frer_ring": frer_ring_topology,
}

#: Top-level scenario keys mapped onto ScenarioSpec fields directly.
_KNOWN_TOP_KEYS = frozenset({
    "name", "topology", "flows", "config", "slot_us", "duration_ms",
    "seed", "gate_mechanism", "use_itp", "injection_phase", "slo",
    "faults", "sched", "shard",
})

#: Keys a ``"shard"`` stanza may carry (see :mod:`repro.sim.shard`).
_KNOWN_SHARD_KEYS = frozenset({"count", "assign"})

#: Flow-stanza keys consumed by :meth:`ScenarioSpec.build_flows`.
_KNOWN_FLOW_KEYS = frozenset(
    {"ts_count", "period_us", "size_bytes", "rc_mbps", "be_mbps", "groups"}
)

#: Keys a ``flows.groups[i]`` entry may carry.
_KNOWN_GROUP_KEYS = frozenset({"ts_count", "period_us", "size_bytes"})

#: Testbed kwargs the spec explicitly threads; everything else in the
#: Testbed signature is a legal pass-through "extra".
_EXPLICIT_TESTBED_KWARGS = frozenset({
    "self", "topology", "config", "flows", "slot_ns", "seed", "use_itp",
    "gate_mechanism", "injection_phase", "tracer", "metrics", "profiler",
    "spans", "slo_policy", "fault_plan", "headroom", "sched",
})


def known_extra_keys() -> frozenset:
    """Extra scenario keys accepted because ``Testbed.__init__`` takes them.

    Derived from the live signature so a new Testbed knob is automatically
    a legal scenario extra without touching the validator.
    """
    params = inspect.signature(Testbed.__init__).parameters
    return frozenset(params) - _EXPLICIT_TESTBED_KWARGS


def _suggest(key: str, candidates) -> str:
    matches = difflib.get_close_matches(key, sorted(candidates), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def _check_type(problems: List[str], path: str, value: Any, kinds,
                label: str) -> None:
    # bool is an int subclass; reject it wherever a number is expected.
    if isinstance(value, bool) and bool not in (
        kinds if isinstance(kinds, tuple) else (kinds,)
    ):
        problems.append(f"{path}: expected {label}, got bool {value!r}")
    elif not isinstance(value, kinds):
        problems.append(
            f"{path}: expected {label}, got {type(value).__name__} {value!r}"
        )


def validate_scenario_dict(data: Mapping[str, Any]) -> List[str]:
    """Every problem a scenario document has, as ``"path: message"`` strings.

    Checks unknown keys (with nearest-key suggestions) and value types at
    the top level, inside ``topology`` (against the selected builder's
    signature), inside ``flows``, and inside an explicit ``config`` object.
    Returns an empty list for a valid document; never raises.
    """
    problems: List[str] = []
    if not isinstance(data, Mapping):
        return [f"$: expected an object, got {type(data).__name__}"]
    extras_allowed = known_extra_keys()
    known_top = _KNOWN_TOP_KEYS | extras_allowed
    for key in sorted(set(data) - known_top):
        problems.append(
            f"{key}: unknown scenario key{_suggest(key, known_top)}"
        )
    for key in ("name", "topology", "flows"):
        if key not in data:
            problems.append(f"{key}: required key is missing")

    if "name" in data:
        _check_type(problems, "name", data["name"], str, "a string")
    for key in ("slot_us", "duration_ms"):
        if key in data:
            _check_type(problems, key, data[key], (int, float), "a number")
    if "seed" in data:
        _check_type(problems, "seed", data["seed"], int, "an integer")
    if "use_itp" in data:
        _check_type(problems, "use_itp", data["use_itp"], bool, "a boolean")
    if "gate_mechanism" in data and data["gate_mechanism"] not in ("cqf", "qbv"):
        problems.append(
            f"gate_mechanism: expected 'cqf' or 'qbv', "
            f"got {data['gate_mechanism']!r}"
        )
    if "injection_phase" in data and data["injection_phase"] not in (
        "planned", "uniform"
    ):
        problems.append(
            f"injection_phase: expected 'planned' or 'uniform', "
            f"got {data['injection_phase']!r}"
        )
    if "slo" in data and data["slo"] is not None:
        _check_type(problems, "slo", data["slo"], Mapping, "an object")
    if "faults" in data and data["faults"] is not None:
        problems.extend(validate_faults_dict(data["faults"]))
    if "sched" in data and data["sched"] is not None:
        from repro.sched import validate_sched_dict

        problems.extend(validate_sched_dict(data["sched"]))
    if "shard" in data and data["shard"] is not None:
        shard = data["shard"]
        if not isinstance(shard, Mapping):
            _check_type(problems, "shard", shard, Mapping, "an object")
        else:
            for key in sorted(set(shard) - _KNOWN_SHARD_KEYS):
                problems.append(
                    f"shard.{key}: unknown shard key"
                    f"{_suggest(key, _KNOWN_SHARD_KEYS)}"
                )
            count = shard.get("count")
            if count is not None:
                _check_type(problems, "shard.count", count, int, "an integer")
                if isinstance(count, int) and not isinstance(count, bool) \
                        and count < 1:
                    problems.append(
                        f"shard.count: expected >= 1, got {count}"
                    )
            assign = shard.get("assign")
            if assign is not None:
                if not isinstance(assign, Mapping):
                    _check_type(
                        problems, "shard.assign", assign, Mapping, "an object"
                    )
                else:
                    for switch, index in assign.items():
                        _check_type(
                            problems, f"shard.assign.{switch}", index,
                            int, "an integer",
                        )

    topology = data.get("topology")
    if topology is not None:
        if not isinstance(topology, Mapping):
            _check_type(problems, "topology", topology, Mapping, "an object")
        else:
            kind = topology.get("kind")
            if kind not in _TOPOLOGY_BUILDERS:
                problems.append(
                    f"topology.kind: expected one of "
                    f"{sorted(_TOPOLOGY_BUILDERS)}, got {kind!r}"
                )
            else:
                builder_params = set(
                    inspect.signature(_TOPOLOGY_BUILDERS[kind]).parameters
                )
                for key in sorted(set(topology) - builder_params - {"kind"}):
                    problems.append(
                        f"topology.{key}: unknown parameter for "
                        f"{kind!r} topology{_suggest(key, builder_params)}"
                    )

    flows = data.get("flows")
    if flows is not None:
        if not isinstance(flows, Mapping):
            _check_type(problems, "flows", flows, Mapping, "an object")
        else:
            for key in sorted(set(flows) - _KNOWN_FLOW_KEYS):
                problems.append(
                    f"flows.{key}: unknown flow parameter"
                    f"{_suggest(key, _KNOWN_FLOW_KEYS)}"
                )
            for key in ("ts_count", "size_bytes"):
                if key in flows:
                    _check_type(problems, f"flows.{key}", flows[key], int,
                                "an integer")
            for key in ("period_us", "rc_mbps", "be_mbps"):
                if key in flows:
                    _check_type(problems, f"flows.{key}", flows[key],
                                (int, float), "a number")
            if "groups" in flows:
                groups = flows["groups"]
                overlap = sorted(set(flows) & _KNOWN_GROUP_KEYS)
                if overlap:
                    problems.append(
                        f"flows.groups: cannot combine with "
                        f"{overlap} -- groups replace the uniform TS set"
                    )
                if not isinstance(groups, list):
                    _check_type(problems, "flows.groups", groups, list,
                                "a list")
                elif not groups:
                    problems.append("flows.groups: needs at least one group")
                else:
                    for i, group in enumerate(groups):
                        if not isinstance(group, Mapping):
                            _check_type(problems, f"flows.groups[{i}]",
                                        group, Mapping, "an object")
                            continue
                        for key in sorted(set(group) - _KNOWN_GROUP_KEYS):
                            problems.append(
                                f"flows.groups[{i}].{key}: unknown group "
                                f"parameter{_suggest(key, _KNOWN_GROUP_KEYS)}"
                            )
                        for key in ("ts_count", "size_bytes"):
                            if key in group:
                                _check_type(
                                    problems, f"flows.groups[{i}].{key}",
                                    group[key], int, "an integer")
                        if "period_us" in group:
                            _check_type(
                                problems, f"flows.groups[{i}].period_us",
                                group["period_us"], (int, float), "a number")

    config = data.get("config", "derive")
    if isinstance(config, Mapping):
        known_config = set(SwitchConfig.__dataclass_fields__)
        for key in sorted(set(config) - known_config):
            problems.append(
                f"config.{key}: unknown SwitchConfig field"
                f"{_suggest(key, known_config)}"
            )
    elif config != "derive":
        problems.append(
            f"config: expected 'derive' or an object, got {config!r}"
        )
    return problems


@dataclass
class ScenarioSpec:
    """One experiment, fully described."""

    name: str
    topology: Dict[str, Any]
    flows: Dict[str, Any]
    config: Union[str, Dict[str, Any]] = "derive"
    slot_us: float = 62.5
    duration_ms: float = 40.0
    seed: int = 0
    gate_mechanism: str = "cqf"
    use_itp: bool = True
    injection_phase: str = "planned"
    slo: Optional[Dict[str, Any]] = None  # SLO policy stanza (see obs.slo)
    faults: Optional[Dict[str, Any]] = None  # fault plan (see repro.faults)
    sched: Optional[Dict[str, Any]] = None  # scheduling policy (repro.sched)
    shard: Optional[Dict[str, Any]] = None  # partitioned run (repro.sim.shard)
    rc_mbps: Optional[int] = None  # legacy alias; prefer flows.rc_mbps
    extras: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- parsing

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], strict: bool = True
    ) -> "ScenarioSpec":
        """Parse a scenario document.

        With ``strict`` (the default) the document is validated first:
        unknown keys and wrong-typed values raise one
        :class:`~repro.core.errors.SpecValidationError` listing every
        offending path (with a nearest-key suggestion where one exists).
        ``strict=False`` restores the historical permissive behaviour --
        unknown keys land in :attr:`extras` and fail only if the Testbed
        rejects them at build time.
        """
        if strict:
            problems = validate_scenario_dict(data)
            if problems:
                raise SpecValidationError(
                    f"scenario {data.get('name', '?')!r}"
                    if isinstance(data, Mapping) else "scenario",
                    problems,
                )
        payload = dict(data)
        extras = {
            k: payload.pop(k) for k in list(payload) if k not in _KNOWN_TOP_KEYS
        }
        missing = {"name", "topology", "flows"} - set(payload)
        if missing:
            raise ConfigurationError(
                f"scenario is missing required keys: {sorted(missing)}"
            )
        return cls(extras=extras, **payload)

    @classmethod
    def from_json(cls, text: str, strict: bool = True) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text), strict=strict)

    @classmethod
    def from_file(
        cls, path: Union[str, Path], strict: bool = True
    ) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text(), strict=strict)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "topology": self.topology,
            "flows": self.flows,
            "config": self.config,
            "slot_us": self.slot_us,
            "duration_ms": self.duration_ms,
            "seed": self.seed,
            "gate_mechanism": self.gate_mechanism,
            "use_itp": self.use_itp,
            "injection_phase": self.injection_phase,
        }
        if self.slo is not None:
            data["slo"] = self.slo
        if self.faults is not None:
            data["faults"] = self.faults
        if self.sched is not None:
            data["sched"] = self.sched
        if self.shard is not None:
            data["shard"] = self.shard
        data.update(self.extras)
        return data

    # ------------------------------------------------------------ building

    @property
    def slot_ns(self) -> int:
        return us(self.slot_us)

    @property
    def duration_ns(self) -> int:
        return us(self.duration_ms * 1000)

    def build_topology(self) -> TopologySpec:
        params = dict(self.topology)
        kind = params.pop("kind", None)
        builder = _TOPOLOGY_BUILDERS.get(kind)
        if builder is None:
            raise ConfigurationError(
                f"unknown topology kind {kind!r}; expected one of "
                f"{sorted(_TOPOLOGY_BUILDERS)}"
            )
        return builder(**params)

    def build_flows(self) -> FlowSet:
        params = dict(self.flows)
        talkers = self.topology.get("talkers", ["talker0"])
        listener = self.topology.get("listener", "listener")
        groups = params.pop("groups", None)
        if groups is not None:
            # Heterogeneous TS set: one production-cell batch per group,
            # flow ids partitioned in blocks of 1000 per group.
            flow_set = None
            for i, group in enumerate(groups):
                batch = production_cell_flows(
                    talkers,
                    listener,
                    flow_count=group.get("ts_count", 1),
                    period_ns=us(group.get("period_us", 10_000)),
                    size_bytes=group.get("size_bytes", 64),
                    first_flow_id=i * 1000,
                )
                if flow_set is None:
                    flow_set = batch
                else:
                    for flow in batch:
                        flow_set.add(flow)
        else:
            flow_set = production_cell_flows(
                talkers,
                listener,
                flow_count=params.pop("ts_count", 64),
                period_ns=us(params.pop("period_us", 10_000)),
                size_bytes=params.pop("size_bytes", 64),
            )
        rc = params.pop("rc_mbps", 0)
        be = params.pop("be_mbps", 0)
        if rc or be:
            for flow in background_flows(
                talkers, listener, mbps(rc), mbps(be)
            ):
                flow_set.add(flow)
        if params:
            raise ConfigurationError(
                f"unknown flow parameters: {sorted(params)}"
            )
        return flow_set

    def build_config(
        self, topology: TopologySpec, flows: FlowSet
    ) -> SwitchConfig:
        if self.config == "derive":
            return derive_config(
                topology, flows, self.slot_ns, name=self.name,
                gate_mechanism=self.gate_mechanism,
                # FRER member streams double the per-flow table demand
                replication_factor=2 if self.extras.get("frer_ts") else 1,
                sched=self.build_sched_policy(),
            ).config
        if isinstance(self.config, Mapping):
            return SwitchConfig.from_dict(
                {"name": self.name, **self.config}
            )
        raise ConfigurationError(
            f"config must be 'derive' or an object, got {self.config!r}"
        )

    def build_slo_policy(self) -> Optional[SloPolicy]:
        """The parsed ``"slo"`` stanza, or ``None`` when absent."""
        if self.slo is None:
            return None
        return SloPolicy.from_dict(self.slo)

    def build_fault_plan(self) -> Optional[FaultPlan]:
        """The parsed ``"faults"`` stanza, or ``None`` when absent."""
        if self.faults is None:
            return None
        return FaultPlan.from_dict(self.faults)

    def build_sched_policy(self):
        """The parsed ``"sched"`` stanza, or ``None`` when absent.

        ``None`` lets downstream consumers apply their historic defaults
        (greedy ITP when ``use_itp`` is set, unplanned otherwise).
        """
        if self.sched is None:
            return None
        from repro.sched import SchedPolicy

        return SchedPolicy.from_dict(self.sched)

    def build_testbed(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[WallClockProfiler] = None,
        spans: Optional[FlowSpanRecorder] = None,
        slo_policy: Optional[SloPolicy] = None,
        headroom: Optional[HeadroomRecorder] = None,
    ) -> Testbed:
        """Instantiate the testbed, optionally with observability attached.

        *metrics*, *tracer*, *profiler*, *spans* and *headroom* thread a
        :class:`~repro.obs.metrics.MetricsRegistry`, an enabled
        :class:`~repro.sim.trace.Tracer`, a wall-clock profiler, a
        :class:`~repro.obs.flowspans.FlowSpanRecorder` and a
        :class:`~repro.obs.headroom.HeadroomRecorder` through every device
        -- the hooks behind ``repro simulate --metrics`` /
        ``--chrome-trace`` / ``--flow-spans`` / ``--headroom``.
        *slo_policy* overrides the spec's own ``"slo"`` stanza (used by
        ``repro slo``); by default the stanza, if present, is parsed and
        monitored.
        """
        topology = self.build_topology()
        flows = self.build_flows()
        config = self.build_config(topology, flows)
        return Testbed(
            topology,
            config,
            flows,
            slot_ns=self.slot_ns,
            seed=self.seed,
            gate_mechanism=self.gate_mechanism,
            use_itp=self.use_itp,
            sched=self.build_sched_policy(),
            injection_phase=self.injection_phase,
            tracer=tracer if tracer is not None else NULL_TRACER,
            metrics=metrics,
            profiler=profiler,
            spans=spans,
            slo_policy=(
                slo_policy if slo_policy is not None
                else self.build_slo_policy()
            ),
            fault_plan=self.build_fault_plan(),
            headroom=headroom,
            **self.extras,
        )

    def run(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[WallClockProfiler] = None,
        spans: Optional[FlowSpanRecorder] = None,
        slo_policy: Optional[SloPolicy] = None,
        headroom: Optional[HeadroomRecorder] = None,
    ) -> ScenarioResult:
        return self.build_testbed(
            metrics=metrics, tracer=tracer, profiler=profiler,
            spans=spans, slo_policy=slo_policy, headroom=headroom,
        ).run(duration_ns=self.duration_ns)
