"""Gate windows: the intermediate representation of 802.1Qbv schedules.

A *window* opens one queue's transmission gate for an interval of the
scheduling cycle.  A schedule synthesizer (:mod:`repro.qbv.synthesis`)
produces a :class:`WindowSet` per port; :func:`compile_gcl` lowers it to the
Gate Control List entries the Gate Ctrl template consumes -- which is where
the paper's guideline 2 arithmetic comes from: a general Qbv schedule needs
one gate-table entry per *distinct interval boundary* in the cycle, versus
CQF's fixed two.

Semantics of compilation:

* Windowed queues (those appearing in any window) are open *only* inside
  their windows.
* All other queues are open by default, except that every windowed-queue
  window is *exclusive*: other queues close for its duration plus a
  preceding *guard band* long enough to drain one in-flight MTU frame, so a
  best-effort frame started just before the window cannot trespass on it
  (the standard's guard-band construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import SchedulingError
from repro.core.units import GIGABIT, serialization_ns, wire_bytes
from repro.switch.tables import GateEntry

__all__ = ["GateWindow", "WindowSet", "compile_gcl", "guard_band_ns"]


def guard_band_ns(rate_bps: int = GIGABIT, mtu_bytes: int = 1518) -> int:
    """Wire time of one maximum frame: the classic Qbv guard band."""
    return serialization_ns(wire_bytes(mtu_bytes), rate_bps)


@dataclass(frozen=True)
class GateWindow:
    """One queue's open interval ``[start, end)`` within the cycle."""

    queue_id: int
    start_ns: int
    end_ns: int

    def __post_init__(self) -> None:
        if not 0 <= self.queue_id <= 7:
            raise SchedulingError(f"queue id {self.queue_id} outside 0..7")
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise SchedulingError(
                f"invalid window [{self.start_ns}, {self.end_ns})"
            )

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def overlaps(self, other: "GateWindow") -> bool:
        return self.start_ns < other.end_ns and other.start_ns < self.end_ns


class WindowSet:
    """All scheduled windows of one port over one cycle."""

    def __init__(self, cycle_ns: int, windows: Iterable[GateWindow] = ()):
        if cycle_ns <= 0:
            raise SchedulingError(f"cycle must be positive, got {cycle_ns}")
        self.cycle_ns = cycle_ns
        self._windows: List[GateWindow] = []
        for window in windows:
            self.add(window)

    def __len__(self) -> int:
        return len(self._windows)

    def __iter__(self):
        return iter(sorted(self._windows, key=lambda w: w.start_ns))

    @property
    def windows(self) -> List[GateWindow]:
        return sorted(self._windows, key=lambda w: w.start_ns)

    @property
    def scheduled_queues(self) -> Tuple[int, ...]:
        return tuple(sorted({w.queue_id for w in self._windows}))

    def add(self, window: GateWindow) -> None:
        """Insert a window; rejects cycle overruns and any overlap.

        Windows are exclusive by construction (one transmission owner at a
        time), so overlapping windows -- even of the same queue -- indicate
        a synthesis bug and are refused outright.
        """
        if window.end_ns > self.cycle_ns:
            raise SchedulingError(
                f"window [{window.start_ns}, {window.end_ns}) exceeds the "
                f"{self.cycle_ns}ns cycle"
            )
        for existing in self._windows:
            if window.overlaps(existing):
                raise SchedulingError(
                    f"window [{window.start_ns}, {window.end_ns}) of queue "
                    f"{window.queue_id} overlaps [{existing.start_ns}, "
                    f"{existing.end_ns}) of queue {existing.queue_id}"
                )
        self._windows.append(window)

    def utilization(self) -> float:
        """Fraction of the cycle owned by scheduled windows."""
        return sum(w.duration_ns for w in self._windows) / self.cycle_ns


def compile_gcl(
    window_set: WindowSet,
    queue_num: int = 8,
    guard_ns: Optional[int] = None,
    rate_bps: int = GIGABIT,
) -> List[GateEntry]:
    """Lower a :class:`WindowSet` to Gate Control List entries.

    Returns entries whose intervals sum exactly to the cycle.  Raises
    :class:`SchedulingError` if a guard band would have to start before the
    cycle begins (synthesizers should leave ``guard`` headroom before the
    first window) or if two windows sit closer than the guard band.
    """
    guard = guard_band_ns(rate_bps) if guard_ns is None else guard_ns
    default_mask = (1 << queue_num) - 1
    scheduled_mask = 0
    for queue in window_set.scheduled_queues:
        if queue >= queue_num:
            raise SchedulingError(
                f"scheduled queue {queue} outside the {queue_num} queues"
            )
        scheduled_mask |= 1 << queue
    background_mask = default_mask & ~scheduled_mask

    # Build the boundary list: (time, new_mask) transitions.
    transitions: List[Tuple[int, int]] = [(0, background_mask)]
    previous_end = 0
    for window in window_set.windows:
        guard_start = window.start_ns - guard
        if guard_start < 0:
            raise SchedulingError(
                f"window at {window.start_ns}ns leaves no room for the "
                f"{guard}ns guard band"
            )
        if guard_start < previous_end:
            raise SchedulingError(
                f"window at {window.start_ns}ns starts within the guard "
                f"band of the previous window (ends {previous_end}ns)"
            )
        # guard: everything closed; window: only the owner open
        transitions.append((guard_start, 0))
        transitions.append((window.start_ns, 1 << window.queue_id))
        transitions.append((window.end_ns, background_mask))
        previous_end = window.end_ns
    transitions.append((window_set.cycle_ns, background_mask))

    entries: List[GateEntry] = []
    for (time, mask), (next_time, _) in zip(transitions, transitions[1:]):
        if next_time == time:
            continue  # zero-length segment (e.g. guard of 0, or b2b windows)
        if entries and entries[-1].gate_states == mask:
            # Adjacent segments with identical masks (e.g. back-to-back
            # windows of one queue under a zero guard) are one gate-table
            # entry on hardware -- and one fewer flip event per cycle here.
            entries[-1] = GateEntry(mask, entries[-1].interval_ns + next_time - time)
            continue
        entries.append(GateEntry(mask, next_time - time))
    if sum(e.interval_ns for e in entries) != window_set.cycle_ns:
        raise AssertionError("compiled GCL does not cover the cycle")
    return entries
