"""Time-Aware Shaper (802.1Qbv) schedule synthesis.

CQF (what the paper's evaluation configures) buys its two-entry gate tables
by paying one full time slot of latency per hop.  A general Qbv schedule
instead opens each port's TS gate in a *per-hop transmission window* placed
where the slot's frame batch actually arrives, so frames flow through
without waiting out the slot -- at the cost of gate tables sized to the
schedule (paper guideline 2: entries grow with the slots of the scheduling
cycle).  This module synthesizes such schedules for ITP-planned flow sets;
the ``bench_extension_qbv`` benchmark contrasts the two mechanisms, making
the latency/gate-table trade-off the paper's guideline describes concrete.

Window placement per port and slot ``s`` (all times within the cycle):

* every window is shifted ``guard`` late so the compiled GCL's preceding
  guard band never crosses the cycle start;
* a port whose traversing flows see it as hop ``h`` opens
  ``guard + h * (processing + propagation)`` after the slot start -- the
  earliest a frame of that slot can reach it;
* the window stays open for the batch's wire time (twice -- once for the
  talker-side stagger, once for the drain) plus per-hop serialization skew
  and a safety margin.

Synthesis fails loudly (:class:`~repro.core.errors.SchedulingError`) when a
window cannot fit its slot alongside the guard band -- the same
infeasibility a Qbv GCL synthesis tool ([20] in the paper) would report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import SchedulingError
from repro.core.units import GIGABIT, serialization_ns, wire_bytes
from repro.cqf.schedule import CqfSchedule
from repro.switch.tables import GateEntry
from repro.traffic.flows import FlowSpec
from .windows import GateWindow, WindowSet, compile_gcl, guard_band_ns

__all__ = ["PortTraffic", "TasPortSchedule", "TasSynthesizer"]


@dataclass
class PortTraffic:
    """What one egress port carries: per-slot flow batches and hop depths.

    ``slot_flows`` maps a slot index to the TS flows whose planned batch
    crosses this port during that slot; ``hop_indices`` are the positions
    (0-based) this port occupies in those flows' paths.
    """

    slot_flows: Dict[int, List[FlowSpec]]
    hop_indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.hop_indices:
            raise SchedulingError("port traffic needs at least one hop index")


@dataclass
class TasPortSchedule:
    """Synthesized schedule of one port."""

    entries: List[GateEntry]
    window_set: WindowSet

    @property
    def gate_size(self) -> int:
        """Gate-table entries this schedule occupies (guideline 2)."""
        return len(self.entries)


class TasSynthesizer:
    """Builds per-port Qbv schedules from an ITP-planned flow set."""

    def __init__(
        self,
        schedule: CqfSchedule,
        rate_bps: int = GIGABIT,
        processing_delay_ns: int = 480,
        propagation_ns: int = 500,
        margin_ns: int = 2_000,
        ts_queue: int = 7,
        queue_num: int = 8,
        guard_ns: Optional[int] = None,
    ) -> None:
        self.schedule = schedule
        self.rate_bps = rate_bps
        self.processing_delay_ns = processing_delay_ns
        self.propagation_ns = propagation_ns
        self.margin_ns = margin_ns
        self.ts_queue = ts_queue
        self.queue_num = queue_num
        self.guard_ns = guard_band_ns(rate_bps) if guard_ns is None else guard_ns

    # ------------------------------------------------------------ internals

    @property
    def hop_lead_ns(self) -> int:
        """Per-hop arrival shift lower bound: pipeline + cable."""
        return self.processing_delay_ns + self.propagation_ns

    def _batch_wire_ns(self, flows: Sequence[FlowSpec]) -> int:
        total_bytes = sum(wire_bytes(flow.size_bytes) for flow in flows)
        return serialization_ns(total_bytes, self.rate_bps)

    def _max_frame_ns(self, flows: Sequence[FlowSpec]) -> int:
        return max(
            serialization_ns(wire_bytes(flow.size_bytes), self.rate_bps)
            for flow in flows
        )

    def _window_for_slot(
        self, slot: int, flows: Sequence[FlowSpec], traffic: PortTraffic
    ) -> GateWindow:
        h_min = min(traffic.hop_indices)
        h_max = max(traffic.hop_indices)
        batch = self._batch_wire_ns(flows)
        frame = self._max_frame_ns(flows)
        slot_start = slot * self.schedule.slot_ns
        start = slot_start + self.guard_ns + h_min * self.hop_lead_ns
        end = (
            slot_start
            + self.guard_ns
            + h_max * (self.hop_lead_ns + frame)
            + 2 * batch
            + self.margin_ns
        )
        if end - slot_start > self.schedule.slot_ns:
            raise SchedulingError(
                f"slot {slot}: TS window of {end - start}ns plus the "
                f"{self.guard_ns}ns guard does not fit the "
                f"{self.schedule.slot_ns}ns slot -- widen slots or reduce "
                "per-slot load"
            )
        return GateWindow(self.ts_queue, start, end)

    # -------------------------------------------------------------- public

    def synthesize_port(self, traffic: PortTraffic) -> TasPortSchedule:
        """The GCL of one port."""
        window_set = WindowSet(self.schedule.cycle_ns)
        for slot in sorted(traffic.slot_flows):
            flows = traffic.slot_flows[slot]
            if not flows:
                continue
            if not 0 <= slot < self.schedule.slot_count:
                raise SchedulingError(
                    f"slot index {slot} outside the "
                    f"{self.schedule.slot_count}-slot cycle"
                )
            window_set.add(self._window_for_slot(slot, flows, traffic))
        entries = compile_gcl(
            window_set,
            queue_num=self.queue_num,
            guard_ns=self.guard_ns,
            rate_bps=self.rate_bps,
        )
        return TasPortSchedule(entries, window_set)

    @staticmethod
    def required_gate_size(schedules: Sequence[TasPortSchedule]) -> int:
        """The gate-table size the synthesized network needs per port."""
        return max((s.gate_size for s in schedules), default=1)


def estimate_gate_size(plan) -> int:
    """Upper bound on per-port gate-table entries for a planned flow set.

    Each active slot compiles to at most three GCL entries (guard band, TS
    window, background segment) plus one trailing background entry -- the
    concrete version of paper guideline 2 for this window encoding.  Use it
    to size ``gate_size`` before building a Qbv testbed.
    """
    active_slots = sum(1 for frames in plan.slot_frames if frames)
    return 3 * active_slots + 1
