"""Units and conversions used throughout the reproduction.

Two unit families matter in this codebase:

* **Time** -- the simulator runs on integer *nanoseconds*.  Helpers here
  convert human-friendly microseconds/milliseconds/seconds into exact ``int``
  nanosecond counts and back.

* **Memory** -- the resource model works in exact *bits* internally and
  reports *kibibits*.  The paper writes "Kb" for what is numerically a
  kibibit (1024 bits): e.g. a 72 b x 16384-entry table is reported as
  1152 Kb = 72 * 16384 / 1024.  We follow the paper's notation in reports but
  keep all arithmetic exact.

Rates are expressed in bits per second; Gigabit Ethernet is
``GIGABIT = 1_000_000_000`` (decimal, as in the IEEE standard), so serializing
one byte at 1 Gbps takes exactly 8 ns.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

Number = Union[int, float, Fraction]

# --------------------------------------------------------------------------
# Time: integer nanoseconds
# --------------------------------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def ns(value: Number) -> int:
    """Return *value* nanoseconds as an exact integer tick count."""
    return _to_int_ticks(value, NS, "ns")


def us(value: Number) -> int:
    """Return *value* microseconds in nanoseconds."""
    return _to_int_ticks(value, US, "us")


def ms(value: Number) -> int:
    """Return *value* milliseconds in nanoseconds."""
    return _to_int_ticks(value, MS, "ms")


def seconds(value: Number) -> int:
    """Return *value* seconds in nanoseconds."""
    return _to_int_ticks(value, SEC, "s")


def _to_int_ticks(value: Number, scale: int, unit: str) -> int:
    if isinstance(value, float):
        scaled = value * scale
        rounded = round(scaled)
        if abs(scaled - rounded) > 1e-6:
            raise ValueError(
                f"{value}{unit} is not an integral number of nanoseconds"
            )
        return int(rounded)
    if isinstance(value, Fraction):
        scaled_frac = value * scale
        if scaled_frac.denominator != 1:
            raise ValueError(
                f"{value}{unit} is not an integral number of nanoseconds"
            )
        return int(scaled_frac)
    return int(value) * scale


def fmt_time(t_ns: int) -> str:
    """Render a nanosecond count with the largest unit that stays readable.

    >>> fmt_time(65_000)
    '65us'
    >>> fmt_time(1_500)
    '1.5us'
    """
    for scale, unit in ((SEC, "s"), (MS, "ms"), (US, "us")):
        if abs(t_ns) >= scale:
            value = t_ns / scale
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:g}{unit}"
    return f"{t_ns}ns"


# --------------------------------------------------------------------------
# Memory: exact bits, reported in Kib ("Kb" in the paper's usage)
# --------------------------------------------------------------------------

BIT = 1
BYTE = 8
KIB = 1024          # the paper's "Kb"
MIB = 1024 * 1024


def bits_from_bytes(n_bytes: int) -> int:
    """Size in bits of *n_bytes* bytes."""
    return n_bytes * BYTE


def kib(bits: Number) -> Fraction:
    """Exact kibibit count of *bits* bits (may be fractional)."""
    return Fraction(bits) / KIB


def fmt_kib(bits: Number) -> str:
    """Render a bit count in the paper's ``Kb`` notation.

    >>> fmt_kib(72 * 16384)
    '1152Kb'
    """
    value = kib(bits)
    if value.denominator == 1:
        return f"{int(value)}Kb"
    return f"{float(value):g}Kb"


# --------------------------------------------------------------------------
# Rates: bits per second
# --------------------------------------------------------------------------

KILOBIT_PER_S = 1_000
MEGABIT_PER_S = 1_000_000
GIGABIT_PER_S = 1_000_000_000

GIGABIT = GIGABIT_PER_S  # the testbed's 1 Gbps Ethernet links


def mbps(value: Number) -> int:
    """Return *value* Mbps as bits per second."""
    result = Fraction(value) * MEGABIT_PER_S
    if result.denominator != 1:
        raise ValueError(f"{value} Mbps is not an integral bit rate")
    return int(result)


def gbps(value: Number) -> int:
    """Return *value* Gbps as bits per second."""
    result = Fraction(value) * GIGABIT_PER_S
    if result.denominator != 1:
        raise ValueError(f"{value} Gbps is not an integral bit rate")
    return int(result)


def serialization_ns(frame_bytes: int, rate_bps: int) -> int:
    """Wire time in ns to serialize *frame_bytes* at *rate_bps*.

    Rounded up to a whole nanosecond -- a frame is never "done early" on the
    wire.  At 1 Gbps a 64 B frame takes 512 ns, a 1500 B frame 12 us.
    """
    bits = frame_bytes * BYTE
    return -(-bits * SEC // rate_bps)  # ceil division


# Ethernet framing constants (used for wire-occupancy accounting).
ETH_PREAMBLE_SFD_BYTES = 8
ETH_IFG_BYTES = 12
ETH_FCS_BYTES = 4
ETH_MIN_FRAME_BYTES = 64
ETH_MTU_FRAME_BYTES = 1518


def wire_bytes(frame_bytes: int) -> int:
    """Total wire occupancy of a frame including preamble/SFD and IFG.

    *frame_bytes* counts DA through FCS (the paper's "packet size").
    """
    return frame_bytes + ETH_PREAMBLE_SFD_BYTES + ETH_IFG_BYTES
