"""Platform-independent customization APIs (paper Table II).

The seven ``set_*`` calls below are verbatim the interface the paper
publishes for injecting application-specific resource parameters into the
function templates.  :class:`CustomizationAPI` records the injected values
and produces an immutable :class:`~repro.core.config.SwitchConfig` once every
mandatory resource has been specified.

The calls are platform-independent by construction: nothing here knows
whether the templates will elaborate into a discrete-event simulation model
or into Verilog parameters -- that binding happens later, in
:class:`~repro.core.builder.TSNBuilder`.

Example
-------
>>> api = CustomizationAPI("ring-node")
>>> api.set_switch_tbl(unicast_size=1024, multicast_size=0)
>>> api.set_class_tbl(class_size=1024)
>>> api.set_meter_tbl(meter_size=1024)
>>> api.set_gate_tbl(gate_size=2, queue_num=8, port_num=1)
>>> api.set_cbs_tbl(cbs_map_size=3, cbs_size=3, port_num=1)
>>> api.set_queues(queue_depth=12, queue_num=8, port_num=1)
>>> api.set_buffers(buffer_num=96, port_num=1)
>>> config = api.build()
>>> round(config.total_bram_kb)
2106
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Set

from .config import EntryWidths, SwitchConfig
from .errors import ConfigurationError, IncompleteCustomizationError

__all__ = ["CustomizationAPI", "SwitchBuilder", "PROFILES"]

_ALL_CALLS = frozenset(
    {
        "set_switch_tbl",
        "set_class_tbl",
        "set_meter_tbl",
        "set_gate_tbl",
        "set_cbs_tbl",
        "set_queues",
        "set_buffers",
    }
)


class CustomizationAPI:
    """Collects resource parameters through the paper's seven APIs.

    Consistency across calls is enforced eagerly: ``port_num`` and
    ``queue_num`` appear in several APIs (exactly as in the paper's Table II)
    and must agree everywhere; a later call with a conflicting value raises
    :class:`~repro.core.errors.ConfigurationError` immediately rather than at
    :meth:`build` time, so the developer sees which call introduced the
    conflict.
    """

    def __init__(self, name: str = "switch", widths: Optional[EntryWidths] = None):
        self._name = name
        self._widths = widths or EntryWidths()
        self._params: Dict[str, int] = {}
        self._called: Set[str] = set()

    # ------------------------------------------------------------ helpers

    def _set(self, call: str, **values: int) -> None:
        for key, value in values.items():
            if key in self._params and self._params[key] != value:
                raise ConfigurationError(
                    f"{call}: {key}={value} conflicts with previously "
                    f"configured {key}={self._params[key]}"
                )
            self._params[key] = value
        self._called.add(call)

    # -------------------------------------------------- the seven Table II APIs

    def set_switch_tbl(self, unicast_size: int, multicast_size: int) -> None:
        """Set the size of the unicast table and multicast table."""
        self._set(
            "set_switch_tbl",
            unicast_size=unicast_size,
            multicast_size=multicast_size,
        )

    def set_class_tbl(self, class_size: int) -> None:
        """Set the size of the classification table."""
        self._set("set_class_tbl", class_size=class_size)

    def set_meter_tbl(self, meter_size: int) -> None:
        """Set the size of the meter table."""
        self._set("set_meter_tbl", meter_size=meter_size)

    def set_gate_tbl(self, gate_size: int, queue_num: int, port_num: int) -> None:
        """Set each gate table's size, queues per port, and port count."""
        self._set(
            "set_gate_tbl",
            gate_size=gate_size,
            queue_num=queue_num,
            port_num=port_num,
        )

    def set_cbs_tbl(self, cbs_map_size: int, cbs_size: int, port_num: int) -> None:
        """Set the CBS map table and CBS table sizes, and the port count."""
        self._set(
            "set_cbs_tbl",
            cbs_map_size=cbs_map_size,
            cbs_size=cbs_size,
            port_num=port_num,
        )

    def set_queues(self, queue_depth: int, queue_num: int, port_num: int) -> None:
        """Set per-queue depth, queues per port, and the port count."""
        self._set(
            "set_queues",
            queue_depth=queue_depth,
            queue_num=queue_num,
            port_num=port_num,
        )

    def set_buffers(self, buffer_num: int, port_num: int) -> None:
        """Set per-port packet buffer count and the port count."""
        self._set("set_buffers", buffer_num=buffer_num, port_num=port_num)

    # ------------------------------------------------------------- build

    @property
    def missing_calls(self) -> Set[str]:
        """Which of the seven APIs have not been invoked yet."""
        return set(_ALL_CALLS) - self._called

    def build(self) -> SwitchConfig:
        """Freeze the collected parameters into a validated config.

        Raises :class:`~repro.core.errors.IncompleteCustomizationError`
        (a :class:`ConfigurationError`) naming *every* API that was never
        called -- a partially customized switch has undefined resource
        specifications, and one build attempt should surface all of them.
        """
        missing = self.missing_calls
        if missing:
            raise IncompleteCustomizationError(self._name, missing)
        config = SwitchConfig(name=self._name, widths=self._widths, **self._params)
        config.validate()
        return config

    # ----------------------------------------------------------- profiles

    def apply_profile(self, profile: str) -> "CustomizationAPI":
        """Replay a named reference parameter set through the seven APIs.

        Profiles are the paper's published configurations (see
        :data:`PROFILES`): ``"bcm53154"`` is the COTS baseline of Table III,
        ``"star"``/``"linear"``/``"ring"`` the customized columns, and
        ``"table1_case1"``/``"table1_case2"`` the motivation cases.  The
        values pass through :meth:`_set` like any hand-written call, so a
        profile conflicting with an already-injected parameter raises
        immediately with the offending call named.  Returns ``self`` so a
        sweep can diff against the reference config in one expression::

            baseline = CustomizationAPI("ref").apply_profile("bcm53154").build()
        """
        try:
            preset = PROFILES[profile]
        except KeyError:
            raise ConfigurationError(
                f"unknown profile {profile!r}; expected one of "
                f"{sorted(PROFILES)}"
            ) from None
        self.replay(preset())
        return self

    def replay(self, config: SwitchConfig) -> "CustomizationAPI":
        """Feed an existing config's parameters through the seven APIs."""
        self.set_switch_tbl(config.unicast_size, config.multicast_size)
        self.set_class_tbl(config.class_size)
        self.set_meter_tbl(config.meter_size)
        self.set_gate_tbl(config.gate_size, config.queue_num, config.port_num)
        self.set_cbs_tbl(config.cbs_map_size, config.cbs_size, config.port_num)
        self.set_queues(config.queue_depth, config.queue_num, config.port_num)
        self.set_buffers(config.buffer_num, config.port_num)
        return self

    @classmethod
    def from_config(cls, config: SwitchConfig) -> "CustomizationAPI":
        """Replay an existing config through the API (useful for tweaking)."""
        return cls(config.name, widths=config.widths).replay(config)


def _profiles() -> Dict[str, Callable[[], SwitchConfig]]:
    # Imported lazily: presets imports config, not api, so this is safe,
    # but keeping it out of module import time avoids a cycle if presets
    # ever grows an api dependency.
    from . import presets

    return {
        "bcm53154": presets.bcm53154_config,
        "star": presets.star_config,
        "linear": presets.linear_config,
        "ring": presets.ring_config,
        "table1_case1": presets.table1_case1,
        "table1_case2": presets.table1_case2,
    }


class _ProfileRegistry(Mapping):
    """Lazy name -> preset-factory mapping (defers the presets import)."""

    def _table(self) -> Dict[str, Callable[[], SwitchConfig]]:
        return _profiles()

    def __getitem__(self, key: str) -> Callable[[], SwitchConfig]:
        return self._table()[key]

    def __iter__(self):
        return iter(self._table())

    def __len__(self) -> int:
        return len(self._table())


#: Named reference parameter sets accepted by
#: :meth:`CustomizationAPI.apply_profile` and ``SwitchBuilder.profile``.
PROFILES: Mapping = _ProfileRegistry()


class SwitchBuilder:
    """Fluent facade over :class:`CustomizationAPI`.

    Every ``set_*`` call returns the builder, so a complete customization
    reads as one chained expression; :meth:`build` raises a single
    :class:`~repro.core.errors.IncompleteCustomizationError` naming all
    missing calls at once.  The underlying :class:`CustomizationAPI` keeps
    its original imperative surface untouched -- this class only forwards.

    Example
    -------
    >>> config = (
    ...     SwitchBuilder("ring-node")
    ...     .set_switch_tbl(unicast_size=1024, multicast_size=0)
    ...     .set_class_tbl(class_size=1024)
    ...     .set_meter_tbl(meter_size=1024)
    ...     .set_gate_tbl(gate_size=2, queue_num=8, port_num=1)
    ...     .set_cbs_tbl(cbs_map_size=3, cbs_size=3, port_num=1)
    ...     .set_queues(queue_depth=12, queue_num=8, port_num=1)
    ...     .set_buffers(buffer_num=96, port_num=1)
    ...     .build()
    ... )
    >>> round(config.total_bram_kb)
    2106
    """

    def __init__(self, name: str = "switch", widths: Optional[EntryWidths] = None):
        self._api = CustomizationAPI(name, widths=widths)

    @property
    def api(self) -> CustomizationAPI:
        """The wrapped imperative API (escape hatch)."""
        return self._api

    @property
    def missing_calls(self) -> Set[str]:
        return self._api.missing_calls

    # Each facade method forwards to the identically named Table II call.

    def set_switch_tbl(self, unicast_size: int, multicast_size: int) -> "SwitchBuilder":
        self._api.set_switch_tbl(unicast_size, multicast_size)
        return self

    def set_class_tbl(self, class_size: int) -> "SwitchBuilder":
        self._api.set_class_tbl(class_size)
        return self

    def set_meter_tbl(self, meter_size: int) -> "SwitchBuilder":
        self._api.set_meter_tbl(meter_size)
        return self

    def set_gate_tbl(self, gate_size: int, queue_num: int, port_num: int) -> "SwitchBuilder":
        self._api.set_gate_tbl(gate_size, queue_num, port_num)
        return self

    def set_cbs_tbl(self, cbs_map_size: int, cbs_size: int, port_num: int) -> "SwitchBuilder":
        self._api.set_cbs_tbl(cbs_map_size, cbs_size, port_num)
        return self

    def set_queues(self, queue_depth: int, queue_num: int, port_num: int) -> "SwitchBuilder":
        self._api.set_queues(queue_depth, queue_num, port_num)
        return self

    def set_buffers(self, buffer_num: int, port_num: int) -> "SwitchBuilder":
        self._api.set_buffers(buffer_num, port_num)
        return self

    def profile(self, name: str) -> "SwitchBuilder":
        """Apply a named reference profile (see :data:`PROFILES`)."""
        self._api.apply_profile(name)
        return self

    def build(self) -> SwitchConfig:
        return self._api.build()
