"""Platform-independent customization APIs (paper Table II).

The seven ``set_*`` calls below are verbatim the interface the paper
publishes for injecting application-specific resource parameters into the
function templates.  :class:`CustomizationAPI` records the injected values
and produces an immutable :class:`~repro.core.config.SwitchConfig` once every
mandatory resource has been specified.

The calls are platform-independent by construction: nothing here knows
whether the templates will elaborate into a discrete-event simulation model
or into Verilog parameters -- that binding happens later, in
:class:`~repro.core.builder.TSNBuilder`.

Example
-------
>>> api = CustomizationAPI("ring-node")
>>> api.set_switch_tbl(unicast_size=1024, multicast_size=0)
>>> api.set_class_tbl(class_size=1024)
>>> api.set_meter_tbl(meter_size=1024)
>>> api.set_gate_tbl(gate_size=2, queue_num=8, port_num=1)
>>> api.set_cbs_tbl(cbs_map_size=3, cbs_size=3, port_num=1)
>>> api.set_queues(queue_depth=12, queue_num=8, port_num=1)
>>> api.set_buffers(buffer_num=96, port_num=1)
>>> config = api.build()
>>> round(config.total_bram_kb)
2106
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from .config import EntryWidths, SwitchConfig
from .errors import ConfigurationError

__all__ = ["CustomizationAPI"]

_ALL_CALLS = frozenset(
    {
        "set_switch_tbl",
        "set_class_tbl",
        "set_meter_tbl",
        "set_gate_tbl",
        "set_cbs_tbl",
        "set_queues",
        "set_buffers",
    }
)


class CustomizationAPI:
    """Collects resource parameters through the paper's seven APIs.

    Consistency across calls is enforced eagerly: ``port_num`` and
    ``queue_num`` appear in several APIs (exactly as in the paper's Table II)
    and must agree everywhere; a later call with a conflicting value raises
    :class:`~repro.core.errors.ConfigurationError` immediately rather than at
    :meth:`build` time, so the developer sees which call introduced the
    conflict.
    """

    def __init__(self, name: str = "switch", widths: Optional[EntryWidths] = None):
        self._name = name
        self._widths = widths or EntryWidths()
        self._params: Dict[str, int] = {}
        self._called: Set[str] = set()

    # ------------------------------------------------------------ helpers

    def _set(self, call: str, **values: int) -> None:
        for key, value in values.items():
            if key in self._params and self._params[key] != value:
                raise ConfigurationError(
                    f"{call}: {key}={value} conflicts with previously "
                    f"configured {key}={self._params[key]}"
                )
            self._params[key] = value
        self._called.add(call)

    # -------------------------------------------------- the seven Table II APIs

    def set_switch_tbl(self, unicast_size: int, multicast_size: int) -> None:
        """Set the size of the unicast table and multicast table."""
        self._set(
            "set_switch_tbl",
            unicast_size=unicast_size,
            multicast_size=multicast_size,
        )

    def set_class_tbl(self, class_size: int) -> None:
        """Set the size of the classification table."""
        self._set("set_class_tbl", class_size=class_size)

    def set_meter_tbl(self, meter_size: int) -> None:
        """Set the size of the meter table."""
        self._set("set_meter_tbl", meter_size=meter_size)

    def set_gate_tbl(self, gate_size: int, queue_num: int, port_num: int) -> None:
        """Set each gate table's size, queues per port, and port count."""
        self._set(
            "set_gate_tbl",
            gate_size=gate_size,
            queue_num=queue_num,
            port_num=port_num,
        )

    def set_cbs_tbl(self, cbs_map_size: int, cbs_size: int, port_num: int) -> None:
        """Set the CBS map table and CBS table sizes, and the port count."""
        self._set(
            "set_cbs_tbl",
            cbs_map_size=cbs_map_size,
            cbs_size=cbs_size,
            port_num=port_num,
        )

    def set_queues(self, queue_depth: int, queue_num: int, port_num: int) -> None:
        """Set per-queue depth, queues per port, and the port count."""
        self._set(
            "set_queues",
            queue_depth=queue_depth,
            queue_num=queue_num,
            port_num=port_num,
        )

    def set_buffers(self, buffer_num: int, port_num: int) -> None:
        """Set per-port packet buffer count and the port count."""
        self._set("set_buffers", buffer_num=buffer_num, port_num=port_num)

    # ------------------------------------------------------------- build

    @property
    def missing_calls(self) -> Set[str]:
        """Which of the seven APIs have not been invoked yet."""
        return set(_ALL_CALLS) - self._called

    def build(self) -> SwitchConfig:
        """Freeze the collected parameters into a validated config.

        Raises if any of the seven APIs was never called -- a partially
        customized switch has undefined resource specifications.
        """
        missing = self.missing_calls
        if missing:
            raise ConfigurationError(
                f"{self._name}: incomplete customization, missing "
                f"{sorted(missing)}"
            )
        config = SwitchConfig(name=self._name, widths=self._widths, **self._params)
        config.validate()
        return config

    @classmethod
    def from_config(cls, config: SwitchConfig) -> "CustomizationAPI":
        """Replay an existing config through the API (useful for tweaking)."""
        api = cls(config.name, widths=config.widths)
        api.set_switch_tbl(config.unicast_size, config.multicast_size)
        api.set_class_tbl(config.class_size)
        api.set_meter_tbl(config.meter_size)
        api.set_gate_tbl(config.gate_size, config.queue_num, config.port_num)
        api.set_cbs_tbl(config.cbs_map_size, config.cbs_size, config.port_num)
        api.set_queues(config.queue_depth, config.queue_num, config.port_num)
        api.set_buffers(config.buffer_num, config.port_num)
        return api
