"""The complete resource specification of one TSN switch.

:class:`SwitchConfig` aggregates every parameter reachable through the
paper's customization APIs (Table II) plus the entry widths the evaluation
fixes (Section IV.B).  It is a plain, serializable value object: the
customization API (:mod:`repro.core.api`) builds one incrementally, the
sizing guidelines (:mod:`repro.core.sizing`) derive one from application
features, the presets (:mod:`repro.core.presets`) hold the published
commercial/customized parameter sets, and the templates elaborate it into
either simulation components or Verilog parameters.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional

from . import bram, resources
from .errors import ConfigurationError
from .resources import (
    BufferResource,
    Component,
    QueueResource,
    ReportRow,
    ResourceReport,
    Sharing,
    TableResource,
)

__all__ = ["SwitchConfig", "EntryWidths"]


@dataclass(frozen=True)
class EntryWidths:
    """Bit widths of each table entry kind.

    Defaults are the widths the paper's evaluation uses; they are grouped
    here (rather than hard-coded) because a different lookup key layout --
    e.g. adding an IP 5-tuple to the classifier -- changes widths without
    changing the customization model.
    """

    switch_tbl: int = resources.SWITCH_TBL_WIDTH
    class_tbl: int = resources.CLASS_TBL_WIDTH
    meter_tbl: int = resources.METER_TBL_WIDTH
    gate_tbl: int = resources.GATE_TBL_WIDTH
    cbs_tbl_total: int = resources.CBS_TBL_TOTAL_WIDTH
    queue_metadata: int = resources.QUEUE_METADATA_WIDTH

    def validate(self) -> None:
        for name, value in asdict(self).items():
            if value <= 0:
                raise ConfigurationError(
                    f"entry width {name} must be positive, got {value}"
                )


@dataclass(frozen=True)
class SwitchConfig:
    """Every resource parameter of one customized TSN switch.

    Parameters map one-to-one onto the seven customization APIs of the
    paper's Table II:

    ===============  ========================================================
    set_switch_tbl   ``unicast_size``, ``multicast_size``
    set_class_tbl    ``class_size``
    set_meter_tbl    ``meter_size``
    set_gate_tbl     ``gate_size``, ``queue_num``, ``port_num``
    set_cbs_tbl      ``cbs_map_size``, ``cbs_size``, ``port_num``
    set_queues       ``queue_depth``, ``queue_num``, ``port_num``
    set_buffers      ``buffer_num``, ``port_num``
    ===============  ========================================================

    A ``multicast_size`` of 0 is allowed and means the multicast table is
    omitted entirely (the paper's prototype splits multicast flows into
    unicast flows and builds no multicast table).
    """

    name: str = "switch"
    port_num: int = 1
    # Packet Switch
    unicast_size: int = 1024
    multicast_size: int = 0
    # Ingress Filter
    class_size: int = 1024
    meter_size: int = 1024
    # Gate Ctrl
    gate_size: int = 2
    queue_num: int = 8
    # Egress Sched
    cbs_map_size: int = 3
    cbs_size: int = 3
    # Queues / buffers
    queue_depth: int = 8
    buffer_num: int = 96
    widths: EntryWidths = field(default_factory=EntryWidths)

    # ---------------------------------------------------------------- checks

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistent parameter."""
        self.widths.validate()
        positive = {
            "port_num": self.port_num,
            "unicast_size": self.unicast_size,
            "class_size": self.class_size,
            "meter_size": self.meter_size,
            "gate_size": self.gate_size,
            "queue_num": self.queue_num,
            "cbs_map_size": self.cbs_map_size,
            "cbs_size": self.cbs_size,
            "queue_depth": self.queue_depth,
            "buffer_num": self.buffer_num,
        }
        for label, value in positive.items():
            if value <= 0:
                raise ConfigurationError(
                    f"{self.name}: {label} must be positive, got {value}"
                )
        if self.multicast_size < 0:
            raise ConfigurationError(
                f"{self.name}: multicast_size must be >= 0, "
                f"got {self.multicast_size}"
            )
        if self.cbs_map_size > self.queue_num:
            raise ConfigurationError(
                f"{self.name}: cbs_map_size ({self.cbs_map_size}) cannot "
                f"exceed queue_num ({self.queue_num}) -- each CBS map entry "
                "binds one queue to a shaper"
            )
        if self.buffer_num < self.queue_depth:
            raise ConfigurationError(
                f"{self.name}: buffer_num ({self.buffer_num}) is smaller "
                f"than a single queue's depth ({self.queue_depth}); even one "
                "full queue could not be backed by buffers"
            )

    # --------------------------------------------------------- resource view

    def table_resources(self) -> List[TableResource]:
        """The table resources of this configuration (paper Fig. 4)."""
        tables = [
            TableResource(
                name="Switch Tbl",
                component=Component.PACKET_SWITCH,
                entry_width=self.widths.switch_tbl,
                size=self.unicast_size,
                sharing=Sharing.SHARED,
            ),
        ]
        if self.multicast_size > 0:
            tables.append(
                TableResource(
                    name="Multicast Tbl",
                    component=Component.PACKET_SWITCH,
                    entry_width=self.widths.switch_tbl,
                    size=self.multicast_size,
                    sharing=Sharing.SHARED,
                )
            )
        tables.extend(
            [
                TableResource(
                    name="Class. Tbl",
                    component=Component.INGRESS_FILTER,
                    entry_width=self.widths.class_tbl,
                    size=self.class_size,
                    sharing=Sharing.SHARED,
                ),
                TableResource(
                    name="Meter Tbl",
                    component=Component.INGRESS_FILTER,
                    entry_width=self.widths.meter_tbl,
                    size=self.meter_size,
                    sharing=Sharing.SHARED,
                ),
                # In-gate + out-gate table per port.
                TableResource(
                    name="Gate Tbl",
                    component=Component.GATE_CTRL,
                    entry_width=self.widths.gate_tbl,
                    size=self.gate_size,
                    sharing=Sharing.PER_PORT,
                    instances=2 * self.port_num,
                ),
                # CBS map table + CBS table per port.  The two entry kinds
                # total ``cbs_tbl_total`` bits; each table is a separate
                # physical memory, so each costs at least one primitive.
                TableResource(
                    name="CBS Tbl",
                    component=Component.EGRESS_SCHED,
                    entry_width=self.widths.cbs_tbl_total // 2,
                    size=max(self.cbs_map_size, self.cbs_size),
                    sharing=Sharing.PER_PORT,
                    instances=2 * self.port_num,
                ),
            ]
        )
        return tables

    def queue_resource(self) -> QueueResource:
        return QueueResource(
            depth=self.queue_depth,
            queue_num=self.queue_num,
            port_num=self.port_num,
            metadata_width=self.widths.queue_metadata,
        )

    def buffer_resource(self) -> BufferResource:
        return BufferResource(
            buffer_num=self.buffer_num,
            port_num=self.port_num,
        )

    def resource_report(self, title: Optional[str] = None) -> ResourceReport:
        """Full BRAM report -- one column of the paper's Table III."""
        self.validate()
        report = ResourceReport(title or self.name)
        for table in self.table_resources():
            if table.name == "Gate Tbl":
                params = (self.gate_size, self.queue_num, self.port_num)
            elif table.name == "CBS Tbl":
                params = (self.cbs_map_size, self.cbs_size, self.port_num)
            elif table.name == "Switch Tbl":
                params = (self.unicast_size, self.multicast_size)
            else:
                params = (table.size,)
            report.add(
                ReportRow(
                    resource=table.name,
                    width_label=f"{table.entry_width}b",
                    parameters=params,
                    bits=table.bits,
                )
            )
        queues = self.queue_resource()
        report.add(
            ReportRow(
                resource="Queues",
                width_label=f"{queues.metadata_width}b",
                parameters=(self.queue_depth, self.queue_num, self.port_num),
                bits=queues.bits,
            )
        )
        buffers = self.buffer_resource()
        report.add(
            ReportRow(
                resource="Buffers",
                width_label=f"{buffers.slot_bytes}B",
                parameters=(self.buffer_num, self.port_num),
                bits=buffers.bits,
            )
        )
        return report

    @property
    def total_bram_kb(self) -> float:
        return self.resource_report().total_kb

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-compatible)."""
        data = asdict(self)
        data["widths"] = asdict(self.widths)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SwitchConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys are rejected."""
        payload = dict(data)
        widths_data = payload.pop("widths", None)
        widths = EntryWidths(**widths_data) if widths_data else EntryWidths()
        known = {f for f in cls.__dataclass_fields__ if f != "widths"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SwitchConfig fields: {sorted(unknown)}"
            )
        return cls(widths=widths, **payload)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SwitchConfig":
        return cls.from_dict(json.loads(text))

    def with_updates(self, **changes: Any) -> "SwitchConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
