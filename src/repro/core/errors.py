"""Exception hierarchy for the TSN-Builder reproduction.

All library-raised exceptions derive from :class:`TsnBuilderError` so callers
can catch everything the library produces with a single ``except`` clause,
while still being able to discriminate configuration problems from runtime
(simulation) problems.
"""

from __future__ import annotations


class TsnBuilderError(Exception):
    """Root of the library's exception hierarchy."""


class ConfigurationError(TsnBuilderError):
    """An invalid or inconsistent resource/switch configuration.

    Raised by the customization APIs (paper Table II) and by
    :class:`~repro.core.config.SwitchConfig` validation, e.g. a zero-sized
    table, a queue count that does not cover the configured priorities, or a
    buffer pool smaller than the aggregate queue depth.
    """


class IncompleteCustomizationError(ConfigurationError):
    """``build()`` was called before every mandatory resource was specified.

    Carries the full set of missing Table II calls in :attr:`missing_calls`
    so tooling (and the fluent :class:`~repro.core.api.SwitchBuilder`) can
    report every omission at once instead of one per attempt.
    """

    def __init__(self, name: str, missing_calls):
        self.switch_name = name
        self.missing_calls = frozenset(missing_calls)
        calls = ", ".join(sorted(self.missing_calls))
        super().__init__(
            f"{name}: incomplete customization, missing {len(self.missing_calls)} "
            f"call(s): {calls}"
        )


class SpecValidationError(ConfigurationError):
    """A declarative document (scenario / sweep) failed strict validation.

    Collects *every* offending path into :attr:`problems` -- a list of
    human-readable ``"path: message"`` strings -- and raises once, so a
    hand-written JSON file surfaces all its typos in a single round trip.
    """

    def __init__(self, what: str, problems):
        self.problems = list(problems)
        details = "\n".join(f"  - {p}" for p in self.problems)
        super().__init__(
            f"{what} failed validation with {len(self.problems)} problem(s):\n"
            f"{details}"
        )


class CapacityError(TsnBuilderError):
    """A fixed-capacity hardware structure was asked to exceed its size.

    Raised when inserting into a full table or attempting to allocate from an
    exhausted packet-buffer pool in *strict* mode.  The dataplane itself never
    raises this for packet traffic -- packets are dropped and counted instead,
    matching hardware behaviour -- but control-plane table programming does.
    """


class SynthesisError(TsnBuilderError):
    """Template selection/elaboration failed during :meth:`TSNBuilder.synthesize`."""


class SchedulingError(TsnBuilderError):
    """Flow-set admission or CQF/ITP schedule construction failed.

    e.g. the scheduling cycle (LCM of flow periods) overflows the configured
    limit, or a flow's per-slot arrivals exceed what any queue depth could
    hold.
    """


class SimulationError(TsnBuilderError):
    """The discrete-event simulator was driven into an invalid state.

    e.g. scheduling an event in the past, or running a testbed that was never
    wired up.
    """


class TopologyError(TsnBuilderError):
    """An invalid network topology (unknown node, unconnected port, ...)."""
