"""Block-RAM cost model for Xilinx 7-series FPGAs.

The paper evaluates TSN-Builder on a Xilinx Zynq 7020 and reports every
resource in "BRAMs" (Kb of block RAM).  7-series block RAM comes in two
primitives, each configurable to a fixed set of depth x width aspect ratios:

====================  =======================================================
RAMB18E1 (18 Kb)      16K x 1, 8K x 2, 4K x 4, 2K x 9, 1K x 18, 512 x 36
RAMB36E1 (36 Kb)      32K x 1, 16K x 2, 8K x 4, 4K x 9, 2K x 18, 1K x 36,
                      512 x 72 (simple dual port)
====================  =======================================================

A memory of logical shape ``width x depth`` is built from a grid of
primitives: ``ceil(width / w)`` columns wide by ``ceil(depth / d)`` rows deep
for a chosen aspect ratio ``d x w``.  The synthesizer picks the cheapest such
packing; :func:`allocate` reproduces that choice.

This model reproduces every table/queue BRAM figure in the paper's Tables I
and III bit-exactly (verified in ``tests/core/test_bram.py``):

* 72 b x 16K switch table  -> 32 RAMB36 (512x72)   = 1152 Kb
* 117 b x 1K class table   -> 7 RAMB18 (1Kx18)     = 126 Kb
* 68 b x 512 meter table   -> 2 RAMB18 (512x36)    = 36 Kb
* 17 b x 2 gate table      -> 1 RAMB18 (minimum)   = 18 Kb
* 32 b x 16 queue          -> 1 RAMB18 (minimum)   = 18 Kb

Packet buffers are costed separately (see :data:`BUFFER_SLOT_COST_BITS`):
the paper's buffer figures imply exactly 16.875 Kb of BRAM per 2048 B slot
(2160 Kb per 128 slots, 1620 Kb per 96 slots), i.e. 2048 B of payload plus a
112 B descriptor/alignment overhead per slot.  That constant is consistent
across all five buffer data points the paper publishes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .errors import ConfigurationError
from .units import KIB

__all__ = [
    "AspectRatio",
    "BramAllocation",
    "RAMB18_KB",
    "RAMB36_KB",
    "RAMB18_ASPECTS",
    "RAMB36_ASPECTS",
    "BUFFER_SLOT_BYTES",
    "BUFFER_SLOT_OVERHEAD_BYTES",
    "BUFFER_SLOT_COST_BITS",
    "allocate",
    "bram_bits",
    "bram_kb",
    "buffer_pool_bits",
    "naive_allocate",
]

RAMB18_KB = 18
RAMB36_KB = 36


@dataclass(frozen=True)
class AspectRatio:
    """One configurable shape of a BRAM primitive."""

    depth: int
    width: int
    primitive_kb: int  # 18 or 36

    @property
    def primitive_bits(self) -> int:
        return self.primitive_kb * KIB

    def blocks_for(self, width: int, depth: int) -> int:
        """Number of primitives to build a ``width x depth`` memory."""
        return math.ceil(width / self.width) * math.ceil(depth / self.depth)

    def __str__(self) -> str:  # e.g. "512x36 (RAMB18)"
        return f"{self.depth}x{self.width} (RAMB{self.primitive_kb * 2 // 2})"


RAMB18_ASPECTS: Tuple[AspectRatio, ...] = tuple(
    AspectRatio(depth, width, RAMB18_KB)
    for depth, width in (
        (16384, 1),
        (8192, 2),
        (4096, 4),
        (2048, 9),
        (1024, 18),
        (512, 36),
    )
)

RAMB36_ASPECTS: Tuple[AspectRatio, ...] = tuple(
    AspectRatio(depth, width, RAMB36_KB)
    for depth, width in (
        (32768, 1),
        (16384, 2),
        (8192, 4),
        (4096, 9),
        (2048, 18),
        (1024, 36),
        (512, 72),
    )
)

ALL_ASPECTS: Tuple[AspectRatio, ...] = RAMB18_ASPECTS + RAMB36_ASPECTS


@dataclass(frozen=True)
class BramAllocation:
    """Result of packing one logical memory into BRAM primitives."""

    width: int
    depth: int
    aspect: AspectRatio
    blocks: int

    @property
    def bits(self) -> int:
        """Consumed BRAM capacity in bits (blocks x primitive size)."""
        return self.blocks * self.aspect.primitive_bits

    @property
    def kb(self) -> float:
        """Consumed BRAM in the paper's Kb (kibibit) units."""
        return self.bits / KIB

    @property
    def logical_bits(self) -> int:
        """Bits actually required by the logical memory (width x depth)."""
        return self.width * self.depth

    @property
    def utilization(self) -> float:
        """Fraction of allocated BRAM capacity holding logical data."""
        return self.logical_bits / self.bits

    def __str__(self) -> str:
        return (
            f"{self.width}b x {self.depth} -> {self.blocks} x "
            f"{self.aspect} = {self.kb:g}Kb"
        )


def _check_shape(width: int, depth: int) -> None:
    if width <= 0:
        raise ConfigurationError(f"memory width must be positive, got {width}")
    if depth <= 0:
        raise ConfigurationError(f"memory depth must be positive, got {depth}")


def allocate(
    width: int,
    depth: int,
    aspects: Sequence[AspectRatio] = ALL_ASPECTS,
) -> BramAllocation:
    """Pack a ``width x depth`` memory into primitives at minimum cost.

    Ties are broken toward fewer blocks, then toward the deeper aspect ratio
    (fewer cascade stages on the data path).  Any memory consumes at least one
    primitive, which is why a 17 b x 2 gate table still costs a full 18 Kb.
    """
    _check_shape(width, depth)
    best: Optional[BramAllocation] = None
    for aspect in aspects:
        blocks = aspect.blocks_for(width, depth)
        candidate = BramAllocation(width, depth, aspect, blocks)
        if best is None or _cost_key(candidate) < _cost_key(best):
            best = candidate
    assert best is not None  # ALL_ASPECTS is non-empty
    return best


def _cost_key(alloc: BramAllocation) -> Tuple[int, int, int]:
    return (alloc.bits, alloc.blocks, -alloc.aspect.depth)


def naive_allocate(width: int, depth: int) -> BramAllocation:
    """Pack using only the widest RAMB36 shape (512 x 72).

    This is the strawman a synthesis-unaware generator would use; the
    ablation benchmark contrasts it with :func:`allocate` to quantify how
    much the aspect-ratio search matters (e.g. the 117 b classification table
    costs 144 Kb naively vs 126 Kb optimally).
    """
    widest = RAMB36_ASPECTS[-1]
    _check_shape(width, depth)
    return BramAllocation(width, depth, widest, widest.blocks_for(width, depth))


def bram_bits(width: int, depth: int) -> int:
    """Shortcut: consumed BRAM bits of the optimal packing."""
    return allocate(width, depth).bits


def bram_kb(width: int, depth: int) -> float:
    """Shortcut: consumed BRAM Kb of the optimal packing."""
    return allocate(width, depth).kb


# --------------------------------------------------------------------------
# Packet-buffer pool cost
# --------------------------------------------------------------------------

#: Payload capacity of one packet buffer slot (holds an MTU frame).
BUFFER_SLOT_BYTES = 2048

#: Per-slot descriptor/alignment overhead implied by the paper's figures.
#: 128 slots -> 2160 Kb and 96 slots -> 1620 Kb both give exactly
#: (2048 + 112) * 8 bits = 16.875 Kb per slot.
BUFFER_SLOT_OVERHEAD_BYTES = 112

#: Total BRAM bits consumed per packet buffer slot.
BUFFER_SLOT_COST_BITS = (BUFFER_SLOT_BYTES + BUFFER_SLOT_OVERHEAD_BYTES) * 8


def buffer_pool_bits(buffer_num: int, port_num: int) -> int:
    """BRAM bits of a per-port pool of *buffer_num* slots on *port_num* ports.

    The paper allocates an independent pool per enabled port (Table III's
    buffer row scales linearly with port count).
    """
    if buffer_num <= 0:
        raise ConfigurationError(
            f"buffer_num must be positive, got {buffer_num}"
        )
    if port_num <= 0:
        raise ConfigurationError(f"port_num must be positive, got {port_num}")
    return buffer_num * port_num * BUFFER_SLOT_COST_BITS


def total_kb(allocations: Iterable[BramAllocation]) -> float:
    """Sum the Kb cost of several allocations."""
    return sum(alloc.kb for alloc in allocations)


def pareto_aspects(width: int, depth: int) -> List[BramAllocation]:
    """All candidate packings sorted by cost -- useful for reports/ablations."""
    _check_shape(width, depth)
    candidates = [
        BramAllocation(width, depth, aspect, aspect.blocks_for(width, depth))
        for aspect in ALL_ASPECTS
    ]
    candidates.sort(key=_cost_key)
    return candidates
