"""Pre-flight deployment checks: will this configuration carry that load?

`SwitchConfig.validate()` checks *internal* consistency; this module checks
a configuration against an *application* (topology + flows + slotting),
catching at plan time what would otherwise surface as counted drops or
missed deadlines in simulation -- the checks a TSN-Builder user runs before
synthesizing bitstreams:

* shared tables large enough for the planned flow entries;
* gate tables large enough for the gate mechanism;
* queue depth covering ITP's worst per-slot arrivals (the paper's
  guideline 4 threshold);
* buffers backing the queues;
* CBS tables covering the RC queues in use;
* Eq. (1) worst-case latency within every flow deadline;
* ITP feasibility at the chosen slot size.

Returns :class:`Violation` records rather than raising, so callers can
render them (the CLI's ``simulate --check``) or assert emptiness (tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import SwitchConfig
from repro.core.errors import SchedulingError
from repro.cqf.bounds import cqf_bounds
from repro.cqf.schedule import CqfSchedule
from repro.sched import plan_flows
from repro.traffic.flows import FlowSet, TrafficClass

__all__ = ["Severity", "Violation", "check_deployment"]


class Severity(enum.Enum):
    ERROR = "error"      # packets will be lost or deadlines missed
    WARNING = "warning"  # works, but the margin is thin or wasteful


@dataclass(frozen=True)
class Violation:
    severity: Severity
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.subject}: {self.message}"


def check_deployment(
    config: SwitchConfig,
    topology,
    flows: FlowSet,
    slot_ns: int,
    gate_mechanism: str = "cqf",
    aggregate_routes: bool = False,
    rate_bps: int = 10**9,
) -> List[Violation]:
    """Every mismatch between *config* and the planned deployment."""
    violations: List[Violation] = []

    def error(subject: str, message: str) -> None:
        violations.append(Violation(Severity.ERROR, subject, message))

    def warn(subject: str, message: str) -> None:
        violations.append(Violation(Severity.WARNING, subject, message))

    config.validate()
    ts_flows = flows.ts_flows

    # --- shared tables (guideline 1)
    ts_count = len(ts_flows)
    if config.class_size < ts_count:
        error("class_tbl",
              f"{ts_count} TS flows need per-flow classification entries "
              f"but the table holds {config.class_size}")
    route_entries = (
        len({flow.dst for flow in flows}) if aggregate_routes else ts_count
    )
    if config.unicast_size < route_entries:
        error("unicast_tbl",
              f"{route_entries} forwarding entries needed "
              f"({'aggregated' if aggregate_routes else 'per-flow'}) but "
              f"the table holds {config.unicast_size}")
    if config.meter_size < ts_count:
        warn("meter_tbl",
             f"only {config.meter_size} meters for {ts_count} TS flows; "
             "overflow flows run unpoliced")

    # --- ports (guideline 5)
    if topology is not None and config.port_num < topology.max_enabled_ports:
        error("ports",
              f"topology needs {topology.max_enabled_ports} enabled ports, "
              f"config has {config.port_num}")

    # --- CBS (guideline 3)
    rc_queues = {flow.effective_pcp for flow in flows.rc_flows}
    if len(rc_queues) > config.cbs_map_size:
        error("cbs",
              f"{len(rc_queues)} RC queues in use but the CBS map holds "
              f"{config.cbs_map_size}")

    if not ts_flows:
        return violations

    # --- schedule + ITP (guidelines 2 and 4)
    try:
        schedule = CqfSchedule.for_flows(flows.ts_periods(), slot_ns)
    except SchedulingError as exc:
        error("slotting", str(exc))
        return violations
    if gate_mechanism == "cqf" and config.gate_size < 2:
        error("gate_tbl", "CQF needs 2 gate entries per list")
    try:
        plan = plan_flows(list(flows), slot_ns, rate_bps)
        plan.raise_if_infeasible()
    except SchedulingError as exc:
        error("itp", str(exc))
        return violations
    required = plan.required_queue_depth
    if config.queue_depth < required:
        error("queue_depth",
              f"ITP needs {required} descriptors per slot, configured "
              f"{config.queue_depth} -- TS tail drops guaranteed")
    elif config.queue_depth == required:
        warn("queue_depth",
             f"configured depth equals the ITP bound ({required}); any "
             "phase error drops packets")
    if config.buffer_num < required:
        error("buffers",
              f"{config.buffer_num} buffers cannot back the {required} "
              "frames a slot gathers")
    if config.buffer_num > config.queue_depth * config.queue_num:
        warn("buffers",
             f"{config.buffer_num} buffers exceed the "
             f"{config.queue_depth * config.queue_num} descriptors the "
             "queues can reference (guideline 4 sizes buffers = depth x "
             "queues)")

    # --- deadlines (Eq. 1)
    if topology is not None:
        for flow in ts_flows:
            if flow.deadline_ns is None:
                continue
            hops = topology.hops(flow.src, flow.dst)
            worst = cqf_bounds(hops, slot_ns).max_ns
            if gate_mechanism == "cqf" and worst > flow.deadline_ns:
                error("deadline",
                      f"flow {flow.flow_id}: Eq.(1) worst case {worst}ns "
                      f"over {hops} hops exceeds the "
                      f"{flow.deadline_ns}ns deadline")

    # --- RC bandwidth admission (802.1Qat-style, flow management)
    if topology is not None and flows.rc_flows:
        from repro.network.admission import admit_flows

        report = admit_flows(topology, flows, rate_bps=rate_bps)
        for verdict in report.rejected:
            error("rc_admission",
                  f"RC flow {verdict.flow_id} oversubscribes hop "
                  f"{verdict.rejecting_hop} by {verdict.shortfall_bps} bps "
                  "-- CBS will shape it below its request")
    return violations
