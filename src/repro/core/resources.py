"""Fine-grained resource abstraction (paper Section III.B, Fig. 4).

The paper's central observation is that a TSN switch's on-chip memory is
consumed by a small, enumerable set of objects spread over the five
components:

=================  ========================================================
Packet Switch      unicast table (Dst MAC + VID -> outport),
                   multicast table (MC ID -> outport set)
Ingress Filter     classification table (SMAC/DMAC/VID/PRI -> meter, queue),
                   meter table (token-bucket state per flow)
Gate Ctrl          input gate table + output gate table per port (GCLs)
Egress Sched       CBS map table + CBS table per port
(all components)   per-port metadata queues, per-port packet buffer pool
=================  ========================================================

This module defines the descriptors that carry *what* a resource is (name,
entry width, depth, sharing discipline) and *what it costs* (via
:mod:`repro.core.bram`), plus :class:`ResourceReport`, the structure the
benchmarks render into the paper's Table III rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import bram
from .errors import ConfigurationError
from .units import KIB

__all__ = [
    "Component",
    "Sharing",
    "TableResource",
    "QueueResource",
    "BufferResource",
    "ResourceReport",
    "ReportRow",
    # paper entry widths
    "SWITCH_TBL_WIDTH",
    "CLASS_TBL_WIDTH",
    "METER_TBL_WIDTH",
    "GATE_TBL_WIDTH",
    "CBS_TBL_TOTAL_WIDTH",
    "QUEUE_METADATA_WIDTH",
]


class Component(enum.Enum):
    """The five components of the paper's switch composition (Fig. 3)."""

    PACKET_SWITCH = "Packet Switch"
    INGRESS_FILTER = "Ingress Filter"
    GATE_CTRL = "Gate Ctrl"
    EGRESS_SCHED = "Egress Sched"
    TIME_SYNC = "Time Sync"


class Sharing(enum.Enum):
    """Whether a resource is instantiated once or per enabled port."""

    SHARED = "shared by all ports"
    PER_PORT = "exclusive per port"


# Entry widths used throughout the paper's evaluation (Section IV.B).
SWITCH_TBL_WIDTH = 72     # Dst MAC (48) + VID (12) + outport/flags (12)
CLASS_TBL_WIDTH = 117     # SMAC+DMAC (96) + VID (12) + PRI (3) + meter/queue ids
METER_TBL_WIDTH = 68      # token-bucket state: rate, burst, count, flags
GATE_TBL_WIDTH = 17       # 8 gate-state bits + time-interval field
CBS_TBL_TOTAL_WIDTH = 72  # CBS map + CBS (idleSlope/sendSlope/credit) combined
QUEUE_METADATA_WIDTH = 32  # packet descriptor: buffer id, length, queue, flags


@dataclass(frozen=True)
class TableResource:
    """One table kind with its shape and sharing discipline.

    ``instances`` is how many physical copies exist (1 for shared tables,
    ``tables_per_port * port_num`` for per-port tables such as the in/out
    gate pair).
    """

    name: str
    component: Component
    entry_width: int
    size: int
    sharing: Sharing
    instances: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(
                f"{self.name}: table size must be positive, got {self.size}"
            )
        if self.instances <= 0:
            raise ConfigurationError(
                f"{self.name}: instance count must be positive, "
                f"got {self.instances}"
            )

    @property
    def allocation(self) -> bram.BramAllocation:
        """BRAM packing of a single instance."""
        return bram.allocate(self.entry_width, self.size)

    @property
    def bits(self) -> int:
        """Total BRAM bits over all instances."""
        return self.allocation.bits * self.instances

    @property
    def kb(self) -> float:
        return self.bits / KIB

    @property
    def total_entries(self) -> int:
        return self.size * self.instances


@dataclass(frozen=True)
class QueueResource:
    """The per-port metadata queues.

    Each queue is an independent physical FIFO of ``depth`` descriptors of
    ``metadata_width`` bits, so each queue costs at least one BRAM primitive.
    """

    depth: int
    queue_num: int
    port_num: int
    metadata_width: int = QUEUE_METADATA_WIDTH
    name: str = "Queues"
    component: Component = Component.GATE_CTRL
    sharing: Sharing = Sharing.PER_PORT

    def __post_init__(self) -> None:
        for label, value in (
            ("queue depth", self.depth),
            ("queue_num", self.queue_num),
            ("port_num", self.port_num),
            ("metadata width", self.metadata_width),
        ):
            if value <= 0:
                raise ConfigurationError(
                    f"Queues: {label} must be positive, got {value}"
                )

    @property
    def instances(self) -> int:
        return self.queue_num * self.port_num

    @property
    def allocation(self) -> bram.BramAllocation:
        return bram.allocate(self.metadata_width, self.depth)

    @property
    def bits(self) -> int:
        return self.allocation.bits * self.instances

    @property
    def kb(self) -> float:
        return self.bits / KIB


@dataclass(frozen=True)
class BufferResource:
    """The per-port packet buffer pools.

    Each enabled port owns ``buffer_num`` fixed-size slots; a slot holds one
    MTU frame (2048 B payload) plus its descriptor overhead -- see
    :data:`repro.core.bram.BUFFER_SLOT_COST_BITS` for how the per-slot BRAM
    cost was derived from the paper's numbers.
    """

    buffer_num: int
    port_num: int
    slot_bytes: int = bram.BUFFER_SLOT_BYTES
    name: str = "Buffers"
    component: Component = Component.GATE_CTRL
    sharing: Sharing = Sharing.PER_PORT

    def __post_init__(self) -> None:
        if self.buffer_num <= 0:
            raise ConfigurationError(
                f"Buffers: buffer_num must be positive, got {self.buffer_num}"
            )
        if self.port_num <= 0:
            raise ConfigurationError(
                f"Buffers: port_num must be positive, got {self.port_num}"
            )
        if self.slot_bytes <= 0:
            raise ConfigurationError(
                f"Buffers: slot_bytes must be positive, got {self.slot_bytes}"
            )

    @property
    def instances(self) -> int:
        return self.buffer_num * self.port_num

    @property
    def bits(self) -> int:
        return bram.buffer_pool_bits(self.buffer_num, self.port_num)

    @property
    def kb(self) -> float:
        return self.bits / KIB


@dataclass(frozen=True)
class ReportRow:
    """One row of a Table III-style resource report."""

    resource: str
    width_label: str
    parameters: Tuple[int, ...]
    bits: int

    @property
    def kb(self) -> float:
        return self.bits / KIB

    @property
    def kb_label(self) -> str:
        value = self.kb
        if value == int(value):
            return f"{int(value)}Kb"
        return f"{value:g}Kb"


@dataclass
class ResourceReport:
    """Aggregated BRAM consumption of one switch configuration.

    Mirrors one column of the paper's Table III; ``compare`` computes the
    percentage reduction against a baseline report (the commercial switch).
    """

    title: str
    rows: List[ReportRow] = field(default_factory=list)

    def add(self, row: ReportRow) -> None:
        self.rows.append(row)

    @property
    def total_bits(self) -> int:
        return sum(row.bits for row in self.rows)

    @property
    def total_kb(self) -> float:
        return self.total_bits / KIB

    def row(self, resource: str) -> ReportRow:
        """Look up one row by resource name."""
        for candidate in self.rows:
            if candidate.resource == resource:
                return candidate
        raise KeyError(f"no resource row named {resource!r} in {self.title}")

    def reduction_vs(self, baseline: "ResourceReport") -> float:
        """Fractional BRAM reduction relative to *baseline* (0.8053 = -80.53%)."""
        if baseline.total_bits == 0:
            raise ConfigurationError("baseline report has zero total BRAM")
        return (baseline.total_bits - self.total_bits) / baseline.total_bits

    def as_dict(self) -> Dict[str, float]:
        """Resource name -> Kb mapping, plus a ``Total`` key."""
        result = {row.resource: row.kb for row in self.rows}
        result["Total"] = self.total_kb
        return result
